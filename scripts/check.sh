#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> store+core suites under a forced-small memtable budget (constant spilling)"
# BIOOPERA_MEMTABLE_BUDGET routes every Store::open through the tiered
# engine with a 64 KiB budget, so the suites re-run against real memtable
# spills, bloom-gated run reads and merge compactions inside the runtime
# workloads.  (4 KiB would also work but makes the heavy dependability
# traces quadratic in merge work; ~40 s at 64 KiB.)
BIOOPERA_MEMTABLE_BUDGET=65536 cargo test -q -p bioopera-store -p bioopera-core

echo "==> leveled squeeze: store + runtime/shard suites at a 512-byte budget"
# The deepest-stress point of the leveled engine: a spill every few
# records (512 B budget), an L0→L1 merge every second spill
# (BIOOPERA_RUN_MERGE=2) and constant level-overflow push-downs
# (BIOOPERA_LEVEL_BASE=2048).  The heavy dependability traces are
# minutes of merge work at this budget on the 1-core CI host, so this
# step runs the store suite plus the runtime and shard integration
# suites that assert tiering is semantics-invisible; the 64 KiB step
# above already walks the whole core package through the tiered engine.
BIOOPERA_MEMTABLE_BUDGET=512 BIOOPERA_RUN_MERGE=2 BIOOPERA_LEVEL_BASE=2048 \
  cargo test -q -p bioopera-store
BIOOPERA_MEMTABLE_BUDGET=512 BIOOPERA_RUN_MERGE=2 BIOOPERA_LEVEL_BASE=2048 \
  cargo test -q -p bioopera-core --test runtime_tests --test shard_determinism \
  --test tiered_runtime --test tiered_shard_determinism
# Bounded torture sample under the same squeeze: the runtime and shard
# probes open their stores through the env, so barrier-crash recovery
# and double-crash cases run on top of real spills and level merges
# (~13 s; the full enumeration runs untiered below).
BIOOPERA_MEMTABLE_BUDGET=512 BIOOPERA_RUN_MERGE=2 BIOOPERA_LEVEL_BASE=2048 \
  cargo run -q -p bioopera-harness --bin torture -- --store-limit 8 \
  --runtime-samples 2 --recovery-samples 1 --shard-samples 8

echo "==> crash-point torture harness (bounded; seed override: HARNESS_SEED=N)"
# Full store crash-point enumeration + sampled runtime crash points +
# sampled shard barrier-crash points; ~5 s.
cargo run -q -p bioopera-harness --bin torture -- --runtime-samples 8 --recovery-samples 3 --shard-samples 12

echo "==> shard suites forced serial (BIOOPERA_SHARDS=1 is the reference semantics)"
# The sharded navigator must behave identically with one shard; re-run
# its suites pinned to the single-shard config.
BIOOPERA_SHARDS=1 cargo test -q -p bioopera-core shard
BIOOPERA_SHARDS=1 cargo test -q -p bioopera-core --test shard_determinism

echo "==> unified-engine smoke: fig5/fig6 reports byte-identical under BIOOPERA_SHARDS=4"
# One step loop means the shard knob must never change what a report
# binary produces: run the figure reproductions under the forced-serial
# config and under 4 shards, then diff stdout and every results artifact
# byte-for-byte (~4 min; fig5 simulates the full shared-pool month twice).
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
mkdir -p "$smoke_dir/serial" "$smoke_dir/sharded"
for fig in fig5_shared_lifecycle fig6_nonshared_lifecycle; do
  BIOOPERA_SHARDS=1 BIOOPERA_RESULTS="$smoke_dir/serial" \
    cargo run --release -q -p bioopera-bench --bin "$fig" \
    > "$smoke_dir/serial/${fig}.stdout" 2> /dev/null
  BIOOPERA_SHARDS=4 BIOOPERA_RESULTS="$smoke_dir/sharded" \
    cargo run --release -q -p bioopera-bench --bin "$fig" \
    > "$smoke_dir/sharded/${fig}.stdout" 2> /dev/null
done
diff -r -q "$smoke_dir/serial" "$smoke_dir/sharded" \
  || { echo "figure reports diverged between BIOOPERA_SHARDS=1 and =4"; exit 1; }

echo "==> chaos: seeded flaky-node scenario (bounded; seed override: CHAOS_SEED=N)"
# One node kills every job; the dependability policies must finish the run
# within the retry ceiling and quarantine the killer.  Prints the seed and
# exits non-zero past the ceiling; ~1 s.
cargo run -q -p bioopera-workloads --bin chaos

echo "==> awareness: index-vs-scan equivalence proptests + example smoke test"
cargo test -q -p bioopera-core --test awareness_proptests
cargo run -q --example awareness_queries > /dev/null

echo "==> store bench smoke (small config; fails loudly on a replay regression)"
# Bounded run (~2 s release): emits results/BENCH_store.json and exits
# non-zero if WAL replay regresses vs the retained pre-overhaul baseline.
STORE_BENCH_SMOKE=1 cargo run --release -q -p bioopera-bench --bin store_bench > /dev/null
test -s results/BENCH_store.json || { echo "BENCH_store.json missing"; exit 1; }

echo "==> kernel bench smoke (one pass; fails loudly on a SIMD regression)"
# Bounded run (~2 s release): asserts the SIMD lane is bit-identical to
# the naive oracle, the banded refinement accounts every skipped cell,
# warm passes stay allocation-free, and (on SIMD hosts) the simd_batched
# variant keeps a cells/sec floor over the scalar profile kernel.
KERNEL_BENCH_SMOKE=1 cargo run --release -q -p bioopera-bench --bin kernel_bench > /dev/null
test -s results/BENCH_kernel.json || { echo "BENCH_kernel.json missing"; exit 1; }

echo "==> shard bench smoke (small config; digest-checked across shard counts)"
# Bounded run (~1 s release): emits results/BENCH_shard.json and asserts
# the recorded history is bit-identical at 1/2/4/8 shards.  The 4-shard
# speedup floor (1.5x) only applies on hosts with >= 4 available cores;
# smaller hosts record their honest core count and skip the gate.
SHARD_BENCH_SMOKE=1 cargo run --release -q -p bioopera-bench --bin shard_bench > /dev/null
test -s results/BENCH_shard.json || { echo "BENCH_shard.json missing"; exit 1; }

echo "==> darwin suite with SIMD force-disabled (portable fallback stays honest)"
BIOOPERA_SIMD=scalar cargo test -q -p bioopera-darwin

echo "All checks passed."
