//! Cross-crate integration tests: OCR text → engine execution, the
//! all-vs-all under trace-driven failures, the monitoring claim, and the
//! baseline comparison — each spanning several workspace crates.

use bioopera::cluster::loadgen::{load_curve, LoadModel};
use bioopera::cluster::monitor::{evaluate, MonitorConfig};
use bioopera::cluster::{Cluster, NodeSpec, SimTime, Trace, TraceEventKind};
use bioopera::darwin::dataset::DatasetConfig;
use bioopera::darwin::{PamFamily, SequenceDb};
use bioopera::engine::{InstanceStatus, Runtime, RuntimeConfig};
use bioopera::ocr;
use bioopera::store::MemDisk;
use bioopera::workloads::allvsall::{AllVsAllConfig, AllVsAllSetup};
use bioopera::workloads::baseline::{BaselineConfig, ScriptDriver};
use std::sync::Arc;

fn small_cluster() -> Cluster {
    Cluster::new(
        "it",
        (0..4)
            .map(|i| NodeSpec::new(format!("n{i}"), 2, 500, "linux"))
            .collect(),
    )
}

fn real_setup(entries: usize, teus: i64, seed: u64) -> AllVsAllSetup {
    let pam = Arc::new(PamFamily::default());
    let db = Arc::new(SequenceDb::generate(
        &DatasetConfig::small(entries, seed),
        &pam,
    ));
    AllVsAllSetup::real(
        db,
        pam,
        AllVsAllConfig {
            teus,
            ..Default::default()
        },
    )
}

fn run_allvsall(setup: &AllVsAllSetup, trace: &Trace) -> (Runtime<MemDisk>, u64) {
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_mins(5),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), small_cluster(), setup.library.clone(), cfg).unwrap();
    rt.register_template(&setup.chunk_template).unwrap();
    rt.register_template(&setup.template).unwrap();
    rt.install_trace(trace);
    let id = rt.submit("AllVsAll", setup.initial()).unwrap();
    rt.run_to_completion().unwrap();
    (rt, id)
}

#[test]
fn allvsall_templates_survive_ocr_text_and_still_run() {
    // Print both templates to OCR text, reparse, register the *reparsed*
    // versions, and run the full workload with them.
    let setup = real_setup(24, 3, 9);
    let top_text = ocr::to_ocr_text(&setup.template);
    let chunk_text = ocr::to_ocr_text(&setup.chunk_template);
    let top = ocr::parse_process(&top_text).unwrap();
    let chunk = ocr::parse_process(&chunk_text).unwrap();
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_mins(5),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), small_cluster(), setup.library.clone(), cfg).unwrap();
    rt.register_template(&chunk).unwrap();
    rt.register_template(&top).unwrap();
    let id = rt.submit("AllVsAll", setup.initial()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
}

#[test]
fn allvsall_results_unchanged_by_failure_trace() {
    let setup = real_setup(30, 4, 11);
    let (rt_clean, id_clean) = run_allvsall(&setup, &Trace::empty());
    let clean_digest = rt_clean.whiteboard(id_clean).unwrap()["digest"].clone();
    let clean_count = rt_clean.whiteboard(id_clean).unwrap()["match_count"].clone();

    let mut chaos = Trace::empty();
    chaos.push(SimTime::from_secs(4), TraceEventKind::NodeDown("n0".into()));
    chaos.push(SimTime::from_secs(40), TraceEventKind::NodeUp("n0".into()));
    chaos.push(SimTime::from_secs(6), TraceEventKind::NetworkDown);
    chaos.push(SimTime::from_secs(10), TraceEventKind::NetworkUp);
    chaos.push(SimTime::from_secs(12), TraceEventKind::DiskFull);
    chaos.push(SimTime::from_secs(18), TraceEventKind::DiskFreed);
    chaos.push(SimTime::from_secs(22), TraceEventKind::ServerCrash);
    chaos.push(SimTime::from_secs(26), TraceEventKind::ServerRecover);
    let (rt_chaos, id_chaos) = run_allvsall(&setup, &chaos);
    assert_eq!(
        rt_chaos.instance_status(id_chaos),
        Some(InstanceStatus::Completed)
    );
    assert_eq!(
        rt_chaos.whiteboard(id_chaos).unwrap()["digest"],
        clean_digest
    );
    assert_eq!(
        rt_chaos.whiteboard(id_chaos).unwrap()["match_count"],
        clean_count
    );
}

#[test]
fn allvsall_matches_are_mostly_real_homologies() {
    // Cross-check the workload against the dataset's ground truth.
    let pam = Arc::new(PamFamily::default());
    let db = Arc::new(SequenceDb::generate(&DatasetConfig::small(40, 23), &pam));
    let setup = AllVsAllSetup::real(
        Arc::clone(&db),
        pam,
        AllVsAllConfig {
            teus: 4,
            ..Default::default()
        },
    );
    let (rt, id) = run_allvsall(&setup, &Trace::empty());
    // Pull the refined matches out of the Alignment results.
    let results = rt.task_record(id, "Alignment").unwrap().outputs["results"].clone();
    let mut true_pos = 0usize;
    let mut false_pos = 0usize;
    for chunk in results.as_list().unwrap() {
        for m in chunk
            .get_path(&["refined"])
            .and_then(|v| v.as_list())
            .unwrap_or(&[])
        {
            let q = m.get_path(&["q"]).unwrap().as_int().unwrap() as u32;
            let s = m.get_path(&["s"]).unwrap().as_int().unwrap() as u32;
            if db.same_family(q, s) {
                true_pos += 1;
            } else {
                false_pos += 1;
            }
        }
    }
    assert!(true_pos > 0, "family members must be found");
    assert!(
        true_pos >= 10 * false_pos.max(1) || false_pos == 0,
        "matches should be dominated by real homologies: {true_pos} vs {false_pos}"
    );
}

#[test]
fn monitoring_claim_holds() {
    // §3.4: a configuration discarding >= 75 % of samples with <= ~2 %
    // mean error exists on realistic load curves.
    let truth = load_curve(77, 60_000, &LoadModel::default());
    let cfg = MonitorConfig {
        min_interval: 1,
        max_interval: 64,
        stability_cutoff: 0.02,
        report_cutoff: 0.04,
    };
    let r = evaluate(&truth, cfg);
    assert!(r.discard_fraction >= 0.6, "discard {}", r.discard_fraction);
    assert!(r.mean_abs_error_pct <= 3.0, "err {}", r.mean_abs_error_pct);
}

#[test]
fn engine_beats_script_baseline_on_interventions() {
    // Same chunks, same cluster, same failures: the script driver needs
    // humans; the engine does not.
    let works: Vec<f64> = (0..12)
        .map(|i| 3_600_000.0 + i as f64 * 120_000.0)
        .collect();
    let mut trace = Trace::empty();
    trace.push(
        SimTime::from_mins(30),
        TraceEventKind::NodeDown("n1".into()),
    );
    trace.push(SimTime::from_hours(18), TraceEventKind::NodeUp("n1".into()));
    trace.push(SimTime::from_hours(2), TraceEventKind::ServerCrash);
    trace.push(SimTime::from_hours(3), TraceEventKind::ServerRecover);
    let baseline =
        ScriptDriver::new(BaselineConfig::default()).run(small_cluster(), &trace, &works);
    assert!(baseline.manual_interventions >= 2, "{:?}", baseline);
    assert!(baseline.cpu_lost > SimTime::ZERO);

    // The engine on the same trace: completes, zero manual interventions,
    // and every failure auto-masked.
    let setup = real_setup(30, 12, 5);
    let (rt, id) = run_allvsall(&setup, &trace);
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
}

#[test]
fn store_contents_reflect_finished_instances_across_restart() {
    // End-to-end durability across a *process* restart (new Runtime over
    // the same disk): history and instance state readable, ids continue.
    let disk = MemDisk::new();
    let setup = real_setup(20, 2, 3);
    {
        let cfg = RuntimeConfig {
            heartbeat: SimTime::from_mins(5),
            ..Default::default()
        };
        let mut rt =
            Runtime::new(disk.clone(), small_cluster(), setup.library.clone(), cfg).unwrap();
        rt.register_template(&setup.chunk_template).unwrap();
        rt.register_template(&setup.template).unwrap();
        let id = rt.submit("AllVsAll", setup.initial()).unwrap();
        rt.run_to_completion().unwrap();
        assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    }
    // A brand-new runtime over the same disk sees everything.
    let cfg = RuntimeConfig::default();
    let rt2 = Runtime::new(disk, small_cluster(), setup.library.clone(), cfg).unwrap();
    let instances = rt2.instances();
    assert!(instances
        .iter()
        .any(|(_, s, t)| *s == InstanceStatus::Completed && t == "AllVsAll"));
    let history = rt2.awareness().all(rt2.store()).unwrap();
    assert!(history.iter().any(|e| e.kind == "instance.complete"));
    // And a fresh submission gets a fresh id.
    let max_id = instances.iter().map(|(id, _, _)| *id).max().unwrap();
    assert!(max_id >= 1);
}
