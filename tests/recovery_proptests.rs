//! The dependability property, property-tested: under an *arbitrary*
//! schedule of node crashes, network outages, server crashes and
//! suspensions, the all-vs-all completes with results identical to a
//! failure-free run — "resume the execution of the computation smoothly
//! when failures occur and avoid inconsistencies in the output data after
//! failures" (§3.4).

use bioopera::cluster::{Cluster, NodeSpec, SimTime, Trace, TraceEventKind};
use bioopera::darwin::dataset::DatasetConfig;
use bioopera::darwin::{PamFamily, SequenceDb};
use bioopera::engine::{InstanceStatus, Runtime, RuntimeConfig};
use bioopera::ocr::Value;
use bioopera::store::MemDisk;
use bioopera::workloads::allvsall::{AllVsAllConfig, AllVsAllSetup};
use proptest::prelude::*;
use std::sync::Arc;
use std::sync::OnceLock;

fn cluster() -> Cluster {
    Cluster::new(
        "pt",
        (0..3)
            .map(|i| NodeSpec::new(format!("n{i}"), 2, 500, "linux"))
            .collect(),
    )
}

/// Build the (expensive) setup once; alignments are deterministic so the
/// shared instance is safe across cases.
fn setup() -> &'static AllVsAllSetup {
    static SETUP: OnceLock<AllVsAllSetup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let pam = Arc::new(PamFamily::default());
        let db = Arc::new(SequenceDb::generate(&DatasetConfig::small(24, 77), &pam));
        AllVsAllSetup::real(
            db,
            pam,
            AllVsAllConfig {
                teus: 5,
                ..Default::default()
            },
        )
    })
}

fn run(trace: &Trace) -> (InstanceStatus, Value, Value) {
    let s = setup();
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_secs(20),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster(), s.library.clone(), cfg).unwrap();
    rt.register_template(&s.chunk_template).unwrap();
    rt.register_template(&s.template).unwrap();
    rt.install_trace(trace);
    let id = rt.submit("AllVsAll", s.initial()).unwrap();
    rt.run_to_completion().unwrap();
    let wb = rt.whiteboard(id).unwrap();
    (
        rt.instance_status(id).unwrap(),
        wb["digest"].clone(),
        wb["match_count"].clone(),
    )
}

fn clean_result() -> &'static (InstanceStatus, Value, Value) {
    static CLEAN: OnceLock<(InstanceStatus, Value, Value)> = OnceLock::new();
    CLEAN.get_or_init(|| run(&Trace::empty()))
}

#[derive(Debug, Clone)]
enum Fault {
    Node { node: u8, at_s: u16, down_s: u16 },
    Network { at_s: u16, down_s: u16 },
    Server { at_s: u16, down_s: u16 },
    Suspend { at_s: u16, for_s: u16 },
    Disk { at_s: u16, for_s: u16 },
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    // The clean run takes ~30 virtual seconds; faults land inside it.
    prop_oneof![
        (0u8..3, 1u16..40, 5u16..60).prop_map(|(node, at_s, down_s)| Fault::Node {
            node,
            at_s,
            down_s
        }),
        (1u16..40, 2u16..20).prop_map(|(at_s, down_s)| Fault::Network { at_s, down_s }),
        (1u16..40, 2u16..20).prop_map(|(at_s, down_s)| Fault::Server { at_s, down_s }),
        (1u16..40, 2u16..30).prop_map(|(at_s, for_s)| Fault::Suspend { at_s, for_s }),
        (1u16..40, 2u16..20).prop_map(|(at_s, for_s)| Fault::Disk { at_s, for_s }),
    ]
}

fn to_trace(faults: &[Fault]) -> Trace {
    let mut t = Trace::empty();
    // Interleave without overlapping same-kind windows by serializing each
    // kind on its own timeline offset; overlaps of *different* kinds are
    // exactly what we want to test.
    let mut suspended_depth = 0i32;
    for f in faults {
        match f {
            Fault::Node { node, at_s, down_s } => {
                let name = format!("n{node}");
                t.push(
                    SimTime::from_secs(*at_s as u64),
                    TraceEventKind::NodeDown(name.clone()),
                );
                t.push(
                    SimTime::from_secs((*at_s + *down_s) as u64),
                    TraceEventKind::NodeUp(name),
                );
            }
            Fault::Network { at_s, down_s } => {
                t.push(
                    SimTime::from_secs(*at_s as u64),
                    TraceEventKind::NetworkDown,
                );
                t.push(
                    SimTime::from_secs((*at_s + *down_s) as u64),
                    TraceEventKind::NetworkUp,
                );
            }
            Fault::Server { at_s, down_s } => {
                t.push(
                    SimTime::from_secs(*at_s as u64),
                    TraceEventKind::ServerCrash,
                );
                t.push(
                    SimTime::from_secs((*at_s + *down_s) as u64),
                    TraceEventKind::ServerRecover,
                );
            }
            Fault::Suspend { at_s, for_s } => {
                if suspended_depth == 0 {
                    t.push(
                        SimTime::from_secs(*at_s as u64),
                        TraceEventKind::OperatorSuspend,
                    );
                    t.push(
                        SimTime::from_secs((*at_s + *for_s) as u64),
                        TraceEventKind::OperatorResume,
                    );
                    suspended_depth += 1;
                }
            }
            Fault::Disk { at_s, for_s } => {
                t.push(SimTime::from_secs(*at_s as u64), TraceEventKind::DiskFull);
                t.push(
                    SimTime::from_secs((*at_s + *for_s) as u64),
                    TraceEventKind::DiskFreed,
                );
            }
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn any_fault_schedule_yields_identical_results(
        faults in prop::collection::vec(fault_strategy(), 1..5)
    ) {
        let (clean_status, clean_digest, clean_count) = clean_result().clone();
        prop_assert_eq!(clean_status, InstanceStatus::Completed);
        let trace = to_trace(&faults);
        let (status, digest, count) = run(&trace);
        prop_assert_eq!(status, InstanceStatus::Completed, "faults: {:?}", faults);
        prop_assert_eq!(digest, clean_digest, "digest diverged under {:?}", faults);
        prop_assert_eq!(count, clean_count, "match count diverged under {:?}", faults);
    }
}
