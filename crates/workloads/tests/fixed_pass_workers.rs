//! The work-stealing fixed pass must be worker-count-invariant: same
//! matches (order, scores, digest) and same cell count no matter how many
//! threads pull from the atomic queue or how their draws interleave.

use bioopera_darwin::dataset::DatasetConfig;
use bioopera_darwin::{Match, MatchSet, PamFamily, SequenceDb};
use bioopera_workloads::fixed_pass_with_workers;

fn digest_of(matches: &[Match]) -> u64 {
    let mut set = MatchSet::new();
    set.matches.extend(matches.iter().copied());
    set.sort_by_entry();
    set.digest()
}

#[test]
fn fixed_pass_matches_are_identical_across_worker_counts() {
    let pam = PamFamily::default();
    let db = SequenceDb::generate(
        &DatasetConfig {
            size: 24,
            seed: 9,
            mean_len: 60,
            ..DatasetConfig::small(24, 9)
        },
        &pam,
    );
    let entries: Vec<u32> = (0..db.len() as u32).collect();
    let threshold = 80.0;

    let (base_matches, base_cells, base_skipped) =
        fixed_pass_with_workers(&db, &pam, &entries, threshold, 1);
    assert!(!base_matches.is_empty(), "workload should produce matches");
    let base_digest = digest_of(&base_matches);

    for workers in [2usize, 3, 5, 13, 64] {
        let (matches, cells, skipped) =
            fixed_pass_with_workers(&db, &pam, &entries, threshold, workers);
        assert_eq!(cells, base_cells, "cells differ at {workers} workers");
        assert_eq!(
            skipped, base_skipped,
            "skipped cells differ at {workers} workers"
        );
        assert_eq!(
            matches.len(),
            base_matches.len(),
            "count differs at {workers} workers"
        );
        // Byte-level identity, not just digest: same order, same scores.
        for (a, b) in base_matches.iter().zip(&matches) {
            assert_eq!(a.query, b.query);
            assert_eq!(a.subject, b.subject);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        assert_eq!(digest_of(&matches), base_digest);
    }
}

#[test]
fn fixed_pass_handles_partial_and_empty_queues() {
    let pam = PamFamily::default();
    let db = SequenceDb::generate(
        &DatasetConfig {
            size: 12,
            seed: 3,
            mean_len: 50,
            ..DatasetConfig::small(12, 3)
        },
        &pam,
    );
    // Empty queue: nothing to do at any worker count.
    let (m, c, sk) = fixed_pass_with_workers(&db, &pam, &[], 80.0, 4);
    assert!(m.is_empty());
    assert_eq!(c, 0);
    assert_eq!(sk, 0);
    // A partial, non-contiguous queue is still worker-count-invariant.
    let entries = vec![7u32, 0, 11, 3];
    let (m1, c1, s1) = fixed_pass_with_workers(&db, &pam, &entries, 40.0, 1);
    let (m4, c4, s4) = fixed_pass_with_workers(&db, &pam, &entries, 40.0, 4);
    assert_eq!(c1, c4);
    assert_eq!(s1, s4);
    assert_eq!(m1.len(), m4.len());
    for (a, b) in m1.iter().zip(&m4) {
        assert_eq!(
            (a.query, a.subject, a.score.to_bits()),
            (b.query, b.subject, b.score.to_bits())
        );
    }
    // The last entry aligns against nothing ahead of it only when it is
    // the database's final entry; entry 11 here contributes zero pairs.
    let (m_last, c_last, _) = fixed_pass_with_workers(&db, &pam, &[11], 40.0, 2);
    assert!(m_last.is_empty());
    assert_eq!(c_last, 0);
}
