//! The consolidated [`RunReport`] must agree with the awareness index it
//! is derived from, survive a JSON round-trip, and capture the run's
//! failure story (crash events, masked system failures, rollup series).

use bioopera_cluster::{Cluster, NodeSpec, SimTime, Trace, TraceEventKind};
use bioopera_core::{Runtime, RuntimeConfig};
use bioopera_store::MemDisk;
use bioopera_workloads::allvsall::{AllVsAllConfig, AllVsAllSetup};
use std::collections::BTreeMap;

#[test]
fn run_report_is_consistent_and_roundtrips() {
    let setup = AllVsAllSetup::synthetic(
        2_000,
        200,
        7,
        AllVsAllConfig {
            teus: 12,
            ..Default::default()
        },
    );
    let cluster = Cluster::new(
        "lab",
        vec![
            NodeSpec::new("n1", 4, 500, "linux"),
            NodeSpec::new("n2", 4, 500, "linux"),
            NodeSpec::new("n3", 2, 500, "linux"),
        ],
    );
    // The whole run takes ~20 virtual minutes; crash n2 mid-run.
    let mut trace = Trace::empty();
    trace
        .push_labeled(
            SimTime::from_mins(5),
            TraceEventKind::NodeDown("n2".into()),
            "node n2 crashes",
        )
        .push_labeled(
            SimTime::from_mins(12),
            TraceEventKind::NodeUp("n2".into()),
            "node n2 rejoins",
        );
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_mins(2),
        ..Default::default()
    };
    let mut rt =
        Runtime::new(MemDisk::new(), cluster, setup.library.clone(), cfg).expect("runtime");
    rt.register_template(&setup.chunk_template).expect("chunk");
    rt.register_template(&setup.template).expect("top");
    rt.install_trace(&trace);
    let id = rt.submit("AllVsAll", setup.initial()).expect("submit");
    rt.run_to_completion().expect("run");
    assert_eq!(
        rt.instance_status(id),
        Some(bioopera_core::InstanceStatus::Completed)
    );

    let report = rt.run_report(SimTime::from_mins(5));
    let idx = rt.awareness().index();

    // Counters mirror the index exactly.
    assert_eq!(report.events, idx.len() as u64);
    for (kind, n) in idx.counts_by_kind() {
        assert_eq!(report.counters.get(&kind), Some(&(n as u64)), "kind {kind}");
    }
    // The crash was recorded and masked: system failures without any
    // instance failure.
    assert_eq!(report.counters.get("node.crash"), Some(&1));
    assert_eq!(report.counters.get("node.recover"), Some(&1));
    assert!(report.counters.get("task.systemfail").copied().unwrap_or(0) >= 1);
    assert_eq!(report.counters.get("instance.abort"), None);
    // Histograms cover exactly the started/ended tasks.
    assert_eq!(
        report.task_run_ms.count(),
        report.counters.get("task.end").copied().unwrap_or(0)
    );
    assert_eq!(
        report.task_queue_ms.count(),
        report.counters.get("task.start").copied().unwrap_or(0)
    );
    assert!(report.peak_in_flight >= 2, "parallel TEUs should overlap");
    assert!(report.total_cpu_ms > 0.0);
    // The rollup covers the whole run in 5-minute bins.
    assert!(!report.series.is_empty());
    let last = report.series.last().unwrap();
    assert!(last.end_ms >= report.taken_at_ms);
    assert!(report.series.iter().any(|b| b.utilization > 0.0));
    // The labeled event log came through with its trace labels.
    assert!(report
        .event_log
        .iter()
        .any(|(_, msg)| msg.contains("node n2")));

    // JSON round-trip is lossless.
    let json = serde_json::to_string(&report).expect("serialize");
    let back: bioopera_core::RunReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, report);

    // A second identical run produces an identical report (determinism).
    let mut rt2 = Runtime::new(
        MemDisk::new(),
        Cluster::new(
            "lab",
            vec![
                NodeSpec::new("n1", 4, 500, "linux"),
                NodeSpec::new("n2", 4, 500, "linux"),
                NodeSpec::new("n3", 2, 500, "linux"),
            ],
        ),
        setup.library.clone(),
        RuntimeConfig {
            heartbeat: SimTime::from_mins(2),
            ..Default::default()
        },
    )
    .expect("runtime 2");
    rt2.register_template(&setup.chunk_template).expect("chunk");
    rt2.register_template(&setup.template).expect("top");
    rt2.install_trace(&trace);
    let init: BTreeMap<_, _> = setup.initial();
    rt2.submit("AllVsAll", init).expect("submit 2");
    rt2.run_to_completion().expect("run 2");
    assert_eq!(rt2.run_report(SimTime::from_mins(5)), report);
}
