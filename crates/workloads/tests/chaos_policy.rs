//! Dependability-policy chaos tests over the all-vs-all workload.
//!
//! * The seeded flaky-node scenario must complete within the retry
//!   ceiling for any seed (the livelock fix, end to end).
//! * Any fault trace whose faults eventually heal must leave the
//!   all-vs-all *result* untouched: same match count, same digest as the
//!   fault-free oracle run.  Dependability is about masking failures, not
//!   about changing answers.

use bioopera_cluster::{Cluster, NodeSpec, SimTime, Trace, TraceEventKind};
use bioopera_core::state::InstanceStatus;
use bioopera_core::{DependabilityConfig, Runtime, RuntimeConfig};
use bioopera_ocr::value::Value;
use bioopera_store::MemDisk;
use bioopera_workloads::allvsall::{AllVsAllConfig, AllVsAllSetup};
use bioopera_workloads::chaos::{flaky_node_run, ChaosConfig};
use proptest::prelude::*;

const WORKLOAD_SEED: u64 = 11;
const NODES: [&str; 3] = ["w1", "w2", "w3"];

fn pool() -> Cluster {
    Cluster::new(
        "pool",
        NODES
            .iter()
            .map(|n| NodeSpec::new(*n, 2, 500, "linux"))
            .collect(),
    )
}

/// Run the small all-vs-all under `trace` and return (match_count, digest).
fn run_allvsall(trace: &Trace) -> (Value, Value) {
    let setup = AllVsAllSetup::synthetic(
        1_000,
        120,
        WORKLOAD_SEED,
        AllVsAllConfig {
            teus: 4,
            ..Default::default()
        },
    );
    // Three nodes and `poison_distinct_nodes: 4`: a task can never
    // collect enough distinct killers to be escalated, so any healing
    // fault schedule must end in completion, not abort.
    let dep = DependabilityConfig {
        poison_distinct_nodes: 4,
        ..Default::default()
    };
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_mins(2),
        dependability: dep,
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), pool(), setup.library.clone(), cfg).unwrap();
    rt.register_template(&setup.chunk_template).unwrap();
    rt.register_template(&setup.template).unwrap();
    rt.install_trace(trace);
    let id = rt.submit("AllVsAll", setup.initial()).unwrap();
    rt.run_to_completion().expect("run under faults");
    assert_eq!(
        rt.instance_status(id),
        Some(InstanceStatus::Completed),
        "healing fault trace must still complete"
    );
    let wb = rt.whiteboard(id).unwrap();
    (wb["match_count"].clone(), wb["digest"].clone())
}

/// One fault plus its guaranteed recovery.
#[derive(Debug, Clone)]
struct Fault {
    kind: u8,
    node: usize,
    at_ms: u64,
    heal_ms: u64,
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    (
        0u8..3,
        0usize..NODES.len(),
        1u64..600_000,
        1_000u64..300_000,
    )
        .prop_map(|(kind, node, at_ms, heal_ms)| Fault {
            kind,
            node,
            at_ms,
            heal_ms,
        })
}

fn trace_of(faults: &[Fault]) -> Trace {
    let mut trace = Trace::empty();
    for f in faults {
        let node = NODES[f.node].to_string();
        let at = SimTime::from_millis(f.at_ms);
        let heal = SimTime::from_millis(f.at_ms + f.heal_ms);
        match f.kind {
            0 => {
                trace
                    .push(at, TraceEventKind::NodeDown(node.clone()))
                    .push(heal, TraceEventKind::NodeUp(node));
            }
            1 => {
                // Finite kill budget: the fault wears off by itself.
                trace.push(
                    at,
                    TraceEventKind::NodeFlaky {
                        node,
                        kills: 1 + (f.heal_ms % 3) as u32,
                    },
                );
            }
            _ => {
                trace
                    .push(at, TraceEventKind::NodePartition(node.clone()))
                    .push(heal, TraceEventKind::NodeRejoin(node));
            }
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn healing_fault_traces_preserve_the_allvsall_result(
        faults in prop::collection::vec(fault_strategy(), 0..4)
    ) {
        let oracle = run_allvsall(&Trace::empty());
        let faulty = run_allvsall(&trace_of(&faults));
        prop_assert_eq!(oracle, faulty, "faults changed the result");
    }

    #[test]
    fn flaky_node_scenario_is_bounded_for_any_seed(seed in 0u64..1_000) {
        let out = flaky_node_run(&ChaosConfig { seed, ..Default::default() });
        prop_assert!(out.completed, "seed {} did not complete: {:?}", seed, out);
        prop_assert!(out.within_budget(), "seed {} blew the ceiling: {:?}", seed, out);
        prop_assert!(out.quarantines >= 1, "seed {} never quarantined: {:?}", seed, out);
    }
}
