//! The all-vs-all process (paper §4, Fig. 3).
//!
//! Tasks, exactly as in the figure:
//!
//! 1. **User Input** — supplies the dataset name, result locations and the
//!    optional *queue file*; "its absence or presence determines which of
//!    the two possible successor tasks will be executed".
//! 2. **Queue Generation** — produces the full entry list when no queue
//!    file was given.
//! 3. **Task Preprocessing** — partitions the queue into `n` task
//!    execution units (TEUs).
//! 4. **Alignment** (parallel block, body = subprocess `AlignChunk`) —
//!    per TEU: *Fixed PAM Alignment* (fast pass at PAM 120) then
//!    *PAM-param Refinement* (re-align every match across the PAM ladder).
//! 5. **Merge by Entry #** — master file sorted by entry number.
//! 6. **Merge by PAM distance** — matches bucketed by refined distance.
//!
//! Two modes share the same templates:
//!
//! * [`AllVsAllMode::Real`] — alignments actually execute against a
//!   [`SequenceDb`]; used by the granularity experiment (Fig. 4), the
//!   examples and the recovery-equivalence tests.
//! * [`AllVsAllMode::Synthetic`] — TEU costs and match counts are derived
//!   from the same cost model over a deterministic length distribution;
//!   used for SP38-scale runs (Table 1, Figs. 5/6) where running 2.8×10⁹
//!   alignments for real would add nothing to the systems result.
//!
//! Redundant comparisons are ruled out across TEUs (footnote 2 of the
//! paper): entry `e` is aligned only against entries `f > e`, so with the
//! queue split into contiguous ranges early TEUs carry more work — the
//! size imbalance behind the paper's straggler explanation for segment S2
//! of Figure 4.

use bioopera_core::{ActivityLibrary, ProgramOutput};
use bioopera_darwin::align::{align_score_many, AlignParams, AlignScratch, ScoreOnly};
use bioopera_darwin::pam::{PamFamily, FIXED_PAM};
use bioopera_darwin::refine::refine_pam_distance_banded;
use bioopera_darwin::{CostModel, Match, MatchSet, SequenceDb};
use bioopera_ocr::model::{ParallelBody, TypeTag};
use bioopera_ocr::value::Value;
use bioopera_ocr::{Expr, ProcessBuilder, ProcessTemplate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Workload configuration shared by both modes.
#[derive(Debug, Clone)]
pub struct AllVsAllConfig {
    /// Number of task execution units the Preprocessing step creates.
    pub teus: i64,
    /// Similarity threshold for a pair to count as a match.
    pub threshold: f32,
    /// Cost model (cells → reference CPU, Darwin init, dispatch overhead).
    pub cost: CostModel,
    /// Optional user-supplied queue file (entry indices).  When present,
    /// Queue Generation is skipped — the paper's conditional branch.
    pub queue_file: Option<Vec<i64>>,
}

impl Default for AllVsAllConfig {
    fn default() -> Self {
        AllVsAllConfig {
            teus: 25,
            threshold: 80.0,
            cost: CostModel::default(),
            queue_file: None,
        }
    }
}

/// How TEU work is produced.
#[derive(Clone)]
pub enum AllVsAllMode {
    /// Real alignments against a generated database.
    Real {
        /// The sequence database.
        db: Arc<SequenceDb>,
        /// The PAM family used for scoring and refinement.
        pam: Arc<PamFamily>,
    },
    /// Cost-model mode over a deterministic length distribution.
    Synthetic {
        /// Number of database entries (SP38: 75 458).
        n: usize,
        /// Per-entry lengths (seeded, SwissProt-like).
        lengths: Arc<Vec<u32>>,
        /// Suffix sums of lengths (`suffix[e] = Σ_{f ≥ e} len_f`).
        suffix: Arc<Vec<f64>>,
        /// Match rate per pair.
        match_rate: f64,
    },
}

impl AllVsAllMode {
    /// Number of entries in the database.
    pub fn n_entries(&self) -> usize {
        match self {
            AllVsAllMode::Real { db, .. } => db.len(),
            AllVsAllMode::Synthetic { n, .. } => *n,
        }
    }
}

/// A ready-to-register workload: both templates plus the activity library.
pub struct AllVsAllSetup {
    /// The top-level process.
    pub template: ProcessTemplate,
    /// The per-TEU subprocess.
    pub chunk_template: ProcessTemplate,
    /// The programs behind every activity.
    pub library: ActivityLibrary,
    /// The mode (for harness queries).
    pub mode: AllVsAllMode,
    /// The configuration.
    pub config: AllVsAllConfig,
}

impl AllVsAllSetup {
    /// Real-compute mode.
    pub fn real(db: Arc<SequenceDb>, pam: Arc<PamFamily>, config: AllVsAllConfig) -> Self {
        let mode = AllVsAllMode::Real { db, pam };
        Self::build(mode, config)
    }

    /// Cost-model mode with `n` entries of SwissProt-like lengths.
    pub fn synthetic(n: usize, mean_len: usize, seed: u64, config: AllVsAllConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let lengths: Vec<u32> = (0..n)
            .map(|_| {
                let u: f64 = (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>()) / 3.0;
                ((mean_len as f64 * (1.6 * (u - 0.5)).exp()).round() as u32).max(30)
            })
            .collect();
        let mut suffix = vec![0.0f64; n + 1];
        for e in (0..n).rev() {
            suffix[e] = suffix[e + 1] + lengths[e] as f64;
        }
        let mode = AllVsAllMode::Synthetic {
            n,
            lengths: Arc::new(lengths),
            suffix: Arc::new(suffix),
            match_rate: config.cost.match_rate,
        };
        Self::build(mode, config)
    }

    fn build(mode: AllVsAllMode, config: AllVsAllConfig) -> Self {
        let template = top_template();
        let chunk_template = chunk_template();
        let library = build_library(&mode, &config);
        AllVsAllSetup {
            template,
            chunk_template,
            library,
            mode,
            config,
        }
    }

    /// The initial whiteboard for `submit`.
    pub fn initial(&self) -> BTreeMap<String, Value> {
        let mut init = BTreeMap::new();
        init.insert("db_name".to_string(), Value::from("sp38-synthetic"));
        init.insert("teus".to_string(), Value::Int(self.config.teus));
        if let Some(q) = &self.config.queue_file {
            init.insert("user_queue".to_string(), Value::int_list(q.iter().copied()));
        }
        init
    }
}

/// The top-level template (Fig. 3).
pub fn top_template() -> ProcessTemplate {
    ProcessBuilder::new("AllVsAll")
        .whiteboard_field("db_name", TypeTag::Str)
        .whiteboard_field("user_queue", TypeTag::List)
        .whiteboard_default("teus", TypeTag::Int, Value::Int(25))
        .whiteboard_field("match_count", TypeTag::Int)
        .whiteboard_field("digest", TypeTag::Str)
        .whiteboard_field("pam_buckets", TypeTag::List)
        .activity("UserInput", "ui.collect", |t| {
            t.input("db_name", TypeTag::Str)
                .input("user_queue", TypeTag::List)
                .output("db_name", TypeTag::Str)
                .output("queue_file", TypeTag::List)
                .output("output_files", TypeTag::List)
        })
        .activity("QueueGeneration", "darwin.queue_gen", |t| {
            t.input("db_name", TypeTag::Str)
                .output("queue_file", TypeTag::List)
                .retries(2)
        })
        .activity("Preprocessing", "darwin.partition", |t| {
            t.input("queue_file", TypeTag::List)
                .input("teus", TypeTag::Int)
                .output("partition", TypeTag::List)
                .retries(2)
        })
        .parallel(
            "Alignment",
            "partition",
            ParallelBody::Subprocess("AlignChunk".into()),
            "results",
            |t| t.retries(3),
        )
        .activity("MergeByEntry", "darwin.merge_entry", |t| {
            t.input("results", TypeTag::List)
                .output("match_count", TypeTag::Int)
                .output("digest", TypeTag::Str)
                .retries(2)
        })
        .activity("MergeByPam", "darwin.merge_pam", |t| {
            t.input("results", TypeTag::List)
                .output("pam_buckets", TypeTag::List)
                .retries(2)
        })
        .block("Head", ["UserInput", "QueueGeneration", "Preprocessing"])
        .connect_when(
            "UserInput",
            "QueueGeneration",
            Expr::undefined("UserInput.queue_file"),
        )
        .connect_when(
            "UserInput",
            "Preprocessing",
            Expr::defined("UserInput.queue_file"),
        )
        .connect("QueueGeneration", "Preprocessing")
        .connect("Preprocessing", "Alignment")
        .connect("Alignment", "MergeByEntry")
        .connect("Alignment", "MergeByPam")
        .flow_from_whiteboard("db_name", "UserInput", "db_name")
        .flow_from_whiteboard("user_queue", "UserInput", "user_queue")
        .flow_to_whiteboard("UserInput", "db_name", "db_name")
        .flow_to_task("UserInput", "db_name", "QueueGeneration", "db_name")
        .flow_to_task("UserInput", "queue_file", "Preprocessing", "queue_file")
        .flow_to_task(
            "QueueGeneration",
            "queue_file",
            "Preprocessing",
            "queue_file",
        )
        .flow_from_whiteboard("teus", "Preprocessing", "teus")
        .flow_to_task("Preprocessing", "partition", "Alignment", "partition")
        .flow_to_task("Alignment", "results", "MergeByEntry", "results")
        .flow_to_task("Alignment", "results", "MergeByPam", "results")
        .flow_to_whiteboard("MergeByEntry", "match_count", "match_count")
        .flow_to_whiteboard("MergeByEntry", "digest", "digest")
        .flow_to_whiteboard("MergeByPam", "pam_buckets", "pam_buckets")
        .build()
        .expect("all-vs-all template is valid")
}

/// The per-TEU subprocess: Fixed PAM Alignment → PAM-param Refinement.
pub fn chunk_template() -> ProcessTemplate {
    ProcessBuilder::new("AlignChunk")
        .whiteboard_field("item", TypeTag::Map)
        .whiteboard_field("index", TypeTag::Int)
        .whiteboard_field("refined", TypeTag::List)
        .whiteboard_field("match_count", TypeTag::Int)
        .activity("FixedPamAlignment", "darwin.align_fixed", |t| {
            t.input("item", TypeTag::Map)
                .output("matches", TypeTag::List)
                .output("synthetic_count", TypeTag::Int)
                .output("synthetic_cells", TypeTag::Float)
                .retries(2)
        })
        .activity("PamRefinement", "darwin.refine", |t| {
            t.input("matches", TypeTag::List)
                .input("synthetic_count", TypeTag::Int)
                .output("refined", TypeTag::List)
                .output("match_count", TypeTag::Int)
                .retries(2)
        })
        .connect("FixedPamAlignment", "PamRefinement")
        .flow_from_whiteboard("item", "FixedPamAlignment", "item")
        .flow_to_task("FixedPamAlignment", "matches", "PamRefinement", "matches")
        .flow_to_task(
            "FixedPamAlignment",
            "synthetic_count",
            "PamRefinement",
            "synthetic_count",
        )
        .flow_to_whiteboard("PamRefinement", "refined", "refined")
        .flow_to_whiteboard("PamRefinement", "match_count", "match_count")
        .build()
        .expect("chunk template is valid")
}

fn chunk_value(id: usize, entries: &[i64]) -> Value {
    Value::map_from([
        ("id", Value::Int(id as i64)),
        ("entries", Value::int_list(entries.iter().copied())),
    ])
}

fn chunk_entries(item: &Value) -> Result<Vec<u32>, String> {
    item.get_path(&["entries"])
        .and_then(|v| v.as_list())
        .map(|l| {
            l.iter()
                .filter_map(|x| x.as_int().map(|i| i as u32))
                .collect()
        })
        .ok_or_else(|| "chunk item has no entries".to_string())
}

/// Build the activity library for the given mode.
pub fn build_library(mode: &AllVsAllMode, config: &AllVsAllConfig) -> ActivityLibrary {
    let mut lib = ActivityLibrary::new();
    let cost = config.cost;
    let threshold = config.threshold;
    let n_entries = mode.n_entries() as i64;

    // ---- User Input: echo the dataset and the optional queue file.
    lib.register("ui.collect", move |inputs| {
        let db = inputs
            .get("db_name")
            .cloned()
            .unwrap_or(Value::from("sp38"));
        let queue = inputs.get("user_queue").cloned().unwrap_or(Value::Null);
        let mut out = BTreeMap::new();
        out.insert("db_name".to_string(), db);
        out.insert("queue_file".to_string(), queue);
        out.insert(
            "output_files".to_string(),
            Value::from(vec!["master_file", "pam_sorted_alignment_file"]),
        );
        Ok(ProgramOutput {
            outputs: out,
            cost_ref_ms: 100.0,
        })
    });

    // ---- Queue Generation: the complete entry list [0, N).
    lib.register("darwin.queue_gen", move |_inputs| {
        Ok(ProgramOutput::from_fields(
            [("queue_file", Value::int_list(0..n_entries))],
            2_000.0,
        ))
    });

    // ---- Preprocessing: contiguous partition into `teus` chunks.
    lib.register("darwin.partition", move |inputs| {
        let queue: Vec<i64> = inputs
            .get("queue_file")
            .and_then(|v| v.as_list())
            .map(|l| l.iter().filter_map(|x| x.as_int()).collect())
            .ok_or_else(|| "partition needs a queue_file".to_string())?;
        let teus = inputs
            .get("teus")
            .and_then(|v| v.as_int())
            .unwrap_or(25)
            .max(1) as usize;
        let teus = teus.min(queue.len().max(1));
        let base = queue.len() / teus;
        let extra = queue.len() % teus;
        let mut chunks = Vec::with_capacity(teus);
        let mut off = 0usize;
        for id in 0..teus {
            let size = base + usize::from(id < extra);
            chunks.push(chunk_value(id, &queue[off..off + size]));
            off += size;
        }
        Ok(ProgramOutput::from_fields(
            [("partition", Value::List(chunks))],
            1_000.0 + queue.len() as f64 * 0.01,
        ))
    });

    // ---- Fixed PAM Alignment + PAM refinement: mode-specific.
    match mode {
        AllVsAllMode::Real { db, pam } => {
            let db_fixed = Arc::clone(db);
            let pam_fixed = Arc::clone(pam);
            lib.register("darwin.align_fixed", move |inputs| {
                let entries = chunk_entries(
                    inputs
                        .get("item")
                        .ok_or_else(|| "missing item".to_string())?,
                )?;
                // Only *computed* cells feed the cost model; provably
                // skipped work (prune) costs nothing.
                let (matches, cells, _skipped) =
                    fixed_pass(&db_fixed, &pam_fixed, &entries, threshold);
                let out_matches: Vec<Value> = matches
                    .iter()
                    .map(|m| {
                        Value::map_from([
                            ("q", Value::Int(m.query as i64)),
                            ("s", Value::Int(m.subject as i64)),
                            ("score", Value::Float(m.score as f64)),
                        ])
                    })
                    .collect();
                Ok(ProgramOutput::from_fields(
                    [("matches", Value::List(out_matches))],
                    cost.cells_ms(cells) + cost.darwin_init_ms,
                ))
            });
            let db_ref = Arc::clone(db);
            let pam_ref = Arc::clone(pam);
            lib.register("darwin.refine", move |inputs| {
                let matches = inputs
                    .get("matches")
                    .and_then(|v| v.as_list())
                    .ok_or_else(|| "refine needs matches".to_string())?;
                let mut refined = Vec::with_capacity(matches.len());
                let mut cells = 0u64;
                let params = AlignParams::default();
                let mut scratch = AlignScratch::new();
                for m in matches {
                    let q = m.get_path(&["q"]).and_then(|v| v.as_int()).unwrap_or(0) as u32;
                    let s = m.get_path(&["s"]).and_then(|v| v.as_int()).unwrap_or(0) as u32;
                    // Banded scan: identical argmax, but provably-losing
                    // ladder cells are skipped and (honestly) cost nothing.
                    let r = refine_pam_distance_banded(
                        db_ref.get(q),
                        db_ref.get(s),
                        &pam_ref,
                        &params,
                        &mut scratch,
                    );
                    cells += r.cells;
                    refined.push(Value::map_from([
                        ("q", Value::Int(q as i64)),
                        ("s", Value::Int(s as i64)),
                        (
                            "score",
                            m.get_path(&["score"]).cloned().unwrap_or(Value::Null),
                        ),
                        ("rscore", Value::Float(r.score as f64)),
                        ("pam", Value::Int(r.pam_distance as i64)),
                    ]));
                }
                let count = refined.len() as i64;
                Ok(ProgramOutput::from_fields(
                    [
                        ("refined", Value::List(refined)),
                        ("match_count", Value::Int(count)),
                    ],
                    cost.cells_ms(cells) + cost.darwin_init_ms,
                ))
            });
        }
        AllVsAllMode::Synthetic {
            n,
            lengths,
            suffix,
            match_rate,
        } => {
            let n = *n;
            let match_rate = *match_rate;
            let lengths_fixed = Arc::clone(lengths);
            let suffix_fixed = Arc::clone(suffix);
            lib.register("darwin.align_fixed", move |inputs| {
                let entries = chunk_entries(
                    inputs
                        .get("item")
                        .ok_or_else(|| "missing item".to_string())?,
                )?;
                let mut cells = 0.0f64;
                let mut pairs = 0.0f64;
                for &e in &entries {
                    let e = e as usize;
                    if e + 1 < n {
                        cells += lengths_fixed[e] as f64 * suffix_fixed[e + 1];
                        pairs += (n - e - 1) as f64;
                    }
                }
                let match_count = (pairs * match_rate).round() as i64;
                Ok(ProgramOutput::from_fields(
                    [
                        ("matches", Value::List(Vec::new())),
                        ("synthetic_count", Value::Int(match_count)),
                        ("synthetic_cells", Value::Float(cells)),
                    ],
                    cells * cost.cell_ns / 1e6 + cost.darwin_init_ms,
                ))
            });
            let mean_len: f64 = suffix[0] / n as f64;
            let ladder = cost.refine_ladder as f64;
            lib.register("darwin.refine", move |inputs| {
                let count = inputs
                    .get("synthetic_count")
                    .and_then(|v| v.as_int())
                    .unwrap_or(0);
                let refine_cells = count as f64 * ladder * mean_len * mean_len;
                Ok(ProgramOutput::from_fields(
                    [
                        ("refined", Value::List(Vec::new())),
                        ("match_count", Value::Int(count)),
                    ],
                    refine_cells * cost.cell_ns / 1e6 + cost.darwin_init_ms,
                ))
            });
        }
    }

    // ---- Merge by Entry #: canonical master file + digest.
    lib.register("darwin.merge_entry", move |inputs| {
        let results = inputs
            .get("results")
            .and_then(|v| v.as_list())
            .ok_or_else(|| "merge needs results".to_string())?;
        let mut set = MatchSet::new();
        let mut synthetic_total = 0i64;
        for r in results {
            if let Some(list) = r.get_path(&["refined"]).and_then(|v| v.as_list()) {
                for m in list {
                    let q = m.get_path(&["q"]).and_then(|v| v.as_int()).unwrap_or(0) as u32;
                    let s = m.get_path(&["s"]).and_then(|v| v.as_int()).unwrap_or(0) as u32;
                    let score = m
                        .get_path(&["score"])
                        .and_then(|v| v.as_float())
                        .unwrap_or(0.0) as f32;
                    let rscore = m
                        .get_path(&["rscore"])
                        .and_then(|v| v.as_float())
                        .unwrap_or(0.0) as f32;
                    let pam = m.get_path(&["pam"]).and_then(|v| v.as_int()).unwrap_or(0) as u32;
                    set.matches.push(Match {
                        query: q,
                        subject: s,
                        score,
                        refined_score: rscore,
                        pam_distance: pam,
                    });
                }
            }
            synthetic_total += r
                .get_path(&["match_count"])
                .and_then(|v| v.as_int())
                .unwrap_or(0);
        }
        set.sort_by_entry();
        let (count, digest) = if set.is_empty() {
            (synthetic_total, format!("synthetic:{synthetic_total}"))
        } else {
            (set.len() as i64, format!("{:016x}", set.digest()))
        };
        Ok(ProgramOutput::from_fields(
            [
                ("match_count", Value::Int(count)),
                ("digest", Value::from(digest)),
            ],
            2_000.0 + count as f64 * 0.005,
        ))
    });

    // ---- Merge by PAM distance: bucket counts per refined distance.
    lib.register("darwin.merge_pam", move |inputs| {
        let results = inputs
            .get("results")
            .and_then(|v| v.as_list())
            .ok_or_else(|| "merge needs results".to_string())?;
        let mut buckets: BTreeMap<i64, i64> = BTreeMap::new();
        for r in results {
            if let Some(list) = r.get_path(&["refined"]).and_then(|v| v.as_list()) {
                for m in list {
                    let pam = m.get_path(&["pam"]).and_then(|v| v.as_int()).unwrap_or(0);
                    *buckets.entry(pam).or_default() += 1;
                }
            }
        }
        let out: Vec<Value> = buckets
            .into_iter()
            .map(|(pam, count)| {
                Value::map_from([("pam", Value::Int(pam)), ("count", Value::Int(count))])
            })
            .collect();
        Ok(ProgramOutput::from_fields(
            [("pam_buckets", Value::List(out))],
            2_000.0,
        ))
    });

    lib
}

/// The fixed-PAM pass over a chunk: entry `e` vs every `f > e`, threaded
/// across available cores (real wall-clock only; the *virtual* cost comes
/// from the exact DP cell count, which is deterministic).
fn fixed_pass(
    db: &SequenceDb,
    pam: &PamFamily,
    entries: &[u32],
    threshold: f32,
) -> (Vec<Match>, u64, u64) {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    fixed_pass_with_workers(db, pam, entries, threshold, workers)
}

/// [`fixed_pass`] with an explicit worker count, exposed so tests can
/// assert the result is worker-count-invariant.
///
/// Entries are handed out one at a time through an atomic counter
/// (work-stealing), so a worker that draws a short entry immediately
/// grabs the next one instead of idling behind a pre-assigned chunk —
/// entry `e` aligns against all `f > e`, so contiguous chunking leaves
/// the last worker with far fewer cells than the first.  Each worker
/// holds one [`AlignScratch`]: per entry, one query profile build
/// amortized over the whole `f > e` batch, zero per-pair allocation.
/// Results are keyed by queue position and merged in order, so the
/// returned matches are byte-identical regardless of worker count or
/// scheduling interleaving.  Returns `(matches, cells, cells_skipped)`:
/// DP cells computed and DP cells provably skipped (the prune bound),
/// so cost accounting stays honest when `prune` is enabled.
pub fn fixed_pass_with_workers(
    db: &SequenceDb,
    pam: &PamFamily,
    entries: &[u32],
    threshold: f32,
    workers: usize,
) -> (Vec<Match>, u64, u64) {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let params = AlignParams::default();
    let matrix = pam.nearest(FIXED_PAM);
    let n = db.len() as u32;
    let workers = workers.clamp(1, entries.len().max(1));
    let next = AtomicUsize::new(0);
    let mut results: Vec<(usize, Vec<Match>, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut scratch = AlignScratch::new();
                    let mut scores: Vec<ScoreOnly> = Vec::new();
                    let mut done: Vec<(usize, Vec<Match>, u64, u64)> = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= entries.len() {
                            break;
                        }
                        let e = entries[k];
                        let mut matches = Vec::new();
                        let mut cells = 0u64;
                        let mut skipped = 0u64;
                        if e + 1 < n {
                            align_score_many(
                                db.get(e),
                                ((e + 1)..n).map(|f| db.get(f)),
                                matrix,
                                &params,
                                Some(threshold),
                                &mut scratch,
                                &mut scores,
                            );
                            for (off, r) in scores.iter().enumerate() {
                                cells += r.cells;
                                skipped += r.cells_skipped;
                                if r.score >= threshold {
                                    matches.push(Match::unrefined(e, e + 1 + off as u32, r.score));
                                }
                            }
                        }
                        done.push((k, matches, cells, skipped));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("alignment worker panicked"))
            .collect()
    });
    // Deterministic output: restore queue order before flattening.
    results.sort_unstable_by_key(|(k, _, _, _)| *k);
    let mut matches = Vec::new();
    let mut cells = 0u64;
    let mut cells_skipped = 0u64;
    for (_, m, c, s) in results {
        matches.extend(m);
        cells += c;
        cells_skipped += s;
    }
    (matches, cells, cells_skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioopera_cluster::{Cluster, NodeSpec, SimTime};
    use bioopera_core::{Runtime, RuntimeConfig};
    use bioopera_darwin::dataset::DatasetConfig;
    use bioopera_store::MemDisk;

    fn tiny_db() -> (Arc<SequenceDb>, Arc<PamFamily>) {
        let pam = Arc::new(PamFamily::default());
        let db = Arc::new(SequenceDb::generate(
            &DatasetConfig {
                size: 30,
                seed: 5,
                mean_len: 80,
                ..DatasetConfig::small(30, 5)
            },
            &pam,
        ));
        (db, pam)
    }

    fn cluster() -> Cluster {
        Cluster::new(
            "t",
            (0..4)
                .map(|i| NodeSpec::new(format!("n{i}"), 1, 500, "linux"))
                .collect(),
        )
    }

    fn run_setup(setup: &AllVsAllSetup) -> (Runtime<MemDisk>, u64) {
        let cfg = RuntimeConfig {
            heartbeat: SimTime::from_mins(10),
            ..Default::default()
        };
        let mut rt = Runtime::new(MemDisk::new(), cluster(), setup.library.clone(), cfg).unwrap();
        rt.register_template(&setup.chunk_template).unwrap();
        rt.register_template(&setup.template).unwrap();
        let id = rt.submit("AllVsAll", setup.initial()).unwrap();
        rt.run_to_completion().unwrap();
        (rt, id)
    }

    #[test]
    fn templates_validate_and_print() {
        let t = top_template();
        let c = chunk_template();
        // Round-trip through the OCR text format.
        let t2 = bioopera_ocr::parse_process(&bioopera_ocr::to_ocr_text(&t)).unwrap();
        assert_eq!(t2, t);
        let c2 = bioopera_ocr::parse_process(&bioopera_ocr::to_ocr_text(&c)).unwrap();
        assert_eq!(c2, c);
    }

    #[test]
    fn real_mode_end_to_end_finds_family_matches() {
        let (db, pam) = tiny_db();
        let setup = AllVsAllSetup::real(
            Arc::clone(&db),
            Arc::clone(&pam),
            AllVsAllConfig {
                teus: 4,
                ..Default::default()
            },
        );
        let (rt, id) = run_setup(&setup);
        assert_eq!(
            rt.instance_status(id),
            Some(bioopera_core::InstanceStatus::Completed)
        );
        let wb = rt.whiteboard(id).unwrap();
        let count = wb["match_count"].as_int().unwrap();
        assert!(count > 0, "a family-rich database must produce matches");
        // Sanity: matches correspond to real homologies more often than not.
        let buckets = wb["pam_buckets"].as_list().unwrap();
        assert!(!buckets.is_empty());
        let bucket_total: i64 = buckets
            .iter()
            .map(|b| b.get_path(&["count"]).and_then(|v| v.as_int()).unwrap_or(0))
            .sum();
        assert_eq!(bucket_total, count, "PAM buckets partition the match set");
        // QueueGeneration ran (no user queue file).
        assert_eq!(
            rt.task_record(id, "QueueGeneration").unwrap().state,
            bioopera_core::TaskState::Ended
        );
    }

    #[test]
    fn queue_file_branch_skips_queue_generation() {
        let (db, pam) = tiny_db();
        let setup = AllVsAllSetup::real(
            db,
            pam,
            AllVsAllConfig {
                teus: 2,
                queue_file: Some((0..10).collect()),
                ..Default::default()
            },
        );
        let (rt, id) = run_setup(&setup);
        assert_eq!(
            rt.task_record(id, "QueueGeneration").unwrap().state,
            bioopera_core::TaskState::Skipped
        );
        assert_eq!(
            rt.instance_status(id),
            Some(bioopera_core::InstanceStatus::Completed)
        );
    }

    #[test]
    fn results_are_identical_across_teu_counts() {
        // The partitioning must not change the match set: digests agree.
        let (db, pam) = tiny_db();
        let digest_for = |teus| {
            let setup = AllVsAllSetup::real(
                Arc::clone(&db),
                Arc::clone(&pam),
                AllVsAllConfig {
                    teus,
                    ..Default::default()
                },
            );
            let (rt, id) = run_setup(&setup);
            rt.whiteboard(id).unwrap()["digest"].clone()
        };
        let d1 = digest_for(1);
        let d4 = digest_for(4);
        let d13 = digest_for(13);
        assert_eq!(d1, d4);
        assert_eq!(d1, d13);
    }

    #[test]
    fn synthetic_mode_scales_to_sp38_sizes_quickly() {
        let setup = AllVsAllSetup::synthetic(
            75_458,
            370,
            38,
            AllVsAllConfig {
                teus: 50,
                ..Default::default()
            },
        );
        let (rt, id) = run_setup(&setup);
        assert_eq!(
            rt.instance_status(id),
            Some(bioopera_core::InstanceStatus::Completed)
        );
        let stats = rt.stats(id).unwrap();
        // Hundreds of reference-CPU-days (Table 1 scale).
        assert!(
            stats.cpu.as_days_f64() > 50.0,
            "SP38 CPU should be months: {}",
            stats.cpu
        );
        // 50 TEUs × 2 activities + head/merges.
        assert!(stats.activities >= 104, "activities {}", stats.activities);
        let wb = rt.whiteboard(id).unwrap();
        assert!(wb["match_count"].as_int().unwrap() > 1_000_000);
    }

    #[test]
    fn contiguous_partition_makes_early_teus_heavier() {
        let setup = AllVsAllSetup::synthetic(
            10_000,
            370,
            7,
            AllVsAllConfig {
                teus: 10,
                ..Default::default()
            },
        );
        // Call the partition + align_fixed programs directly.
        let lib = &setup.library;
        let partition = lib.get("darwin.partition").unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert("queue_file".to_string(), Value::int_list(0..10_000));
        inputs.insert("teus".to_string(), Value::Int(10));
        let chunks = partition(&inputs).unwrap().outputs["partition"].clone();
        let chunks = chunks.as_list().unwrap();
        assert_eq!(chunks.len(), 10);
        let fixed = lib.get("darwin.align_fixed").unwrap();
        let cost_of = |chunk: &Value| {
            let mut i = BTreeMap::new();
            i.insert("item".to_string(), chunk.clone());
            fixed(&i).unwrap().cost_ref_ms
        };
        let first = cost_of(&chunks[0]);
        let last = cost_of(&chunks[9]);
        assert!(
            first > 5.0 * last,
            "f>e dedup makes the first TEU much heavier: {first} vs {last}"
        );
    }
}
