//! The tower of information (paper §1, Fig. 1) as a BioOpera process.
//!
//! "Starting with the raw DNA": genes are located and translated into
//! protein sequences, proteins are aligned pairwise, distances feed a
//! phylogenetic tree, a multiple alignment yields probabilistic ancestral
//! sequences, and secondary structure is predicted — each storey a task
//! (the alignment and structure storeys are parallel tasks), "every step
//! is a subprocess" in spirit but activities here for clarity.

use crate::bio;
use bioopera_core::{ActivityLibrary, ProgramOutput};
use bioopera_darwin::align::AlignParams;
use bioopera_darwin::pam::PamFamily;
use bioopera_darwin::refine::refine_pam_distance;
use bioopera_darwin::{CostModel, Sequence};
use bioopera_ocr::model::{ExternalBinding, ParallelBody, TypeTag};
use bioopera_ocr::value::Value;
use bioopera_ocr::{ProcessBuilder, ProcessTemplate};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The tower process template.
pub fn tower_template() -> ProcessTemplate {
    ProcessBuilder::new("TowerOfInformation")
        .whiteboard_field("dna", TypeTag::Str)
        .whiteboard_default("min_codons", TypeTag::Int, Value::Int(20))
        .whiteboard_field("tree", TypeTag::Str)
        .whiteboard_field("report", TypeTag::Map)
        .activity("GeneFinding", "tower.genefind", |t| {
            t.input("dna", TypeTag::Str)
                .input("min_codons", TypeTag::Int)
                .output("genes", TypeTag::List)
                .retries(1)
        })
        .activity("Translation", "tower.translate", |t| {
            t.input("genes", TypeTag::List)
                .output("proteins", TypeTag::List)
                .output("targets", TypeTag::List)
                .retries(1)
        })
        .parallel(
            "PairwiseAlignments",
            "targets",
            ParallelBody::Activity(ExternalBinding::program("tower.align_one")),
            "rows",
            |t| t.input("proteins", TypeTag::List).retries(2),
        )
        .activity("PhylogeneticTree", "tower.nj", |t| {
            t.input("rows", TypeTag::List)
                .output("tree", TypeTag::Str)
                .retries(1)
        })
        .activity("MultipleAlignment", "tower.msa", |t| {
            t.input("proteins", TypeTag::List)
                .output("msa", TypeTag::List)
                .output("ancestor", TypeTag::Str)
                .retries(1)
        })
        .parallel(
            "StructurePrediction",
            "targets2",
            ParallelBody::Activity(ExternalBinding::program("tower.choufasman")),
            "structures",
            |t| t.input("proteins", TypeTag::List).retries(2),
        )
        .activity("FunctionSummary", "tower.summary", |t| {
            t.input("tree", TypeTag::Str)
                .input("ancestor", TypeTag::Str)
                .input("structures", TypeTag::List)
                .output("report", TypeTag::Map)
        })
        .connect("GeneFinding", "Translation")
        .connect("Translation", "PairwiseAlignments")
        .connect("Translation", "MultipleAlignment")
        .connect("Translation", "StructurePrediction")
        .connect("PairwiseAlignments", "PhylogeneticTree")
        .connect("PhylogeneticTree", "FunctionSummary")
        .connect("MultipleAlignment", "FunctionSummary")
        .connect("StructurePrediction", "FunctionSummary")
        .flow_from_whiteboard("dna", "GeneFinding", "dna")
        .flow_from_whiteboard("min_codons", "GeneFinding", "min_codons")
        .flow_to_task("GeneFinding", "genes", "Translation", "genes")
        .flow_to_task("Translation", "targets", "PairwiseAlignments", "targets")
        .flow_to_task("Translation", "proteins", "PairwiseAlignments", "proteins")
        .flow_to_task("Translation", "targets", "StructurePrediction", "targets2")
        .flow_to_task("Translation", "proteins", "StructurePrediction", "proteins")
        .flow_to_task("Translation", "proteins", "MultipleAlignment", "proteins")
        .flow_to_task("PairwiseAlignments", "rows", "PhylogeneticTree", "rows")
        .flow_to_task("PhylogeneticTree", "tree", "FunctionSummary", "tree")
        .flow_to_whiteboard("PhylogeneticTree", "tree", "tree")
        .flow_to_task(
            "MultipleAlignment",
            "ancestor",
            "FunctionSummary",
            "ancestor",
        )
        .flow_to_task(
            "StructurePrediction",
            "structures",
            "FunctionSummary",
            "structures",
        )
        .flow_to_whiteboard("FunctionSummary", "report", "report")
        .build()
        .expect("tower template is valid")
}

fn proteins_from(inputs: &BTreeMap<String, Value>) -> Result<Vec<String>, String> {
    inputs
        .get("proteins")
        .and_then(|v| v.as_list())
        .map(|l| {
            l.iter()
                .filter_map(|p| p.as_str().map(str::to_string))
                .collect()
        })
        .ok_or_else(|| "missing proteins".to_string())
}

/// The activity library for the tower.
pub fn tower_library(pam: Arc<PamFamily>, cost: CostModel) -> ActivityLibrary {
    let mut lib = ActivityLibrary::new();

    lib.register("tower.genefind", move |inputs| {
        let dna_str = inputs
            .get("dna")
            .and_then(|v| v.as_str())
            .ok_or_else(|| "genefind needs dna".to_string())?;
        let dna = bio::parse_dna(dna_str).ok_or_else(|| "dna has non-ACGT letters".to_string())?;
        let min = inputs
            .get("min_codons")
            .and_then(|v| v.as_int())
            .unwrap_or(20) as usize;
        let orfs = bio::find_orfs(&dna, min);
        let genes: Vec<Value> = orfs
            .iter()
            .map(|o| Value::from(bio::dna_to_string(&dna[o.start..o.end])))
            .collect();
        if genes.is_empty() {
            return Err("no open reading frames found".to_string());
        }
        Ok(ProgramOutput::from_fields(
            [("genes", Value::List(genes))],
            dna.len() as f64 * 0.02 + 500.0,
        ))
    });

    lib.register("tower.translate", move |inputs| {
        let genes = inputs
            .get("genes")
            .and_then(|v| v.as_list())
            .ok_or_else(|| "translate needs genes".to_string())?;
        let mut proteins = Vec::new();
        let mut targets = Vec::new();
        for (i, g) in genes.iter().enumerate() {
            let dna_str = g
                .as_str()
                .ok_or_else(|| "gene is not a string".to_string())?;
            let dna = bio::parse_dna(dna_str).ok_or_else(|| "bad gene".to_string())?;
            let mut protein = String::new();
            let mut j = 0usize;
            while j + 2 < dna.len() {
                match bio::translate_codon(dna[j], dna[j + 1], dna[j + 2]) {
                    Some(aa) => protein.push(aa),
                    None => break,
                }
                j += 3;
            }
            proteins.push(Value::from(protein));
            targets.push(Value::map_from([("index", Value::Int(i as i64))]));
        }
        Ok(ProgramOutput::from_fields(
            [
                ("proteins", Value::List(proteins)),
                ("targets", Value::List(targets)),
            ],
            200.0,
        ))
    });

    let pam_align = Arc::clone(&pam);
    lib.register("tower.align_one", move |inputs| {
        let proteins = proteins_from(inputs)?;
        let index = inputs
            .get("item")
            .and_then(|v| v.get_path(&["index"]))
            .and_then(|v| v.as_int())
            .ok_or_else(|| "align_one needs an item index".to_string())?
            as usize;
        let me = Sequence::from_str(index as u32, &proteins[index])
            .ok_or_else(|| "invalid protein".to_string())?;
        let params = AlignParams::default();
        let mut row = Vec::with_capacity(proteins.len());
        let mut cells = 0u64;
        for (j, p) in proteins.iter().enumerate() {
            if j == index {
                row.push(Value::Float(0.0));
                continue;
            }
            let other =
                Sequence::from_str(j as u32, p).ok_or_else(|| "invalid protein".to_string())?;
            let refined = refine_pam_distance(&me, &other, &pam_align, &params);
            cells += refined.cells;
            row.push(Value::Float(refined.pam_distance as f64));
        }
        Ok(ProgramOutput::from_fields(
            [
                ("index", Value::Int(index as i64)),
                ("row", Value::List(row)),
            ],
            cost.cells_ms(cells) + cost.darwin_init_ms / 5.0,
        ))
    });

    lib.register("tower.nj", move |inputs| {
        let rows = inputs
            .get("rows")
            .and_then(|v| v.as_list())
            .ok_or_else(|| "nj needs rows".to_string())?;
        let mut indexed: Vec<(i64, Vec<f64>)> = rows
            .iter()
            .filter_map(|r| {
                let idx = r.get_path(&["index"])?.as_int()?;
                let row = r
                    .get_path(&["row"])?
                    .as_list()?
                    .iter()
                    .filter_map(|v| v.as_float())
                    .collect();
                Some((idx, row))
            })
            .collect();
        indexed.sort_by_key(|(i, _)| *i);
        let dist: Vec<Vec<f64>> = indexed.into_iter().map(|(_, r)| r).collect();
        if dist.len() < 2 {
            return Err("need at least two proteins for a tree".to_string());
        }
        let labels: Vec<String> = (0..dist.len()).map(|i| format!("g{i}")).collect();
        let tree = bio::neighbor_joining(&dist, &labels);
        Ok(ProgramOutput::from_fields(
            [("tree", Value::from(tree.newick))],
            (dist.len().pow(3) as f64) * 0.01 + 300.0,
        ))
    });

    let pam_msa = Arc::clone(&pam);
    lib.register("tower.msa", move |inputs| {
        let proteins = proteins_from(inputs)?;
        if proteins.is_empty() {
            return Err("msa needs proteins".to_string());
        }
        // Star alignment around the longest sequence (the center), then a
        // per-column majority consensus as the "probabilistic ancestral
        // sequence" storey.
        let center = proteins
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.len())
            .map(|(i, _)| i)
            .unwrap();
        let center_seq = Sequence::from_str(center as u32, &proteins[center])
            .ok_or_else(|| "invalid protein".to_string())?;
        let matrix = pam_msa.nearest(120);
        let params = AlignParams::default();
        let mut cells = 0u64;
        let width = center_seq.len();
        let mut columns: Vec<BTreeMap<char, usize>> = vec![BTreeMap::new(); width];
        let mut aligned_rows: Vec<String> = Vec::with_capacity(proteins.len());
        for p in &proteins {
            let s = Sequence::from_str(0, p).ok_or_else(|| "invalid protein".to_string())?;
            let al = bioopera_darwin::align::align_local(&s, &center_seq, matrix, &params);
            cells += al.cells;
            // Project s onto center coordinates.
            let mut row = vec!['-'; width];
            let (mut i, mut j) = (al.a_range.0, al.b_range.0);
            for op in &al.ops {
                match op {
                    bioopera_darwin::align::AlignOp::Sub => {
                        row[j] = bioopera_darwin::alphabet::LETTERS[s.residues[i] as usize];
                        i += 1;
                        j += 1;
                    }
                    bioopera_darwin::align::AlignOp::InsA => i += 1,
                    bioopera_darwin::align::AlignOp::InsB => j += 1,
                }
            }
            for (col, &c) in row.iter().enumerate() {
                if c != '-' {
                    *columns[col].entry(c).or_default() += 1;
                }
            }
            aligned_rows.push(row.into_iter().collect());
        }
        let ancestor: String = columns
            .iter()
            .map(|col| {
                col.iter()
                    .max_by_key(|(_, n)| **n)
                    .map(|(c, _)| *c)
                    .unwrap_or('-')
            })
            .collect();
        Ok(ProgramOutput::from_fields(
            [
                (
                    "msa",
                    Value::List(aligned_rows.into_iter().map(Value::from).collect()),
                ),
                ("ancestor", Value::from(ancestor.replace('-', ""))),
            ],
            cost.cells_ms(cells) + 200.0,
        ))
    });

    lib.register("tower.choufasman", move |inputs| {
        let proteins = proteins_from(inputs)?;
        let index = inputs
            .get("item")
            .and_then(|v| v.get_path(&["index"]))
            .and_then(|v| v.as_int())
            .ok_or_else(|| "choufasman needs an item index".to_string())?
            as usize;
        let s = Sequence::from_str(index as u32, &proteins[index])
            .ok_or_else(|| "invalid protein".to_string())?;
        let prediction = bio::chou_fasman(&s);
        let (h, e, c) = bio::structure_summary(&prediction);
        Ok(ProgramOutput::from_fields(
            [
                ("index", Value::Int(index as i64)),
                ("prediction", Value::from(prediction)),
                ("helix", Value::Float(h)),
                ("sheet", Value::Float(e)),
                ("coil", Value::Float(c)),
            ],
            s.len() as f64 * 0.5 + 100.0,
        ))
    });

    lib.register("tower.summary", move |inputs| {
        let tree = inputs
            .get("tree")
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string();
        let ancestor = inputs
            .get("ancestor")
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string();
        let structures = inputs
            .get("structures")
            .and_then(|v| v.as_list())
            .ok_or_else(|| "summary needs structures".to_string())?;
        let mut helix_sum = 0.0;
        let mut sheet_sum = 0.0;
        for s in structures {
            helix_sum += s
                .get_path(&["helix"])
                .and_then(|v| v.as_float())
                .unwrap_or(0.0);
            sheet_sum += s
                .get_path(&["sheet"])
                .and_then(|v| v.as_float())
                .unwrap_or(0.0);
        }
        let n = structures.len().max(1) as f64;
        let (helix, sheet) = (helix_sum / n, sheet_sum / n);
        // The top storey: a (deliberately coarse) functional class from
        // fold content — the paper's "from this shape, one may eventually
        // deduce the function of the protein".
        let function = if helix > 2.0 * sheet {
            "all-alpha (likely globin-like / regulatory)"
        } else if sheet > 2.0 * helix {
            "all-beta (likely transport / binding barrel)"
        } else {
            "alpha/beta (likely enzymatic fold)"
        };
        let report = Value::map_from([
            ("n_structures", Value::Int(structures.len() as i64)),
            ("tree", Value::from(tree)),
            ("ancestor_len", Value::Int(ancestor.len() as i64)),
            ("mean_helix", Value::Float(helix)),
            ("mean_sheet", Value::Float(sheet)),
            ("function", Value::from(function)),
        ]);
        Ok(ProgramOutput::from_fields([("report", report)], 100.0))
    });

    lib
}

/// Synthesize "raw DNA" containing `genes` known protein families, so the
/// tower has real homologies to discover.  Returns the DNA string.
pub fn make_input_dna(families: usize, members_per_family: usize, seed: u64) -> String {
    let pam = PamFamily::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dna = Vec::new();
    let junk = |rng: &mut StdRng, n: usize, out: &mut Vec<u8>| {
        use rand::Rng;
        for _ in 0..n {
            // Junk avoiding long ORFs: sprinkle stop-ish content (TA-rich).
            out.push([3, 0, 3, 2][rng.gen_range(0..4usize)]);
        }
    };
    for f in 0..families {
        let ancestor = bioopera_darwin::dataset::random_sequence(&mut rng, 60 + 10 * f);
        for _ in 0..members_per_family {
            let child = bioopera_darwin::dataset::evolve(&ancestor, 40, &pam, &mut rng, 0.0);
            // Ensure no stop-free violation: proteins never encode stops.
            let protein: String = child.to_string();
            junk(&mut rng, 20, &mut dna);
            dna.extend(bio::back_translate(&protein));
        }
    }
    junk(&mut rng, 20, &mut dna);
    bio::dna_to_string(&dna)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioopera_cluster::{Cluster, NodeSpec, SimTime};
    use bioopera_core::{Runtime, RuntimeConfig};
    use bioopera_store::MemDisk;

    #[test]
    fn tower_runs_end_to_end() {
        let pam = Arc::new(PamFamily::default());
        let lib = tower_library(Arc::clone(&pam), CostModel::default());
        let cfg = RuntimeConfig {
            heartbeat: SimTime::from_mins(5),
            ..Default::default()
        };
        let cluster = Cluster::new(
            "t",
            (0..3)
                .map(|i| NodeSpec::new(format!("n{i}"), 2, 500, "linux"))
                .collect(),
        );
        let mut rt = Runtime::new(MemDisk::new(), cluster, lib, cfg).unwrap();
        rt.register_template(&tower_template()).unwrap();
        let mut init = BTreeMap::new();
        init.insert("dna".to_string(), Value::from(make_input_dna(2, 3, 42)));
        let id = rt.submit("TowerOfInformation", init).unwrap();
        rt.run_to_completion().unwrap();
        assert_eq!(
            rt.instance_status(id),
            Some(bioopera_core::InstanceStatus::Completed)
        );
        let wb = rt.whiteboard(id).unwrap();
        let tree = wb["tree"].as_str().unwrap();
        assert!(tree.ends_with(';'), "tree: {tree}");
        assert!(tree.matches("g").count() >= 6, "6 leaves expected: {tree}");
        let report = wb["report"].as_map().unwrap();
        // At least the 6 planted genes; ORF scanning may over-call a few
        // frame-shifted ORFs inside real genes, as real scanners do.
        assert!(report["n_structures"].as_int().unwrap() >= 6);
        assert!(
            report["function"].as_str().unwrap().contains("alpha")
                || report["function"].as_str().unwrap().contains("beta")
        );
    }

    #[test]
    fn make_input_dna_contains_findable_genes() {
        let dna = make_input_dna(2, 2, 7);
        let parsed = bio::parse_dna(&dna).unwrap();
        let orfs = bio::find_orfs(&parsed, 20);
        assert!(orfs.len() >= 4, "expected >= 4 genes, found {}", orfs.len());
    }

    #[test]
    fn template_roundtrips_through_ocr() {
        let t = tower_template();
        let back = bioopera_ocr::parse_process(&bioopera_ocr::to_ocr_text(&t)).unwrap();
        assert_eq!(back, t);
    }
}
