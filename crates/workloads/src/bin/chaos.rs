//! Seeded flaky-node chaos gate for `scripts/check.sh`.
//!
//! Runs the two-node scenario where one node kills every job it is
//! handed, with the dependability policies on.  The run must complete
//! within the retry ceiling (budget × tasks) and the killer must end up
//! quarantined; anything else exits non-zero.  The seed is printed so a
//! failure is reproducible (`CHAOS_SEED=N` or first CLI argument).

use bioopera_workloads::chaos::{flaky_node_run, ChaosConfig};

fn main() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .or_else(|| std::env::args().nth(1).and_then(|s| s.parse().ok()))
        .unwrap_or(7);
    println!("chaos: flaky-node scenario, seed={seed}");
    if std::env::var("CHAOS_DEMO_LIVELOCK").is_ok() {
        // Diagnostic mode: show what the pre-fix engine does on the same
        // trace (bounded by max_steps; it would otherwise never stop).
        let out = flaky_node_run(&ChaosConfig {
            seed,
            policy_enabled: false,
            ..Default::default()
        });
        println!(
            "chaos (policy OFF): completed={} wall={} steps={} dispatches={} retries={}",
            out.completed, out.wall, out.steps, out.dispatches, out.system_failures
        );
        return;
    }
    let out = flaky_node_run(&ChaosConfig {
        seed,
        ..Default::default()
    });
    println!(
        "chaos: completed={} wall={} dispatches={} retries={} ceiling={} \
         backoffs={} quarantines={} poisoned={}",
        out.completed,
        out.wall,
        out.dispatches,
        out.system_failures,
        out.retry_ceiling(),
        out.backoffs,
        out.quarantines,
        out.poisoned
    );
    if !out.within_budget() {
        eprintln!(
            "chaos: FAILED (seed={seed}): retries {} past ceiling {} or incomplete run",
            out.system_failures,
            out.retry_ceiling()
        );
        std::process::exit(1);
    }
    if out.quarantines == 0 {
        eprintln!("chaos: FAILED (seed={seed}): the flaky node was never quarantined");
        std::process::exit(1);
    }
    println!(
        "chaos: OK (retries {} <= ceiling {})",
        out.system_failures,
        out.retry_ceiling()
    );
}
