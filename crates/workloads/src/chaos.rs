//! Chaos scenario for the dependability policies: a two-node pool where
//! one node silently kills every job it is handed.
//!
//! This is the masked-failure livelock distilled.  The flaky node reports
//! a perfect load of zero (its jobs die instantly), so the least-loaded
//! policy keeps picking it; every kill is masked as a system failure and
//! requeued.  Without retry budgets the engine bounces the same tasks off
//! the same node forever — virtual time advances by one dispatch latency
//! per bounce, the dispatch counter grows without bound, and the run never
//! completes.  With the policies on, backoff spaces the retries out, the
//! node is quarantined after a few consecutive kills, and the pool's one
//! healthy node finishes the workload with a bounded number of retries.

use crate::allvsall::{AllVsAllConfig, AllVsAllSetup};
use bioopera_cluster::{Cluster, NodeSpec, SimTime, Trace, TraceEventKind};
use bioopera_core::{DependabilityConfig, InstanceStatus, Runtime, RuntimeConfig};
use bioopera_store::MemDisk;
use std::collections::BTreeMap;

/// Name of the node that kills every job (chosen to win alphabetical
/// tie-breaks against the healthy node, so ties never save the run).
pub const FLAKY_NODE: &str = "ant";
/// Name of the healthy node.
pub const HEALTHY_NODE: &str = "bee";

/// Knobs for [`flaky_node_run`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the synthetic workload and the backoff jitter.
    pub seed: u64,
    /// Number of TEU chunks in the all-vs-all pass.
    pub teus: i64,
    /// Run with the dependability policies on (`false` reproduces the
    /// pre-fix instant-requeue engine).
    pub policy_enabled: bool,
    /// Engine-step ceiling; the run is abandoned past it.  This is the
    /// safety valve that lets the pre-fix engine demonstrate its livelock
    /// without hanging the caller.
    pub max_steps: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 7,
            teus: 8,
            policy_enabled: true,
            max_steps: 120_000,
        }
    }
}

/// What happened, counted from the awareness index.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Did the all-vs-all instance complete within the step ceiling?
    pub completed: bool,
    /// Virtual wall clock when the run ended (or was abandoned).
    pub wall: SimTime,
    /// Engine steps consumed.
    pub steps: u64,
    /// Jobs dispatched (`task.start` events).
    pub dispatches: u64,
    /// Masked system failures (`task.systemfail` events) — the retries.
    pub system_failures: u64,
    /// Backoff timers armed (`task.backoff` events).
    pub backoffs: u64,
    /// Quarantine entries (`node.quarantine` events).
    pub quarantines: u64,
    /// Tasks escalated to poison (`task.poisoned` events).
    pub poisoned: u64,
    /// Tasks that ran to completion (`task.end` events).
    pub tasks_completed: u64,
    /// The per-task system-retry budget the run was configured with.
    pub retry_budget: u32,
}

impl ChaosOutcome {
    /// The acceptance ceiling: total masked retries may not exceed the
    /// per-task budget times the number of tasks.
    pub fn retry_ceiling(&self) -> u64 {
        self.retry_budget as u64 * self.tasks_completed.max(1)
    }

    /// Did the run complete cleanly within the retry ceiling?
    pub fn within_budget(&self) -> bool {
        self.completed && self.poisoned == 0 && self.system_failures <= self.retry_ceiling()
    }
}

/// Run the flaky-node scenario and report what the awareness layer saw.
pub fn flaky_node_run(cfg: &ChaosConfig) -> ChaosOutcome {
    let setup = AllVsAllSetup::synthetic(
        1_500,
        150,
        cfg.seed,
        AllVsAllConfig {
            teus: cfg.teus,
            ..Default::default()
        },
    );
    let cluster = Cluster::new(
        "chaos",
        vec![
            NodeSpec::new(FLAKY_NODE, 2, 500, "linux"),
            NodeSpec::new(HEALTHY_NODE, 2, 500, "linux"),
        ],
    );
    let mut trace = Trace::empty();
    trace.push_labeled(
        SimTime::from_millis(1),
        TraceEventKind::NodeFlaky {
            node: FLAKY_NODE.into(),
            kills: u32::MAX,
        },
        "node ant starts killing every job it is handed",
    );
    let mut dep = if cfg.policy_enabled {
        DependabilityConfig::default()
    } else {
        DependabilityConfig::disabled()
    };
    dep.jitter_seed = cfg.seed;
    let retry_budget = dep.system_retry_budget;
    let rt_cfg = RuntimeConfig {
        heartbeat: SimTime::from_mins(2),
        dependability: dep,
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster, setup.library.clone(), rt_cfg)
        .expect("chaos runtime");
    rt.register_template(&setup.chunk_template)
        .expect("chunk template");
    rt.register_template(&setup.template).expect("top template");
    rt.install_trace(&trace);
    let id = rt.submit("AllVsAll", setup.initial()).expect("submit");

    let mut steps = 0u64;
    while steps < cfg.max_steps {
        match rt.step() {
            Ok(true) => steps += 1,
            Ok(false) => break,
            // A deadlock report from the abandoned pre-fix run is part of
            // the experiment, not a harness bug.
            Err(_) => break,
        }
    }

    let counts: BTreeMap<String, u64> = rt
        .awareness()
        .index()
        .counts_by_kind()
        .into_iter()
        .map(|(k, n)| (k, n as u64))
        .collect();
    let get = |k: &str| counts.get(k).copied().unwrap_or(0);
    ChaosOutcome {
        completed: rt.instance_status(id) == Some(InstanceStatus::Completed),
        wall: rt.now(),
        steps,
        dispatches: get("task.start"),
        system_failures: get("task.systemfail"),
        backoffs: get("task.backoff"),
        quarantines: get("node.quarantine"),
        poisoned: get("task.poisoned"),
        tasks_completed: get("task.end"),
        retry_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_bounds_retries_and_quarantines_the_flaky_node() {
        let out = flaky_node_run(&ChaosConfig::default());
        assert!(out.completed, "policy run must complete: {out:?}");
        assert!(out.within_budget(), "retries past the ceiling: {out:?}");
        assert!(
            out.quarantines >= 1,
            "flaky node never quarantined: {out:?}"
        );
        assert!(out.backoffs >= 1, "no backoff timers armed: {out:?}");
    }
}
