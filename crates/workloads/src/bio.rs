//! Supporting algorithms for the tower of information (paper Fig. 1).
//!
//! Each storey of the tower gets a real (if compact) implementation:
//!
//! * DNA → genes: ORF scanning over the three forward reading frames,
//! * genes → proteins: codon translation (standard genetic code),
//! * proteins → distances: pairwise alignment + PAM-distance refinement
//!   (from `bioopera-darwin`),
//! * distances → phylogeny: **neighbor joining** (Saitou & Nei),
//! * proteins → secondary structure: **Chou–Fasman** propensity
//!   classification.

use bioopera_darwin::alphabet::AminoAcid;
use bioopera_darwin::Sequence;

/// DNA nucleotides as indices 0..4 = A, C, G, T.
pub const DNA_LETTERS: [char; 4] = ['A', 'C', 'G', 'T'];

/// The standard genetic code: codon (base-4 index) → one-letter amino
/// acid, or `None` for a stop codon.
pub fn translate_codon(c0: u8, c1: u8, c2: u8) -> Option<char> {
    // Index: A=0 C=1 G=2 T=3; table ordered c0*16 + c1*4 + c2.
    const TABLE: &[u8; 64] = b"KNKNTTTTRSRSIIMIQHQHPPPPRRRRLLLLEDEDAAAAGGGGVVVV*Y*YSSSS*CWCLFLF";
    let idx = (c0 as usize) * 16 + (c1 as usize) * 4 + (c2 as usize);
    match TABLE[idx] {
        b'*' => None,
        aa => Some(aa as char),
    }
}

/// Parse a DNA string to indices; `None` on non-ACGT characters.
pub fn parse_dna(s: &str) -> Option<Vec<u8>> {
    s.chars()
        .map(|c| match c.to_ascii_uppercase() {
            'A' => Some(0),
            'C' => Some(1),
            'G' => Some(2),
            'T' => Some(3),
            _ => None,
        })
        .collect()
}

/// Render DNA indices as a string.
pub fn dna_to_string(dna: &[u8]) -> String {
    dna.iter().map(|&b| DNA_LETTERS[b as usize]).collect()
}

/// An open reading frame found by [`find_orfs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orf {
    /// Start offset of the ATG, 0-based.
    pub start: usize,
    /// Offset one past the stop codon.
    pub end: usize,
    /// Reading frame (0, 1, 2).
    pub frame: usize,
    /// Translated protein (one-letter codes, no stop).
    pub protein: String,
}

/// Scan the three forward reading frames for ORFs of at least
/// `min_codons` coding codons (ATG .. stop).
pub fn find_orfs(dna: &[u8], min_codons: usize) -> Vec<Orf> {
    let mut orfs = Vec::new();
    for frame in 0..3usize {
        let mut i = frame;
        while i + 2 < dna.len() {
            // Look for ATG.
            if dna[i] == 0 && dna[i + 1] == 3 && dna[i + 2] == 2 {
                // Translate until stop.
                let mut protein = String::new();
                let mut j = i;
                let mut closed = false;
                while j + 2 < dna.len() {
                    match translate_codon(dna[j], dna[j + 1], dna[j + 2]) {
                        Some(aa) => protein.push(aa),
                        None => {
                            closed = true;
                            break;
                        }
                    }
                    j += 3;
                }
                if closed && protein.len() >= min_codons {
                    orfs.push(Orf {
                        start: i,
                        end: j + 3,
                        frame,
                        protein,
                    });
                    i = j + 3;
                    continue;
                }
            }
            i += 3;
        }
    }
    orfs.sort_by_key(|o| o.start);
    orfs
}

/// Back-translate a protein into DNA (first codon per residue), wrapped
/// with ATG and a stop codon — used by the tower example to synthesize
/// "raw DNA" whose genes are known.
pub fn back_translate(protein: &str) -> Vec<u8> {
    let mut dna = vec![0, 3, 2]; // ATG
    for c in protein.chars() {
        let codon = first_codon_for(c).unwrap_or([2, 1, 0]); // GCA (Ala) fallback
        dna.extend_from_slice(&codon);
    }
    dna.extend_from_slice(&[3, 0, 0]); // TAA stop
    dna
}

fn first_codon_for(aa: char) -> Option<[u8; 3]> {
    let target = aa.to_ascii_uppercase();
    for c0 in 0..4 {
        for c1 in 0..4 {
            for c2 in 0..4 {
                if translate_codon(c0, c1, c2) == Some(target) {
                    return Some([c0, c1, c2]);
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Neighbor joining
// ---------------------------------------------------------------------------

/// A rooted view of the unrooted NJ tree, in Newick notation.
#[derive(Debug, Clone, PartialEq)]
pub struct PhyloTree {
    /// Newick string with branch lengths, e.g. `((A:1.0,B:1.5):0.5,C:2.0);`
    pub newick: String,
    /// Number of leaves.
    pub leaves: usize,
}

/// Neighbor joining over a symmetric distance matrix.
///
/// Returns the tree in Newick form; `labels` names the leaves.
/// Panics if the matrix is not square or has fewer than 2 taxa.
pub fn neighbor_joining(dist: &[Vec<f64>], labels: &[String]) -> PhyloTree {
    let n = dist.len();
    assert!(n >= 2, "need at least two taxa");
    assert!(
        dist.iter().all(|row| row.len() == n),
        "matrix must be square"
    );
    let leaves = n;
    // Working copies; nodes are Newick fragments.
    let mut d: Vec<Vec<f64>> = dist.to_vec();
    let mut nodes: Vec<String> = labels.to_vec();
    let mut active: Vec<usize> = (0..n).collect();

    while active.len() > 2 {
        let m = active.len();
        // Row sums over active set.
        let r: Vec<f64> = active
            .iter()
            .map(|&i| active.iter().map(|&j| d[i][j]).sum::<f64>())
            .collect();
        // Q matrix minimization.
        let (mut best, mut bq) = ((0usize, 1usize), f64::INFINITY);
        for a in 0..m {
            for b in a + 1..m {
                let (i, j) = (active[a], active[b]);
                let q = (m as f64 - 2.0) * d[i][j] - r[a] - r[b];
                if q < bq {
                    bq = q;
                    best = (a, b);
                }
            }
        }
        let (a, b) = best;
        let (i, j) = (active[a], active[b]);
        let m_f = active.len() as f64;
        let li = 0.5 * d[i][j] + (r[a] - r[b]) / (2.0 * (m_f - 2.0));
        let lj = d[i][j] - li;
        let li = li.max(0.0);
        let lj = lj.max(0.0);
        // New node u.
        let u_label = format!("({}:{:.4},{}:{:.4})", nodes[i], li, nodes[j], lj);
        let u = d.len();
        // Distances from u to every other active node.
        let mut new_row = vec![0.0; d.len() + 1];
        for &k in &active {
            if k != i && k != j {
                new_row[k] = 0.5 * (d[i][k] + d[j][k] - d[i][j]);
            }
        }
        for row in d.iter_mut() {
            row.push(0.0);
        }
        d.push(new_row.clone());
        for (k, row) in d.iter_mut().enumerate() {
            row[u] = new_row[k];
        }
        nodes.push(u_label);
        // Replace i, j by u in the active set.
        active.retain(|&k| k != i && k != j);
        active.push(u);
    }
    let (i, j) = (active[0], active[1]);
    let newick = format!(
        "({}:{:.4},{}:{:.4});",
        nodes[i],
        d[i][j] / 2.0,
        nodes[j],
        d[i][j] / 2.0
    );
    PhyloTree { newick, leaves }
}

// ---------------------------------------------------------------------------
// Chou–Fasman secondary-structure prediction
// ---------------------------------------------------------------------------

/// Chou–Fasman helix propensities (P_alpha), indexed like the Darwin
/// alphabet (`ARNDCQEGHILKMFPSTWYV`).
pub const P_ALPHA: [f64; 20] = [
    1.42, 0.98, 0.67, 1.01, 0.70, 1.11, 1.51, 0.57, 1.00, 1.08, 1.21, 1.16, 1.45, 1.13, 0.57, 0.77,
    0.83, 1.08, 0.69, 1.06,
];

/// Chou–Fasman sheet propensities (P_beta).
pub const P_BETA: [f64; 20] = [
    0.83, 0.93, 0.89, 0.54, 1.19, 1.10, 0.37, 0.75, 0.87, 1.60, 1.30, 0.74, 1.05, 1.38, 0.55, 0.75,
    1.19, 1.37, 1.47, 1.70,
];

/// Predict per-residue secondary structure: `H` (helix), `E` (strand) or
/// `C` (coil), using windowed mean propensities (window 6 for helix, 5 for
/// strand, thresholds per the classic method).
pub fn chou_fasman(seq: &Sequence) -> String {
    let n = seq.residues.len();
    let mut out = vec!['C'; n];
    let window_mean = |table: &[f64; 20], center: usize, w: usize| -> f64 {
        let lo = center.saturating_sub(w / 2);
        let hi = (center + w.div_ceil(2)).min(n);
        if lo >= hi {
            return 0.0;
        }
        let s: f64 = seq.residues[lo..hi]
            .iter()
            .map(|&r| table[r as usize])
            .sum();
        s / (hi - lo) as f64
    };
    for (i, slot) in out.iter_mut().enumerate() {
        let pa = window_mean(&P_ALPHA, i, 6);
        let pb = window_mean(&P_BETA, i, 5);
        if pa > 1.03 && pa >= pb {
            *slot = 'H';
        } else if pb > 1.05 {
            *slot = 'E';
        }
    }
    out.into_iter().collect()
}

/// Fraction of residues predicted helical/strand — the summary statistic
/// the tower's final storey reports.
pub fn structure_summary(prediction: &str) -> (f64, f64, f64) {
    let n = prediction.len().max(1) as f64;
    let h = prediction.chars().filter(|&c| c == 'H').count() as f64 / n;
    let e = prediction.chars().filter(|&c| c == 'E').count() as f64 / n;
    (h, e, 1.0 - h - e)
}

/// Helper: translate a protein string into a Darwin [`Sequence`].
pub fn protein_to_sequence(entry: u32, protein: &str) -> Option<Sequence> {
    Sequence::from_str(entry, protein)
}

/// Helper kept close to the alphabet: one-letter validity check.
pub fn is_valid_protein(s: &str) -> bool {
    s.chars().all(|c| AminoAcid::from_char(c).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genetic_code_basics() {
        // ATG = Met, TAA/TAG/TGA = stop, TGG = Trp.
        assert_eq!(translate_codon(0, 3, 2), Some('M'));
        assert_eq!(translate_codon(3, 0, 0), None);
        assert_eq!(translate_codon(3, 0, 2), None);
        assert_eq!(translate_codon(3, 2, 0), None);
        assert_eq!(translate_codon(3, 2, 2), Some('W'));
        // AAA = Lys, GGG = Gly, TTT = Phe.
        assert_eq!(translate_codon(0, 0, 0), Some('K'));
        assert_eq!(translate_codon(2, 2, 2), Some('G'));
        assert_eq!(translate_codon(3, 3, 3), Some('F'));
    }

    #[test]
    fn all_codons_translate_to_valid_symbols() {
        let mut stops = 0;
        for c0 in 0..4 {
            for c1 in 0..4 {
                for c2 in 0..4 {
                    match translate_codon(c0, c1, c2) {
                        None => stops += 1,
                        Some(aa) => assert!(is_valid_protein(&aa.to_string()), "bad {aa}"),
                    }
                }
            }
        }
        assert_eq!(stops, 3, "the standard code has exactly 3 stop codons");
    }

    #[test]
    fn back_translate_then_find_orf_roundtrips() {
        let protein = "MKVLAWGCHDERNDKLMNPQRST";
        let dna = back_translate(protein);
        let orfs = find_orfs(&dna, 5);
        assert_eq!(orfs.len(), 1);
        // The ORF's translation starts with M and contains the original.
        assert!(orfs[0].protein.starts_with('M'));
        assert!(orfs[0].protein.contains(protein));
    }

    #[test]
    fn orfs_found_in_noise_flanked_genes() {
        let gene1 = back_translate("MKVLAWGCHDE");
        let gene2 = back_translate("MSTVNQRLKWY");
        let mut dna = parse_dna("CCGTCCGT").unwrap();
        dna.extend(&gene1);
        dna.extend(parse_dna("CCGTCC").unwrap());
        dna.extend(&gene2);
        dna.extend(parse_dna("GGGG").unwrap());
        let orfs = find_orfs(&dna, 8);
        assert!(orfs.len() >= 2, "found {} ORFs", orfs.len());
    }

    #[test]
    fn dna_roundtrip() {
        let s = "ACGTACGT";
        assert_eq!(dna_to_string(&parse_dna(s).unwrap()), s);
        assert!(parse_dna("ACGX").is_none());
    }

    #[test]
    fn nj_recovers_simple_topology() {
        // Additive tree: ((A,B),(C,D)) with known branch lengths.
        //   A-1-x-1-B, x-2-y, C-1-y-1-D
        let labels: Vec<String> = ["A", "B", "C", "D"].iter().map(|s| s.to_string()).collect();
        let d = vec![
            vec![0.0, 2.0, 4.0, 4.0],
            vec![2.0, 0.0, 4.0, 4.0],
            vec![4.0, 4.0, 0.0, 2.0],
            vec![4.0, 4.0, 2.0, 0.0],
        ];
        let tree = neighbor_joining(&d, &labels);
        assert_eq!(tree.leaves, 4);
        // A joins B and C joins D (in either order).
        let ab = tree.newick.contains("(A:1.0000,B:1.0000)")
            || tree.newick.contains("(B:1.0000,A:1.0000)");
        let cd = tree.newick.contains("(C:1.0000,D:1.0000)")
            || tree.newick.contains("(D:1.0000,C:1.0000)");
        assert!(ab && cd, "unexpected topology: {}", tree.newick);
        assert!(tree.newick.ends_with(';'));
    }

    #[test]
    fn nj_two_taxa() {
        let labels: Vec<String> = ["X", "Y"].iter().map(|s| s.to_string()).collect();
        let d = vec![vec![0.0, 3.0], vec![3.0, 0.0]];
        let tree = neighbor_joining(&d, &labels);
        assert!(tree.newick.contains("X:1.5"), "{}", tree.newick);
    }

    #[test]
    fn chou_fasman_separates_helix_and_sheet_formers() {
        // Poly-Glu/Ala/Leu: strong helix formers.
        let helical = Sequence::from_str(0, "EEEEAAAALLLLEEEEAAAA").unwrap();
        let pred_h = chou_fasman(&helical);
        let h_frac = pred_h.chars().filter(|&c| c == 'H').count() as f64 / pred_h.len() as f64;
        assert!(h_frac > 0.8, "helix fraction {h_frac} in {pred_h}");
        // Poly-Val/Ile/Tyr: strong sheet formers.
        let sheet = Sequence::from_str(0, "VVVVIIIIYYYYVVVVIIII").unwrap();
        let pred_e = chou_fasman(&sheet);
        let e_frac = pred_e.chars().filter(|&c| c == 'E').count() as f64 / pred_e.len() as f64;
        assert!(e_frac > 0.8, "sheet fraction {e_frac} in {pred_e}");
        // Poly-Gly/Pro: coil.
        let coil = Sequence::from_str(0, "GGGGPPPPGGGGPPPP").unwrap();
        let pred_c = chou_fasman(&coil);
        assert!(pred_c.chars().all(|c| c == 'C'), "{pred_c}");
    }
}
