//! # bioopera-workloads
//!
//! The paper's workloads, expressed as BioOpera processes:
//!
//! * [`allvsall`] — the **all-vs-all** self-comparison of §4/Fig. 3, in a
//!   *real-compute* mode (alignments actually run; used by the granularity
//!   experiment and the examples) and a *cost-model* mode (TEU durations
//!   synthesized from the same per-cell model; used for the SP38-scale
//!   Table 1 / Figures 5–6 runs);
//! * [`bio`] — the supporting mini-algorithms for the tower of
//!   information: codon translation, ORF finding, distance matrices,
//!   neighbor-joining trees, Chou–Fasman secondary-structure prediction;
//! * [`tower`] — the **tower of information** (§1, Fig. 1) as a nested
//!   BioOpera process over those algorithms;
//! * [`baseline`] — the "manual Perl-script" status quo the paper argues
//!   against: same jobs, same cluster, no persistence, operator-driven
//!   restarts; used by the dependability ablation.
//! * [`chaos`] — the flaky-node chaos scenario exercising the
//!   dependability policies (retry budgets, backoff, quarantine) against
//!   the masked-failure requeue livelock.

pub mod allvsall;
pub mod baseline;
pub mod bio;
pub mod chaos;
pub mod tower;

pub use allvsall::{fixed_pass_with_workers, AllVsAllConfig, AllVsAllMode, AllVsAllSetup};
pub use baseline::{BaselineOutcome, ScriptDriver};
pub use chaos::{flaky_node_run, ChaosConfig, ChaosOutcome};
