//! The manual "script driver" baseline.
//!
//! "In most existing virtual laboratories, storing, manipulating, and
//! keeping track of the computation is done manually through ad-hoc pieces
//! of code ... collections of operating system scripts (mainly Perl
//! scripts) as the glue" (§1).  This module reproduces that status quo on
//! the *same* simulated cluster and failure traces so the dependability
//! ablation can quantify what BioOpera buys:
//!
//! * no persistent execution state: if the driver host dies, every chunk
//!   result since the last *manual* checkpoint is lost and re-run;
//! * no failure detection: killed or silently lost jobs are only noticed
//!   when the operator looks (every `operator_check` of virtual time), and
//!   every such rescue counts as a **manual intervention**;
//! * results that arrive while the shared disk is full are simply lost.

use bioopera_cluster::trace::{Trace, TraceEventKind};
use bioopera_cluster::{Cluster, JobId, JobOutcome, NetworkState, SimKernel, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Baseline tuning.
#[derive(Debug, Clone, Copy)]
pub struct BaselineConfig {
    /// How often the operator eyeballs the run and rescues failed jobs.
    pub operator_check: SimTime,
    /// How often the operator manually coalesces/saves finished results
    /// (the only "checkpoint" the baseline has).
    pub checkpoint_every: SimTime,
    /// Wall-clock pause a manual intervention costs (human reaction).
    pub intervention_delay: SimTime,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            operator_check: SimTime::from_hours(12),
            checkpoint_every: SimTime::from_days(1),
            intervention_delay: SimTime::from_hours(2),
        }
    }
}

/// What the baseline run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineOutcome {
    /// Total wall time until every chunk was done *and* saved.
    pub wall: SimTime,
    /// CPU actually consumed, including wasted re-runs.
    pub cpu_consumed: SimTime,
    /// CPU of work that was thrown away (lost results, re-runs).
    pub cpu_lost: SimTime,
    /// Times a human had to step in.
    pub manual_interventions: u32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ChunkState {
    Pending,
    Running,
    /// Finished but not yet saved by a manual checkpoint.
    DoneUnsaved,
    /// Finished and checkpointed; survives driver crashes.
    Saved,
    /// Killed/lost; waiting for the operator to notice.
    LostUnnoticed,
}

#[derive(Debug, Clone)]
enum Ev {
    JobDone { node: String, generation: u64 },
    Trace(usize),
    OperatorCheck,
    Checkpoint,
}

/// The baseline driver.
pub struct ScriptDriver {
    cfg: BaselineConfig,
}

impl ScriptDriver {
    /// A driver with `cfg`.
    pub fn new(cfg: BaselineConfig) -> Self {
        ScriptDriver { cfg }
    }

    /// Run `chunk_works` (reference-CPU ms each) on `cluster` under
    /// `trace`.
    pub fn run(&self, mut cluster: Cluster, trace: &Trace, chunk_works: &[f64]) -> BaselineOutcome {
        let cfg = self.cfg;
        let mut kernel: SimKernel<Ev> = SimKernel::new();
        let events = trace.sorted_events();
        for (i, ev) in events.iter().enumerate() {
            kernel.schedule_at(ev.at, Ev::Trace(i));
        }
        kernel.schedule_after(cfg.operator_check, Ev::OperatorCheck);
        kernel.schedule_after(cfg.checkpoint_every, Ev::Checkpoint);

        let n = chunk_works.len();
        let mut state = vec![ChunkState::Pending; n];
        let mut queue: VecDeque<usize> = (0..n).collect();
        let mut job_chunk: BTreeMap<JobId, (usize, String)> = BTreeMap::new();
        let mut next_job: JobId = 1;
        let mut driver_up = true;
        let mut disk_full = false;
        let mut suspended = false;
        let mut interventions = 0u32;
        let mut cpu_consumed_ms = 0.0f64;
        let mut cpu_lost_ms = 0.0f64;
        let mut resume_at: Option<SimTime> = None;

        let resync = |cluster: &Cluster, kernel: &mut SimKernel<Ev>| {
            for node in cluster.nodes() {
                if let Some((at, _)) = node.next_completion(kernel.now()) {
                    kernel.schedule_at(
                        at,
                        Ev::JobDone {
                            node: node.spec.name.clone(),
                            generation: node.generation,
                        },
                    );
                }
            }
        };

        loop {
            // Script-style dispatch: fill every free slot.
            if driver_up && !suspended && cluster.network() == NetworkState::Up {
                let paused = resume_at.map(|t| kernel.now() < t).unwrap_or(false);
                if !paused {
                    let mut dispatched = false;
                    let names: Vec<String> = cluster
                        .nodes()
                        .iter()
                        .map(|nd| nd.spec.name.clone())
                        .collect();
                    'outer: for name in names {
                        loop {
                            let node = cluster.node(&name).unwrap();
                            if !node.is_up()
                                || !node.is_reachable()
                                || node.job_count() as u32 >= node.cpus_online()
                            {
                                break;
                            }
                            let Some(chunk) = queue.pop_front() else {
                                break 'outer;
                            };
                            state[chunk] = ChunkState::Running;
                            let job = next_job;
                            next_job += 1;
                            cluster.node_mut(&name).unwrap().start_job(
                                kernel.now(),
                                job,
                                chunk_works[chunk],
                            );
                            job_chunk.insert(job, (chunk, name.clone()));
                            dispatched = true;
                        }
                    }
                    if dispatched {
                        resync(&cluster, &mut kernel);
                    }
                }
            }

            // Done?
            if state.iter().all(|s| *s == ChunkState::Saved) {
                let useful: f64 = chunk_works.iter().sum();
                return BaselineOutcome {
                    wall: kernel.now(),
                    cpu_consumed: SimTime::from_millis(cpu_consumed_ms.round() as u64),
                    cpu_lost: SimTime::from_millis(
                        (cpu_consumed_ms - useful)
                            .max(cpu_lost_ms.min(cpu_consumed_ms))
                            .round() as u64,
                    ),
                    manual_interventions: interventions,
                };
            }

            let Some((at, ev)) = kernel.pop() else {
                // Nothing pending: the operator notices the stall.
                interventions += 1;
                let retry: Vec<usize> = state
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s, ChunkState::LostUnnoticed | ChunkState::Pending))
                    .map(|(i, _)| i)
                    .collect();
                if retry.is_empty() && state.contains(&ChunkState::DoneUnsaved) {
                    // Final manual save.
                    for s in state.iter_mut() {
                        if *s == ChunkState::DoneUnsaved {
                            *s = ChunkState::Saved;
                        }
                    }
                    continue;
                }
                if retry.is_empty() {
                    // Deadlock safety valve (should not happen).
                    panic!("baseline stalled with states {state:?}");
                }
                for c in retry {
                    if state[c] == ChunkState::LostUnnoticed {
                        state[c] = ChunkState::Pending;
                        queue.push_back(c);
                    }
                }
                continue;
            };

            match ev {
                Ev::JobDone { node, generation } => {
                    let Some(nd) = cluster.node_mut(&node) else {
                        continue;
                    };
                    if nd.generation != generation || !nd.is_up() {
                        continue;
                    }
                    let finished = nd.take_finished(at);
                    for (job, outcome) in finished {
                        let Some((chunk, _)) = job_chunk.remove(&job) else {
                            continue;
                        };
                        let cpu = match outcome {
                            JobOutcome::Completed { cpu_ms } => cpu_ms,
                            JobOutcome::Killed => 0.0,
                        };
                        cpu_consumed_ms += cpu;
                        if disk_full || cluster.network() == NetworkState::Down || !driver_up {
                            // The script's output went nowhere.
                            cpu_lost_ms += cpu;
                            state[chunk] = ChunkState::LostUnnoticed;
                        } else {
                            state[chunk] = ChunkState::DoneUnsaved;
                        }
                    }
                    resync(&cluster, &mut kernel);
                }
                Ev::OperatorCheck => {
                    let lost: Vec<usize> = state
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| **s == ChunkState::LostUnnoticed)
                        .map(|(i, _)| i)
                        .collect();
                    if !lost.is_empty() && driver_up {
                        interventions += 1;
                        resume_at = Some(at + cfg.intervention_delay);
                        for c in lost {
                            state[c] = ChunkState::Pending;
                            queue.push_back(c);
                        }
                    }
                    if !state.iter().all(|s| *s == ChunkState::Saved) {
                        kernel.schedule_after(cfg.operator_check, Ev::OperatorCheck);
                    }
                }
                Ev::Checkpoint => {
                    if driver_up {
                        for s in state.iter_mut() {
                            if *s == ChunkState::DoneUnsaved {
                                *s = ChunkState::Saved;
                            }
                        }
                    }
                    if !state.iter().all(|s| *s == ChunkState::Saved) {
                        kernel.schedule_after(cfg.checkpoint_every, Ev::Checkpoint);
                    }
                }
                Ev::Trace(i) => match &events[i].kind {
                    TraceEventKind::NodeDown(name) => {
                        if let Some(nd) = cluster.node_mut(name) {
                            for job in nd.crash(at) {
                                if let Some((chunk, _)) = job_chunk.remove(&job) {
                                    state[chunk] = ChunkState::LostUnnoticed;
                                }
                            }
                        }
                    }
                    TraceEventKind::NodeUp(name) => {
                        if let Some(nd) = cluster.node_mut(name) {
                            nd.recover(at);
                        }
                    }
                    TraceEventKind::AllNodesDown => {
                        for nd in cluster.nodes_mut() {
                            for job in nd.crash(at) {
                                if let Some((chunk, _)) = job_chunk.remove(&job) {
                                    state[chunk] = ChunkState::LostUnnoticed;
                                }
                            }
                        }
                    }
                    TraceEventKind::AllNodesUp => {
                        for nd in cluster.nodes_mut() {
                            nd.recover(at);
                        }
                    }
                    TraceEventKind::NetworkDown => cluster.set_network(NetworkState::Down),
                    TraceEventKind::NetworkUp => cluster.set_network(NetworkState::Up),
                    TraceEventKind::ExternalLoadAll { fraction } => {
                        for nd in cluster.nodes_mut() {
                            let cpus = nd.cpus_online() as f64;
                            nd.set_external_load(at, fraction * cpus);
                        }
                        resync(&cluster, &mut kernel);
                    }
                    TraceEventKind::ExternalLoad { node, cpus } => {
                        if let Some(nd) = cluster.node_mut(node) {
                            nd.set_external_load(at, *cpus);
                        }
                        resync(&cluster, &mut kernel);
                    }
                    TraceEventKind::UpgradeAllTo { cpus } => {
                        for nd in cluster.nodes_mut() {
                            nd.set_cpus(at, *cpus);
                        }
                        resync(&cluster, &mut kernel);
                    }
                    TraceEventKind::ServerCrash => {
                        driver_up = false;
                        // The driver's bookkeeping dies with it: unsaved
                        // results are gone.
                        for (i, s) in state.iter_mut().enumerate() {
                            if *s == ChunkState::DoneUnsaved {
                                cpu_lost_ms += chunk_works[i];
                                *s = ChunkState::LostUnnoticed;
                            }
                        }
                        // Running jobs are orphaned.
                        let names: Vec<String> = cluster
                            .nodes()
                            .iter()
                            .map(|nd| nd.spec.name.clone())
                            .collect();
                        for name in names {
                            let nd = cluster.node_mut(&name).unwrap();
                            let ids = nd.job_ids();
                            for job in ids {
                                nd.abort_job(at, job);
                                if let Some((chunk, _)) = job_chunk.remove(&job) {
                                    state[chunk] = ChunkState::LostUnnoticed;
                                }
                            }
                        }
                    }
                    TraceEventKind::ServerRecover => {
                        driver_up = true;
                        // Restarting the script by hand is an intervention.
                        interventions += 1;
                        resume_at = Some(at + cfg.intervention_delay);
                    }
                    TraceEventKind::OperatorSuspend => {
                        suspended = true;
                        interventions += 1;
                    }
                    TraceEventKind::OperatorResume => suspended = false,
                    TraceEventKind::DiskFull => disk_full = true,
                    TraceEventKind::DiskFreed => {
                        disk_full = false;
                        interventions += 1; // someone had to clean the disk
                    }
                    TraceEventKind::NodeFlaky { node, kills } => {
                        // The manual script cannot tell a flaky node from a
                        // slow one; approximate it as a burst of killed jobs
                        // whose chunks die unnoticed.
                        if let Some(nd) = cluster.node_mut(node) {
                            let victims: Vec<JobId> =
                                nd.job_ids().into_iter().take(*kills as usize).collect();
                            for job in victims {
                                nd.abort_job(at, job);
                                if let Some((chunk, _)) = job_chunk.remove(&job) {
                                    state[chunk] = ChunkState::LostUnnoticed;
                                }
                            }
                        }
                        resync(&cluster, &mut kernel);
                    }
                    TraceEventKind::NodePartition(name) => {
                        // No PEC buffering in the manual world: the rsh
                        // connections die and the running chunks are lost.
                        if let Some(nd) = cluster.node_mut(name) {
                            nd.set_reachable(false);
                            for job in nd.job_ids() {
                                nd.abort_job(at, job);
                                if let Some((chunk, _)) = job_chunk.remove(&job) {
                                    state[chunk] = ChunkState::LostUnnoticed;
                                }
                            }
                        }
                        resync(&cluster, &mut kernel);
                    }
                    TraceEventKind::NodeRejoin(name) => {
                        if let Some(nd) = cluster.node_mut(name) {
                            nd.set_reachable(true);
                        }
                    }
                    TraceEventKind::TaskNonReport { count } => {
                        // Silently lose up to `count` running chunks.
                        let mut left = *count;
                        let victims: Vec<JobId> =
                            job_chunk.keys().copied().take(*count as usize).collect();
                        for job in victims {
                            if left == 0 {
                                break;
                            }
                            if let Some((chunk, node)) = job_chunk.remove(&job) {
                                if let Some(nd) = cluster.node_mut(&node) {
                                    nd.abort_job(at, job);
                                }
                                state[chunk] = ChunkState::LostUnnoticed;
                                left -= 1;
                            }
                        }
                        resync(&cluster, &mut kernel);
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioopera_cluster::NodeSpec;

    fn cluster() -> Cluster {
        Cluster::new(
            "b",
            (0..4)
                .map(|i| NodeSpec::new(format!("n{i}"), 1, 500, "linux"))
                .collect(),
        )
    }

    fn works(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| 3_600_000.0 + (i as f64) * 60_000.0)
            .collect() // ~1 h each
    }

    #[test]
    fn fault_free_run_completes_with_no_interventions_beyond_final_save() {
        let out =
            ScriptDriver::new(BaselineConfig::default()).run(cluster(), &Trace::empty(), &works(8));
        assert!(
            out.manual_interventions <= 1,
            "got {}",
            out.manual_interventions
        );
        assert_eq!(out.cpu_lost, SimTime::ZERO);
        assert!(out.wall >= SimTime::from_hours(2));
    }

    #[test]
    fn node_crash_costs_an_intervention_and_lost_cpu() {
        let mut trace = Trace::empty();
        trace.push(
            SimTime::from_mins(30),
            TraceEventKind::NodeDown("n0".into()),
        );
        trace.push(SimTime::from_hours(20), TraceEventKind::NodeUp("n0".into()));
        let out = ScriptDriver::new(BaselineConfig::default()).run(cluster(), &trace, &works(8));
        assert!(out.manual_interventions >= 1);
        // The killed job's partial CPU is wasted.
        assert!(out.cpu_consumed > SimTime::from_hours(8));
    }

    #[test]
    fn driver_crash_loses_unsaved_results() {
        let mut trace = Trace::empty();
        // Crash after some chunks finished but before the daily checkpoint.
        trace.push(SimTime::from_hours(5), TraceEventKind::ServerCrash);
        trace.push(SimTime::from_hours(8), TraceEventKind::ServerRecover);
        let out = ScriptDriver::new(BaselineConfig::default()).run(cluster(), &trace, &works(8));
        assert!(
            out.cpu_lost > SimTime::ZERO,
            "unsaved results must be re-run"
        );
        assert!(out.manual_interventions >= 1);
    }

    #[test]
    fn baseline_is_deterministic() {
        let mut trace = Trace::empty();
        trace.push(SimTime::from_hours(2), TraceEventKind::AllNodesDown);
        trace.push(SimTime::from_hours(4), TraceEventKind::AllNodesUp);
        let a = ScriptDriver::new(BaselineConfig::default()).run(cluster(), &trace, &works(6));
        let b = ScriptDriver::new(BaselineConfig::default()).run(cluster(), &trace, &works(6));
        assert_eq!(a, b);
    }
}
