//! **Figure 5** — "Lifecycle of the all-vs-all (first run): WALL time (in
//! days) vs processor availability and utilization", on the shared
//! cluster with the paper's ten numbered events.
//!
//! Prints the availability/utilization series as an ASCII chart (and CSV),
//! plus the labeled event log with the engine's reaction to each event —
//! the reproduction of the paper's event-by-event discussion in §5.4.
//! The chart, CSV and counters all come from the awareness layer's shared
//! rollup/index API; a machine-readable [`bioopera_core::RunReport`] is
//! written alongside them.

use bioopera_bench::{ascii_lifecycle, run_allvsall, write_results};
use bioopera_cluster::{Cluster, SimTime, Trace};
use bioopera_core::series_csv;
use bioopera_workloads::allvsall::{AllVsAllConfig, AllVsAllSetup};
use std::fmt::Write;

fn main() {
    let setup = AllVsAllSetup::synthetic(
        75_458,
        370,
        38,
        AllVsAllConfig {
            teus: 500,
            ..Default::default()
        },
    );
    eprintln!("running the shared-cluster all-vs-all (this simulates ~5 weeks)...");
    let out = run_allvsall(
        &setup,
        Cluster::shared_pool(),
        &Trace::shared_run(),
        SimTime::from_hours(2),
    );
    let rt = &out.runtime;
    let stats = rt.stats(out.instance).expect("stats");

    println!("Figure 5: lifecycle of the all-vs-all (first run, shared cluster)\n");
    let chart = ascii_lifecycle(rt.series(), 110, 18);
    println!("{chart}");

    println!("Event log (trace labels + engine reactions):");
    let mut log = String::new();
    for (at, msg) in rt.event_log() {
        let line = format!("  day {:>5.1}  {msg}", at.as_days_f64());
        println!("{line}");
        let _ = writeln!(log, "{line}");
    }
    let idx = rt.awareness().index();
    let masked = idx.count("task.systemfail");
    let failures = idx.count("node.crash");
    let restarts = rt.auto_restarts();
    println!();
    println!("WALL(P) = {}   CPU(P) = {}", stats.wall, stats.cpu);
    println!("masked system failures (auto re-queued TEUs): {masked}");
    println!(
        "node crashes observed: {failures}; operator restarts for non-reporting TEUs: {restarts}"
    );

    // CSV for external plotting (same rendering the awareness layer uses).
    write_results("fig5_series.csv", &series_csv(rt.series()));
    write_results(
        "fig5_shared_lifecycle.txt",
        &format!(
            "{chart}\n{log}\nWALL={} CPU={} masked_failures={masked} node_crashes={failures} auto_restarts={restarts}\n",
            stats.wall, stats.cpu
        ),
    );
    let report = rt.run_report(SimTime::from_hours(12));
    write_results(
        "fig5_report.json",
        &serde_json::to_string(&report).expect("serialize run report"),
    );
}
