//! **Scheduling ablation** — the dispatcher's "scheduling and load
//! balancing policy in use" (§3.2) is pluggable; this bench compares the
//! policies on the shared-cluster workload, where the paper observed that
//! load-blind placement wastes capacity whenever external users fill
//! machines after dispatch (§5.4).

use bioopera_bench::{fmt_days, write_results};
use bioopera_cluster::{Cluster, SimTime, Trace};
use bioopera_core::{
    AvoidSaturated, FastestFit, LeastLoaded, RoundRobin, Runtime, RuntimeConfig, SchedulingPolicy,
};
use bioopera_store::MemDisk;
use bioopera_workloads::allvsall::{AllVsAllConfig, AllVsAllSetup};
use std::fmt::Write;

/// External users fill linneus2..13 (fast PCs) until day 90, leaving
/// linneus1 plus the slower Suns free.  A load-aware policy routes TEUs to
/// the slow-but-free machines and finishes; a speed-greedy or load-blind
/// one parks them on starved fast machines until the external users leave
/// — the paper's §5.4 mis-scheduling case, made stationary.
fn skewed_trace() -> Trace {
    let mut t = Trace::empty();
    for i in 2..=13 {
        t.push(
            SimTime::ZERO,
            bioopera_cluster::TraceEventKind::ExternalLoad {
                node: format!("linneus{i}"),
                cpus: 2.0,
            },
        );
        t.push(
            SimTime::from_days(90),
            bioopera_cluster::TraceEventKind::ExternalLoad {
                node: format!("linneus{i}"),
                cpus: 0.0,
            },
        );
    }
    t
}

fn run_with(policy: Box<dyn SchedulingPolicy>) -> (String, String, &'static str) {
    let setup = AllVsAllSetup::synthetic(
        20_000,
        370,
        38,
        AllVsAllConfig {
            teus: 12,
            ..Default::default()
        },
    );
    let name = policy.name();
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_hours(2),
        policy,
        ..Default::default()
    };
    let mut rt = Runtime::new(
        MemDisk::new(),
        Cluster::shared_pool(),
        setup.library.clone(),
        cfg,
    )
    .unwrap();
    rt.register_template(&setup.chunk_template).unwrap();
    rt.register_template(&setup.template).unwrap();
    rt.install_trace(&skewed_trace());
    let id = rt.submit("AllVsAll", setup.initial()).unwrap();
    rt.run_to_completion().unwrap();
    let stats = rt.stats(id).unwrap();
    (fmt_days(stats.wall), fmt_days(stats.cpu), name)
}

fn main() {
    println!("Scheduling-policy ablation (12 TEUs on the shared pool; external\nusers fill the fast linneus2..13 PCs until day 90)\n");
    let mut t = String::new();
    let _ = writeln!(t, "{:<16} {:>16} {:>16}", "policy", "WALL", "CPU");
    for policy in [
        Box::new(LeastLoaded) as Box<dyn SchedulingPolicy>,
        Box::new(FastestFit),
        Box::<RoundRobin>::default(),
        Box::new(AvoidSaturated::new(LeastLoaded, 0.95)),
    ] {
        let (wall, cpu, name) = run_with(policy);
        let _ = writeln!(t, "{name:<16} {wall:>16} {cpu:>16}");
    }
    println!("{t}");
    println!(
        "every eager policy eventually parks overflow TEUs on saturated nodes\n\
         and waits for the external users to leave (the paper's mis-scheduling\n\
         case); deferring dispatch when all candidates are saturated\n\
         (avoid-saturated) finishes ~15x sooner on slower-but-free machines.\n\
         Reacting *after* dispatch needs migration: see ablation_migration."
    );
    write_results("ablation_scheduling.txt", &t);
}
