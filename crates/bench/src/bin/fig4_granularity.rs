//! **Figure 4** — "Impact of the granularity level (# of TEUs) on CPU and
//! WALL times (seconds) for the 500 vs. 500 on the ik-sun cluster."
//!
//! A 500-entry all-vs-all is run to completion once per TEU count on the
//! simulated 5-CPU ik-sun cluster in exclusive mode.  Expected shape
//! (paper §5.3):
//!
//! * CPU time grows slowly with the TEU count, then roughly **doubles** by
//!   n = 500 — the Darwin interpreter's start-up cost repeated per TEU;
//! * WALL time falls through segment S1 (more parallelism), is flat and
//!   minimal around **n ≈ 25** — *not* at n = #CPUs = 5, because TEU sizes
//!   differ and the final merge waits for the longest TEU (stragglers) —
//!   and rises again in S3 as overhead dominates.

use bioopera_bench::{ascii_fig4, run_allvsall, write_results};
use bioopera_cluster::{Cluster, SimTime, Trace};
use bioopera_workloads::allvsall::{AllVsAllConfig, AllVsAllSetup};
use std::fmt::Write;

fn main() {
    let teu_counts = [
        1usize, 2, 5, 10, 15, 20, 25, 50, 100, 150, 200, 250, 300, 400, 500,
    ];
    let mut rows: Vec<(usize, f64, f64)> = Vec::new();

    println!("Figure 4: granularity sweep, 500 vs 500 on ik-sun (5 CPUs, exclusive)\n");
    println!("{:>6} {:>12} {:>12}", "# TEUs", "CPU (s)", "WALL (s)");
    for &n in &teu_counts {
        let setup = AllVsAllSetup::synthetic(
            500,
            370,
            38,
            AllVsAllConfig {
                teus: n as i64,
                ..Default::default()
            },
        );
        let out = run_allvsall(
            &setup,
            Cluster::ik_sun(),
            &Trace::empty(),
            SimTime::from_secs(30),
        );
        let stats = out.runtime.stats(out.instance).expect("stats");
        let cpu_s = stats.cpu.as_millis() as f64 / 1000.0;
        let wall_s = stats.wall.as_millis() as f64 / 1000.0;
        println!("{n:>6} {cpu_s:>12.0} {wall_s:>12.0}");
        rows.push((n, cpu_s, wall_s));
    }

    // Segment analysis as in the paper.
    let cpu_at = |n: usize| rows.iter().find(|r| r.0 == n).unwrap().1;
    let wall_at = |n: usize| rows.iter().find(|r| r.0 == n).unwrap().2;
    let (best_n, best_wall) = rows
        .iter()
        .map(|r| (r.0, r.2))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "# Figure 4 reproduction — granularity level vs CPU/WALL"
    );
    let _ = writeln!(report, "# teus, cpu_seconds, wall_seconds");
    for (n, c, w) in &rows {
        let _ = writeln!(report, "{n}, {c:.0}, {w:.0}");
    }
    let _ = writeln!(report);
    let _ = writeln!(report, "CPU(1 TEU)      = {:.0} s", cpu_at(1));
    let _ = writeln!(
        report,
        "CPU(500 TEUs)   = {:.0} s  ({:.2}x — Darwin init repeated 500 times)",
        cpu_at(500),
        cpu_at(500) / cpu_at(1)
    );
    let _ = writeln!(
        report,
        "WALL(1 TEU)     = {:.0} s (no parallelism)",
        wall_at(1)
    );
    let _ = writeln!(
        report,
        "WALL minimum    = {best_wall:.0} s at n = {best_n} TEUs (paper: n = 25, not #CPUs = 5)"
    );
    let _ = writeln!(
        report,
        "WALL(5 TEUs)    = {:.0} s vs WALL(25 TEUs) = {:.0} s — the straggler effect (S2)",
        wall_at(5),
        wall_at(25)
    );
    let _ = writeln!(
        report,
        "WALL(500 TEUs)  = {:.0} s — fine-grain overhead regime (S3)",
        wall_at(500)
    );
    let chart = ascii_fig4(&rows, 72, 16);
    let _ = writeln!(report, "\n{chart}");
    println!("\n{chart}");
    println!("WALL minimum at n = {best_n} TEUs ({best_wall:.0} s); CPU doubling factor {:.2}x at n = 500",
        cpu_at(500) / cpu_at(1));
    write_results("fig4_granularity.txt", &report);

    // Shape assertions (soft: warn instead of panic so the figure always
    // prints).
    if cpu_at(500) <= 1.6 * cpu_at(1) {
        eprintln!("WARNING: CPU at 500 TEUs did not ~double vs 1 TEU");
    }
    if !(best_n > 5 && best_n <= 100) {
        eprintln!("WARNING: WALL minimum at {best_n}, expected an intermediate granularity");
    }
}
