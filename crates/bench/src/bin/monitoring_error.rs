//! **§3.4 claim** — "an adaptive strategy discarding 80 % of the samples
//! before they are sent to the BioOpera server induces an average 1 %
//! error per sample when we compare the load curve as seen by the server
//! to the actual load curve."
//!
//! Replays seeded synthetic node-load curves (stable plateaus + bursty
//! regions) through the two-cut-off adaptive monitor across a parameter
//! sweep, reporting the discard fraction and the mean per-sample error,
//! then highlights the operating points around the paper's numbers.

use bioopera_cluster::loadgen::{load_curve, LoadModel};
use bioopera_cluster::monitor::{evaluate, MonitorConfig};
use std::fmt::Write;

fn main() {
    // One long curve per "node"; average metrics over several nodes.
    let curves: Vec<Vec<f64>> = (0..8)
        .map(|i| load_curve(2000 + i, 100_000, &LoadModel::default()))
        .collect();

    println!("Adaptive load monitoring: discard fraction vs server-view error");
    println!("(sweep over the two cut-off levels of §3.4)\n");
    println!(
        "{:>10} {:>10} {:>12} {:>14} {:>12} {:>12}",
        "stab.cut", "rep.cut", "max.intvl", "discarded (%)", "mean err (%)", "max err (%)"
    );

    let mut report = String::from(
        "# stability_cutoff, report_cutoff, max_interval, discard_pct, mean_err_pct, max_err_pct\n",
    );
    let mut best_claim: Option<(f64, f64)> = None;
    for &max_interval in &[8u32, 32, 64] {
        for &stab in &[0.005f64, 0.01, 0.02, 0.05] {
            for &rep in &[0.01f64, 0.02, 0.04, 0.08] {
                let cfg = MonitorConfig {
                    min_interval: 1,
                    max_interval,
                    stability_cutoff: stab,
                    report_cutoff: rep,
                };
                let mut discard = 0.0;
                let mut err = 0.0;
                let mut maxe = 0.0f64;
                for c in &curves {
                    let r = evaluate(c, cfg);
                    discard += r.discard_fraction;
                    err += r.mean_abs_error_pct;
                    maxe = maxe.max(r.max_error_pct);
                }
                discard = discard / curves.len() as f64 * 100.0;
                err /= curves.len() as f64;
                println!(
                    "{stab:>10.3} {rep:>10.3} {max_interval:>12} {discard:>14.1} {err:>12.2} {maxe:>12.1}"
                );
                let _ = writeln!(
                    report,
                    "{stab}, {rep}, {max_interval}, {discard:.1}, {err:.2}, {maxe:.1}"
                );
                // Track the point closest to the paper's claim (>=75 %
                // discarded with minimal error).
                if discard >= 75.0 && best_claim.map(|(_, e)| err < e).unwrap_or(true) {
                    best_claim = Some((discard, err));
                }
            }
        }
    }
    println!();
    match best_claim {
        Some((d, e)) => {
            println!(
                "paper's operating point: discarding {d:.0} % of samples costs {e:.2} % mean error\n\
                 (paper: 80 % discarded => ~1 % average error per sample)"
            );
            let _ = writeln!(report, "# claim: discard {d:.1}% -> mean err {e:.2}%");
            if e > 3.0 {
                eprintln!("WARNING: error above the expected ~1-2 % band");
            }
        }
        None => eprintln!("WARNING: no configuration discarded >= 75 % of samples"),
    }
    bioopera_bench::write_results("monitoring_error.txt", &report);
}
