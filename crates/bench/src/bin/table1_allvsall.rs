//! **Table 1** — "Performance of the all-vs-all on SP38 for the two
//! experiments": the shared-cluster run (linneus + 2×ik-sun, nice mode,
//! Dec 17 – Jan 23) and the non-shared run (ik-linux, May 31 – Jul 21).
//!
//! Reported exactly as in the paper: max # of CPUs, `CPU(Π)`, `WALL(Π)`,
//! and `CPU(A) = CPU(Π)/|Π|`.  Absolute numbers depend on the cost-model
//! calibration (documented in `EXPERIMENTS.md`); the claims being
//! reproduced are the *shape*: both runs complete despite the failure
//! traces, wall time is tens of days (vs months for the manual baseline),
//! and the shared run shows a large availability-utilization gap.

use bioopera_bench::{fmt_days, run_allvsall};
use bioopera_cluster::{Cluster, SimTime, Trace};
use bioopera_workloads::allvsall::{AllVsAllConfig, AllVsAllSetup};
use std::fmt::Write;

/// SP38 size (paper §2: Swiss-Prot v38 contains ~75 458 sequences).
pub const SP38_N: usize = 75_458;

fn run(shared: bool) -> (String, String, String, u32) {
    let setup = AllVsAllSetup::synthetic(
        SP38_N,
        370,
        38,
        AllVsAllConfig {
            teus: 500,
            ..Default::default()
        },
    );
    let (cluster, trace) = if shared {
        (Cluster::shared_pool(), Trace::shared_run())
    } else {
        (Cluster::ik_linux(), Trace::nonshared_run())
    };
    let out = run_allvsall(&setup, cluster, &trace, SimTime::from_hours(2));
    let stats = out.runtime.stats(out.instance).expect("stats");
    (
        fmt_days(stats.cpu),
        fmt_days(stats.wall),
        fmt_days(stats.cpu_per_activity),
        stats.max_cpus_used,
    )
}

fn main() {
    println!("Table 1: all-vs-all on SP38 (N = {SP38_N}, 500 TEUs)\n");
    eprintln!("running shared-cluster experiment (Figure 5 trace)...");
    let (cpu_s, wall_s, cpua_s, max_s) = run(true);
    eprintln!("running non-shared experiment (Figure 6 trace)...");
    let (cpu_n, wall_n, cpua_n, max_n) = run(false);

    let mut t = String::new();
    let _ = writeln!(
        t,
        "{:<16} {:>20} {:>20}",
        "", "Shared cluster", "Non-shared cluster"
    );
    let _ = writeln!(t, "{:<16} {:>20} {:>20}", "Max # of CPUs", max_s, max_n);
    let _ = writeln!(t, "{:<16} {:>20} {:>20}", "CPU(P)", cpu_s, cpu_n);
    let _ = writeln!(t, "{:<16} {:>20} {:>20}", "WALL(P)", wall_s, wall_n);
    let _ = writeln!(t, "{:<16} {:>20} {:>20}", "CPU(A)", cpua_s, cpua_n);
    println!("{t}");
    println!(
        "(paper: 31 vs 16 CPUs; WALL 38 vs ~51 days; previous manual efforts\n\
         needed months for mere updates — see ablation_baseline for that row)"
    );
    bioopera_bench::write_results("table1_allvsall.txt", &t);
}
