//! **Checkpoint-granularity ablation** — §3.3: "since checkpointing is
//! done for complete activities, smaller activities result in less work
//! lost when failures occur."
//!
//! The same workload runs under an aggressive node-crash schedule at
//! several TEU granularities; we measure the wasted CPU (work re-executed
//! because an in-flight TEU was killed) and the wall time.

use bioopera_bench::{fmt_days, write_results};
use bioopera_cluster::{Cluster, NodeSpec, SimTime, Trace, TraceEventKind};
use bioopera_core::{Runtime, RuntimeConfig};
use bioopera_store::MemDisk;
use bioopera_workloads::allvsall::{AllVsAllConfig, AllVsAllSetup};
use std::fmt::Write;

fn cluster() -> Cluster {
    Cluster::new(
        "ck",
        (0..6)
            .map(|i| NodeSpec::new(format!("n{i}"), 1, 500, "linux"))
            .collect(),
    )
}

/// One node crashes (and recovers 1 h later) every 5 h, round-robin.
fn crashy_trace(crashes: u64) -> Trace {
    let mut t = Trace::empty();
    for d in 0..crashes {
        let node = format!("n{}", d % 6);
        let at = SimTime::from_hours(5 * d + 3);
        t.push(at, TraceEventKind::NodeDown(node.clone()));
        t.push(at + SimTime::from_hours(1), TraceEventKind::NodeUp(node));
    }
    t
}

fn main() {
    println!("Checkpoint granularity vs lost work under repeated node crashes\n");
    let mut t = String::new();
    let _ = writeln!(
        t,
        "{:>8} {:>14} {:>14} {:>16} {:>12}",
        "# TEUs", "WALL", "CPU(done)", "lost CPU", "re-runs"
    );
    for &teus in &[6i64, 12, 24, 48, 96, 192] {
        let setup = AllVsAllSetup::synthetic(
            8_000,
            370,
            38,
            AllVsAllConfig {
                teus,
                ..Default::default()
            },
        );
        let cfg = RuntimeConfig {
            heartbeat: SimTime::from_hours(2),
            ..Default::default()
        };
        let mut rt = Runtime::new(MemDisk::new(), cluster(), setup.library.clone(), cfg).unwrap();
        rt.register_template(&setup.chunk_template).unwrap();
        rt.register_template(&setup.template).unwrap();
        rt.install_trace(&crashy_trace(48));
        let id = rt.submit("AllVsAll", setup.initial()).unwrap();
        rt.run_to_completion().unwrap();
        let stats = rt.stats(id).unwrap();
        let lost = SimTime::from_millis(rt.cluster().wasted_cpu_ms().round() as u64);
        let reruns = rt
            .awareness()
            .of_kind(rt.store(), "task.systemfail")
            .map(|v| v.len())
            .unwrap_or(0);
        let _ = writeln!(
            t,
            "{teus:>8} {:>14} {:>14} {:>16} {reruns:>12}",
            fmt_days(stats.wall),
            fmt_days(stats.cpu),
            fmt_days(lost),
        );
    }
    println!("{t}");
    println!(
        "expected shape: coarse TEUs lose large in-flight chunks to every crash\n\
         (more lost CPU per kill); very fine TEUs pay Darwin-init overhead in\n\
         CPU(done) instead.  \"Since checkpointing is done for complete\n\
         activities, smaller activities result in less work lost\" (§3.3)."
    );
    write_results("ablation_checkpoint.txt", &t);
}
