//! **Figure 6** — "Lifecycle of the all-vs-all (second run): WALL time vs
//! processor availability and utilization", on the dedicated ik-linux
//! cluster: two planned network outages and the mid-run OS configuration
//! change that doubles the processors per node — "once the number of
//! processors doubled, BioOpera took advantage of the available CPU power
//! immediately".
//!
//! Chart, CSV and the before/after-upgrade comparison all come from the
//! awareness layer's shared rollup API; a machine-readable
//! [`bioopera_core::RunReport`] is written alongside them.

use bioopera_bench::{ascii_lifecycle, run_allvsall, write_results};
use bioopera_cluster::{Cluster, SimTime, Trace};
use bioopera_core::{mean_utilization_where, series_csv};
use bioopera_workloads::allvsall::{AllVsAllConfig, AllVsAllSetup};
use std::fmt::Write;

fn main() {
    let setup = AllVsAllSetup::synthetic(
        75_458,
        370,
        38,
        AllVsAllConfig {
            teus: 500,
            ..Default::default()
        },
    );
    eprintln!("running the non-shared all-vs-all (ik-linux)...");
    let out = run_allvsall(
        &setup,
        Cluster::ik_linux(),
        &Trace::nonshared_run(),
        SimTime::from_hours(2),
    );
    let rt = &out.runtime;
    let stats = rt.stats(out.instance).expect("stats");

    println!("Figure 6: lifecycle of the all-vs-all (second run, non-shared ik-linux)\n");
    let chart = ascii_lifecycle(rt.series(), 110, 18);
    println!("{chart}");
    println!("Event log:");
    let mut log = String::new();
    for (at, msg) in rt.event_log() {
        let line = format!("  day {:>5.1}  {msg}", at.as_days_f64());
        println!("{line}");
        let _ = writeln!(log, "{line}");
    }
    println!();
    println!("WALL(P) = {}   CPU(P) = {}", stats.wall, stats.cpu);

    // Verify the headline behaviors of the second run.
    let before = mean_utilization_where(rt.series(), |s| (5.0..9.5).contains(&s.at.as_days_f64()));
    let after = mean_utilization_where(rt.series(), |s| {
        s.at.as_days_f64() > 25.5 && s.utilization > 0.0
    });
    println!(
        "mean utilization before upgrade (day 5-9.5): {before:.1} CPUs; after upgrade: {after:.1} CPUs"
    );
    if after < 1.5 * before {
        eprintln!("WARNING: expected utilization to roughly double after the upgrade");
    }

    write_results("fig6_series.csv", &series_csv(rt.series()));
    write_results(
        "fig6_nonshared_lifecycle.txt",
        &format!("{chart}\n{log}\nWALL={} CPU={}\n", stats.wall, stats.cpu),
    );
    let report = rt.run_report(SimTime::from_hours(12));
    write_results(
        "fig6_report.json",
        &serde_json::to_string(&report).expect("serialize run report"),
    );
}
