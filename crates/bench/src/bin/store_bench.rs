//! **Storage engine benchmark** — before/after numbers for the store
//! hot-path overhaul, on identical workloads and the identical on-disk
//! format.
//!
//! "Before" is [`bioopera_bench::store_baseline`], a faithful replica of
//! the pre-overhaul engine (global mutex, allocating lookups, bytewise
//! CRC, copying replay, clone-all compaction).  "After" is the real
//! [`bioopera_store::Store`].  Measured:
//!
//! * put throughput (batched commits) and the group-commit variant,
//! * single-thread and 4-thread concurrent get+scan throughput,
//! * WAL replay wall time vs record count (the recovery path),
//! * compaction wall time (snapshot encode + epoch roll).
//!
//! Each metric is timed per pass, variants interleaved, and the minimum
//! over `STORE_BENCH_REPEATS` passes reported (host interference only
//! ever slows a pass down).  Writes `results/BENCH_store.json`.
//!
//! `STORE_BENCH_SMOKE=1` shrinks the workload for CI; in every mode the
//! run **fails loudly** (non-zero exit) if replay shows a regression
//! (speedup below the floor), so a slowdown cannot slip through a green
//! check.

use bioopera_bench::store_baseline::{encode_frame_bytewise, replay_copying, BaselineStore};
use bioopera_bench::write_results;
use bioopera_store::wal::{self, WalOp};
use bioopera_store::{Batch, MemDisk, Space, Store};
use bytes::Bytes;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Metric {
    name: String,
    unit: String,
    workload: String,
    before: f64,
    after: f64,
    /// `after / before` for throughputs, `before_time / after_time` for
    /// wall times — always "higher is better for the new engine".
    speedup: f64,
}

#[derive(Serialize)]
struct BenchReport {
    smoke: bool,
    repeats: u32,
    records: usize,
    value_bytes: usize,
    readers: usize,
    /// Hardware threads on the bench host.  On a single-core host the
    /// concurrent metrics measure lock overhead under forced context
    /// switching, not parallel scaling.
    host_cpus: usize,
    baseline: String,
    metrics: Vec<Metric>,
    /// Metrics with speedup >= 2.0 (the acceptance bar asks for two of:
    /// concurrent-read throughput, WAL replay time, compaction time).
    at_least_2x: Vec<String>,
}

struct Config {
    smoke: bool,
    repeats: u32,
    /// Records in the resident set (and in the replay log).
    records: usize,
    /// Value payload size; History-event scale.
    value_bytes: usize,
    /// Reads per thread in the read benchmarks.
    reads: usize,
    readers: usize,
    /// Batches in the put benchmark.
    put_batches: usize,
    put_batch_ops: usize,
}

impl Config {
    fn from_env() -> Config {
        let smoke = std::env::var("STORE_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
        let repeats = std::env::var("STORE_BENCH_REPEATS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if smoke { 2 } else { 5 });
        if smoke {
            Config {
                smoke,
                repeats,
                records: 4_000,
                value_bytes: 256,
                reads: 20_000,
                readers: 4,
                put_batches: 500,
                put_batch_ops: 8,
            }
        } else {
            Config {
                smoke,
                repeats,
                records: 20_000,
                value_bytes: 512,
                reads: 200_000,
                readers: 4,
                put_batches: 2_000,
                put_batch_ops: 8,
            }
        }
    }
}

fn key(i: usize) -> String {
    format!("inst/{:06}/task/t{:02}", i / 16, i % 16)
}

fn ops_for(i: usize, value_bytes: usize) -> Vec<WalOp> {
    vec![WalOp::Put {
        space: 1,
        key: key(i),
        value: Bytes::from(vec![(i % 251) as u8; value_bytes]),
    }]
}

/// Min wall-seconds over `repeats` interleaved passes of two workloads.
fn race(repeats: u32, mut before: impl FnMut(), mut after: impl FnMut()) -> (f64, f64) {
    // One untimed warm-up each.
    before();
    after();
    let (mut b_best, mut a_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..repeats {
        let t = Instant::now();
        before();
        b_best = b_best.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        after();
        a_best = a_best.min(t.elapsed().as_secs_f64());
    }
    (b_best, a_best)
}

/// Populate both engines with the same record set.
fn populate(cfg: &Config) -> (BaselineStore<MemDisk>, Store<MemDisk>) {
    let old = BaselineStore::open(MemDisk::new());
    let new = Store::open(MemDisk::new()).unwrap();
    for i in 0..cfg.records {
        old.apply(ops_for(i, cfg.value_bytes)).unwrap();
        let mut b = Batch::new();
        b.put(
            Space::Instance,
            key(i),
            Bytes::from(vec![(i % 251) as u8; cfg.value_bytes]),
        );
        new.apply(b).unwrap();
    }
    (old, new)
}

fn main() {
    let cfg = Config::from_env();
    eprintln!(
        "store_bench: {} records x {}B, {} readers, {} passes{}",
        cfg.records,
        cfg.value_bytes,
        cfg.readers,
        cfg.repeats,
        if cfg.smoke { " (smoke)" } else { "" }
    );
    let mut metrics: Vec<Metric> = Vec::new();

    // ---- put throughput (batched single commits) --------------------
    {
        let total_ops = (cfg.put_batches * cfg.put_batch_ops) as f64;
        let value = vec![0x5A; cfg.value_bytes];
        let (b, a) = race(
            cfg.repeats,
            || {
                let store = BaselineStore::open(MemDisk::new());
                for i in 0..cfg.put_batches {
                    let ops: Vec<WalOp> = (0..cfg.put_batch_ops)
                        .map(|j| WalOp::Put {
                            space: 1,
                            key: key(i * cfg.put_batch_ops + j),
                            value: Bytes::from(value.clone()),
                        })
                        .collect();
                    store.apply(ops).unwrap();
                }
            },
            || {
                let store = Store::open(MemDisk::new()).unwrap();
                for i in 0..cfg.put_batches {
                    let mut batch = Batch::new();
                    for j in 0..cfg.put_batch_ops {
                        batch.put(
                            Space::Instance,
                            key(i * cfg.put_batch_ops + j),
                            Bytes::from(value.clone()),
                        );
                    }
                    store.apply(batch).unwrap();
                }
            },
        );
        metrics.push(Metric {
            name: "put_throughput".into(),
            unit: "ops/s".into(),
            workload: format!("{} batches x {} puts", cfg.put_batches, cfg.put_batch_ops),
            before: total_ops / b,
            after: total_ops / a,
            speedup: b / a,
        });

        // Group commit: the same ops through apply_many, 8 batches per
        // append (no baseline equivalent existed; before = single-commit
        // path of the old engine).
        let t = Instant::now();
        let store = Store::open(MemDisk::new()).unwrap();
        for i in 0..cfg.put_batches / 8 {
            let group: Vec<Batch> = (0..8)
                .map(|g| {
                    let mut batch = Batch::new();
                    for j in 0..cfg.put_batch_ops {
                        batch.put(
                            Space::Instance,
                            key((i * 8 + g) * cfg.put_batch_ops + j),
                            Bytes::from(value.clone()),
                        );
                    }
                    batch
                })
                .collect();
            store.apply_many(group).unwrap();
        }
        let group_secs = t.elapsed().as_secs_f64();
        let group_ops = (cfg.put_batches / 8 * 8 * cfg.put_batch_ops) as f64;
        metrics.push(Metric {
            name: "group_commit_throughput".into(),
            unit: "ops/s".into(),
            workload: "same puts, 8 batches coalesced per disk append".into(),
            before: total_ops / b,
            after: group_ops / group_secs,
            speedup: (group_ops / group_secs) / (total_ops / b),
        });
    }

    // ---- read throughput, single-thread and concurrent --------------
    {
        let (old, new) = populate(&cfg);
        // Keys are pre-built outside the timed region so the metric is the
        // engine's lookup path, not `format!`.
        let keys: Vec<String> = (0..cfg.records).map(key).collect();
        let prefixes: Vec<String> = (0..cfg.records / 16)
            .map(|g| format!("inst/{g:06}/"))
            .collect();
        let keys = &keys;
        let prefixes = &prefixes;
        let single_reads = cfg.reads as f64;
        let (b, a) = race(
            cfg.repeats,
            || {
                for r in 0..cfg.reads {
                    let i = (r * 7919) % cfg.records;
                    assert!(old.get(1, &keys[i]).is_some());
                }
            },
            || {
                for r in 0..cfg.reads {
                    let i = (r * 7919) % cfg.records;
                    assert!(new.get(Space::Instance, &keys[i]).unwrap().is_some());
                }
            },
        );
        metrics.push(Metric {
            name: "get_throughput_single".into(),
            unit: "ops/s".into(),
            workload: format!("{} point gets over {} records", cfg.reads, cfg.records),
            before: single_reads / b,
            after: single_reads / a,
            speedup: b / a,
        });

        let total_reads = (cfg.reads * cfg.readers) as f64;
        let run_old = || {
            std::thread::scope(|s| {
                for t in 0..cfg.readers {
                    let old = old.clone();
                    s.spawn(move || {
                        for r in 0..cfg.reads {
                            let i = (r * 7919 + t * 13) % cfg.records;
                            assert!(old.get(1, &keys[i]).is_some());
                        }
                    });
                }
            });
        };
        let run_new = || {
            std::thread::scope(|s| {
                for t in 0..cfg.readers {
                    let new = new.clone();
                    s.spawn(move || {
                        for r in 0..cfg.reads {
                            let i = (r * 7919 + t * 13) % cfg.records;
                            assert!(new.get(Space::Instance, &keys[i]).unwrap().is_some());
                        }
                    });
                }
            });
        };
        let (b, a) = race(cfg.repeats, run_old, run_new);
        metrics.push(Metric {
            name: "get_throughput_concurrent".into(),
            unit: "ops/s".into(),
            workload: format!(
                "{} threads x {} point gets over {} records",
                cfg.readers, cfg.reads, cfg.records
            ),
            before: total_reads / b,
            after: total_reads / a,
            speedup: b / a,
        });

        // Concurrent prefix scans (each ~16 records).
        let scans = cfg.reads / 16;
        let total_scans = (scans * cfg.readers) as f64;
        let (b, a) = race(
            cfg.repeats,
            || {
                std::thread::scope(|s| {
                    for t in 0..cfg.readers {
                        let old = old.clone();
                        s.spawn(move || {
                            for r in 0..scans {
                                let i = (r * 7919 + t * 13) % cfg.records;
                                assert!(!old.scan_prefix(1, &prefixes[i / 16]).is_empty());
                            }
                        });
                    }
                });
            },
            || {
                std::thread::scope(|s| {
                    for t in 0..cfg.readers {
                        let new = new.clone();
                        s.spawn(move || {
                            for r in 0..scans {
                                let i = (r * 7919 + t * 13) % cfg.records;
                                assert!(!new
                                    .scan_prefix(Space::Instance, &prefixes[i / 16])
                                    .unwrap()
                                    .is_empty());
                            }
                        });
                    }
                });
            },
        );
        metrics.push(Metric {
            name: "scan_throughput_concurrent".into(),
            unit: "scans/s".into(),
            workload: format!("{} threads x {} 16-record prefix scans", cfg.readers, scans),
            before: total_scans / b,
            after: total_scans / a,
            speedup: b / a,
        });
    }

    // ---- WAL replay time vs record count ----------------------------
    let replay_speedup;
    {
        // One shared byte image, written in the common format (the
        // baseline encoder is bit-identical; asserted in its tests).
        let mut log = Vec::new();
        for i in 0..cfg.records {
            log.extend_from_slice(&encode_frame_bytewise(&ops_for(i, cfg.value_bytes)));
        }
        let shared = Bytes::from(log.clone());
        let (b, a) = race(
            cfg.repeats,
            || {
                let batches = replay_copying(&log);
                assert_eq!(batches.len(), cfg.records);
            },
            || {
                let replay = wal::replay_shared(shared.clone()).unwrap();
                assert_eq!(replay.batches.len(), cfg.records);
                assert!(!replay.torn_tail);
            },
        );
        replay_speedup = b / a;
        metrics.push(Metric {
            name: "wal_replay_time".into(),
            unit: "s (lower is better)".into(),
            workload: format!(
                "replay {} records x {}B ({:.1} MiB log)",
                cfg.records,
                cfg.value_bytes,
                log.len() as f64 / (1024.0 * 1024.0)
            ),
            before: b,
            after: a,
            speedup: replay_speedup,
        });
    }

    // ---- compaction time --------------------------------------------
    {
        let (old, new) = populate(&cfg);
        let (b, a) = race(
            cfg.repeats,
            || old.compact().unwrap(),
            || new.compact().unwrap(),
        );
        metrics.push(Metric {
            name: "compaction_time".into(),
            unit: "s (lower is better)".into(),
            workload: format!("snapshot {} records x {}B", cfg.records, cfg.value_bytes),
            before: b,
            after: a,
            speedup: b / a,
        });
    }

    let at_least_2x: Vec<String> = metrics
        .iter()
        .filter(|m| m.speedup >= 2.0)
        .map(|m| m.name.clone())
        .collect();
    let report = BenchReport {
        smoke: cfg.smoke,
        repeats: cfg.repeats,
        records: cfg.records,
        value_bytes: cfg.value_bytes,
        readers: cfg.readers,
        host_cpus: std::thread::available_parallelism().map_or(1, usize::from),
        baseline: "pre-overhaul engine replica (global mutex, allocating gets, \
                   bytewise CRC, copying replay, clone-all compaction) on the \
                   identical on-disk format"
            .into(),
        metrics,
        at_least_2x,
    };

    for m in &report.metrics {
        eprintln!(
            "  {:<28} before {:>12.3e}  after {:>12.3e}  {:>6.2}x  [{}]",
            m.name, m.before, m.after, m.speedup, m.workload
        );
    }
    let json = serde_json::to_string(&report).expect("serialize report");
    write_results("BENCH_store.json", &json);
    println!("{json}");

    // Loud regression gate: replay must never get slower than the old
    // copying path.  (The full acceptance bar — >= 2x on two of
    // concurrent reads / replay / compaction — is asserted in full mode.)
    assert!(
        replay_speedup >= 1.2,
        "WAL replay regression: {replay_speedup:.2}x vs the copying baseline (floor 1.2x)"
    );
    if !cfg.smoke {
        let bar: Vec<&str> = report
            .at_least_2x
            .iter()
            .map(String::as_str)
            .filter(|n| {
                matches!(
                    *n,
                    "get_throughput_concurrent"
                        | "scan_throughput_concurrent"
                        | "wal_replay_time"
                        | "compaction_time"
                )
            })
            .collect();
        assert!(
            bar.len() >= 2,
            "acceptance bar not met: need >=2x on two of concurrent reads / replay / compaction, got {bar:?}"
        );
    }
}
