//! **Storage engine benchmark** — before/after numbers for the store
//! hot-path overhaul, on identical workloads and the identical on-disk
//! format.
//!
//! "Before" is [`bioopera_bench::store_baseline`], a faithful replica of
//! the pre-overhaul engine (global mutex, allocating lookups, bytewise
//! CRC, copying replay, clone-all compaction).  "After" is the real
//! [`bioopera_store::Store`].  Measured:
//!
//! * put throughput (batched commits) and the group-commit variant,
//! * single-thread and 4-thread concurrent get+scan throughput,
//! * WAL replay wall time vs record count (the recovery path),
//! * compaction wall time (snapshot encode + epoch roll),
//! * tiered-engine variants: spill throughput under a small memtable
//!   budget, bloom-gated reads across resident runs, run merge
//!   compaction, and post-history reopen cost — with the observed
//!   memory ceiling reported alongside.
//!
//! Each metric is timed per pass, variants interleaved, and the minimum
//! over `STORE_BENCH_REPEATS` passes reported (host interference only
//! ever slows a pass down).  Writes `results/BENCH_store.json`.
//!
//! `STORE_BENCH_SMOKE=1` shrinks the workload for CI; in every mode the
//! run **fails loudly** (non-zero exit) if replay shows a regression
//! (speedup below the floor), so a slowdown cannot slip through a green
//! check.

use bioopera_bench::store_baseline::{encode_frame_bytewise, replay_copying, BaselineStore};
use bioopera_bench::write_results;
use bioopera_store::wal::{self, WalOp};
use bioopera_store::{Batch, MemDisk, Space, Store, TieredPolicy};
use bytes::Bytes;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Metric {
    name: String,
    unit: String,
    workload: String,
    before: f64,
    after: f64,
    /// `after / before` for throughputs, `before_time / after_time` for
    /// wall times — always "higher is better for the new engine".
    speedup: f64,
}

/// Memory-ceiling evidence for the tiered run: the budget the store was
/// given, the worst memtable estimate ever observed under load, and what
/// the same record set costs resident when tiering is off.
#[derive(Serialize)]
struct TieredSummary {
    memtable_budget_bytes: u64,
    peak_memtable_bytes: u64,
    unbounded_memtable_bytes: u64,
    runs_after_load: usize,
    spills: u64,
    run_merges: u64,
    /// Bytes one post-compaction reopen actually reads (manifest + run
    /// footers/meta; never the data blocks).
    reopen_bytes_read: u64,
    total_disk_bytes: u64,
    /// Depth of the leveled tier after the load (0 = everything in L0).
    levels: usize,
    /// Block-cache hit/miss counters over the read benchmark.
    cache_hits: u64,
    cache_misses: u64,
    /// Largest single compaction input, in bytes — bounded merges keep
    /// this far below the total history.
    max_merge_bytes: u64,
}

/// One history length of the opt-in tiered scaling sweep
/// (`STORE_BENCH_TIERED_SWEEP=1`): reopen cost and resident memory, tiered
/// vs untiered, at the same record count.
#[derive(Serialize)]
struct SweepRow {
    records: usize,
    value_bytes: usize,
    untiered_reopen_s: f64,
    tiered_reopen_s: f64,
    /// Bytes the tiered reopen actually read (manifest + run meta).
    tiered_reopen_bytes_read: u64,
    untiered_resident_bytes: u64,
    tiered_peak_memtable_bytes: u64,
    tiered_disk_bytes: u64,
    /// Largest single compaction input during the load: leveled merges
    /// must stay a small fraction of the live bytes, or compaction is
    /// O(history) again.
    tiered_max_merge_bytes: u64,
    tiered_run_merges: u64,
    tiered_levels: usize,
}

#[derive(Serialize)]
struct BenchReport {
    smoke: bool,
    repeats: u32,
    records: usize,
    value_bytes: usize,
    readers: usize,
    /// Hardware threads on the bench host.  On a single-core host the
    /// concurrent metrics measure lock overhead under forced context
    /// switching, not parallel scaling.
    host_cpus: usize,
    baseline: String,
    metrics: Vec<Metric>,
    /// Metrics with speedup >= 2.0 (the acceptance bar asks for two of:
    /// concurrent-read throughput, WAL replay time, compaction time).
    at_least_2x: Vec<String>,
    tiered: TieredSummary,
    #[serde(skip_serializing_if = "Vec::is_empty")]
    tiered_sweep: Vec<SweepRow>,
}

struct Config {
    smoke: bool,
    repeats: u32,
    /// Records in the resident set (and in the replay log).
    records: usize,
    /// Value payload size; History-event scale.
    value_bytes: usize,
    /// Reads per thread in the read benchmarks.
    reads: usize,
    readers: usize,
    /// Batches in the put benchmark.
    put_batches: usize,
    put_batch_ops: usize,
}

impl Config {
    fn from_env() -> Config {
        let smoke = std::env::var("STORE_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
        let repeats = std::env::var("STORE_BENCH_REPEATS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if smoke { 2 } else { 5 });
        if smoke {
            Config {
                smoke,
                repeats,
                records: 4_000,
                value_bytes: 256,
                reads: 20_000,
                readers: 4,
                put_batches: 500,
                put_batch_ops: 8,
            }
        } else {
            Config {
                smoke,
                repeats,
                records: 20_000,
                value_bytes: 512,
                reads: 200_000,
                readers: 4,
                put_batches: 2_000,
                put_batch_ops: 8,
            }
        }
    }
}

fn key(i: usize) -> String {
    format!("inst/{:06}/task/t{:02}", i / 16, i % 16)
}

fn ops_for(i: usize, value_bytes: usize) -> Vec<WalOp> {
    vec![WalOp::Put {
        space: 1,
        key: key(i),
        value: Bytes::from(vec![(i % 251) as u8; value_bytes]),
    }]
}

/// Min wall-seconds over `repeats` interleaved passes of two workloads.
fn race(repeats: u32, mut before: impl FnMut(), mut after: impl FnMut()) -> (f64, f64) {
    // One untimed warm-up each.
    before();
    after();
    let (mut b_best, mut a_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..repeats {
        let t = Instant::now();
        before();
        b_best = b_best.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        after();
        a_best = a_best.min(t.elapsed().as_secs_f64());
    }
    (b_best, a_best)
}

/// Populate both engines with the same record set.
fn populate(cfg: &Config) -> (BaselineStore<MemDisk>, Store<MemDisk>) {
    let old = BaselineStore::open(MemDisk::new());
    let new = Store::open_with(MemDisk::new(), None).unwrap();
    for i in 0..cfg.records {
        old.apply(ops_for(i, cfg.value_bytes)).unwrap();
        let mut b = Batch::new();
        b.put(
            Space::Instance,
            key(i),
            Bytes::from(vec![(i % 251) as u8; cfg.value_bytes]),
        );
        new.apply(b).unwrap();
    }
    (old, new)
}

fn main() {
    let cfg = Config::from_env();
    eprintln!(
        "store_bench: {} records x {}B, {} readers, {} passes{}",
        cfg.records,
        cfg.value_bytes,
        cfg.readers,
        cfg.repeats,
        if cfg.smoke { " (smoke)" } else { "" }
    );
    let mut metrics: Vec<Metric> = Vec::new();

    // ---- put throughput (batched single commits) --------------------
    {
        let total_ops = (cfg.put_batches * cfg.put_batch_ops) as f64;
        let value = vec![0x5A; cfg.value_bytes];
        let (b, a) = race(
            cfg.repeats,
            || {
                let store = BaselineStore::open(MemDisk::new());
                for i in 0..cfg.put_batches {
                    let ops: Vec<WalOp> = (0..cfg.put_batch_ops)
                        .map(|j| WalOp::Put {
                            space: 1,
                            key: key(i * cfg.put_batch_ops + j),
                            value: Bytes::from(value.clone()),
                        })
                        .collect();
                    store.apply(ops).unwrap();
                }
            },
            || {
                let store = Store::open_with(MemDisk::new(), None).unwrap();
                for i in 0..cfg.put_batches {
                    let mut batch = Batch::new();
                    for j in 0..cfg.put_batch_ops {
                        batch.put(
                            Space::Instance,
                            key(i * cfg.put_batch_ops + j),
                            Bytes::from(value.clone()),
                        );
                    }
                    store.apply(batch).unwrap();
                }
            },
        );
        metrics.push(Metric {
            name: "put_throughput".into(),
            unit: "ops/s".into(),
            workload: format!("{} batches x {} puts", cfg.put_batches, cfg.put_batch_ops),
            before: total_ops / b,
            after: total_ops / a,
            speedup: b / a,
        });

        // Group commit: the same ops through apply_many, 8 batches per
        // append (no baseline equivalent existed; before = single-commit
        // path of the old engine).
        let t = Instant::now();
        let store = Store::open_with(MemDisk::new(), None).unwrap();
        for i in 0..cfg.put_batches / 8 {
            let group: Vec<Batch> = (0..8)
                .map(|g| {
                    let mut batch = Batch::new();
                    for j in 0..cfg.put_batch_ops {
                        batch.put(
                            Space::Instance,
                            key((i * 8 + g) * cfg.put_batch_ops + j),
                            Bytes::from(value.clone()),
                        );
                    }
                    batch
                })
                .collect();
            store.apply_many(group).unwrap();
        }
        let group_secs = t.elapsed().as_secs_f64();
        let group_ops = (cfg.put_batches / 8 * 8 * cfg.put_batch_ops) as f64;
        metrics.push(Metric {
            name: "group_commit_throughput".into(),
            unit: "ops/s".into(),
            workload: "same puts, 8 batches coalesced per disk append".into(),
            before: total_ops / b,
            after: group_ops / group_secs,
            speedup: (group_ops / group_secs) / (total_ops / b),
        });
    }

    // ---- read throughput, single-thread and concurrent --------------
    {
        let (old, new) = populate(&cfg);
        // Keys are pre-built outside the timed region so the metric is the
        // engine's lookup path, not `format!`.
        let keys: Vec<String> = (0..cfg.records).map(key).collect();
        let prefixes: Vec<String> = (0..cfg.records / 16)
            .map(|g| format!("inst/{g:06}/"))
            .collect();
        let keys = &keys;
        let prefixes = &prefixes;
        let single_reads = cfg.reads as f64;
        let (b, a) = race(
            cfg.repeats,
            || {
                for r in 0..cfg.reads {
                    let i = (r * 7919) % cfg.records;
                    assert!(old.get(1, &keys[i]).is_some());
                }
            },
            || {
                for r in 0..cfg.reads {
                    let i = (r * 7919) % cfg.records;
                    assert!(new.get(Space::Instance, &keys[i]).unwrap().is_some());
                }
            },
        );
        metrics.push(Metric {
            name: "get_throughput_single".into(),
            unit: "ops/s".into(),
            workload: format!("{} point gets over {} records", cfg.reads, cfg.records),
            before: single_reads / b,
            after: single_reads / a,
            speedup: b / a,
        });

        let total_reads = (cfg.reads * cfg.readers) as f64;
        let run_old = || {
            std::thread::scope(|s| {
                for t in 0..cfg.readers {
                    let old = old.clone();
                    s.spawn(move || {
                        for r in 0..cfg.reads {
                            let i = (r * 7919 + t * 13) % cfg.records;
                            assert!(old.get(1, &keys[i]).is_some());
                        }
                    });
                }
            });
        };
        let run_new = || {
            std::thread::scope(|s| {
                for t in 0..cfg.readers {
                    let new = new.clone();
                    s.spawn(move || {
                        for r in 0..cfg.reads {
                            let i = (r * 7919 + t * 13) % cfg.records;
                            assert!(new.get(Space::Instance, &keys[i]).unwrap().is_some());
                        }
                    });
                }
            });
        };
        let (b, a) = race(cfg.repeats, run_old, run_new);
        metrics.push(Metric {
            name: "get_throughput_concurrent".into(),
            unit: "ops/s".into(),
            workload: format!(
                "{} threads x {} point gets over {} records",
                cfg.readers, cfg.reads, cfg.records
            ),
            before: total_reads / b,
            after: total_reads / a,
            speedup: b / a,
        });

        // Concurrent prefix scans (each ~16 records).
        let scans = cfg.reads / 16;
        let total_scans = (scans * cfg.readers) as f64;
        let (b, a) = race(
            cfg.repeats,
            || {
                std::thread::scope(|s| {
                    for t in 0..cfg.readers {
                        let old = old.clone();
                        s.spawn(move || {
                            for r in 0..scans {
                                let i = (r * 7919 + t * 13) % cfg.records;
                                assert!(!old.scan_prefix(1, &prefixes[i / 16]).is_empty());
                            }
                        });
                    }
                });
            },
            || {
                std::thread::scope(|s| {
                    for t in 0..cfg.readers {
                        let new = new.clone();
                        s.spawn(move || {
                            for r in 0..scans {
                                let i = (r * 7919 + t * 13) % cfg.records;
                                assert!(!new
                                    .scan_prefix(Space::Instance, &prefixes[i / 16])
                                    .unwrap()
                                    .is_empty());
                            }
                        });
                    }
                });
            },
        );
        metrics.push(Metric {
            name: "scan_throughput_concurrent".into(),
            unit: "scans/s".into(),
            workload: format!("{} threads x {} 16-record prefix scans", cfg.readers, scans),
            before: total_scans / b,
            after: total_scans / a,
            speedup: b / a,
        });
    }

    // ---- WAL replay time vs record count ----------------------------
    let replay_speedup;
    {
        // One shared byte image, written in the common format (the
        // baseline encoder is bit-identical; asserted in its tests).
        let mut log = Vec::new();
        for i in 0..cfg.records {
            log.extend_from_slice(&encode_frame_bytewise(&ops_for(i, cfg.value_bytes)));
        }
        let shared = Bytes::from(log.clone());
        let (b, a) = race(
            cfg.repeats,
            || {
                let batches = replay_copying(&log);
                assert_eq!(batches.len(), cfg.records);
            },
            || {
                let replay = wal::replay_shared(shared.clone()).unwrap();
                assert_eq!(replay.batches.len(), cfg.records);
                assert!(!replay.torn_tail);
            },
        );
        replay_speedup = b / a;
        metrics.push(Metric {
            name: "wal_replay_time".into(),
            unit: "s (lower is better)".into(),
            workload: format!(
                "replay {} records x {}B ({:.1} MiB log)",
                cfg.records,
                cfg.value_bytes,
                log.len() as f64 / (1024.0 * 1024.0)
            ),
            before: b,
            after: a,
            speedup: replay_speedup,
        });
    }

    // ---- compaction time --------------------------------------------
    {
        let (old, new) = populate(&cfg);
        let (b, a) = race(
            cfg.repeats,
            || old.compact().unwrap(),
            || new.compact().unwrap(),
        );
        metrics.push(Metric {
            name: "compaction_time".into(),
            unit: "s (lower is better)".into(),
            workload: format!("snapshot {} records x {}B", cfg.records, cfg.value_bytes),
            before: b,
            after: a,
            speedup: b / a,
        });
    }

    // ---- tiered engine: spill / bounded-memory read / merge / reopen
    //
    // "Before" here is the overhauled engine itself with tiering off
    // (unbounded memtables), "after" the same engine under a small
    // memtable budget — the cost of bounded memory, not an overhaul win.
    let tiered_summary;
    {
        let budget: u64 = if cfg.smoke { 64 * 1024 } else { 256 * 1024 };
        let policy = TieredPolicy {
            memtable_budget_bytes: budget,
            run_merge_threshold: 4,
            // The read metric is *warm-cache* by design: the memtable
            // budget is stress-sized (to force constant spilling) but
            // the cache is provisioned for the working set, as a
            // monitoring deployment would be.
            block_cache_budget: 32 * 1024 * 1024,
            ..TieredPolicy::default()
        };
        let one_put = |store: &Store<MemDisk>, i: usize| {
            let mut batch = Batch::new();
            batch.put(
                Space::Instance,
                key(i),
                Bytes::from(vec![(i % 251) as u8; cfg.value_bytes]),
            );
            store.apply(batch).unwrap();
        };

        // Spill throughput: the identical insert workload with and without
        // the budget; the tiered run pays for run builds + merges inline.
        let total_ops = cfg.records as f64;
        let peak = std::cell::Cell::new(0u64);
        let (b, a) = race(
            cfg.repeats,
            || {
                let store = Store::open_with(MemDisk::new(), None).unwrap();
                for i in 0..cfg.records {
                    one_put(&store, i);
                }
            },
            || {
                let store = Store::open_with(MemDisk::new(), Some(policy)).unwrap();
                for i in 0..cfg.records {
                    one_put(&store, i);
                    if i % 64 == 0 {
                        peak.set(peak.get().max(store.stats().memtable_bytes));
                    }
                }
                peak.set(peak.get().max(store.stats().memtable_bytes));
            },
        );
        metrics.push(Metric {
            name: "tiered_put_spill_throughput".into(),
            unit: "ops/s".into(),
            workload: format!(
                "{} puts x {}B, {}KiB memtable budget vs unbounded",
                cfg.records,
                cfg.value_bytes,
                budget / 1024
            ),
            before: total_ops / b,
            after: total_ops / a,
            speedup: b / a,
        });

        // Load both engines once for the read + reopen comparisons.
        let untiered_disk = MemDisk::new();
        let untiered = Store::open_with(untiered_disk.clone(), None).unwrap();
        let tiered_disk = MemDisk::new();
        let tiered = Store::open_with(tiered_disk.clone(), Some(policy)).unwrap();
        for i in 0..cfg.records {
            one_put(&untiered, i);
            one_put(&tiered, i);
        }
        let loaded = tiered.stats();
        assert!(loaded.spills > 0, "tiered load never spilled");
        assert!(
            peak.get() <= budget + 32 * 1024,
            "memtable ceiling breached: peak {} bytes under a {} byte budget",
            peak.get(),
            budget
        );
        let unbounded_memtable_bytes = untiered.stats().memtable_bytes;

        // Point reads against memtable + resident runs (bloom-gated).
        let keys: Vec<String> = (0..cfg.records).map(key).collect();
        let single_reads = cfg.reads as f64;
        let (b, a) = race(
            cfg.repeats,
            || {
                for r in 0..cfg.reads {
                    let i = (r * 7919) % cfg.records;
                    assert!(untiered.get(Space::Instance, &keys[i]).unwrap().is_some());
                }
            },
            || {
                for r in 0..cfg.reads {
                    let i = (r * 7919) % cfg.records;
                    assert!(tiered.get(Space::Instance, &keys[i]).unwrap().is_some());
                }
            },
        );
        let tiered_get_speedup = b / a;
        metrics.push(Metric {
            name: "tiered_get_throughput".into(),
            unit: "ops/s".into(),
            workload: format!(
                "{} warm-cache point gets over {} records in memtable + {} runs across {} levels",
                cfg.reads,
                cfg.records,
                loaded.runs,
                loaded.levels.max(1)
            ),
            before: single_reads / b,
            after: single_reads / a,
            speedup: tiered_get_speedup,
        });
        let after_reads = tiered.stats();
        // Loud floor: with the leveled tier and a warm block cache a
        // tiered point get must stay within 2x of the untiered one in
        // full mode (smoke runs are too short to time tightly and get
        // the wider 0.3x floor).  Pre-cache this sat at ~0.04-0.09x; a
        // regression back to a decode-per-get read path must fail here.
        let get_floor = if cfg.smoke { 0.3 } else { 0.5 };
        assert!(
            tiered_get_speedup >= get_floor,
            "tiered get floor breached: {tiered_get_speedup:.3}x vs untiered \
             (floor {get_floor}x; cache {} hits / {} misses)",
            after_reads.cache_hits,
            after_reads.cache_misses
        );

        // Compaction: snapshot rewrite (untiered) vs spill + merge-all of
        // the resident runs (tiered).  Each pass rebuilds the store from
        // scratch because both paths leave nothing further to compact.
        let (mut b_best, mut a_best) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..=cfg.repeats {
            let store = Store::open_with(MemDisk::new(), None).unwrap();
            for i in 0..cfg.records {
                one_put(&store, i);
            }
            let t = Instant::now();
            store.compact().unwrap();
            b_best = b_best.min(t.elapsed().as_secs_f64());

            let store = Store::open_with(MemDisk::new(), Some(policy)).unwrap();
            for i in 0..cfg.records {
                one_put(&store, i);
            }
            let t = Instant::now();
            store.compact().unwrap();
            a_best = a_best.min(t.elapsed().as_secs_f64());
        }
        metrics.push(Metric {
            name: "tiered_compaction_time".into(),
            unit: "s (lower is better)".into(),
            workload: format!(
                "{} records x {}B: snapshot rewrite vs run merge-all",
                cfg.records, cfg.value_bytes
            ),
            before: b_best,
            after: a_best,
            speedup: b_best / a_best,
        });

        // Reopen after the full history: snapshot replay of every record
        // (untiered) vs manifest + run meta only (tiered, O(tail)).
        untiered.compact().unwrap();
        tiered.compact().unwrap();
        drop(untiered);
        drop(tiered);
        let (mut b_best, mut a_best) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..=cfg.repeats {
            let t = Instant::now();
            drop(Store::open_with(untiered_disk.clone(), None).unwrap());
            b_best = b_best.min(t.elapsed().as_secs_f64());
            let t = Instant::now();
            drop(Store::open_with(tiered_disk.clone(), Some(policy)).unwrap());
            a_best = a_best.min(t.elapsed().as_secs_f64());
        }
        metrics.push(Metric {
            name: "tiered_reopen_time".into(),
            unit: "s (lower is better)".into(),
            workload: format!(
                "reopen after a {}-record history: full snapshot replay vs run meta",
                cfg.records
            ),
            before: b_best,
            after: a_best,
            speedup: b_best / a_best,
        });

        let read_before = tiered_disk.bytes_read();
        drop(Store::open_with(tiered_disk.clone(), Some(policy)).unwrap());
        let reopen_bytes_read = tiered_disk.bytes_read() - read_before;
        let total_disk_bytes = tiered_disk.total_file_bytes();
        assert!(
            reopen_bytes_read * 4 < total_disk_bytes,
            "tiered reopen read {reopen_bytes_read} of {total_disk_bytes} disk bytes — not O(tail)"
        );
        tiered_summary = TieredSummary {
            memtable_budget_bytes: budget,
            peak_memtable_bytes: peak.get(),
            unbounded_memtable_bytes,
            runs_after_load: loaded.runs,
            spills: loaded.spills,
            run_merges: loaded.run_merges,
            reopen_bytes_read,
            total_disk_bytes,
            levels: loaded.levels,
            cache_hits: after_reads.cache_hits,
            cache_misses: after_reads.cache_misses,
            max_merge_bytes: loaded.max_merge_bytes,
        };
    }

    // ---- opt-in tiered scaling sweep (STORE_BENCH_TIERED_SWEEP=1) ----
    //
    // Reopen cost and resident memory vs history length, under the
    // *default* 4 MiB production budget (not the stress-sized one above).
    // Feeds the EXPERIMENTS.md tables; too slow for the smoke gate.
    let mut tiered_sweep: Vec<SweepRow> = Vec::new();
    let sweep_on =
        std::env::var("STORE_BENCH_TIERED_SWEEP").is_ok_and(|v| v != "0" && !v.is_empty());
    if sweep_on {
        let value_bytes = 100usize;
        let counts: &[usize] = if cfg.smoke {
            &[10_000, 100_000]
        } else {
            &[10_000, 100_000, 1_000_000]
        };
        for &n in counts {
            let load = |store: &Store<MemDisk>, track_peak: bool| -> u64 {
                let mut peak = 0u64;
                for i in 0..n {
                    let mut b = Batch::new();
                    b.put(
                        Space::History,
                        format!("ev/{i:09}"),
                        Bytes::from(vec![(i % 251) as u8; value_bytes]),
                    );
                    store.apply(b).unwrap();
                    if track_peak && i % 1024 == 0 {
                        peak = peak.max(store.stats().memtable_bytes);
                    }
                }
                peak.max(store.stats().memtable_bytes)
            };

            let policy = TieredPolicy::default();
            let tiered_disk = MemDisk::new();
            let store = Store::open_with(tiered_disk.clone(), Some(policy)).unwrap();
            let tiered_peak = load(&store, true);
            let loaded = store.stats();
            store.compact().unwrap();
            drop(store);
            let read0 = tiered_disk.bytes_read();
            let t = Instant::now();
            drop(Store::open_with(tiered_disk.clone(), Some(policy)).unwrap());
            let tiered_reopen_s = t.elapsed().as_secs_f64();
            let tiered_reopen_bytes_read = tiered_disk.bytes_read() - read0;
            let tiered_disk_bytes = tiered_disk.total_file_bytes();

            let untiered_disk = MemDisk::new();
            let store = Store::open_with(untiered_disk.clone(), None).unwrap();
            load(&store, false);
            store.compact().unwrap();
            let untiered_resident_bytes = store.stats().memtable_bytes;
            drop(store);
            let t = Instant::now();
            drop(Store::open_with(untiered_disk.clone(), None).unwrap());
            let untiered_reopen_s = t.elapsed().as_secs_f64();

            eprintln!(
                "  sweep {n:>9} recs: reopen untiered {untiered_reopen_s:>9.5}s vs tiered \
                 {tiered_reopen_s:>9.5}s ({tiered_reopen_bytes_read} B read of \
                 {tiered_disk_bytes}); resident untiered {untiered_resident_bytes} B vs \
                 tiered peak {tiered_peak} B; {} merges across {} levels, max input {} B",
                loaded.run_merges, loaded.levels, loaded.max_merge_bytes
            );
            // Bounded compaction: once the history is large enough to
            // spill repeatedly, the biggest single merge must stay a
            // small fraction of the live bytes — the old merge-all
            // rewrote the whole history every compaction.
            if loaded.run_merges > 0 && tiered_disk_bytes > 16 * 1024 * 1024 {
                assert!(
                    loaded.max_merge_bytes * 4 < tiered_disk_bytes,
                    "merge not bounded at {n} records: max input {} B of {} live disk bytes",
                    loaded.max_merge_bytes,
                    tiered_disk_bytes
                );
            }
            tiered_sweep.push(SweepRow {
                records: n,
                value_bytes,
                untiered_reopen_s,
                tiered_reopen_s,
                tiered_reopen_bytes_read,
                untiered_resident_bytes,
                tiered_peak_memtable_bytes: tiered_peak,
                tiered_disk_bytes,
                tiered_max_merge_bytes: loaded.max_merge_bytes,
                tiered_run_merges: loaded.run_merges,
                tiered_levels: loaded.levels,
            });
        }
    }

    let at_least_2x: Vec<String> = metrics
        .iter()
        .filter(|m| m.speedup >= 2.0)
        .map(|m| m.name.clone())
        .collect();
    let report = BenchReport {
        smoke: cfg.smoke,
        repeats: cfg.repeats,
        records: cfg.records,
        value_bytes: cfg.value_bytes,
        readers: cfg.readers,
        host_cpus: std::thread::available_parallelism().map_or(1, usize::from),
        baseline: "pre-overhaul engine replica (global mutex, allocating gets, \
                   bytewise CRC, copying replay, clone-all compaction) on the \
                   identical on-disk format"
            .into(),
        metrics,
        at_least_2x,
        tiered: tiered_summary,
        tiered_sweep,
    };

    for m in &report.metrics {
        eprintln!(
            "  {:<28} before {:>12.3e}  after {:>12.3e}  {:>6.2}x  [{}]",
            m.name, m.before, m.after, m.speedup, m.workload
        );
    }
    eprintln!(
        "  tiered memory ceiling: peak {} B under a {} B budget (unbounded: {} B); \
         {} spills, {} merges, {} runs resident; reopen read {} of {} disk bytes",
        report.tiered.peak_memtable_bytes,
        report.tiered.memtable_budget_bytes,
        report.tiered.unbounded_memtable_bytes,
        report.tiered.spills,
        report.tiered.run_merges,
        report.tiered.runs_after_load,
        report.tiered.reopen_bytes_read,
        report.tiered.total_disk_bytes,
    );
    let json = serde_json::to_string(&report).expect("serialize report");
    write_results("BENCH_store.json", &json);
    println!("{json}");

    // Loud regression gate: replay must never get slower than the old
    // copying path.  (The full acceptance bar — >= 2x on two of
    // concurrent reads / replay / compaction — is asserted in full mode.)
    assert!(
        replay_speedup >= 1.2,
        "WAL replay regression: {replay_speedup:.2}x vs the copying baseline (floor 1.2x)"
    );
    if !cfg.smoke {
        let bar: Vec<&str> = report
            .at_least_2x
            .iter()
            .map(String::as_str)
            .filter(|n| {
                matches!(
                    *n,
                    "get_throughput_concurrent"
                        | "scan_throughput_concurrent"
                        | "wal_replay_time"
                        | "compaction_time"
                )
            })
            .collect();
        assert!(
            bar.len() >= 2,
            "acceptance bar not met: need >=2x on two of concurrent reads / replay / compaction, got {bar:?}"
        );
    }
}
