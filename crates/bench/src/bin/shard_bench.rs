//! **Sharded navigator benchmark** — throughput of the shard-parallel
//! engine across shard counts on one identical workload.
//!
//! The workload is a two-task chain per root instance (`A -> B` with a
//! task-to-task dataflow), submitted up front, then driven to completion
//! by [`ShardEngine::run_to_completion`].  Node capacity is sized so the
//! dispatcher never throttles: every config executes the same rounds and
//! the same inline activity work, and the only variable is how many
//! stepper threads carry it.
//!
//! For each shard count in `{1, 2, 4, 8}` the bench reports wall time,
//! instances/second and task-grants/second, plus the history digest —
//! which must be bit-identical across every config (the determinism
//! contract), so the bench doubles as a large-scale replay check and
//! fails loudly on divergence.
//!
//! Full mode drives 100_000 concurrent instances; `SHARD_BENCH_SMOKE=1`
//! shrinks that for CI.  On hosts with at least 4 available cores the
//! smoke mode also enforces a modest speedup floor at 4 shards; on
//! smaller hosts (including 1-core CI runners) the floor is skipped and
//! the honest core count is recorded in `results/BENCH_shard.json`.
//!
//! [`ShardEngine::run_to_completion`]: bioopera_core::ShardEngine::run_to_completion

use bioopera_bench::write_results;
use bioopera_core::{ActivityLibrary, ProgramOutput, ShardConfig, ShardEngine};
use bioopera_ocr::model::TypeTag;
use bioopera_ocr::value::Value;
use bioopera_ocr::{ProcessBuilder, ProcessTemplate};
use bioopera_store::{MemDisk, Store};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

#[derive(Serialize)]
struct ConfigResult {
    shards: usize,
    threads: usize,
    instances: u64,
    rounds: u64,
    grants: u64,
    wall_ms: f64,
    instances_per_sec: f64,
    grants_per_sec: f64,
    speedup_vs_serial: f64,
}

#[derive(Serialize)]
struct ShardBenchReport {
    /// Available cores on the measuring host.  Speedup numbers are only
    /// meaningful when this is >= the shard count; a 1-core host runs
    /// every config serially and records that fact here instead of a
    /// fabricated scaling curve.
    cores: usize,
    smoke: bool,
    instances: u64,
    history_digest_hex: String,
    configs: Vec<ConfigResult>,
}

fn library() -> ActivityLibrary {
    let mut lib = ActivityLibrary::new();
    lib.register("p.a", |inputs| {
        let x = inputs.get("x").and_then(|v| v.as_int()).unwrap_or(7);
        Ok(ProgramOutput::from_fields([("x", Value::Int(x))], 10.0))
    });
    lib.register("p.b", |inputs| {
        let x = inputs
            .get("x")
            .and_then(|v| v.as_int())
            .ok_or_else(|| "missing x".to_string())?;
        Ok(ProgramOutput::from_fields([("y", Value::Int(x * 2))], 20.0))
    });
    lib
}

fn chain_template() -> ProcessTemplate {
    ProcessBuilder::new("Chain")
        .whiteboard_default("x", TypeTag::Int, Value::Int(7))
        .whiteboard_field("y", TypeTag::Int)
        .activity("A", "p.a", |t| {
            t.input("x", TypeTag::Int).output("x", TypeTag::Int)
        })
        .activity("B", "p.b", |t| {
            t.input("x", TypeTag::Int).output("y", TypeTag::Int)
        })
        .connect("A", "B")
        .flow_from_whiteboard("x", "A", "x")
        .flow_to_task("A", "x", "B", "x")
        .flow_to_whiteboard("B", "y", "y")
        .build()
        .unwrap()
}

/// Drive `instances` chains on `shards` shards; returns (wall seconds,
/// rounds, grants, history digest, awareness counts by kind).
fn run_config(shards: usize, instances: u64) -> (f64, u64, u64, u64, Vec<(String, usize)>) {
    let store = Store::open(MemDisk::new()).unwrap();
    let cfg = ShardConfig {
        shards,
        threads: shards,
        nodes: 4,
        // Never throttle on slots: identical rounds at every shard count.
        node_capacity: instances as usize,
        ..ShardConfig::default()
    };
    let mut eng = ShardEngine::new(store, library(), cfg).expect("engine");
    eng.register_template(chain_template()).unwrap();
    for i in 0..instances {
        let mut initial = BTreeMap::new();
        initial.insert("x".to_string(), Value::Int(i as i64 % 101));
        eng.submit("Chain", initial).unwrap();
    }
    let t0 = Instant::now();
    let outcome = eng.run_to_completion().unwrap();
    let wall = t0.elapsed().as_secs_f64();
    assert!(outcome.is_completed(), "no chain may end up suspended");
    let stats = eng.stats();
    assert_eq!(stats.completed, instances, "all chains must complete");
    let counts = eng.awareness().index().counts_by_kind();
    (
        wall,
        stats.rounds,
        stats.grants,
        eng.history_digest(),
        counts,
    )
}

fn main() {
    let smoke = std::env::var("SHARD_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let instances: u64 = if smoke { 5_000 } else { 100_000 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut configs = Vec::new();
    let mut serial_wall = 0.0f64;
    let mut digest: Option<u64> = None;
    let mut awareness_counts: Option<Vec<(String, usize)>> = None;
    for &shards in &[1usize, 2, 4, 8] {
        let (wall, rounds, grants, d, counts) = run_config(shards, instances);
        match digest {
            None => digest = Some(d),
            Some(base) => assert_eq!(
                d, base,
                "history digest diverged at {shards} shards — determinism broken"
            ),
        }
        match &awareness_counts {
            None => awareness_counts = Some(counts),
            Some(base) => assert_eq!(
                &counts, base,
                "awareness index diverged at {shards} shards — barrier feed broken"
            ),
        }
        if shards == 1 {
            serial_wall = wall;
        }
        let cfg = ConfigResult {
            shards,
            threads: shards,
            instances,
            rounds,
            grants,
            wall_ms: wall * 1e3,
            instances_per_sec: instances as f64 / wall,
            grants_per_sec: grants as f64 / wall,
            speedup_vs_serial: serial_wall / wall,
        };
        println!(
            "shards={:<2} threads={:<2} rounds={:<3} grants={:<8} wall={:>8.1}ms  {:>10.0} inst/s  speedup {:.2}x",
            cfg.shards,
            cfg.threads,
            cfg.rounds,
            cfg.grants,
            cfg.wall_ms,
            cfg.instances_per_sec,
            cfg.speedup_vs_serial,
        );
        configs.push(cfg);
    }

    let report = ShardBenchReport {
        cores,
        smoke,
        instances,
        history_digest_hex: format!("{:016x}", digest.unwrap_or(0)),
        configs,
    };
    write_results("BENCH_shard.json", &serde_json::to_string(&report).unwrap());

    let at4 = report
        .configs
        .iter()
        .find(|c| c.shards == 4)
        .map(|c| c.speedup_vs_serial)
        .unwrap_or(0.0);
    if cores >= 4 {
        let floor = if smoke { 1.5 } else { 2.0 };
        if at4 < floor {
            eprintln!("FAIL: {at4:.2}x at 4 shards on a {cores}-core host (floor {floor:.1}x)");
            std::process::exit(1);
        }
        println!("speedup gate: {at4:.2}x at 4 shards (floor passed, {cores} cores)");
    } else {
        println!(
            "speedup gate: skipped — only {cores} core(s) available; measured {at4:.2}x at 4 shards"
        );
    }
}
