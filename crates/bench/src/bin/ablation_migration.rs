//! **Migration ablation** — §5.4: "One strategy to solve this problem
//! would be to have BioOpera abort the affected TEU and re-schedule it
//! elsewhere ... if the non-BioOpera user tends to fill all machines, such
//! a strategy will perform worse than if BioOpera had simply left the TEU
//! where it was.  If however the user tends to use only a subset of the
//! processors, the kill and restart strategy may help."
//!
//! This bench reproduces *both* regimes: an external user who fills every
//! machine, and one who camps on half the cluster.

use bioopera_bench::{fmt_days, write_results};
use bioopera_cluster::{Cluster, NodeSpec, SimTime, Trace, TraceEventKind};
use bioopera_core::runtime::MigrationConfig;
use bioopera_core::{Runtime, RuntimeConfig};
use bioopera_store::MemDisk;
use bioopera_workloads::allvsall::{AllVsAllConfig, AllVsAllSetup};
use std::fmt::Write;

fn cluster() -> Cluster {
    Cluster::new(
        "mig",
        (0..8)
            .map(|i| NodeSpec::new(format!("n{i}"), 1, 500, "linux"))
            .collect(),
    )
}

/// The external user occupies nodes `0..busy` fully from hour 1 to day 6.
fn trace(busy: usize) -> Trace {
    let mut t = Trace::empty();
    for i in 0..busy {
        t.push(
            SimTime::from_hours(1),
            TraceEventKind::ExternalLoad {
                node: format!("n{i}"),
                cpus: 1.0,
            },
        );
        t.push(
            SimTime::from_days(6),
            TraceEventKind::ExternalLoad {
                node: format!("n{i}"),
                cpus: 0.0,
            },
        );
    }
    t
}

fn run(busy: usize, migration: Option<MigrationConfig>) -> String {
    let setup = AllVsAllSetup::synthetic(
        4_000,
        370,
        38,
        AllVsAllConfig {
            teus: 16,
            ..Default::default()
        },
    );
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_mins(30),
        migration,
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster(), setup.library.clone(), cfg).unwrap();
    rt.register_template(&setup.chunk_template).unwrap();
    rt.register_template(&setup.template).unwrap();
    rt.install_trace(&trace(busy));
    let id = rt.submit("AllVsAll", setup.initial()).unwrap();
    rt.run_to_completion().unwrap();
    fmt_days(rt.stats(id).unwrap().wall)
}

fn main() {
    println!("Kill-and-restart migration ablation (§5.4 discussion)\n");
    let mig = Some(MigrationConfig {
        patience: SimTime::from_hours(1),
    });
    let mut t = String::new();
    let _ = writeln!(
        t,
        "{:<34} {:>16} {:>16}",
        "external-user pattern", "leave in place", "kill-and-restart"
    );
    let half_stay = run(4, None);
    let half_move = run(4, mig);
    let _ = writeln!(
        t,
        "{:<34} {:>16} {:>16}",
        "camps on half the nodes", half_stay, half_move
    );
    let full_stay = run(8, None);
    let full_move = run(8, mig);
    let _ = writeln!(
        t,
        "{:<34} {:>16} {:>16}",
        "fills every node", full_stay, full_move
    );
    println!("{t}");
    println!(
        "expected shape: migration wins when free capacity exists elsewhere;\n\
         when the user fills all machines there is nowhere to go and the\n\
         restarted TEUs just lose their progress (paper's warning)."
    );
    write_results("ablation_migration.txt", &t);
}
