//! **Alignment kernel microbench** — throughput of the scalar profile
//! kernel, the striped SIMD lane and the banded PAM-ladder refinement
//! against the seed (naive) implementation on a seeded dataset.
//!
//! Measures, for each variant:
//!
//! * cells/sec — DP cells computed per second (the unit of the cost model),
//! * pairs/sec — pairwise alignments per second,
//! * cells_skipped — cells a bounded scan proved irrelevant,
//! * allocations — heap allocations per pass, via a counting wrapper
//!   around the system allocator.
//!
//! Each variant is timed per pass and the **minimum** over
//! `KERNEL_BENCH_REPEATS` passes is reported (interference from the host
//! only ever slows a pass down, so the minimum is the least-noisy
//! estimate of kernel throughput).
//!
//! Bit-identity is asserted, not sampled: every scoring variant must
//! produce the same checksum and cell count as the naive oracle, and the
//! banded refinement must agree with the unbanded ladder scan while
//! accounting every skipped cell.
//!
//! Writes `BENCH_kernel.json`.  With `KERNEL_BENCH_SMOKE=1` the bench
//! runs one pass per variant and additionally enforces a floor on the
//! SIMD speedup (when the host has a vector unit at all) so CI fails
//! loudly on a kernel regression.

use bioopera_bench::write_results;
use bioopera_darwin::align::{
    align_score_many, align_score_naive, align_score_with, AlignParams, AlignScratch, Alignment,
    ScoreOnly,
};
use bioopera_darwin::dataset::DatasetConfig;
use bioopera_darwin::pam::FIXED_PAM;
use bioopera_darwin::refine::{refine_pam_distance_banded, refine_pam_distance_with};
use bioopera_darwin::simd::{self, SimdLevel};
use bioopera_darwin::{PamFamily, SequenceDb};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapped with an allocation counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[derive(Serialize)]
struct VariantResult {
    name: String,
    pairs: u64,
    cells: u64,
    cells_skipped: u64,
    seconds: f64,
    cells_per_sec: f64,
    pairs_per_sec: f64,
    allocations: u64,
    checksum: f64,
}

#[derive(Serialize)]
struct BenchReport {
    workload: String,
    db_size: usize,
    mean_len: f64,
    repeats: u32,
    simd_level: String,
    variants: Vec<VariantResult>,
    /// profile_batched vs naive (the seed acceptance metric, kept stable).
    speedup_cells_per_sec: f64,
    /// simd_batched vs profile_batched (this PR's acceptance metric).
    speedup_simd_vs_profile: f64,
    /// banded_refine vs refine_unbanded wall-clock on the matched pairs.
    speedup_banded_refine: f64,
    bit_identical: bool,
}

/// One pass result: (checksum, cells computed, cells skipped).
type PassResult = (f64, u64, u64);

/// Per-variant timing accumulator: best per-pass seconds plus the allocs
/// of one pass.  The minimum over passes is the robust estimator here:
/// the box runs inside a VM whose host-side interference inflates
/// individual passes but never deflates them, and the variants are
/// interleaved pass-by-pass in `main` so a noise burst cannot land
/// entirely on one variant.
struct Timing {
    best_secs: f64,
    allocs: u64,
    result: PassResult,
}

impl Timing {
    fn new() -> Self {
        Timing {
            best_secs: f64::INFINITY,
            allocs: 0,
            result: (0.0, 0, 0),
        }
    }

    fn pass(&mut self, work: &mut impl FnMut() -> PassResult) {
        let alloc0 = allocations();
        let start = Instant::now();
        self.result = std::hint::black_box(work());
        self.best_secs = self.best_secs.min(start.elapsed().as_secs_f64());
        self.allocs = allocations() - alloc0;
    }
}

fn main() {
    let smoke = std::env::var("KERNEL_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let pam = PamFamily::default();
    let cfg = DatasetConfig {
        size: 60,
        mean_len: 180,
        ..DatasetConfig::small(60, 42)
    };
    let db = SequenceDb::generate(&cfg, &pam);
    let matrix = pam.nearest(FIXED_PAM);
    let params = AlignParams::default();
    let n = db.len() as u32;
    let repeats: u32 = std::env::var("KERNEL_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 });
    let pairs_per_pass: u64 = (n as u64) * (n as u64 - 1) / 2;
    let level = simd::detect();

    // The reference: one naive all-vs-all pass (upper triangle).
    let naive_pass = || {
        let mut checksum = 0.0f64;
        let mut cells = 0u64;
        for e in 0..n {
            let a = db.get(e);
            for f in (e + 1)..n {
                let r = align_score_naive(a, db.get(f), matrix, &params);
                checksum += r.score as f64;
                cells += r.cells;
            }
        }
        (checksum, cells, 0u64)
    };

    // The scalar profile kernel, batched: one profile build per query,
    // one scratch for the whole pass.  Pinned to `Scalar` so this series
    // stays comparable with the seed baselines even on SIMD hosts.
    let mut scratch = AlignScratch::with_level(SimdLevel::Scalar);
    let mut scores: Vec<ScoreOnly> = Vec::new();
    let mut batched_pass = || {
        let mut checksum = 0.0f64;
        let mut cells = 0u64;
        for e in 0..n {
            if e + 1 >= n {
                break;
            }
            align_score_many(
                db.get(e),
                ((e + 1)..n).map(|f| db.get(f)),
                matrix,
                &params,
                None,
                &mut scratch,
                &mut scores,
            );
            for r in &scores {
                checksum += r.score as f64;
                cells += r.cells;
            }
        }
        (checksum, cells, 0u64)
    };

    // The scalar profile kernel, pairwise entry point (profile rebuilt
    // per pair, scratch still reused): isolates the profile-build cost.
    let mut scratch2 = AlignScratch::with_level(SimdLevel::Scalar);
    let mut pairwise_pass = || {
        let mut checksum = 0.0f64;
        let mut cells = 0u64;
        for e in 0..n {
            let a = db.get(e);
            for f in (e + 1)..n {
                let r = align_score_with(a, db.get(f), matrix, &params, &mut scratch2);
                checksum += r.score as f64;
                cells += r.cells;
            }
        }
        (checksum, cells, 0u64)
    };

    // The striped SIMD lane at the auto-detected level (scalar hosts fall
    // back to the profile kernel, making this a no-op comparison there).
    let mut scratch3 = AlignScratch::new();
    let mut scores3: Vec<ScoreOnly> = Vec::new();
    let mut simd_pass = || {
        let mut checksum = 0.0f64;
        let mut cells = 0u64;
        for e in 0..n {
            if e + 1 >= n {
                break;
            }
            align_score_many(
                db.get(e),
                ((e + 1)..n).map(|f| db.get(f)),
                matrix,
                &params,
                None,
                &mut scratch3,
                &mut scores3,
            );
            for r in &scores3 {
                checksum += r.score as f64;
                cells += r.cells;
            }
        }
        (checksum, cells, 0u64)
    };

    // ---- refinement variants run over the *matched* pairs only --------
    // (that is the shape of the real workload: the fixed-PAM pass gates
    // which pairs reach the ladder).
    let threshold = 80.0f32;
    let mut matched: Vec<(u32, u32)> = Vec::new();
    {
        let mut s = AlignScratch::new();
        let mut out = Vec::new();
        for e in 0..n {
            if e + 1 >= n {
                break;
            }
            align_score_many(
                db.get(e),
                ((e + 1)..n).map(|f| db.get(f)),
                matrix,
                &params,
                None,
                &mut s,
                &mut out,
            );
            for (i, r) in out.iter().enumerate() {
                if r.score >= threshold {
                    matched.push((e, e + 1 + i as u32));
                }
            }
        }
    }

    let mut scratch4 = AlignScratch::new();
    let matched_ref = &matched;
    let mut refine_plain_pass = || {
        let mut checksum = 0.0f64;
        let mut cells = 0u64;
        for &(e, f) in matched_ref {
            let r = refine_pam_distance_with(db.get(e), db.get(f), &pam, &params, &mut scratch4);
            checksum += r.score as f64;
            cells += r.cells;
        }
        (checksum, cells, 0u64)
    };

    let mut scratch5 = AlignScratch::new();
    let mut refine_banded_pass = || {
        let mut checksum = 0.0f64;
        let mut cells = 0u64;
        let mut skipped = 0u64;
        for &(e, f) in matched_ref {
            let r = refine_pam_distance_banded(db.get(e), db.get(f), &pam, &params, &mut scratch5);
            checksum += r.score as f64;
            cells += r.cells;
            skipped += r.cells_skipped;
        }
        (checksum, cells, skipped)
    };

    // Full traceback over the matched pairs with a reused scratch and
    // output: must be allocation-free once warm.
    let mut scratch6 = AlignScratch::new();
    let mut aln = Alignment::default();
    let mut traceback_pass = || {
        let mut checksum = 0.0f64;
        let mut cells = 0u64;
        for &(e, f) in matched_ref {
            let a = db.get(e);
            let b = db.get(f);
            bioopera_darwin::align_local_with(a, b, matrix, &params, &mut scratch6, &mut aln);
            checksum += aln.score as f64;
            cells += a.residues.len() as u64 * b.residues.len() as u64;
        }
        (checksum, cells, 0u64)
    };

    eprintln!(
        "kernel_bench: db={} seqs, mean_len={:.0}, {repeats} passes, simd={}, {} matched pairs",
        db.len(),
        db.mean_len(),
        level.name(),
        matched.len()
    );

    // One untimed warm-up each (grow lazy buffers), then interleave the
    // variants pass-by-pass so background interference hits all of them
    // with equal odds; keep each variant's best pass.
    let mut naive_pass = naive_pass;
    naive_pass();
    batched_pass();
    pairwise_pass();
    simd_pass();
    refine_plain_pass();
    refine_banded_pass();
    traceback_pass();
    let mut naive_t = Timing::new();
    let mut batch_t = Timing::new();
    let mut pair_t = Timing::new();
    let mut simd_t = Timing::new();
    let mut refp_t = Timing::new();
    let mut refb_t = Timing::new();
    let mut tb_t = Timing::new();
    for _ in 0..repeats {
        naive_t.pass(&mut naive_pass);
        batch_t.pass(&mut batched_pass);
        pair_t.pass(&mut pairwise_pass);
        simd_t.pass(&mut simd_pass);
        refp_t.pass(&mut refine_plain_pass);
        refb_t.pass(&mut refine_banded_pass);
        tb_t.pass(&mut traceback_pass);
    }

    let (naive_sum, naive_cells, _) = naive_t.result;
    let (batch_sum, batch_cells, _) = batch_t.result;
    let (pair_sum, pair_cells, _) = pair_t.result;
    let (simd_sum, simd_cells, _) = simd_t.result;
    let (refp_sum, refp_cells, _) = refp_t.result;
    let (refb_sum, refb_cells, refb_skipped) = refb_t.result;

    // Every scoring lane must agree with the oracle bit for bit (f64
    // accumulation order is identical, so the sums match exactly too).
    let bit_identical = naive_sum == batch_sum
        && naive_sum == pair_sum
        && naive_sum == simd_sum
        && naive_cells == batch_cells
        && naive_cells == pair_cells
        && naive_cells == simd_cells;
    assert!(
        bit_identical,
        "kernel diverged from naive: {naive_sum} vs batch {batch_sum} / pair {pair_sum} / simd {simd_sum}"
    );
    // Banded refinement: same scores, every skipped cell accounted.
    assert!(
        refp_sum == refb_sum,
        "banded refine diverged: {refp_sum} vs {refb_sum}"
    );
    assert!(
        refb_cells + refb_skipped == refp_cells,
        "banded refine lost cells: {refb_cells} + {refb_skipped} != {refp_cells}"
    );
    // Warm steady-state passes must not touch the allocator.
    for (name, t) in [
        ("profile_batched", &batch_t),
        ("simd_batched", &simd_t),
        ("banded_refine", &refb_t),
        ("local_traceback", &tb_t),
    ] {
        assert!(
            t.allocs == 0,
            "{name}: {} allocations in a warm pass (scratch reuse broken)",
            t.allocs
        );
    }

    let variant = |name: &str, t: &Timing, pairs: u64| VariantResult {
        name: name.to_string(),
        pairs,
        cells: t.result.1,
        cells_skipped: t.result.2,
        seconds: t.best_secs,
        cells_per_sec: t.result.1 as f64 / t.best_secs,
        pairs_per_sec: pairs as f64 / t.best_secs,
        allocations: t.allocs,
        checksum: t.result.0,
    };
    let matched_pairs = matched.len() as u64;
    let variants = vec![
        variant("naive_align_score", &naive_t, pairs_per_pass),
        variant("profile_batched", &batch_t, pairs_per_pass),
        variant("profile_pairwise", &pair_t, pairs_per_pass),
        variant("simd_batched", &simd_t, pairs_per_pass),
        variant("refine_unbanded", &refp_t, matched_pairs),
        variant("banded_refine", &refb_t, matched_pairs),
        variant("local_traceback", &tb_t, matched_pairs),
    ];
    let speedup = variants[1].cells_per_sec / variants[0].cells_per_sec;
    let simd_speedup = variants[3].cells_per_sec / variants[1].cells_per_sec;
    let banded_speedup = variants[4].seconds / variants[5].seconds;
    if smoke && level > SimdLevel::Scalar {
        // Loose floor (true margin is ≥3x; CI boxes are noisy): a SIMD
        // lane slower than the scalar kernel is a regression, full stop.
        assert!(
            simd_speedup >= 1.3,
            "simd_batched speedup {simd_speedup:.2}x below smoke floor (level {})",
            level.name()
        );
    }
    let report = BenchReport {
        workload: format!("all-vs-all upper triangle, seed {}", cfg.seed),
        db_size: db.len(),
        mean_len: db.mean_len(),
        repeats,
        simd_level: level.name().to_string(),
        variants,
        speedup_cells_per_sec: speedup,
        speedup_simd_vs_profile: simd_speedup,
        speedup_banded_refine: banded_speedup,
        bit_identical,
    };

    for v in &report.variants {
        eprintln!(
            "  {:<20} {:>10.1} Mcells/s  {:>8.1} pairs/s  {:>8} allocs  {:>10} skipped",
            v.name,
            v.cells_per_sec / 1e6,
            v.pairs_per_sec,
            v.allocations,
            v.cells_skipped
        );
    }
    eprintln!("  speedup (batched vs naive):   {speedup:.2}x");
    eprintln!("  speedup (simd vs batched):    {simd_speedup:.2}x");
    eprintln!("  speedup (banded vs unbanded): {banded_speedup:.2}x");

    let json = serde_json::to_string(&report).expect("serialize report");
    write_results("BENCH_kernel.json", &json);
    println!("{json}");
}
