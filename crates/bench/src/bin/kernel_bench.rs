//! **Alignment kernel microbench** — throughput of the query-profile
//! kernel vs the seed (naive) implementation on a seeded dataset.
//!
//! Measures, for each variant:
//!
//! * cells/sec — DP cells computed per second (the unit of the cost model),
//! * pairs/sec — pairwise alignments per second,
//! * allocations — heap allocations per pass, via a counting wrapper
//!   around the system allocator.
//!
//! Each variant is timed per pass and the **minimum** over
//! `KERNEL_BENCH_REPEATS` passes is reported (interference from the host
//! only ever slows a pass down, so the minimum is the least-noisy
//! estimate of kernel throughput).
//!
//! Writes `BENCH_kernel.json`, seeding the repo's perf trajectory; the
//! acceptance bar for the profile kernel is ≥ 2× the naive cells/sec.

use bioopera_bench::write_results;
use bioopera_darwin::align::{
    align_score_many, align_score_naive, align_score_with, AlignParams, AlignScratch, ScoreOnly,
};
use bioopera_darwin::dataset::DatasetConfig;
use bioopera_darwin::pam::FIXED_PAM;
use bioopera_darwin::{PamFamily, SequenceDb};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapped with an allocation counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[derive(Serialize)]
struct VariantResult {
    name: String,
    pairs: u64,
    cells: u64,
    seconds: f64,
    cells_per_sec: f64,
    pairs_per_sec: f64,
    allocations: u64,
    checksum: f64,
}

#[derive(Serialize)]
struct BenchReport {
    workload: String,
    db_size: usize,
    mean_len: f64,
    repeats: u32,
    variants: Vec<VariantResult>,
    speedup_cells_per_sec: f64,
    bit_identical: bool,
}

/// Per-variant timing accumulator: best per-pass seconds plus the allocs
/// of one pass.  The minimum over passes is the robust estimator here:
/// the box runs inside a VM whose host-side interference inflates
/// individual passes but never deflates them, and the variants are
/// interleaved pass-by-pass in `main` so a noise burst cannot land
/// entirely on one variant.
struct Timing {
    best_secs: f64,
    allocs: u64,
    result: (f64, u64),
}

impl Timing {
    fn new() -> Self {
        Timing {
            best_secs: f64::INFINITY,
            allocs: 0,
            result: (0.0, 0),
        }
    }

    fn pass(&mut self, work: &mut impl FnMut() -> (f64, u64)) {
        let alloc0 = allocations();
        let start = Instant::now();
        self.result = std::hint::black_box(work());
        self.best_secs = self.best_secs.min(start.elapsed().as_secs_f64());
        self.allocs = allocations() - alloc0;
    }
}

fn main() {
    let pam = PamFamily::default();
    let cfg = DatasetConfig {
        size: 60,
        mean_len: 180,
        ..DatasetConfig::small(60, 42)
    };
    let db = SequenceDb::generate(&cfg, &pam);
    let matrix = pam.nearest(FIXED_PAM);
    let params = AlignParams::default();
    let n = db.len() as u32;
    let repeats: u32 = std::env::var("KERNEL_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let pairs_per_pass: u64 = (n as u64) * (n as u64 - 1) / 2;

    // The reference: one naive all-vs-all pass (upper triangle).
    let naive_pass = || {
        let mut checksum = 0.0f64;
        let mut cells = 0u64;
        for e in 0..n {
            let a = db.get(e);
            for f in (e + 1)..n {
                let r = align_score_naive(a, db.get(f), matrix, &params);
                checksum += r.score as f64;
                cells += r.cells;
            }
        }
        (checksum, cells)
    };

    // The profile kernel, batched: one profile build per query, one
    // scratch for the whole pass.
    let mut scratch = AlignScratch::new();
    let mut scores: Vec<ScoreOnly> = Vec::new();
    let mut batched_pass = || {
        let mut checksum = 0.0f64;
        let mut cells = 0u64;
        for e in 0..n {
            if e + 1 >= n {
                break;
            }
            align_score_many(
                db.get(e),
                ((e + 1)..n).map(|f| db.get(f)),
                matrix,
                &params,
                None,
                &mut scratch,
                &mut scores,
            );
            for r in &scores {
                checksum += r.score as f64;
                cells += r.cells;
            }
        }
        (checksum, cells)
    };

    // The profile kernel, pairwise entry point (profile rebuilt per pair,
    // scratch still reused): isolates the profile-build overhead.
    let mut scratch2 = AlignScratch::new();
    let mut pairwise_pass = || {
        let mut checksum = 0.0f64;
        let mut cells = 0u64;
        for e in 0..n {
            let a = db.get(e);
            for f in (e + 1)..n {
                let r = align_score_with(a, db.get(f), matrix, &params, &mut scratch2);
                checksum += r.score as f64;
                cells += r.cells;
            }
        }
        (checksum, cells)
    };

    eprintln!(
        "kernel_bench: db={} seqs, mean_len={:.0}, {repeats} passes",
        db.len(),
        db.mean_len()
    );

    // One untimed warm-up each (grow lazy buffers), then interleave the
    // variants pass-by-pass so background interference hits all three
    // with equal odds; keep each variant's best pass.
    let mut naive_pass = naive_pass;
    naive_pass();
    batched_pass();
    pairwise_pass();
    let mut naive_t = Timing::new();
    let mut batch_t = Timing::new();
    let mut pair_t = Timing::new();
    for _ in 0..repeats {
        naive_t.pass(&mut naive_pass);
        batch_t.pass(&mut batched_pass);
        pair_t.pass(&mut pairwise_pass);
    }
    let ((naive_sum, naive_cells), naive_secs, naive_allocs) =
        (naive_t.result, naive_t.best_secs, naive_t.allocs);
    let ((batch_sum, batch_cells), batch_secs, batch_allocs) =
        (batch_t.result, batch_t.best_secs, batch_t.allocs);
    let ((pair_sum, pair_cells), pair_secs, pair_allocs) =
        (pair_t.result, pair_t.best_secs, pair_t.allocs);

    let bit_identical = naive_sum == batch_sum
        && naive_sum == pair_sum
        && naive_cells == batch_cells
        && naive_cells == pair_cells;
    assert!(
        bit_identical,
        "profile kernel diverged from naive: {naive_sum} vs {batch_sum} / {pair_sum}"
    );

    let variant = |name: &str, sum: f64, cells: u64, secs: f64, allocs: u64| VariantResult {
        name: name.to_string(),
        pairs: pairs_per_pass,
        cells,
        seconds: secs,
        cells_per_sec: cells as f64 / secs,
        pairs_per_sec: pairs_per_pass as f64 / secs,
        allocations: allocs,
        checksum: sum,
    };
    let variants = vec![
        variant(
            "naive_align_score",
            naive_sum,
            naive_cells,
            naive_secs,
            naive_allocs,
        ),
        variant(
            "profile_batched",
            batch_sum,
            batch_cells,
            batch_secs,
            batch_allocs,
        ),
        variant(
            "profile_pairwise",
            pair_sum,
            pair_cells,
            pair_secs,
            pair_allocs,
        ),
    ];
    let speedup = variants[1].cells_per_sec / variants[0].cells_per_sec;
    let report = BenchReport {
        workload: format!("all-vs-all upper triangle, seed {}", cfg.seed),
        db_size: db.len(),
        mean_len: db.mean_len(),
        repeats,
        variants,
        speedup_cells_per_sec: speedup,
        bit_identical,
    };

    for v in &report.variants {
        eprintln!(
            "  {:<20} {:>10.1} Mcells/s  {:>8.1} pairs/s  {:>8} allocs",
            v.name,
            v.cells_per_sec / 1e6,
            v.pairs_per_sec,
            v.allocations
        );
    }
    eprintln!("  speedup (batched vs naive): {speedup:.2}x");

    let json = serde_json::to_string(&report).expect("serialize report");
    write_results("BENCH_kernel.json", &json);
    println!("{json}");
}
