//! **Dependability ablation** — BioOpera vs the manual script-driver
//! status quo (paper §1/§2: "currently, users are required to manually
//! handle almost all aspects of such computations ... a major bottleneck
//! and a significant source of inefficiencies"; §5.4: "previous manual
//! efforts required significantly more time").
//!
//! Both systems run the *same* TEU work on the *same* cluster under the
//! *same* failure trace; we compare wall time, wasted CPU and the number
//! of manual interventions.

use bioopera_bench::{fmt_days, run_allvsall, write_results};
use bioopera_cluster::{Cluster, SimTime, Trace};
use bioopera_workloads::allvsall::{AllVsAllConfig, AllVsAllSetup};
use bioopera_workloads::baseline::{BaselineConfig, ScriptDriver};
use std::fmt::Write;

fn main() {
    // A month-scale workload: 20 000 entries, 200 TEUs on the shared pool
    // with the full Figure-5 failure trace.
    let n = 75_458;
    let teus = 500;
    let setup = AllVsAllSetup::synthetic(
        n,
        370,
        38,
        AllVsAllConfig {
            teus,
            ..Default::default()
        },
    );
    let trace = Trace::shared_run();

    eprintln!("running BioOpera...");
    let out = run_allvsall(
        &setup,
        Cluster::shared_pool(),
        &trace,
        SimTime::from_hours(2),
    );
    let rt = &out.runtime;
    let stats = rt.stats(out.instance).expect("stats");
    // Manual interventions under BioOpera: the trace's operator suspends /
    // resumes (events that "will always occur in any system") plus the
    // event-10 restart.  Node/cluster/server failures are masked.
    let bioopera_interventions = rt
        .event_log()
        .iter()
        .filter(|(_, m)| m.contains("manual") || m.contains("restarted"))
        .count() as u32;
    let masked = rt
        .awareness()
        .of_kind(rt.store(), "task.systemfail")
        .map(|v| v.len())
        .unwrap_or(0);

    eprintln!("running the manual script driver on the same trace...");
    // The same TEU works, extracted from the setup's cost programs.
    let lib = &setup.library;
    let partition = lib.get("darwin.partition").unwrap();
    let fixed = lib.get("darwin.align_fixed").unwrap();
    let refine = lib.get("darwin.refine").unwrap();
    let mut inputs = std::collections::BTreeMap::new();
    inputs.insert(
        "queue_file".to_string(),
        bioopera_ocr::Value::int_list(0..n as i64),
    );
    inputs.insert("teus".to_string(), bioopera_ocr::Value::Int(teus));
    let chunks = partition(&inputs).unwrap().outputs["partition"].clone();
    let works: Vec<f64> = chunks
        .as_list()
        .unwrap()
        .iter()
        .map(|c| {
            let mut i = std::collections::BTreeMap::new();
            i.insert("item".to_string(), c.clone());
            let fx = fixed(&i).unwrap();
            let mut j = fx.outputs.clone();
            j.insert("matches".to_string(), bioopera_ocr::Value::List(vec![]));
            fx.cost_ref_ms + refine(&j).unwrap().cost_ref_ms
        })
        .collect();
    let baseline =
        ScriptDriver::new(BaselineConfig::default()).run(Cluster::shared_pool(), &trace, &works);

    let mut t = String::new();
    let _ = writeln!(t, "Dependability: BioOpera vs manual script driver");
    let _ = writeln!(
        t,
        "(same {teus} TEUs over {n} entries, same shared cluster + failure trace)\n"
    );
    let _ = writeln!(t, "{:<26} {:>18} {:>18}", "", "BioOpera", "manual scripts");
    let _ = writeln!(
        t,
        "{:<26} {:>18} {:>18}",
        "WALL",
        fmt_days(stats.wall),
        fmt_days(baseline.wall)
    );
    let _ = writeln!(
        t,
        "{:<26} {:>18} {:>18}",
        "CPU consumed",
        fmt_days(stats.cpu),
        fmt_days(baseline.cpu_consumed)
    );
    let _ = writeln!(
        t,
        "{:<26} {:>18} {:>18}",
        "CPU thrown away",
        "(masked; re-runs only)",
        fmt_days(baseline.cpu_lost)
    );
    let _ = writeln!(
        t,
        "{:<26} {:>18} {:>18}",
        "manual interventions", bioopera_interventions, baseline.manual_interventions
    );
    let _ = writeln!(
        t,
        "{:<26} {:>18} {:>18}",
        "failures masked", masked, "n/a (human-detected)"
    );
    println!("{t}");
    write_results("ablation_baseline.txt", &t);

    if baseline.manual_interventions <= bioopera_interventions {
        eprintln!("WARNING: baseline should need more manual interventions");
    }
    if baseline.wall.as_millis() < stats.wall.as_millis() {
        eprintln!("WARNING: baseline should not finish faster");
    }
}
