//! Shared harness for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see `EXPERIMENTS.md` for the index).  This library
//! holds the common plumbing: standing up a runtime over a cluster +
//! trace, running an all-vs-all, rendering ASCII charts of the
//! availability/utilization series, and writing results files.

pub mod store_baseline;

use bioopera_cluster::{Cluster, SimTime, Trace};
use bioopera_core::{Runtime, RuntimeConfig, SeriesRollup, SeriesSample};
use bioopera_store::MemDisk;
use bioopera_workloads::allvsall::AllVsAllSetup;
use std::path::PathBuf;

/// Outcome of one experiment run.
pub struct RunOutcome {
    /// The runtime after completion (for stats/series/history queries).
    pub runtime: Runtime<MemDisk>,
    /// The instance that ran.
    pub instance: bioopera_core::InstanceId,
}

/// Stand up a runtime, register the all-vs-all templates, install `trace`,
/// submit and run to completion.
pub fn run_allvsall(
    setup: &AllVsAllSetup,
    cluster: Cluster,
    trace: &Trace,
    heartbeat: SimTime,
) -> RunOutcome {
    let cfg = RuntimeConfig {
        heartbeat,
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster, setup.library.clone(), cfg)
        .expect("runtime construction");
    rt.register_template(&setup.chunk_template)
        .expect("chunk template");
    rt.register_template(&setup.template).expect("top template");
    rt.install_trace(trace);
    let instance = rt.submit("AllVsAll", setup.initial()).expect("submit");
    rt.run_to_completion().expect("run to completion");
    RunOutcome {
        runtime: rt,
        instance,
    }
}

/// Render the Figures 5/6 style chart: availability (`#`) as the envelope,
/// utilization (`*`) inside it, x = days, y = processors.
pub fn ascii_lifecycle(series: &[SeriesSample], width: usize, height: usize) -> String {
    if series.is_empty() {
        return "(no samples)".to_string();
    }
    let t_max = series.last().unwrap().at.as_days_f64().max(0.001);
    let y_max = series
        .iter()
        .map(|s| s.availability as f64)
        .fold(1.0f64, f64::max);
    let mut grid = vec![vec![' '; width]; height];
    // One chart column per rollup bin: the shared awareness-layer rollup
    // performs exactly the aggregation (bucket mean, carry-forward fill)
    // these charts have always used.
    let rollup = SeriesRollup::over_days(series, t_max, width);
    for (col, bin) in rollup.bins().iter().enumerate() {
        let a_rows = ((bin.availability / y_max) * (height as f64 - 1.0)).round() as usize;
        let u_rows = ((bin.utilization / y_max) * (height as f64 - 1.0)).round() as usize;
        for (row, grid_row) in grid.iter_mut().enumerate() {
            let y = height - 1 - row; // row 0 at top
            if y <= u_rows {
                grid_row[col] = '*';
            } else if y <= a_rows {
                grid_row[col] = '#';
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "processors (y: 0..{y_max:.0})  '#' available  '*' computing BioOpera jobs\n"
    ));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(" 0 days {:>w$.1} days\n", t_max, w = width - 8));
    out
}

/// Render a two-series log-x chart for Figure 4 (CPU and WALL vs #TEUs).
pub fn ascii_fig4(rows: &[(usize, f64, f64)], width: usize, height: usize) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let x_min = (rows[0].0 as f64).ln();
    let x_max = (rows.last().unwrap().0 as f64).ln().max(x_min + 1e-9);
    let y_max = rows.iter().map(|r| r.1.max(r.2)).fold(0.0f64, f64::max) * 1.05;
    let mut grid = vec![vec![' '; width]; height];
    let mut plot = |x: f64, y: f64, c: char| {
        let col = (((x.ln() - x_min) / (x_max - x_min)) * (width as f64 - 1.0)).round() as usize;
        let row = height - 1 - ((y / y_max) * (height as f64 - 1.0)).round() as usize;
        let col = col.min(width - 1);
        let row = row.min(height - 1);
        if grid[row][col] == ' ' || grid[row][col] == c {
            grid[row][col] = c;
        } else {
            grid[row][col] = '@'; // overlap
        }
    };
    for &(n, cpu, wall) in rows {
        plot(n as f64, cpu, 'C');
        plot(n as f64, wall, 'W');
    }
    let mut out = String::new();
    out.push_str(&format!(
        "seconds (y: 0..{y_max:.0})  'C' CPU  'W' WALL  '@' overlap  (x: #TEUs, log scale)\n"
    ));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        " {:<8} {:>w$}\n",
        rows[0].0,
        rows.last().unwrap().0,
        w = width - 8
    ));
    out
}

/// Where results files go.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("BIOOPERA_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a results file (also echoed by the caller to stdout).
pub fn write_results(name: &str, content: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, content).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("[saved {}]", path.display());
}

/// Format a day-scale `SimTime` like the paper's Table 1 cells.
pub fn fmt_days(t: SimTime) -> String {
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_lifecycle_renders_envelope() {
        let series: Vec<SeriesSample> = (0..100)
            .map(|i| SeriesSample {
                at: SimTime::from_hours(i * 12),
                availability: 10,
                utilization: if i % 2 == 0 { 5.0 } else { 8.0 },
            })
            .collect();
        let chart = ascii_lifecycle(&series, 60, 10);
        assert!(chart.contains('#'));
        assert!(chart.contains('*'));
        assert!(chart.lines().count() >= 10);
    }

    #[test]
    fn ascii_fig4_renders_both_series() {
        let rows = vec![
            (1usize, 2500.0, 2500.0),
            (25, 2600.0, 700.0),
            (500, 5200.0, 1500.0),
        ];
        let chart = ascii_fig4(&rows, 60, 12);
        assert!(chart.contains('C'));
        assert!(chart.contains('W'));
    }
}
