//! A faithful replica of the **pre-overhaul** storage engine, kept as the
//! "before" side of `store_bench` (the same retained-baseline pattern as
//! `align_score_naive` in the kernel bench).
//!
//! It reproduces every cost the overhaul removed, on the identical
//! on-disk format:
//!
//! * one global `Mutex` around the whole engine — concurrent readers
//!   serialize behind writers and each other,
//! * `get` allocates a `String` per lookup, `len` is a full cloning scan,
//! * frame encoding happens inside the critical section with the
//!   byte-at-a-time CRC-32,
//! * `replay` copies every key *and* value out of the log image,
//! * `compact` first clones the entire memtable into an owned op vector,
//!   then encodes it.
//!
//! Only used by benchmarks; never by the system itself.

use bioopera_store::crc::crc32_bytewise;
use bioopera_store::wal::{WalOp, HEADER_LEN, MAGIC, MAX_PAYLOAD};
use bioopera_store::{Disk, StoreResult};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Frame encoder exactly as the old engine ran it: fresh payload buffer
/// per frame, bytewise CRC.
pub fn encode_frame_bytewise(ops: &[WalOp]) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            WalOp::Put { space, key, value } => {
                payload.push(0);
                payload.push(*space);
                payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
                payload.extend_from_slice(key.as_bytes());
                payload.extend_from_slice(&(value.len() as u32).to_le_bytes());
                payload.extend_from_slice(value);
            }
            WalOp::Delete { space, key } => {
                payload.push(1);
                payload.push(*space);
                payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
                payload.extend_from_slice(key.as_bytes());
            }
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32_bytewise(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Replay exactly as the old engine ran it: bytewise CRC verification and
/// a per-record copy of every key and value (`to_vec` /
/// `copy_from_slice`).  Valid-image path only — the bench replays logs it
/// just wrote.
pub fn replay_copying(log: &[u8]) -> Vec<Vec<WalOp>> {
    let mut batches = Vec::new();
    let mut off = 0usize;
    while off < log.len() {
        let rest = &log[off..];
        assert!(
            rest.len() >= HEADER_LEN && rest[..2] == MAGIC,
            "invalid frame"
        );
        let len = u32::from_le_bytes([rest[2], rest[3], rest[4], rest[5]]);
        assert!(len <= MAX_PAYLOAD && rest.len() >= HEADER_LEN + len as usize);
        let crc = u32::from_le_bytes([rest[6], rest[7], rest[8], rest[9]]);
        let payload = &rest[HEADER_LEN..HEADER_LEN + len as usize];
        assert_eq!(crc32_bytewise(payload), crc, "crc mismatch");
        let mut p = payload;
        let count = u32::from_le_bytes([p[0], p[1], p[2], p[3]]) as usize;
        p = &p[4..];
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = p[0];
            let space = p[1];
            let klen = u32::from_le_bytes([p[2], p[3], p[4], p[5]]) as usize;
            let key = String::from_utf8(p[6..6 + klen].to_vec()).expect("utf-8 key");
            p = &p[6 + klen..];
            match tag {
                0 => {
                    let vlen = u32::from_le_bytes([p[0], p[1], p[2], p[3]]) as usize;
                    let value = Bytes::copy_from_slice(&p[4..4 + vlen]);
                    p = &p[4 + vlen..];
                    ops.push(WalOp::Put { space, key, value });
                }
                1 => ops.push(WalOp::Delete { space, key }),
                t => panic!("unknown tag {t}"),
            }
        }
        batches.push(ops);
        off += HEADER_LEN + len as usize;
    }
    batches
}

struct Inner<D: Disk> {
    disk: D,
    mem: BTreeMap<(u8, String), Bytes>,
    epoch: u64,
    wal_bytes: u64,
}

/// The old engine's shape: everything behind one `Mutex`.
pub struct BaselineStore<D: Disk> {
    inner: Arc<Mutex<Inner<D>>>,
}

impl<D: Disk> Clone for BaselineStore<D> {
    fn clone(&self) -> Self {
        BaselineStore {
            inner: Arc::clone(&self.inner),
        }
    }
}

fn wal_name(epoch: u64) -> String {
    format!("wal-{epoch:06}")
}

fn snapshot_name(epoch: u64) -> String {
    format!("snapshot-{epoch:06}")
}

impl<D: Disk> BaselineStore<D> {
    /// Open fresh over `disk` (the bench never recovers a baseline store;
    /// replay is measured through [`replay_copying`] directly).
    pub fn open(disk: D) -> Self {
        BaselineStore {
            inner: Arc::new(Mutex::new(Inner {
                disk,
                mem: BTreeMap::new(),
                epoch: 0,
                wal_bytes: 0,
            })),
        }
    }

    /// Apply a batch: encode *inside* the critical section, as the old
    /// engine did.
    pub fn apply(&self, ops: Vec<WalOp>) -> StoreResult<()> {
        let mut inner = self.inner.lock();
        if ops.is_empty() {
            return Ok(());
        }
        let frame = encode_frame_bytewise(&ops);
        let name = wal_name(inner.epoch);
        inner.disk.append(&name, &frame)?;
        inner.wal_bytes += frame.len() as u64;
        for op in ops {
            match op {
                WalOp::Put { space, key, value } => {
                    inner.mem.insert((space, key), value);
                }
                WalOp::Delete { space, key } => {
                    inner.mem.remove(&(space, key));
                }
            }
        }
        Ok(())
    }

    /// The old allocating lookup: a `String` built per call just to probe
    /// the map.
    pub fn get(&self, space: u8, key: &str) -> Option<Bytes> {
        let inner = self.inner.lock();
        inner.mem.get(&(space, key.to_string())).cloned()
    }

    /// The old prefix scan over the single composite-keyed map.
    pub fn scan_prefix(&self, space: u8, prefix: &str) -> Vec<(String, Bytes)> {
        let inner = self.inner.lock();
        let lo = (space, prefix.to_string());
        inner
            .mem
            .range(lo..)
            .take_while(|((s, k), _)| *s == space && k.starts_with(prefix))
            .map(|((_, k), v)| (k.clone(), v.clone()))
            .collect()
    }

    /// The old `len`: a full cloning scan.
    pub fn len(&self, space: u8) -> usize {
        self.scan_prefix(space, "").len()
    }

    /// The old compaction: clone the whole memtable into owned ops, then
    /// encode with the bytewise CRC, all under the global lock.
    pub fn compact(&self) -> StoreResult<()> {
        let mut inner = self.inner.lock();
        let next = inner.epoch + 1;
        let ops: Vec<WalOp> = inner
            .mem
            .iter()
            .map(|((s, k), v)| WalOp::Put {
                space: *s,
                key: k.clone(),
                value: v.clone(),
            })
            .collect();
        let mut snap = Vec::new();
        for chunk in ops.chunks(1024) {
            snap.extend_from_slice(&encode_frame_bytewise(chunk));
        }
        if ops.is_empty() {
            snap.extend_from_slice(&encode_frame_bytewise(&[]));
        }
        inner.disk.write_atomic(&snapshot_name(next), &snap)?;
        inner
            .disk
            .write_atomic("MANIFEST", next.to_string().as_bytes())?;
        let old_wal = wal_name(inner.epoch);
        let old_snap = snapshot_name(inner.epoch);
        inner.disk.delete(&old_wal)?;
        inner.disk.delete(&old_snap)?;
        inner.epoch = next;
        inner.wal_bytes = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioopera_store::wal;
    use bioopera_store::MemDisk;

    fn put(space: u8, key: &str, value: &[u8]) -> WalOp {
        WalOp::Put {
            space,
            key: key.to_string(),
            value: Bytes::copy_from_slice(value),
        }
    }

    #[test]
    fn baseline_frames_are_bit_identical_to_the_real_engine() {
        let ops = vec![
            put(1, "inst/1", b"running"),
            WalOp::Delete {
                space: 3,
                key: "old".into(),
            },
        ];
        assert_eq!(encode_frame_bytewise(&ops), wal::encode_frame(&ops));
    }

    #[test]
    fn baseline_replay_agrees_with_the_real_replay() {
        let mut log = Vec::new();
        for i in 0..10u8 {
            log.extend_from_slice(&encode_frame_bytewise(&[put(
                i % 4,
                &format!("k{i}"),
                &[i; 100],
            )]));
        }
        let old = replay_copying(&log);
        let new = wal::replay(&log).unwrap();
        assert!(!new.torn_tail);
        assert_eq!(old, new.batches);
    }

    #[test]
    fn baseline_store_roundtrip() {
        let store = BaselineStore::open(MemDisk::new());
        store
            .apply(vec![put(0, "a", b"1"), put(0, "b", b"2")])
            .unwrap();
        assert_eq!(store.get(0, "a").unwrap(), &b"1"[..]);
        assert_eq!(store.len(0), 2);
        store.compact().unwrap();
        assert_eq!(store.len(0), 2);
        store
            .apply(vec![WalOp::Delete {
                space: 0,
                key: "a".into(),
            }])
            .unwrap();
        assert_eq!(store.get(0, "a"), None);
        assert_eq!(store.len(0), 1);
    }
}
