//! Awareness micro-benchmark: event record/flush throughput and the
//! indexed-query vs full-scan latency gap.
//!
//! Not a criterion bench on purpose — like `kernel_bench`, it emits a
//! machine-readable `BENCH_awareness.json` into the results directory so
//! the numbers land in the repo's perf trajectory.  Run with
//! `cargo bench --bench awareness_bench`.

use bioopera_bench::write_results;
use bioopera_cluster::SimTime;
use bioopera_core::{Awareness, EventKind};
use bioopera_store::{MemDisk, Store};
use serde::Serialize;
use std::time::Instant;

const EVENTS: usize = 50_000;
const FLUSH_EVERY: usize = 64;
const QUERY_ROUNDS: usize = 200;

#[derive(Serialize)]
struct AwarenessBenchReport {
    events: usize,
    flush_every: usize,
    /// Wall seconds to record + batch-flush all events.
    record_secs: f64,
    events_per_sec: f64,
    /// Mean nanoseconds for an indexed count + of_kind query.
    indexed_query_ns: f64,
    /// Wall seconds for one full-scan index rebuild (the pre-index path).
    full_scan_secs: f64,
    /// Full scan time over mean indexed query time.
    indexed_speedup: f64,
}

fn synthetic_event(i: usize) -> EventKind {
    let instance = (i % 128) as u64;
    let path = format!("Chunk[{}]", i % 500);
    let node = format!("n{}", i % 32);
    match i % 5 {
        0 => EventKind::TaskStart {
            instance,
            path,
            node,
            job: i as u64,
            queue_ms: (i % 2_000) as u64,
        },
        1 => EventKind::TaskEnd {
            instance,
            path,
            node,
            run_ms: (i % 60_000) as u64,
            cpu_ms: (i % 60_000) as f64,
        },
        2 => EventKind::NodeLoad {
            node,
            cpus: (i % 16) as f64,
        },
        3 => EventKind::InstanceStart {
            instance,
            template: "AllVsAllChunk".into(),
        },
        _ => EventKind::InstanceComplete { instance },
    }
}

fn main() {
    let store = Store::open(MemDisk::new()).unwrap();
    let mut aw = Awareness::open(&store).unwrap();

    let start = Instant::now();
    for i in 0..EVENTS {
        aw.record(SimTime::from_millis(i as u64 * 500), synthetic_event(i));
        if (i + 1) % FLUSH_EVERY == 0 {
            aw.flush(&store).unwrap();
        }
    }
    aw.flush(&store).unwrap();
    let record_secs = start.elapsed().as_secs_f64();

    // Indexed queries: the monitoring dashboard's summary, answered from
    // the in-memory index.
    let start = Instant::now();
    let mut checksum = 0usize;
    for _ in 0..QUERY_ROUNDS {
        checksum += aw.index().count("task.end");
        checksum += aw.of_kind(&store, "node.load").unwrap().len();
        checksum += aw.index().for_node("n7").len();
    }
    let indexed_query_ns = start.elapsed().as_nanos() as f64 / QUERY_ROUNDS as f64;
    std::hint::black_box(checksum);

    // The pre-index answer to the same questions: scan and re-aggregate.
    let start = Instant::now();
    let rebuilt = aw.rebuild_index(&store).unwrap();
    let full_scan_secs = start.elapsed().as_secs_f64();
    assert_eq!(&rebuilt, aw.index(), "index must match full-scan rebuild");

    let report = AwarenessBenchReport {
        events: EVENTS,
        flush_every: FLUSH_EVERY,
        record_secs,
        events_per_sec: EVENTS as f64 / record_secs,
        indexed_query_ns,
        full_scan_secs,
        indexed_speedup: full_scan_secs * 1e9 / indexed_query_ns.max(1.0),
    };
    eprintln!(
        "  record: {:.0} events/s   indexed query: {:.0} ns   full scan: {:.3} s ({:.0}x)",
        report.events_per_sec,
        report.indexed_query_ns,
        report.full_scan_secs,
        report.indexed_speedup
    );
    let json = serde_json::to_string(&report).expect("serialize report");
    write_results("BENCH_awareness.json", &json);
    println!("{json}");
}
