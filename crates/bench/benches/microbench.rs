//! Criterion micro-benchmarks for the performance-critical kernels:
//! the alignment DP inner loop, PAM family construction, WAL framing and
//! replay, OCR parsing, a full (small) engine run, scheduling decisions
//! and the adaptive monitor.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;

fn bench_alignment(c: &mut Criterion) {
    use bioopera_darwin::align::{align_score, AlignParams};
    use bioopera_darwin::dataset::random_sequence;
    use bioopera_darwin::pam::{PamFamily, FIXED_PAM};
    use rand::SeedableRng;

    let fam = PamFamily::default();
    let matrix = fam.nearest(FIXED_PAM);
    let params = AlignParams::default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let a = random_sequence(&mut rng, 370);
    let b = random_sequence(&mut rng, 370);
    let mut g = c.benchmark_group("alignment");
    g.throughput(Throughput::Elements((a.len() * b.len()) as u64));
    g.bench_function("smith_waterman_370x370", |bench| {
        bench.iter(|| align_score(black_box(&a), black_box(&b), matrix, &params))
    });
    g.finish();
}

fn bench_pam_family(c: &mut Criterion) {
    use bioopera_darwin::pam::PamFamily;
    c.bench_function("pam_family_build_12_ladder", |b| b.iter(PamFamily::default));
}

fn bench_wal(c: &mut Criterion) {
    use bioopera_store::{Batch, MemDisk, Space, Store};
    let mut g = c.benchmark_group("store");
    g.bench_function("wal_append_batch_of_8", |b| {
        let store = Store::open(MemDisk::new()).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let mut batch = Batch::new();
            for k in 0..8 {
                batch.put(
                    Space::Instance,
                    format!("inst/{i}/task/{k}"),
                    vec![0u8; 128],
                );
            }
            i += 1;
            store.apply(batch).unwrap();
        })
    });
    g.bench_function("recovery_replay_1000_batches", |b| {
        // Build a disk image once per batch run.
        b.iter_batched(
            || {
                let disk = MemDisk::new();
                let store = Store::open(disk.clone()).unwrap();
                for i in 0..1000 {
                    store
                        .put(Space::History, format!("ev/{i:06}"), vec![7u8; 64])
                        .unwrap();
                }
                disk
            },
            |disk| Store::open(black_box(disk)).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_ocr_parse(c: &mut Criterion) {
    use bioopera_workloads::allvsall::top_template;
    let text = bioopera_ocr::to_ocr_text(&top_template());
    let mut g = c.benchmark_group("ocr");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("parse_allvsall_template", |b| {
        b.iter(|| bioopera_ocr::parse_process(black_box(&text)).unwrap())
    });
    g.finish();
}

fn bench_engine_run(c: &mut Criterion) {
    use bioopera_cluster::{Cluster, NodeSpec, SimTime};
    use bioopera_core::{ActivityLibrary, ProgramOutput, Runtime, RuntimeConfig};
    use bioopera_ocr::model::{ExternalBinding, ParallelBody, TypeTag};
    use bioopera_ocr::value::Value;
    use bioopera_ocr::ProcessBuilder;
    use bioopera_store::MemDisk;

    let template = ProcessBuilder::new("Bench")
        .activity("Gen", "gen", |t| t.output("items", TypeTag::List))
        .parallel(
            "Fan",
            "items",
            ParallelBody::Activity(ExternalBinding::program("work")),
            "results",
            |t| t,
        )
        .connect("Gen", "Fan")
        .flow_to_task("Gen", "items", "Fan", "items")
        .build()
        .unwrap();
    let mut lib = ActivityLibrary::new();
    lib.register("gen", |_| {
        Ok(ProgramOutput::from_fields(
            [("items", Value::int_list(0..32))],
            100.0,
        ))
    });
    lib.register("work", |_| {
        Ok(ProgramOutput::from_fields(
            [("ok", Value::Bool(true))],
            60_000.0,
        ))
    });
    let cluster = || {
        Cluster::new(
            "b",
            (0..4)
                .map(|i| NodeSpec::new(format!("n{i}"), 2, 500, "linux"))
                .collect(),
        )
    };
    c.bench_function("engine_fanout_32_tasks_end_to_end", |b| {
        b.iter(|| {
            let cfg = RuntimeConfig {
                heartbeat: SimTime::from_mins(10),
                ..Default::default()
            };
            let mut rt = Runtime::new(MemDisk::new(), cluster(), lib.clone(), cfg).unwrap();
            rt.register_template(&template).unwrap();
            let id = rt.submit("Bench", BTreeMap::new()).unwrap();
            rt.run_to_completion().unwrap();
            black_box(rt.instance_status(id))
        })
    });
}

fn bench_scheduler(c: &mut Criterion) {
    use bioopera_core::dispatcher::{schedule, LeastLoaded, NodeView};
    use bioopera_ocr::ExternalBinding;
    let nodes: Vec<NodeView> = (0..64)
        .map(|i| NodeView {
            name: format!("n{i:02}"),
            os: if i % 3 == 0 {
                "solaris".into()
            } else {
                "linux".into()
            },
            speed: 0.7 + (i % 5) as f64 * 0.1,
            cpus_online: 2,
            running_jobs: (i % 3) as u32,
            load: (i % 10) as f64 / 10.0,
            up: i % 11 != 0,
            quarantined: false,
        })
        .collect();
    let binding = ExternalBinding::program("p");
    c.bench_function("scheduler_least_loaded_64_nodes", |b| {
        let mut policy = LeastLoaded;
        b.iter(|| schedule(&mut policy, black_box(&nodes), &binding))
    });
}

fn bench_monitor(c: &mut Criterion) {
    use bioopera_cluster::loadgen::{load_curve, LoadModel};
    use bioopera_cluster::monitor::{evaluate, MonitorConfig};
    let curve = load_curve(9, 100_000, &LoadModel::default());
    let mut g = c.benchmark_group("monitor");
    g.throughput(Throughput::Elements(curve.len() as u64));
    g.bench_function("adaptive_monitor_100k_ticks", |b| {
        b.iter(|| evaluate(black_box(&curve), MonitorConfig::default()))
    });
    g.finish();
}

fn bench_refinement(c: &mut Criterion) {
    use bioopera_darwin::align::AlignParams;
    use bioopera_darwin::dataset::{evolve, random_sequence};
    use bioopera_darwin::pam::PamFamily;
    use bioopera_darwin::refine::refine_pam_distance;
    use rand::SeedableRng;
    let fam = Arc::new(PamFamily::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let anc = random_sequence(&mut rng, 250);
    let a = evolve(&anc, 40, &fam, &mut rng, 0.003);
    let b = evolve(&anc, 40, &fam, &mut rng, 0.003);
    let params = AlignParams::default();
    c.bench_function("pam_refinement_12_ladder_250aa", |bench| {
        bench.iter(|| refine_pam_distance(black_box(&a), black_box(&b), &fam, &params))
    });
}

criterion_group!(
    benches,
    bench_alignment,
    bench_pam_family,
    bench_wal,
    bench_ocr_parse,
    bench_engine_run,
    bench_scheduler,
    bench_monitor,
    bench_refinement,
);
criterion_main!(benches);
