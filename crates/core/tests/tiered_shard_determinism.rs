//! Sharded-navigator determinism over the **tiered** store.
//!
//! The leveled/tiered engine spills memtables into sorted runs and
//! merges them down a level hierarchy *underneath* the shard journals.
//! None of that may be observable: a sharded engine running on a
//! 512-byte memtable budget must reproduce the untiered 1-shard serial
//! baseline bit-for-bit — history digest, state digest and event counts
//! — and per-shard recovery scans must read records out of spilled runs
//! exactly as they would out of the memtable.

use bioopera_core::{ActivityLibrary, FaultInjection, ProgramOutput, ShardConfig, ShardEngine};
use bioopera_ocr::model::{ExternalBinding, ParallelBody, TypeTag};
use bioopera_ocr::value::Value;
use bioopera_ocr::{ProcessBuilder, ProcessTemplate};
use bioopera_store::{shard_key, MemDisk, Space, Store, TieredPolicy};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The squeezed policy: every few records spill, every second spill
/// merges, and levels overflow constantly.
fn tiny_policy() -> TieredPolicy {
    TieredPolicy {
        memtable_budget_bytes: 512,
        run_merge_threshold: 2,
        level_base_bytes: 4096,
        level_growth: 2,
        level_run_bytes: 768,
        ..TieredPolicy::default()
    }
}

fn library() -> ActivityLibrary {
    let mut lib = ActivityLibrary::new();
    lib.register("gen.list", |inputs| {
        let count = inputs.get("count").and_then(|v| v.as_int()).unwrap_or(3);
        Ok(ProgramOutput::from_fields(
            [("items", Value::int_list(0..count))],
            1_000.0,
        ))
    });
    lib.register("work.unit", |inputs| {
        let item = inputs
            .get("item")
            .and_then(|v| v.as_int())
            .ok_or_else(|| "work.unit needs an item".to_string())?;
        Ok(ProgramOutput::from_fields(
            [("value", Value::Int(item * item))],
            5_000.0,
        ))
    });
    lib.register("merge.sum", |inputs| {
        let total: i64 = inputs
            .get("results")
            .and_then(|v| v.as_list())
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.get_path(&["value"]).and_then(|v| v.as_int()))
                    .sum()
            })
            .unwrap_or(0);
        Ok(ProgramOutput::from_fields(
            [("total", Value::Int(total))],
            2_000.0,
        ))
    });
    lib.register("p.a", |inputs| {
        let x = inputs.get("x").and_then(|v| v.as_int()).unwrap_or(7);
        Ok(ProgramOutput::from_fields([("x", Value::Int(x))], 10.0))
    });
    lib.register("p.b", |inputs| {
        let x = inputs
            .get("x")
            .and_then(|v| v.as_int())
            .ok_or_else(|| "missing x".to_string())?;
        Ok(ProgramOutput::from_fields([("y", Value::Int(x * 2))], 20.0))
    });
    lib
}

fn chain_template() -> ProcessTemplate {
    ProcessBuilder::new("Chain")
        .whiteboard_default("x", TypeTag::Int, Value::Int(7))
        .whiteboard_field("y", TypeTag::Int)
        .activity("A", "p.a", |t| {
            t.input("x", TypeTag::Int).output("x", TypeTag::Int)
        })
        .activity("B", "p.b", |t| {
            t.input("x", TypeTag::Int).output("y", TypeTag::Int)
        })
        .connect("A", "B")
        .flow_from_whiteboard("x", "A", "x")
        .flow_to_task("A", "x", "B", "x")
        .flow_to_whiteboard("B", "y", "y")
        .build()
        .unwrap()
}

fn fan_template() -> ProcessTemplate {
    ProcessBuilder::new("Fan")
        .whiteboard_default("count", TypeTag::Int, Value::Int(3))
        .whiteboard_field("total", TypeTag::Int)
        .activity("Gen", "gen.list", |t| {
            t.input("count", TypeTag::Int)
                .output("items", TypeTag::List)
        })
        .parallel(
            "Fan",
            "items",
            ParallelBody::Activity(ExternalBinding::program("work.unit")),
            "results",
            |t| t,
        )
        .activity("Merge", "merge.sum", |t| {
            t.input("results", TypeTag::List)
                .output("total", TypeTag::Int)
        })
        .connect("Gen", "Fan")
        .connect("Fan", "Merge")
        .flow_from_whiteboard("count", "Gen", "count")
        .flow_to_task("Gen", "items", "Fan", "items")
        .flow_to_task("Fan", "results", "Merge", "results")
        .flow_to_whiteboard("Merge", "total", "total")
        .build()
        .unwrap()
}

fn parent_template() -> ProcessTemplate {
    ProcessBuilder::new("Parent")
        .whiteboard_default("x", TypeTag::Int, Value::Int(21))
        .subprocess("Sub", "Chain", |t| {
            t.input("x", TypeTag::Int).output("y", TypeTag::Int)
        })
        .activity("After", "p.b", |t| {
            t.input("x", TypeTag::Int).output("y", TypeTag::Int)
        })
        .connect("Sub", "After")
        .flow_from_whiteboard("x", "Sub", "x")
        .flow_to_task("Sub", "y", "After", "x")
        .build()
        .unwrap()
}

const TEMPLATES: [&str; 3] = ["Chain", "Fan", "Parent"];

/// Run a workload to completion on a store with the given policy and
/// return the observable fingerprint plus final store stats.
fn run_workload(
    workload: &[(usize, i64)],
    shards: usize,
    threads: usize,
    faults: Option<FaultInjection>,
    policy: Option<TieredPolicy>,
) -> ((u64, u64, BTreeMap<String, u64>), u64) {
    let store = Store::open_with(MemDisk::new(), policy).unwrap();
    let cfg = ShardConfig {
        shards,
        threads,
        faults,
        ..ShardConfig::default()
    };
    let mut eng = ShardEngine::new(store, library(), cfg).expect("engine");
    eng.register_template(chain_template()).unwrap();
    eng.register_template(fan_template()).unwrap();
    eng.register_template(parent_template()).unwrap();
    for (tmpl, knob) in workload {
        let name = TEMPLATES[tmpl % TEMPLATES.len()];
        let mut initial = BTreeMap::new();
        match name {
            "Chain" | "Parent" => {
                initial.insert("x".to_string(), Value::Int(*knob));
            }
            _ => {
                initial.insert("count".to_string(), Value::Int(1 + knob.rem_euclid(4)));
            }
        }
        eng.submit(name, initial).unwrap();
    }
    eng.run_to_completion().unwrap();
    let spills = eng.store().stats().spills;
    (
        (
            eng.history_digest(),
            eng.state_digest(),
            eng.event_counts().clone(),
        ),
        spills,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Tiering is invisible to the sharding contract: both a tiered
    /// serial engine and a tiered (shards, threads) engine reproduce
    /// the *untiered* 1×1 baseline bit-for-bit, while the tiny budget
    /// provably pushes the workload through spills.
    #[test]
    fn tiered_sharded_replay_matches_untiered_serial_baseline(
        workload in prop::collection::vec((0usize..3, 0i64..100), 4..16),
        shards in 2usize..7,
        threads in 1usize..4,
        fault_seed in any::<u64>(),
        fault_rate in prop_oneof![Just(0u32), Just(120_000u32)],
    ) {
        let faults = (fault_rate > 0).then_some(FaultInjection {
            seed: fault_seed,
            rate_ppm: fault_rate,
        });
        let (baseline, _) = run_workload(&workload, 1, 1, faults.clone(), None);
        let (tiered_serial, serial_spills) =
            run_workload(&workload, 1, 1, faults.clone(), Some(tiny_policy()));
        let (tiered_sharded, sharded_spills) =
            run_workload(&workload, shards, threads, faults, Some(tiny_policy()));
        prop_assert!(serial_spills > 0, "512-byte budget never spilled");
        prop_assert!(sharded_spills > 0, "512-byte budget never spilled (sharded)");
        prop_assert_eq!(&tiered_serial.0, &baseline.0, "serial history digest diverged");
        prop_assert_eq!(&tiered_sharded.0, &baseline.0, "sharded history digest diverged");
        prop_assert_eq!(&tiered_serial.1, &baseline.1, "serial state digest diverged");
        prop_assert_eq!(&tiered_sharded.1, &baseline.1, "sharded state digest diverged");
        prop_assert_eq!(&tiered_sharded.2, &baseline.2, "event counts diverged");
    }
}

/// A shard's recovery scan must surface records that have left the
/// memtable: spill the journals into runs, push them down a level, and
/// require every shard to read back exactly its own records.
#[test]
fn scan_shard_reads_records_out_of_spilled_runs() {
    let store = Store::open_with(MemDisk::new(), Some(tiny_policy())).unwrap();
    for shard in 0..3usize {
        for i in 0..40u32 {
            let body = format!("shard{shard}-rec{i:03}-{}", "x".repeat(48));
            store
                .put(
                    Space::Instance,
                    shard_key(shard, &format!("inst/{i:03}")),
                    body.into_bytes(),
                )
                .unwrap();
        }
    }
    let stats = store.stats();
    assert!(stats.spills > 0, "journals never left the memtable");
    assert!(stats.run_merges > 0, "spilled runs were never merged");

    for shard in 0..3usize {
        let seen = store.scan_shard(Space::Instance, shard).unwrap();
        assert_eq!(seen.len(), 40, "shard {shard} lost records to a spill");
        for (i, (key, value)) in seen.iter().enumerate() {
            assert_eq!(key, &format!("inst/{i:03}"));
            let text = std::str::from_utf8(value).unwrap();
            assert!(
                text.starts_with(&format!("shard{shard}-rec{i:03}")),
                "shard {shard} read another shard's record: {text}"
            );
        }
    }
    // A shard that never wrote sees an empty journal, not a neighbour's.
    assert!(store.scan_shard(Space::Instance, 7).unwrap().is_empty());
}
