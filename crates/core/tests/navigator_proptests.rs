//! Property tests for navigator semantics on random process DAGs.
//!
//! A reference interpreter (plain topological evaluation of the
//! activation-condition semantics) predicts the terminal state of every
//! task; the real engine — with its queues, virtual-time dispatch,
//! persistence and event loop — must agree, and must be deterministic.

use bioopera_cluster::{Cluster, NodeSpec, SimTime};
use bioopera_core::state::TaskState;
use bioopera_core::{ActivityLibrary, InstanceStatus, ProgramOutput, Runtime, RuntimeConfig};
use bioopera_ocr::expr::{BinOp, Expr};
use bioopera_ocr::model::TypeTag;
use bioopera_ocr::value::Value;
use bioopera_ocr::{ProcessBuilder, ProcessTemplate};
use bioopera_store::MemDisk;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A guard on the edge `from -> to`.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Guard {
    /// Unconditional.
    True,
    /// `from.flag == true` — fires iff the source task's index is even.
    FlagTrue,
    /// `from.flag == false`.
    FlagFalse,
}

#[derive(Debug, Clone)]
struct RandomDag {
    n: usize,
    /// Edges `(from, to, guard)` with `from < to` (guarantees a DAG).
    edges: Vec<(usize, usize, Guard)>,
}

fn dag_strategy() -> impl Strategy<Value = RandomDag> {
    (2usize..8).prop_flat_map(|n| {
        let all_pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
            .collect();
        let guards = prop::collection::vec(
            prop::sample::select(vec![Guard::True, Guard::FlagTrue, Guard::FlagFalse]),
            all_pairs.len(),
        );
        let mask = prop::collection::vec(prop::bool::weighted(0.45), all_pairs.len());
        (Just(n), Just(all_pairs), guards, mask).prop_map(|(n, pairs, guards, mask)| {
            let edges = pairs
                .into_iter()
                .zip(guards)
                .zip(mask)
                .filter(|(_, keep)| *keep)
                .map(|(((from, to), g), _)| (from, to, g))
                .collect();
            RandomDag { n, edges }
        })
    })
}

fn flag_of(task: usize) -> bool {
    task.is_multiple_of(2)
}

fn build_template(dag: &RandomDag) -> ProcessTemplate {
    let mut b = ProcessBuilder::new("Rand");
    for i in 0..dag.n {
        b = b.activity(format!("T{i}"), "emit", move |t| {
            t.input_default("idx", TypeTag::Int, Value::Int(i as i64))
                .output("flag", TypeTag::Bool)
        });
    }
    for (from, to, guard) in &dag.edges {
        let cond = match guard {
            Guard::True => Expr::truth(),
            Guard::FlagTrue => Expr::Bin(
                BinOp::Eq,
                Box::new(Expr::path(&format!("T{from}.flag"))),
                Box::new(Expr::Lit(Value::Bool(true))),
            ),
            Guard::FlagFalse => Expr::Bin(
                BinOp::Eq,
                Box::new(Expr::path(&format!("T{from}.flag"))),
                Box::new(Expr::Lit(Value::Bool(false))),
            ),
        };
        b = b.connect_when(format!("T{from}"), format!("T{to}"), cond);
    }
    b.build().expect("random DAG validates")
}

/// The oracle: plain topological evaluation.
fn reference_states(dag: &RandomDag) -> Vec<TaskState> {
    let mut states = vec![TaskState::Ended; dag.n];
    for to in 0..dag.n {
        let incoming: Vec<&(usize, usize, Guard)> =
            dag.edges.iter().filter(|(_, t, _)| *t == to).collect();
        if incoming.is_empty() {
            states[to] = TaskState::Ended; // entry task always runs
            continue;
        }
        let mut any = false;
        for (from, _, guard) in incoming {
            if states[*from] != TaskState::Ended {
                continue; // skipped source contributes false
            }
            let fired = match guard {
                Guard::True => true,
                Guard::FlagTrue => flag_of(*from),
                Guard::FlagFalse => !flag_of(*from),
            };
            any |= fired;
        }
        states[to] = if any {
            TaskState::Ended
        } else {
            TaskState::Skipped
        };
    }
    states
}

fn run_engine(template: &ProcessTemplate, n: usize) -> (InstanceStatus, Vec<TaskState>, SimTime) {
    let mut lib = ActivityLibrary::new();
    lib.register("emit", |inputs| {
        let idx = inputs.get("idx").and_then(|v| v.as_int()).unwrap_or(0);
        Ok(ProgramOutput::from_fields(
            [("flag", Value::Bool(idx % 2 == 0))],
            1_000.0 + idx as f64 * 100.0,
        ))
    });
    let cluster = Cluster::new(
        "np",
        (0..2)
            .map(|i| NodeSpec::new(format!("n{i}"), 2, 500, "linux"))
            .collect(),
    );
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_secs(30),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster, lib, cfg).unwrap();
    rt.register_template(template).unwrap();
    let id = rt.submit("Rand", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    let states = (0..n)
        .map(|i| rt.task_record(id, &format!("T{i}")).unwrap().state)
        .collect();
    (rt.instance_status(id).unwrap(), states, rt.now())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_agrees_with_reference_interpreter(dag in dag_strategy()) {
        let template = build_template(&dag);
        let expected = reference_states(&dag);
        let (status, actual, _) = run_engine(&template, dag.n);
        prop_assert_eq!(status, InstanceStatus::Completed, "dag: {:?}", dag);
        prop_assert_eq!(&actual, &expected, "dag: {:?}", dag);
        // Dead paths never execute: skipped tasks have no node assignment
        // is implied by state; ended tasks produced their flag.
    }

    #[test]
    fn engine_runs_are_deterministic(dag in dag_strategy()) {
        let template = build_template(&dag);
        let a = run_engine(&template, dag.n);
        let b = run_engine(&template, dag.n);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn ocr_roundtrip_preserves_execution(dag in dag_strategy()) {
        // Executing the reparsed textual form gives the same states.
        let template = build_template(&dag);
        let reparsed =
            bioopera_ocr::parse_process(&bioopera_ocr::to_ocr_text(&template)).unwrap();
        let (s1, t1, _) = run_engine(&template, dag.n);
        let (s2, t2, _) = run_engine(&reparsed, dag.n);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(t1, t2);
    }
}
