//! Runtime × tiered-store integration: a squeezed memtable budget pulls
//! spills and run merges into ordinary workloads, and the runtime must
//! (a) keep producing the exact untiered results, (b) surface the tier
//! activity as `store.*` awareness events, and (c) — when windowed
//! retention is enabled — retire rolled-up history without losing any
//! aggregate or breaking recovery.
//!
//! Every test funnels through [`tiny_tiered_env`] before touching a
//! store, so the whole binary runs under one consistent tiered policy.

use bioopera_cluster::{Cluster, NodeSpec, SimTime};
use bioopera_core::{
    ActivityLibrary, Awareness, InstanceStatus, ProgramOutput, Runtime, RuntimeConfig,
};
use bioopera_ocr::model::{ExternalBinding, ParallelBody, TypeTag};
use bioopera_ocr::value::Value;
use bioopera_ocr::{ProcessBuilder, ProcessTemplate};
use bioopera_store::{MemDisk, Space};
use std::collections::BTreeMap;

/// Force the tiny tiered policy exactly once, before any store opens.
/// Tests in this binary run on parallel threads but all call this first,
/// so every `Store::open` sees the same environment.
fn tiny_tiered_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::set_var("BIOOPERA_MEMTABLE_BUDGET", "512");
        std::env::set_var("BIOOPERA_RUN_MERGE", "2");
        std::env::set_var("BIOOPERA_LEVEL_BASE", "4096");
    });
}

fn cluster() -> Cluster {
    Cluster::new(
        "tiered",
        vec![
            NodeSpec::new("n1", 2, 500, "linux"),
            NodeSpec::new("n2", 2, 500, "linux"),
        ],
    )
}

fn library() -> ActivityLibrary {
    let mut lib = ActivityLibrary::new();
    lib.register("gen.list", |inputs| {
        let count = inputs.get("count").and_then(|v| v.as_int()).unwrap_or(4);
        Ok(ProgramOutput::from_fields(
            [("items", Value::int_list(0..count))],
            1_000.0,
        ))
    });
    lib.register("work.unit", |inputs| {
        let item = inputs
            .get("item")
            .and_then(|v| v.as_int())
            .ok_or_else(|| "work.unit needs an item".to_string())?;
        Ok(ProgramOutput::from_fields(
            [("value", Value::Int(item * item))],
            30_000.0,
        ))
    });
    lib.register("merge.sum", |inputs| {
        let total: i64 = inputs
            .get("results")
            .and_then(|v| v.as_list())
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.get_path(&["value"]).and_then(|v| v.as_int()))
                    .sum()
            })
            .unwrap_or(0);
        Ok(ProgramOutput::from_fields(
            [("total", Value::Int(total))],
            2_000.0,
        ))
    });
    lib
}

fn fanout_template(count: i64) -> ProcessTemplate {
    ProcessBuilder::new("Fanout")
        .whiteboard_default("count", TypeTag::Int, Value::Int(count))
        .whiteboard_field("total", TypeTag::Int)
        .activity("Gen", "gen.list", |t| {
            t.input("count", TypeTag::Int)
                .output("items", TypeTag::List)
        })
        .parallel(
            "Fan",
            "items",
            ParallelBody::Activity(ExternalBinding::program("work.unit")),
            "results",
            |t| t,
        )
        .activity("Merge", "merge.sum", |t| {
            t.input("results", TypeTag::List)
                .output("total", TypeTag::Int)
        })
        .connect("Gen", "Fan")
        .connect("Fan", "Merge")
        .flow_from_whiteboard("count", "Gen", "count")
        .flow_to_task("Gen", "items", "Fan", "items")
        .flow_to_task("Fan", "results", "Merge", "results")
        .flow_to_whiteboard("Merge", "total", "total")
        .build()
        .unwrap()
}

fn runtime_on(disk: MemDisk) -> Runtime<MemDisk> {
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_secs(20),
        ..Default::default()
    };
    Runtime::new(disk, cluster(), library(), cfg).unwrap()
}

fn expected_total(n: i64) -> i64 {
    (0..n).map(|i| i * i).sum()
}

#[test]
fn tiny_budget_workload_completes_and_surfaces_spill_events() {
    tiny_tiered_env();
    let mut rt = runtime_on(MemDisk::new());
    rt.register_template(&fanout_template(8)).unwrap();
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();

    // (a) The tiered engine is semantics-preserving: same terminal
    // status and whiteboard as any untiered run.
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    assert_eq!(
        rt.whiteboard(id).unwrap()["total"],
        Value::Int(expected_total(8))
    );

    // (b) The 512-byte budget forced real spills and merges...
    let stats = rt.store().stats();
    assert!(stats.spills > 0, "no spills under a 512-byte budget");
    assert!(stats.runs > 0 || stats.run_merges > 0);

    // ...and the runtime folded them into the awareness index as
    // `store.*` events, without polling: counters arrive via history.
    let io = rt.awareness().index().store_io();
    assert!(
        io.get("spills").copied().unwrap_or(0) > 0,
        "store_io missing spills: {io:?}"
    );
    assert!(rt.awareness().index().count("store.spill") > 0);
}

#[test]
fn history_retention_retires_rolled_up_records_and_recovery_survives() {
    tiny_tiered_env();
    let disk = MemDisk::new();
    let mut rt = runtime_on(disk.clone());
    rt.set_rollup_every(8);
    rt.set_history_retention(true);
    rt.register_template(&fanout_template(10)).unwrap();
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));

    // The watermark advanced with the rollup and physically retired the
    // covered prefix: no raw `ev/` record below it survives.
    let (start, below) = rt
        .store()
        .retention(Space::History)
        .expect("retention never advanced");
    assert_eq!(start, "ev/");
    let first_raw = rt
        .store()
        .scan_prefix(Space::History, "ev/")
        .unwrap()
        .into_iter()
        .map(|(k, _)| k)
        .next()
        .expect("tail must keep raw events");
    assert!(
        first_raw >= below,
        "raw record {first_raw} survives below watermark {below}"
    );
    let retired = rt
        .awareness()
        .index()
        .store_io()
        .get("retired")
        .copied()
        .unwrap_or(0);
    assert!(retired > 0, "retention advanced but retired no records");

    // Aggregates are preserved: an O(tail) reopen over the retired log
    // answers the same durable counts the live index accumulated.
    let tail = Awareness::open_tail(rt.store()).unwrap();
    assert_eq!(
        tail.index().count("task.end"),
        rt.awareness().index().count("task.end")
    );
    assert_eq!(tail.index().run_ms(), rt.awareness().index().run_ms());
    assert!(tail.index().count("task.end") > 0);

    // And recovery does not need the retired records: a fresh runtime
    // over the same disk reopens and completes new work.
    drop(rt);
    let mut rt = runtime_on(disk);
    let id2 = rt.submit("Fanout", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id2), Some(InstanceStatus::Completed));
    assert_eq!(
        rt.whiteboard(id2).unwrap()["total"],
        Value::Int(expected_total(10))
    );
}
