//! Integration tests for the dependability policy layer: retry budgets
//! with backoff, node quarantine, poison escalation, and the persistence
//! of all of it across server crashes.
//!
//! The headline scenario is the masked-failure requeue livelock: a node
//! that silently kills every job it is handed reports a perfect load of
//! zero, so the least-loaded policy keeps picking it and the pre-fix
//! engine requeues the same tasks forever.  With the policies on, the run
//! completes on the pool's healthy capacity with a bounded retry count.

use bioopera_cluster::{Cluster, NodeSpec, SimTime, Trace, TraceEventKind};
use bioopera_core::state::{InstanceStatus, TaskState};
use bioopera_core::{
    ActivityLibrary, DependabilityConfig, HealthState, ProgramOutput, Runtime, RuntimeConfig,
};
use bioopera_ocr::model::{ExternalBinding, ParallelBody, TypeTag};
use bioopera_ocr::value::Value;
use bioopera_ocr::{ProcessBuilder, ProcessTemplate};
use bioopera_store::{MemDisk, Space};
use std::collections::BTreeMap;

fn library() -> ActivityLibrary {
    let mut lib = ActivityLibrary::new();
    lib.register("gen.list", |inputs| {
        let count = inputs.get("count").and_then(|v| v.as_int()).unwrap_or(4);
        Ok(ProgramOutput::from_fields(
            [("items", Value::int_list(0..count))],
            1_000.0,
        ))
    });
    lib.register("work.unit", |inputs| {
        let item = inputs
            .get("item")
            .and_then(|v| v.as_int())
            .ok_or_else(|| "work.unit needs an item".to_string())?;
        Ok(ProgramOutput::from_fields(
            [("value", Value::Int(item * item))],
            60_000.0,
        ))
    });
    lib.register("merge.sum", |inputs| {
        let results = inputs
            .get("results")
            .and_then(|v| v.as_list().map(|l| l.to_vec()))
            .ok_or_else(|| "merge.sum needs results".to_string())?;
        let total: i64 = results
            .iter()
            .filter_map(|r| r.get_path(&["value"]).and_then(|v| v.as_int()))
            .sum();
        Ok(ProgramOutput::from_fields(
            [("total", Value::Int(total))],
            2_000.0,
        ))
    });
    lib
}

fn fanout_template(count: i64) -> ProcessTemplate {
    ProcessBuilder::new("Fanout")
        .whiteboard_default("count", TypeTag::Int, Value::Int(count))
        .whiteboard_field("total", TypeTag::Int)
        .activity("Gen", "gen.list", |t| {
            t.input("count", TypeTag::Int)
                .output("items", TypeTag::List)
        })
        .parallel(
            "Fan",
            "items",
            ParallelBody::Activity(ExternalBinding::program("work.unit")),
            "results",
            |t| t,
        )
        .activity("Merge", "merge.sum", |t| {
            t.input("results", TypeTag::List)
                .output("total", TypeTag::Int)
        })
        .connect("Gen", "Fan")
        .connect("Fan", "Merge")
        .flow_from_whiteboard("count", "Gen", "count")
        .flow_to_task("Gen", "items", "Fan", "items")
        .flow_to_task("Fan", "results", "Merge", "results")
        .flow_to_whiteboard("Merge", "total", "total")
        .build()
        .unwrap()
}

fn expected_total(n: i64) -> i64 {
    (0..n).map(|i| i * i).sum()
}

/// Two equal nodes; `n1` sorts first, so it wins every least-loaded tie —
/// ties never accidentally rescue the run from the flaky node.
fn two_nodes() -> Cluster {
    Cluster::new(
        "pair",
        vec![
            NodeSpec::new("n1", 2, 500, "linux"),
            NodeSpec::new("n2", 2, 500, "linux"),
        ],
    )
}

/// A trace that turns `node` into a job killer at t=1 ms, forever.
fn flaky_forever(node: &str) -> Trace {
    let mut trace = Trace::empty();
    trace.push_labeled(
        SimTime::from_millis(1),
        TraceEventKind::NodeFlaky {
            node: node.into(),
            kills: u32::MAX,
        },
        "node turns flaky",
    );
    trace
}

fn flaky_runtime(dep: DependabilityConfig, tasks: i64) -> Runtime<MemDisk> {
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_secs(20),
        dependability: dep,
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), two_nodes(), library(), cfg).unwrap();
    rt.register_template(&fanout_template(tasks)).unwrap();
    rt.install_trace(&flaky_forever("n1"));
    rt
}

fn count(rt: &Runtime<MemDisk>, kind: &str) -> u64 {
    rt.awareness()
        .index()
        .counts_by_kind()
        .into_iter()
        .find(|(k, _)| k == kind)
        .map(|(_, n)| n as u64)
        .unwrap_or(0)
}

#[test]
fn flaky_node_run_completes_with_bounded_retries_and_quarantine() {
    let dep = DependabilityConfig::default();
    let budget = dep.system_retry_budget as u64;
    let mut rt = flaky_runtime(dep, 6);
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    assert_eq!(
        rt.whiteboard(id).unwrap()["total"],
        Value::Int(expected_total(6))
    );
    // Retries stay under the acceptance ceiling: budget × tasks.
    let tasks = 8; // Gen + 6 fan children + Merge
    let retries = count(&rt, "task.systemfail");
    assert!(retries >= 1, "the flaky node must be hit at least once");
    assert!(
        retries <= budget * tasks,
        "retries {retries} exceed ceiling {}",
        budget * tasks
    );
    // The killer was quarantined and backoff timers were armed.
    assert!(count(&rt, "node.quarantine") >= 1);
    assert!(count(&rt, "task.backoff") >= 1);
    assert_eq!(count(&rt, "task.poisoned"), 0);
    let health = rt.node_health("n1").expect("n1 has a health record");
    assert!(health.consecutive_failures > 0 || health.is_quarantined());
}

#[test]
fn instant_requeue_engine_livelocks_on_the_same_trace() {
    // The pre-fix engine: no budgets, no backoff, no quarantine.  The
    // identical scenario never completes; the dispatch counter grows
    // without bound while the instance makes no progress.
    let mut rt = flaky_runtime(DependabilityConfig::disabled(), 6);
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    let mut steps = 0u64;
    while steps < 120_000 {
        match rt.step() {
            Ok(true) => steps += 1,
            _ => break,
        }
        // Stop as soon as the livelock is proven; it would run forever.
        if steps.is_multiple_of(1_000) && count(&rt, "task.start") > 10_000 {
            break;
        }
    }
    assert_ne!(
        rt.instance_status(id),
        Some(InstanceStatus::Completed),
        "the livelock should prevent completion"
    );
    assert!(
        count(&rt, "task.start") > 10_000,
        "expected >10^4 dispatches, got {}",
        count(&rt, "task.start")
    );
    assert_eq!(count(&rt, "node.quarantine"), 0);
    assert_eq!(count(&rt, "task.backoff"), 0);
}

/// The `retry` fields of all persisted task records, keyed by store key.
fn retry_fields(rt: &Runtime<MemDisk>) -> BTreeMap<String, Option<bioopera_core::RetryState>> {
    rt.store()
        .scan_prefix(Space::Instance, "inst/")
        .unwrap()
        .into_iter()
        .filter(|(k, _)| k.contains("/task/"))
        .map(|(k, v)| {
            let rec: bioopera_core::TaskRecord = serde_json::from_slice(&v).unwrap();
            (k, rec.retry)
        })
        .collect()
}

#[test]
fn backoff_and_quarantine_state_round_trip_crash_recover_byte_identically() {
    let mut rt = flaky_runtime(DependabilityConfig::default(), 6);
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    // Run until the flaky node is quarantined and at least one task is
    // parked on a backoff deadline.
    let mut steps = 0u64;
    while count(&rt, "node.quarantine") < 1 || count(&rt, "task.backoff") < 1 {
        assert!(rt.step().unwrap(), "scenario ended early");
        steps += 1;
        assert!(steps < 50_000, "policy never engaged");
    }
    let health_before = rt
        .store()
        .scan_prefix(Space::Configuration, "health/")
        .unwrap();
    assert!(
        !health_before.is_empty(),
        "quarantine must persist a health record"
    );
    let retry_before = retry_fields(&rt);
    assert!(
        retry_before.values().any(|v| v.is_some()),
        "some task must carry persisted retry state"
    );

    rt.crash_server().unwrap();
    rt.recover_server().unwrap();

    // The persisted policy state is untouched by crash + rebuild.
    let health_after = rt
        .store()
        .scan_prefix(Space::Configuration, "health/")
        .unwrap();
    assert_eq!(health_before, health_after, "health bytes changed");
    assert_eq!(retry_before, retry_fields(&rt), "retry state changed");
    // And the rebuilt volatile view agrees: n1 is still quarantined.
    assert_eq!(
        rt.node_health("n1").map(|h| h.state),
        Some(HealthState::Quarantined)
    );

    // The run still finishes correctly: pending backoff timers were
    // re-armed from the persisted deadlines.
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    assert_eq!(
        rt.whiteboard(id).unwrap()["total"],
        Value::Int(expected_total(6))
    );
}

#[test]
fn poison_task_escalates_after_failing_on_distinct_nodes() {
    // Every node kills every job: each task eventually system-fails on
    // `poison_distinct_nodes` distinct nodes and is escalated to a
    // program failure instead of bouncing forever.
    let cluster = Cluster::new(
        "all-bad",
        vec![
            NodeSpec::new("n1", 1, 500, "linux"),
            NodeSpec::new("n2", 1, 500, "linux"),
            NodeSpec::new("n3", 1, 500, "linux"),
        ],
    );
    let mut trace = Trace::empty();
    for n in ["n1", "n2", "n3"] {
        trace.push(
            SimTime::from_millis(1),
            TraceEventKind::NodeFlaky {
                node: n.into(),
                kills: u32::MAX,
            },
        );
    }
    // The default 10-minute quarantine interval is much longer than the
    // backoff ladder, so each quarantined killer stays benched and the
    // task is forced onto a fresh node each time.
    let dep = DependabilityConfig {
        poison_distinct_nodes: 3,
        ..Default::default()
    };
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_secs(20),
        dependability: dep,
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster, library(), cfg).unwrap();
    rt.register_template(&fanout_template(2)).unwrap();
    rt.install_trace(&trace);
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    // The run terminates (no livelock) with the instance aborted by the
    // escalated failures — `Gen` has no retries, so the default policy
    // aborts.
    let _ = rt.run_to_completion();
    assert_ne!(rt.instance_status(id), Some(InstanceStatus::Completed));
    assert!(
        count(&rt, "task.poisoned") >= 1,
        "no poison escalation recorded"
    );
    let gen = rt.task_record(id, "Gen").unwrap();
    assert_eq!(gen.state, TaskState::Failed);
    let retry = gen.retry.as_ref().expect("gen carries retry state");
    assert_eq!(retry.failed_nodes.len(), 3, "three distinct killers");
}

#[test]
fn node_crash_during_server_outage_requeues_lost_tasks_exactly_once() {
    // Timeline: jobs start on all three nodes; the server crashes at 30 s;
    // n1 dies (taking its jobs) at 35 s and is repaired at 40 s; the
    // server recovers at 90 s.  Rebuild must requeue exactly the lost
    // dispatched tasks — every task still runs to completion exactly once
    // and the merged result is unchanged.
    let cluster = Cluster::new(
        "trio",
        vec![
            NodeSpec::new("n1", 2, 500, "linux"),
            NodeSpec::new("n2", 2, 500, "linux"),
            NodeSpec::new("n3", 1, 1000, "solaris"),
        ],
    );
    let mut trace = Trace::empty();
    trace
        .push(SimTime::from_secs(30), TraceEventKind::ServerCrash)
        .push(
            SimTime::from_secs(35),
            TraceEventKind::NodeDown("n1".into()),
        )
        .push(SimTime::from_secs(40), TraceEventKind::NodeUp("n1".into()))
        .push(SimTime::from_secs(90), TraceEventKind::ServerRecover);
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_secs(20),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster, library(), cfg).unwrap();
    rt.register_template(&fanout_template(8)).unwrap();
    rt.install_trace(&trace);
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    assert_eq!(
        rt.whiteboard(id).unwrap()["total"],
        Value::Int(expected_total(8))
    );
    // No loss, no double-run: each of the 10 tasks (Gen + 8 + Merge) ends
    // exactly once.
    assert_eq!(count(&rt, "task.end"), 10);
    for i in 0..8 {
        let rec = rt.task_record(id, &format!("Fan[{i}]")).unwrap();
        assert_eq!(rec.state, TaskState::Ended, "Fan[{i}]");
    }
}
