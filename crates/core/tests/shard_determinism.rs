//! Replay determinism of the sharded navigator.
//!
//! The sharding contract is that the recorded history and the final
//! instance state are a pure function of the submitted workload: the
//! number of shards, the number of stepper threads, and the thread
//! interleaving must not be observable.  These tests drive randomized
//! workload mixes — plain chains, parallel fans, and subprocess trees,
//! with and without injected node faults — through engines at several
//! (shards, threads) points and require bit-identical digests against
//! the 1-shard serial baseline.
//!
//! Recovery is checked separately: after a crash mid-round (only a
//! prefix of shard commits on disk) the recovered engine legitimately
//! records extra history (`server.recover`, requeues, fresh ids for
//! re-spawned children), so the assertion there is *output* equality —
//! every root reaches the oracle's terminal status with the oracle's
//! whiteboard — not digest equality.

use bioopera_core::{
    ActivityLibrary, FaultInjection, InstanceStatus, ProgramOutput, ShardConfig, ShardEngine,
};
use bioopera_ocr::model::{ExternalBinding, ParallelBody, TypeTag};
use bioopera_ocr::value::Value;
use bioopera_ocr::{ProcessBuilder, ProcessTemplate};
use bioopera_store::{MemDisk, Store};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Activity programs shared by every template in the mix.
fn library() -> ActivityLibrary {
    let mut lib = ActivityLibrary::new();
    lib.register("gen.list", |inputs| {
        let count = inputs.get("count").and_then(|v| v.as_int()).unwrap_or(3);
        Ok(ProgramOutput::from_fields(
            [("items", Value::int_list(0..count))],
            1_000.0,
        ))
    });
    lib.register("work.unit", |inputs| {
        let item = inputs
            .get("item")
            .and_then(|v| v.as_int())
            .ok_or_else(|| "work.unit needs an item".to_string())?;
        Ok(ProgramOutput::from_fields(
            [("value", Value::Int(item * item))],
            5_000.0,
        ))
    });
    lib.register("merge.sum", |inputs| {
        let total: i64 = inputs
            .get("results")
            .and_then(|v| v.as_list())
            .map(|items| {
                items
                    .iter()
                    .filter_map(|v| v.get_path(&["value"]).and_then(|v| v.as_int()))
                    .sum()
            })
            .unwrap_or(0);
        Ok(ProgramOutput::from_fields(
            [("total", Value::Int(total))],
            2_000.0,
        ))
    });
    lib.register("p.a", |inputs| {
        let x = inputs.get("x").and_then(|v| v.as_int()).unwrap_or(7);
        Ok(ProgramOutput::from_fields([("x", Value::Int(x))], 10.0))
    });
    lib.register("p.b", |inputs| {
        let x = inputs
            .get("x")
            .and_then(|v| v.as_int())
            .ok_or_else(|| "missing x".to_string())?;
        Ok(ProgramOutput::from_fields([("y", Value::Int(x * 2))], 20.0))
    });
    lib
}

/// `A -> B` with a task-to-task dataflow.
fn chain_template() -> ProcessTemplate {
    ProcessBuilder::new("Chain")
        .whiteboard_default("x", TypeTag::Int, Value::Int(7))
        .whiteboard_field("y", TypeTag::Int)
        .activity("A", "p.a", |t| {
            t.input("x", TypeTag::Int).output("x", TypeTag::Int)
        })
        .activity("B", "p.b", |t| {
            t.input("x", TypeTag::Int).output("y", TypeTag::Int)
        })
        .connect("A", "B")
        .flow_from_whiteboard("x", "A", "x")
        .flow_to_task("A", "x", "B", "x")
        .flow_to_whiteboard("B", "y", "y")
        .build()
        .unwrap()
}

/// `Gen -> parallel Fan(work.unit) -> Merge`.
fn fan_template() -> ProcessTemplate {
    ProcessBuilder::new("Fan")
        .whiteboard_default("count", TypeTag::Int, Value::Int(3))
        .whiteboard_field("total", TypeTag::Int)
        .activity("Gen", "gen.list", |t| {
            t.input("count", TypeTag::Int)
                .output("items", TypeTag::List)
        })
        .parallel(
            "Fan",
            "items",
            ParallelBody::Activity(ExternalBinding::program("work.unit")),
            "results",
            |t| t,
        )
        .activity("Merge", "merge.sum", |t| {
            t.input("results", TypeTag::List)
                .output("total", TypeTag::Int)
        })
        .connect("Gen", "Fan")
        .connect("Fan", "Merge")
        .flow_from_whiteboard("count", "Gen", "count")
        .flow_to_task("Gen", "items", "Fan", "items")
        .flow_to_task("Fan", "results", "Merge", "results")
        .flow_to_whiteboard("Merge", "total", "total")
        .build()
        .unwrap()
}

/// `Sub(Chain) -> After` — exercises cross-instance spawn + ChildDone.
fn parent_template() -> ProcessTemplate {
    ProcessBuilder::new("Parent")
        .whiteboard_default("x", TypeTag::Int, Value::Int(21))
        .subprocess("Sub", "Chain", |t| {
            t.input("x", TypeTag::Int).output("y", TypeTag::Int)
        })
        .activity("After", "p.b", |t| {
            t.input("x", TypeTag::Int).output("y", TypeTag::Int)
        })
        .connect("Sub", "After")
        .flow_from_whiteboard("x", "Sub", "x")
        .flow_to_task("Sub", "y", "After", "x")
        .build()
        .unwrap()
}

const TEMPLATES: [&str; 3] = ["Chain", "Fan", "Parent"];

fn build_engine(
    shards: usize,
    threads: usize,
    faults: Option<FaultInjection>,
) -> ShardEngine<MemDisk> {
    let store = Store::open(MemDisk::new()).unwrap();
    let cfg = ShardConfig {
        shards,
        threads,
        faults,
        ..ShardConfig::default()
    };
    let mut eng = ShardEngine::new(store, library(), cfg).expect("engine");
    eng.register_template(chain_template()).unwrap();
    eng.register_template(fan_template()).unwrap();
    eng.register_template(parent_template()).unwrap();
    eng
}

/// Run a workload (list of template indices, plus a per-instance knob)
/// to completion and return the observable fingerprint.
fn run_workload(
    workload: &[(usize, i64)],
    shards: usize,
    threads: usize,
    faults: Option<FaultInjection>,
) -> (u64, u64, BTreeMap<String, u64>) {
    let mut eng = build_engine(shards, threads, faults);
    for (tmpl, knob) in workload {
        let name = TEMPLATES[tmpl % TEMPLATES.len()];
        let mut initial = BTreeMap::new();
        match name {
            "Chain" | "Parent" => {
                initial.insert("x".to_string(), Value::Int(*knob));
            }
            _ => {
                initial.insert("count".to_string(), Value::Int(1 + knob.rem_euclid(4)));
            }
        }
        eng.submit(name, initial).unwrap();
    }
    eng.run_to_completion().unwrap();
    (
        eng.history_digest(),
        eng.state_digest(),
        eng.event_counts().clone(),
    )
}

/// Operator steering schedule: `(suspend_round, resume_gap, root_idx)`
/// — suspend root `idx` when the engine reaches `suspend_round`, resume
/// it `resume_gap` rounds after that.  Calls are keyed to the engine's
/// round counter, which advances identically at every (shards, threads)
/// point, so the same schedule produces the same operator-call sequence
/// — and therefore the same history — in every configuration.
type OpSchedule = [(u64, u64, usize)];

/// Run a workload with suspend/resume injected at the scheduled rounds,
/// then drive to quiescence and return the observable fingerprint.
fn run_workload_with_ops(
    workload: &[(usize, i64)],
    ops: &OpSchedule,
    shards: usize,
    threads: usize,
) -> (u64, u64, BTreeMap<String, u64>) {
    let mut eng = build_engine(shards, threads, None);
    let ids: Vec<u64> = workload
        .iter()
        .map(|(tmpl, knob)| {
            let name = TEMPLATES[tmpl % TEMPLATES.len()];
            let mut initial = BTreeMap::new();
            match name {
                "Chain" | "Parent" => {
                    initial.insert("x".to_string(), Value::Int(*knob));
                }
                _ => {
                    initial.insert("count".to_string(), Value::Int(1 + knob.rem_euclid(4)));
                }
            }
            eng.submit(name, initial).unwrap()
        })
        .collect();
    // Expand to a sorted (round, is_resume, instance) action list.
    let mut actions: Vec<(u64, bool, u64)> = Vec::new();
    for (sus_round, gap, idx) in ops {
        let id = ids[idx % ids.len()];
        actions.push((*sus_round, false, id));
        actions.push((sus_round + 1 + gap, true, id));
    }
    actions.sort_unstable();
    let mut i = 0usize;
    loop {
        while i < actions.len() && actions[i].0 <= eng.round() {
            let (_, is_resume, id) = actions[i];
            if is_resume {
                eng.resume(id).unwrap();
            } else {
                eng.suspend(id).unwrap();
            }
            i += 1;
        }
        if !eng.step_round().unwrap() {
            if i < actions.len() {
                // Quiesced before the next scheduled round: fast-forward
                // the remaining schedule (still a deterministic point —
                // quiescence timing is config-invariant).
                let (_, is_resume, id) = actions[i];
                if is_resume {
                    eng.resume(id).unwrap();
                } else {
                    eng.suspend(id).unwrap();
                }
                i += 1;
                continue;
            }
            break;
        }
    }
    // Every suspend is paired with a later resume, so the run must end
    // fully terminal, never wedged.
    let outcome = eng.run_to_completion().unwrap();
    assert!(
        outcome.is_completed(),
        "paired resumes must unpark: {outcome:?}"
    );
    (
        eng.history_digest(),
        eng.state_digest(),
        eng.event_counts().clone(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any (shards, threads) point reproduces the serial baseline
    /// bit-for-bit, including under injected node faults.
    #[test]
    fn sharded_replay_matches_serial_baseline(
        workload in prop::collection::vec((0usize..3, 0i64..100), 1..24),
        shards in 2usize..9,
        threads in 1usize..5,
        fault_seed in any::<u64>(),
        fault_rate in prop_oneof![Just(0u32), Just(120_000u32)],
    ) {
        let faults = (fault_rate > 0).then_some(FaultInjection {
            seed: fault_seed,
            rate_ppm: fault_rate,
        });
        let baseline = run_workload(&workload, 1, 1, faults.clone());
        let sharded = run_workload(&workload, shards, threads, faults);
        prop_assert_eq!(&sharded.0, &baseline.0, "history digest diverged");
        prop_assert_eq!(&sharded.1, &baseline.1, "state digest diverged");
        prop_assert_eq!(&sharded.2, &baseline.2, "event counts diverged");
    }

    /// Suspension/resume injected at arbitrary rounds must leave the
    /// history bit-identical across (shards, threads) points: operator
    /// steering rides the same deterministic `(instance, seq)` outbox as
    /// everything else.
    #[test]
    fn sharded_replay_matches_serial_baseline_with_suspension(
        workload in prop::collection::vec((0usize..3, 0i64..100), 1..16),
        ops in prop::collection::vec((0u64..12, 0u64..6, 0usize..16), 1..4),
        shards in 2usize..9,
        threads in 1usize..5,
    ) {
        let baseline = run_workload_with_ops(&workload, &ops, 1, 1);
        let sharded = run_workload_with_ops(&workload, &ops, shards, threads);
        prop_assert_eq!(&sharded.0, &baseline.0, "history digest diverged");
        prop_assert_eq!(&sharded.1, &baseline.1, "state digest diverged");
        prop_assert_eq!(&sharded.2, &baseline.2, "event counts diverged");
    }
}

/// Crash at the shard barrier with a partial commit prefix, recover,
/// and require every root to converge to the crash-free oracle's
/// terminal status and whiteboard.
#[test]
fn recovery_after_partial_commit_converges_to_oracle_outputs() {
    let workload: Vec<(usize, i64)> = (0..9).map(|i| (i % 3, 10 + i as i64)).collect();
    let submit_all = |eng: &mut ShardEngine<MemDisk>| -> Vec<u64> {
        workload
            .iter()
            .map(|(tmpl, knob)| {
                let name = TEMPLATES[*tmpl];
                let mut initial = BTreeMap::new();
                match name {
                    "Chain" | "Parent" => {
                        initial.insert("x".to_string(), Value::Int(*knob));
                    }
                    _ => {
                        initial.insert("count".to_string(), Value::Int(1 + knob.rem_euclid(4)));
                    }
                }
                eng.submit(name, initial).unwrap()
            })
            .collect()
    };

    // Crash-free oracle.
    let mut oracle = build_engine(1, 1, None);
    let oracle_ids = submit_all(&mut oracle);
    oracle.run_to_completion().unwrap();
    let expected: Vec<(InstanceStatus, BTreeMap<String, Value>)> = oracle_ids
        .iter()
        .map(|id| {
            (
                oracle.instance_status(*id).unwrap(),
                oracle.instance_whiteboard(*id).unwrap().clone(),
            )
        })
        .collect();
    assert!(expected
        .iter()
        .all(|(st, _)| *st == InstanceStatus::Completed));

    // Crash at every (round, commit-prefix) point of the early rounds.
    for crash_round in 0..4u64 {
        for prefix in 0..=4usize {
            let disk = MemDisk::new();
            let store = Store::open(disk.clone()).unwrap();
            let cfg = ShardConfig {
                shards: 4,
                threads: 1,
                ..ShardConfig::default()
            };
            let mut eng = ShardEngine::new(store, library(), cfg.clone()).expect("engine");
            eng.register_template(chain_template()).unwrap();
            eng.register_template(fan_template()).unwrap();
            eng.register_template(parent_template()).unwrap();
            let ids = submit_all(&mut eng);
            for _ in 0..crash_round {
                eng.step_round().unwrap();
            }
            eng.step_round_partial_commit(prefix).unwrap();
            drop(eng);

            let store = Store::open(disk).unwrap();
            let mut eng = ShardEngine::recover(store, library(), cfg).unwrap();
            eng.run_to_completion().unwrap_or_else(|e| {
                panic!("round {crash_round} prefix {prefix}: stuck after recovery: {e}")
            });
            for (id, (want_status, want_wb)) in ids.iter().zip(&expected) {
                assert_eq!(
                    eng.instance_status(*id),
                    Some(*want_status),
                    "round {crash_round} prefix {prefix}: root {id} status"
                );
                assert_eq!(
                    eng.instance_whiteboard(*id),
                    Some(want_wb),
                    "round {crash_round} prefix {prefix}: root {id} whiteboard"
                );
            }
        }
    }
}

/// Forcing `BIOOPERA_SHARDS=1` semantics (a serial single-shard config)
/// must agree with the default multi-shard config on the same workload.
#[test]
fn single_shard_config_is_the_reference_semantics() {
    let workload: Vec<(usize, i64)> = vec![(0, 5), (1, 2), (2, 9), (0, 11), (2, 3)];
    let a = run_workload(&workload, 1, 1, None);
    let b = run_workload(&workload, 4, 4, None);
    assert_eq!(a, b);
}
