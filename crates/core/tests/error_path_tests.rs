//! Error-path and operator-API coverage: the engine must fail loudly and
//! precisely on misuse, and operator controls must behave exactly as the
//! monitor section (§3.4: "the user can start, stop, abort, re-start, and
//! change input parameters during each step") promises.

use bioopera_cluster::{Cluster, NodeSpec, SimTime};
use bioopera_core::state::InstanceStatus;
use bioopera_core::{ActivityLibrary, EngineError, ProgramOutput, Runtime, RuntimeConfig};
use bioopera_ocr::model::TypeTag;
use bioopera_ocr::value::Value;
use bioopera_ocr::{Expr, ProcessBuilder};
use bioopera_store::MemDisk;
use std::collections::BTreeMap;

fn cluster() -> Cluster {
    Cluster::new("ep", vec![NodeSpec::new("n1", 2, 500, "linux")])
}

fn runtime_with(lib: ActivityLibrary) -> Runtime<MemDisk> {
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_secs(30),
        ..Default::default()
    };
    Runtime::new(MemDisk::new(), cluster(), lib, cfg).unwrap()
}

fn noop_lib() -> ActivityLibrary {
    let mut lib = ActivityLibrary::new();
    lib.register("noop", |_| {
        Ok(ProgramOutput::from_fields(
            [("ok", Value::Bool(true))],
            1_000.0,
        ))
    });
    lib
}

#[test]
fn invalid_template_rejected_at_registration() {
    let mut rt = runtime_with(noop_lib());
    let bad = ProcessBuilder::new("Bad")
        .activity("A", "noop", |t| t)
        .activity("B", "noop", |t| t)
        .connect("A", "B")
        .connect("B", "A")
        .build_unchecked();
    match rt.register_template(&bad) {
        Err(EngineError::Validation(_)) => {}
        other => panic!("expected validation error, got {other:?}"),
    }
}

#[test]
fn unknown_template_and_instance_errors() {
    let mut rt = runtime_with(noop_lib());
    match rt.submit("Ghost", BTreeMap::new()) {
        Err(EngineError::UnknownTemplate(name)) => assert_eq!(name, "Ghost"),
        other => panic!("expected unknown template, got {other:?}"),
    }
    assert!(matches!(
        rt.stats(99),
        Err(EngineError::UnknownInstance(99))
    ));
    assert!(matches!(
        rt.suspend(99),
        Err(EngineError::UnknownInstance(99))
    ));
    assert!(matches!(
        rt.signal_event(99, "x"),
        Err(EngineError::UnknownInstance(99))
    ));
}

#[test]
fn unknown_program_surfaces_at_dispatch() {
    let mut rt = runtime_with(noop_lib());
    let t = ProcessBuilder::new("P")
        .activity("A", "not.registered", |t| t)
        .build()
        .unwrap();
    rt.register_template(&t).unwrap();
    rt.submit("P", BTreeMap::new()).unwrap();
    match rt.run_to_completion() {
        Err(EngineError::UnknownProgram(p)) => assert_eq!(p, "not.registered"),
        other => panic!("expected unknown program, got {other:?}"),
    }
}

#[test]
fn guard_type_error_surfaces_with_context() {
    // An activation condition producing a non-boolean is a template bug
    // the navigator reports precisely.
    let mut rt = runtime_with(noop_lib());
    let t = ProcessBuilder::new("P")
        .activity("A", "noop", |t| t.output("n", TypeTag::Int))
        .activity("B", "noop", |t| t)
        .connect_when(
            "A",
            "B",
            Expr::Bin(
                bioopera_ocr::expr::BinOp::Add,
                Box::new(Expr::path("A.n")),
                Box::new(Expr::Lit(Value::Int(1))),
            ),
        )
        .build()
        .unwrap();
    rt.register_template(&t).unwrap();
    // `A.n` is never produced by noop, and even if it were, `+` yields an
    // int: the guard evaluation must fail, not silently skip.
    rt.submit("P", BTreeMap::new()).unwrap();
    match rt.run_to_completion() {
        Err(EngineError::Guard(ctx, _)) => assert!(ctx.contains("A -> B"), "{ctx}"),
        other => panic!("expected guard error, got {other:?}"),
    }
}

#[test]
fn operator_abort_kills_running_jobs() {
    let mut lib = ActivityLibrary::new();
    lib.register("slow", |_| {
        Ok(ProgramOutput::from_fields(
            [("ok", Value::Bool(true))],
            3_600_000.0,
        ))
    });
    let mut rt = runtime_with(lib);
    let t = ProcessBuilder::new("Slow")
        .activity("A", "slow", |t| t)
        .build()
        .unwrap();
    rt.register_template(&t).unwrap();
    let id = rt.submit("Slow", BTreeMap::new()).unwrap();
    // Step until the job is on a node, then abort.
    while rt.in_flight_jobs().is_empty() {
        assert!(rt.step().unwrap());
    }
    while rt.cluster().utilization() == 0.0 {
        assert!(rt.step().unwrap());
    }
    // Let the job burn some CPU (heartbeats advance virtual time).
    while rt.now() < SimTime::from_secs(90) {
        assert!(rt.step().unwrap());
    }
    rt.abort(id).unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Aborted));
    assert_eq!(rt.cluster().utilization(), 0.0, "job must be killed");
    // The run loop terminates immediately: everything is terminal.
    rt.run_to_completion().unwrap();
    // Lost occupancy is accounted as waste.
    assert!(rt.cluster().wasted_cpu_ms() > 0.0);
}

#[test]
fn suspend_prevents_dispatch_until_resume() {
    let mut rt = runtime_with(noop_lib());
    let t = ProcessBuilder::new("P")
        .activity("A", "noop", |t| t)
        .activity("B", "noop", |t| t)
        .connect("A", "B")
        .build()
        .unwrap();
    rt.register_template(&t).unwrap();
    let id = rt.submit("P", BTreeMap::new()).unwrap();
    rt.suspend(id).unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Suspended));
    // Stepping makes no progress: nothing dispatched, nothing in flight.
    for _ in 0..5 {
        if !rt.step().unwrap() {
            break;
        }
    }
    assert!(rt.in_flight_jobs().is_empty());
    assert!(rt
        .task_records(id)
        .unwrap()
        .values()
        .all(|r| r.node.is_none()));
    rt.resume(id).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
}

#[test]
fn changing_input_parameters_mid_run_via_event() {
    // §3.4: "change input parameters during each step of the computation".
    let mut lib = ActivityLibrary::new();
    lib.register("gate", |inputs| {
        let th = inputs
            .get("threshold")
            .and_then(|v| v.as_float())
            .unwrap_or(0.0);
        Ok(ProgramOutput::from_fields(
            [("used", Value::Float(th))],
            1_000.0,
        ))
    });
    let mut rt = runtime_with(lib);
    let t = ProcessBuilder::new("P")
        .whiteboard_default("threshold", TypeTag::Float, Value::Float(80.0))
        .activity("First", "gate", |t| {
            t.input("threshold", TypeTag::Float)
                .output("used", TypeTag::Float)
        })
        .activity("Second", "gate", |t| {
            t.input("threshold", TypeTag::Float)
                .output("used", TypeTag::Float)
        })
        .connect("First", "Second")
        .flow_from_whiteboard("threshold", "First", "threshold")
        .flow_from_whiteboard("threshold", "Second", "threshold")
        .on_event(
            "retune",
            bioopera_ocr::model::EventAction::SetData(
                "threshold".into(),
                Expr::Lit(Value::Float(95.0)),
            ),
        )
        .build()
        .unwrap();
    rt.register_template(&t).unwrap();
    let id = rt.submit("P", BTreeMap::new()).unwrap();
    // Let First complete, then retune before Second dispatches.
    while rt.task_record(id, "First").unwrap().state != bioopera_core::TaskState::Ended {
        assert!(rt.step().unwrap());
    }
    rt.signal_event(id, "retune").unwrap();
    rt.run_to_completion().unwrap();
    let first = rt.task_record(id, "First").unwrap().outputs["used"].clone();
    let second = rt.task_record(id, "Second").unwrap().outputs["used"].clone();
    assert_eq!(first, Value::Float(80.0));
    assert_eq!(
        second,
        Value::Float(95.0),
        "the retuned parameter must reach later steps"
    );
}
