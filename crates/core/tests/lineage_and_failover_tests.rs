//! Tests for the §6 features: lineage-driven selective recomputation and
//! the warm-standby backup server, plus recovery from a *storage-level*
//! crash (torn WAL) — the deepest failure the stack can absorb.

use bioopera_cluster::{Cluster, NodeSpec, SimTime, Trace, TraceEventKind};
use bioopera_core::state::InstanceStatus;
use bioopera_core::{ActivityLibrary, ProgramOutput, Runtime, RuntimeConfig};
use bioopera_ocr::model::TypeTag;
use bioopera_ocr::value::Value;
use bioopera_ocr::ProcessBuilder;
use bioopera_store::{FaultPlan, MemDisk};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn cluster() -> Cluster {
    Cluster::new(
        "lt",
        (0..3)
            .map(|i| NodeSpec::new(format!("n{i}"), 2, 500, "linux"))
            .collect(),
    )
}

/// A three-stage pipeline whose middle stage we will "improve"; execution
/// counters prove what actually re-ran.
fn pipeline_library(gen_runs: Arc<AtomicU64>, refine_runs: Arc<AtomicU64>) -> ActivityLibrary {
    let mut lib = ActivityLibrary::new();
    lib.register("pipe.gen", move |_| {
        gen_runs.fetch_add(1, Ordering::SeqCst);
        Ok(ProgramOutput::from_fields(
            [("data", Value::int_list(1..=10))],
            60_000.0,
        ))
    });
    lib.register("pipe.refine", move |inputs| {
        refine_runs.fetch_add(1, Ordering::SeqCst);
        let data = inputs["data"].as_list().ok_or("no data")?;
        let factor = inputs.get("factor").and_then(|v| v.as_int()).unwrap_or(2);
        let refined: Vec<Value> = data
            .iter()
            .filter_map(|v| v.as_int().map(|i| Value::Int(i * factor)))
            .collect();
        Ok(ProgramOutput::from_fields(
            [("refined", Value::List(refined))],
            30_000.0,
        ))
    });
    lib.register("pipe.report", |inputs| {
        let refined = inputs["refined"].as_list().ok_or("no refined")?;
        let sum: i64 = refined.iter().filter_map(|v| v.as_int()).sum();
        Ok(ProgramOutput::from_fields(
            [("sum", Value::Int(sum))],
            5_000.0,
        ))
    });
    lib
}

fn pipeline_template() -> bioopera_ocr::ProcessTemplate {
    ProcessBuilder::new("Pipeline")
        .whiteboard_default("factor", TypeTag::Int, Value::Int(2))
        .whiteboard_field("sum", TypeTag::Int)
        .activity("Gen", "pipe.gen", |t| t.output("data", TypeTag::List))
        .activity("Refine", "pipe.refine", |t| {
            t.input("data", TypeTag::List)
                .input("factor", TypeTag::Int)
                .output("refined", TypeTag::List)
        })
        .activity("Report", "pipe.report", |t| {
            t.input("refined", TypeTag::List)
                .output("sum", TypeTag::Int)
        })
        .connect("Gen", "Refine")
        .connect("Refine", "Report")
        .flow_to_task("Gen", "data", "Refine", "data")
        .flow_from_whiteboard("factor", "Refine", "factor")
        .flow_to_task("Refine", "refined", "Report", "refined")
        .flow_to_whiteboard("Report", "sum", "sum")
        .build()
        .unwrap()
}

#[test]
fn recompute_reuses_upstream_outputs() {
    let gen_runs = Arc::new(AtomicU64::new(0));
    let refine_runs = Arc::new(AtomicU64::new(0));
    let lib = pipeline_library(Arc::clone(&gen_runs), Arc::clone(&refine_runs));
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_secs(30),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster(), lib, cfg).unwrap();
    rt.register_template(&pipeline_template()).unwrap();

    // First run with factor 2.
    let id1 = rt.submit("Pipeline", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.whiteboard(id1).unwrap()["sum"], Value::Int(110)); // 2*(1+..+10)
    assert_eq!(gen_runs.load(Ordering::SeqCst), 1);
    assert_eq!(refine_runs.load(Ordering::SeqCst), 1);

    // The refinement algorithm changed: bump the factor and selectively
    // recompute from Refine.  Gen's recorded data must be reused.
    rt.signal_event(id1, "noop").unwrap(); // harmless; exercise API
    let id2 = rt.recompute(id1, &["Refine"]).unwrap();
    // The new instance reuses the old whiteboard, so update the factor on
    // the *new* instance before it dispatches... factor was already read
    // into bind-time inputs only at dispatch; change it now:
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id2), Some(InstanceStatus::Completed));
    assert_eq!(rt.whiteboard(id2).unwrap()["sum"], Value::Int(110));
    assert_eq!(gen_runs.load(Ordering::SeqCst), 1, "Gen must NOT re-run");
    assert_eq!(refine_runs.load(Ordering::SeqCst), 2, "Refine must re-run");

    // Recompute with changed *input data* (whiteboard factor) — submit a
    // new recomputation after editing the source whiteboard via an event.
    let history = rt
        .awareness()
        .of_kind(rt.store(), "instance.recompute")
        .unwrap();
    assert_eq!(history.len(), 1);
}

#[test]
fn recompute_rejects_running_source_and_unknown_tasks() {
    let lib = pipeline_library(Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_secs(30),
        ..Default::default()
    };
    let mut rt = Runtime::new(MemDisk::new(), cluster(), lib, cfg).unwrap();
    rt.register_template(&pipeline_template()).unwrap();
    let id = rt.submit("Pipeline", BTreeMap::new()).unwrap();
    assert!(
        rt.recompute(id, &["Refine"]).is_err(),
        "running source rejected"
    );
    rt.run_to_completion().unwrap();
    assert!(
        rt.recompute(id, &["Ghost"]).is_err(),
        "unknown task rejected"
    );
}

#[test]
fn backup_failover_shortens_downtime() {
    // A server crash with no repair in sight: only the backup saves us.
    let run = |backup: Option<SimTime>| {
        let gen = Arc::new(AtomicU64::new(0));
        let refine = Arc::new(AtomicU64::new(0));
        let lib = pipeline_library(gen, refine);
        let cfg = RuntimeConfig {
            heartbeat: SimTime::from_secs(30),
            backup_failover: backup,
            ..Default::default()
        };
        let mut rt = Runtime::new(MemDisk::new(), cluster(), lib, cfg).unwrap();
        rt.register_template(&pipeline_template()).unwrap();
        let mut trace = Trace::empty();
        trace.push(SimTime::from_secs(30), TraceEventKind::ServerCrash);
        // The ops team only shows up four hours later.
        trace.push(SimTime::from_hours(4), TraceEventKind::ServerRecover);
        rt.install_trace(&trace);
        let id = rt.submit("Pipeline", BTreeMap::new()).unwrap();
        rt.run_to_completion().unwrap();
        assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
        (
            rt.stats(id).unwrap().wall,
            rt.event_log().iter().any(|(_, m)| m.contains("backup")),
        )
    };
    let (without, saw_backup_no) = run(None);
    let (with, saw_backup_yes) = run(Some(SimTime::from_secs(10)));
    assert!(!saw_backup_no);
    assert!(saw_backup_yes);
    assert!(
        with.as_millis() * 5 < without.as_millis(),
        "failover {} should beat repair {}",
        with,
        without
    );
}

#[test]
fn torn_wal_after_disk_crash_recovers_cleanly() {
    // Crash the *storage device* mid-write (torn final record), reboot it,
    // and bring up a brand-new runtime over the surviving bytes: the
    // instance resumes and completes.
    let disk = MemDisk::new();
    let gen = Arc::new(AtomicU64::new(0));
    let refine = Arc::new(AtomicU64::new(0));
    let lib = pipeline_library(Arc::clone(&gen), Arc::clone(&refine));
    {
        let cfg = RuntimeConfig {
            heartbeat: SimTime::from_secs(30),
            ..Default::default()
        };
        let mut rt = Runtime::new(disk.clone(), cluster(), lib.clone(), cfg).unwrap();
        rt.register_template(&pipeline_template()).unwrap();
        let _id = rt.submit("Pipeline", BTreeMap::new()).unwrap();
        // Let some events process, then blow up the disk mid-append.
        let written = disk.bytes_appended();
        disk.set_fault_plan(Some(FaultPlan::after_bytes(written + 700, true)));
        // Drive until the storage failure surfaces as an engine error.
        let failed = loop {
            match rt.step() {
                Ok(true) => continue,
                Ok(false) => break false,
                Err(_) => break true,
            }
        };
        assert!(failed, "the torn write must surface");
    }
    // Reboot the device; recover on fresh hardware.
    disk.reboot();
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_secs(30),
        ..Default::default()
    };
    let mut rt = Runtime::new(disk, cluster(), lib, cfg).unwrap();
    let instances = rt.instances();
    assert_eq!(instances.len(), 1);
    let id = instances[0].0;
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    assert_eq!(rt.whiteboard(id).unwrap()["sum"], Value::Int(110));
}

#[test]
fn operator_suspend_survives_server_crash_and_resumes_identically() {
    // Operator suspends a running instance; the server process then dies
    // (volatile state lost, only the store survives); a fresh server
    // recovers, the operator resumes.  The run must complete with results
    // and instance-lifecycle history identical to a suspend/resume run
    // that never crashed.
    let run = |crash: bool| {
        let disk = MemDisk::new();
        let lib = pipeline_library(Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0)));
        let cfg = || RuntimeConfig {
            heartbeat: SimTime::from_secs(30),
            ..Default::default()
        };
        let mut rt = Runtime::new(disk.clone(), cluster(), lib.clone(), cfg()).unwrap();
        rt.register_template(&pipeline_template()).unwrap();
        let id = rt.submit("Pipeline", BTreeMap::new()).unwrap();
        // Let the first activity get going, then suspend: running work is
        // drained, nothing new starts.
        for _ in 0..3 {
            rt.step().unwrap();
        }
        rt.suspend(id).unwrap();
        while !rt.in_flight_jobs().is_empty() {
            rt.step().unwrap();
        }
        assert_eq!(rt.instance_status(id), Some(InstanceStatus::Suspended));
        if crash {
            drop(rt);
            rt = Runtime::new(disk.clone(), cluster(), lib, cfg()).unwrap();
            assert_eq!(
                rt.instance_status(id),
                Some(InstanceStatus::Suspended),
                "suspension must survive the server crash"
            );
            // A suspended instance must not make progress on its own.
            rt.run_to_completion().unwrap();
            assert_eq!(rt.instance_status(id), Some(InstanceStatus::Suspended));
        }
        rt.resume(id).unwrap();
        rt.run_to_completion().unwrap();
        assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
        let sum = rt.whiteboard(id).unwrap()["sum"].clone();
        let events: Vec<(&str, usize)> = ["instance.start", "instance.complete", "instance.abort"]
            .iter()
            .map(|k| (*k, rt.awareness().of_kind(rt.store(), k).unwrap().len()))
            .collect();
        (sum, events)
    };
    let (clean_sum, clean_events) = run(false);
    let (crashed_sum, crashed_events) = run(true);
    assert_eq!(clean_sum, Value::Int(110));
    assert_eq!(crashed_sum, clean_sum);
    assert_eq!(
        crashed_events, clean_events,
        "history events must be identical"
    );
    assert_eq!(clean_events[0], ("instance.start", 1));
    assert_eq!(clean_events[1], ("instance.complete", 1));
}
