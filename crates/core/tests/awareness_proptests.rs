//! Property tests for the awareness model (§3.4).
//!
//! The incremental [`AwarenessIndex`] maintained by `record()` must agree
//! exactly with an index rebuilt from a full durable scan, for any event
//! sequence and any interleaving of flushes.  Alongside the equivalence
//! property: reopen semantics around foreign keys, corrupt values, and
//! the 10-digit → 20-digit key-padding crossover.

use bioopera_cluster::SimTime;
use bioopera_core::{Awareness, AwarenessError, EventKind};
use bioopera_store::{MemDisk, Space, Store};
use proptest::prelude::*;

/// One scripted step against the awareness model.
#[derive(Debug, Clone)]
enum Op {
    Record(EventKind),
    Flush,
    Reopen,
}

fn kind_strategy() -> impl Strategy<Value = EventKind> {
    let instance = 0u64..4;
    let path = prop::sample::select(vec!["A", "B", "C", "Fan[0]"]);
    let node = prop::sample::select(vec!["n1", "n2", "n3"]);
    prop_oneof![
        (
            instance.clone(),
            path.clone(),
            node.clone(),
            0u64..8,
            0u64..2_000
        )
            .prop_map(
                |(instance, path, node, job, queue_ms)| EventKind::TaskStart {
                    instance,
                    path: path.into(),
                    node: node.into(),
                    job,
                    queue_ms,
                }
            ),
        (instance.clone(), path.clone(), node.clone(), 0u64..10_000).prop_map(
            |(instance, path, node, run_ms)| EventKind::TaskEnd {
                instance,
                path: path.into(),
                node: node.into(),
                run_ms,
                cpu_ms: run_ms as f64,
            }
        ),
        (instance.clone(), path.clone()).prop_map(|(instance, path)| EventKind::TaskFail {
            instance,
            path: path.into(),
            error: "exit 1".into(),
        }),
        (instance.clone(), path.clone()).prop_map(|(instance, path)| {
            EventKind::TaskSystemFail {
                instance,
                path: path.into(),
                reason: "node crash".into(),
            }
        }),
        (instance.clone(), path).prop_map(|(instance, path)| EventKind::TaskNonReport {
            instance,
            path: path.into(),
        }),
        (instance.clone(), prop::sample::select(vec!["P", "Q"])).prop_map(
            |(instance, template)| EventKind::InstanceStart {
                instance,
                template: template.into(),
            }
        ),
        instance
            .clone()
            .prop_map(|instance| EventKind::InstanceComplete { instance }),
        instance
            .clone()
            .prop_map(|instance| EventKind::InstanceAbort { instance }),
        (instance, 0u64..4)
            .prop_map(|(instance, requeued)| EventKind::InstanceRestart { instance, requeued }),
        node.clone()
            .prop_map(|node| EventKind::NodeCrash { node: node.into() }),
        node.clone()
            .prop_map(|node| EventKind::NodeRecover { node: node.into() }),
        (node, 0u32..32).prop_map(|(node, cpus)| EventKind::NodeLoad {
            node: node.into(),
            cpus: cpus as f64,
        }),
        (0u64..6).prop_map(|requeued| EventKind::ServerRecover { requeued }),
        Just(EventKind::ClusterFailure),
        Just(EventKind::ClusterRecover),
        (
            prop::sample::select(vec!["load", "old"]),
            prop::sample::select(vec!["x", ""])
        )
            .prop_map(|(kind, detail)| EventKind::Legacy {
                kind: kind.into(),
                detail: detail.into(),
            }),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => kind_strategy().prop_map(Op::Record),
        1 => Just(Op::Flush),
        1 => Just(Op::Reopen),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any event sequence with arbitrary flush/reopen interleavings,
    /// the incrementally maintained index equals one rebuilt from a full
    /// scan (durable log + pending buffer), and a final reopen after a
    /// flush reproduces the same index from disk alone.
    #[test]
    fn incremental_index_matches_full_scan(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let disk = MemDisk::new();
        let store = Store::open(disk).unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        let mut clock = 0u64;
        for op in &ops {
            match op {
                Op::Record(kind) => {
                    clock += 1_000;
                    aw.record(SimTime::from_millis(clock), kind.clone());
                }
                Op::Flush => {
                    aw.flush(&store).unwrap();
                }
                Op::Reopen => {
                    // Unflushed records are lost on reopen (that is the
                    // crash-atomicity contract); the index must follow.
                    aw = Awareness::open(&store).unwrap();
                }
            }
            let rebuilt = aw.rebuild_index(&store).unwrap();
            prop_assert_eq!(aw.index(), &rebuilt);
        }
        aw.flush(&store).unwrap();
        let reopened = Awareness::open(&store).unwrap();
        prop_assert_eq!(reopened.index(), aw.index());
        prop_assert_eq!(reopened.index().len(), aw.index().len());
    }

    /// Sequences that cross the old 10-digit padding width keep numeric
    /// ordering and never reset: seed the log with legacy-width keys near
    /// the 10^10 boundary, then append — new 20-digit keys sort *before*
    /// the legacy ones lexicographically, and the model must not care.
    #[test]
    fn padding_width_crossing_keeps_order_and_sequence(extra in 1usize..12) {
        let disk = MemDisk::new();
        let store = Store::open(disk).unwrap();
        // Two legacy records at the top of the 10-digit key range, written
        // byte-for-byte as the pre-taxonomy code would have.
        for (i, seq) in [9_999_999_998u64, 9_999_999_999].iter().enumerate() {
            let body = format!(
                r#"{{"at":[{}],"kind":"task.end","detail":"legacy {}"}}"#,
                (i as u64 + 1) * 1_000,
                i
            );
            store
                .put(Space::History, format!("ev/{seq:010}"), body.into_bytes())
                .unwrap();
        }
        let mut aw = Awareness::open(&store).unwrap();
        prop_assert_eq!(aw.index().len(), 2);
        for k in 0..extra {
            aw.record(
                SimTime::from_secs(10 + k as u64),
                EventKind::NodeLoad { node: "n1".into(), cpus: k as f64 },
            );
        }
        aw.flush(&store).unwrap();
        let all = aw.all(&store).unwrap();
        prop_assert_eq!(all.len(), 2 + extra);
        // Numeric order == timestamp order, despite mixed key widths.
        for w in all.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        // Reopen continues after 10^10 - 1 + extra, not from 0.
        let mut aw = Awareness::open(&store).unwrap();
        prop_assert_eq!(aw.index().len(), 2 + extra);
        aw.record(SimTime::from_secs(100), EventKind::ClusterRecover);
        aw.flush(&store).unwrap();
        let all = aw.all(&store).unwrap();
        prop_assert_eq!(all.len(), 3 + extra);
        prop_assert_eq!(all.last().unwrap().at, SimTime::from_secs(100));
    }
}

#[test]
fn foreign_key_reports_bad_key_even_with_undecodable_value() {
    let disk = MemDisk::new();
    let store = Store::open(disk).unwrap();
    store
        .put(
            Space::History,
            "ev/snapshot-2001".to_string(),
            b"not an event at all".to_vec(),
        )
        .unwrap();
    match Awareness::open(&store) {
        Err(AwarenessError::BadKey { key }) => assert_eq!(key, "snapshot-2001"),
        Err(other) => panic!("expected BadKey, got {other}"),
        Ok(_) => panic!("expected BadKey, got a working Awareness"),
    }
}

#[test]
fn corrupt_value_under_valid_key_is_a_codec_error() {
    let disk = MemDisk::new();
    let store = Store::open(disk).unwrap();
    store
        .put(
            Space::History,
            "ev/0000000000".to_string(),
            b"{\"at\":".to_vec(),
        )
        .unwrap();
    match Awareness::open(&store) {
        Err(AwarenessError::Store(e)) => {
            assert!(e.to_string().contains("codec"), "unexpected error: {e}")
        }
        Err(other) => panic!("expected a codec error, got {other}"),
        Ok(_) => panic!("expected a codec error, got a working Awareness"),
    }
}

#[test]
fn legacy_store_reopens_and_answers_queries() {
    let disk = MemDisk::new();
    let store = Store::open(disk).unwrap();
    let legacy: [(&str, &[u8]); 3] = [
        (
            "ev/0000000000",
            br#"{"at":[0],"kind":"instance.start","detail":"P#1"}"#,
        ),
        (
            "ev/0000000001",
            br#"{"at":[5000],"kind":"task.start","detail":"A on n1"}"#,
        ),
        (
            "ev/0000000002",
            br#"{"at":[9000],"kind":"task.end","detail":"A"}"#,
        ),
    ];
    for (key, body) in legacy {
        store
            .put(Space::History, key.to_string(), body.to_vec())
            .unwrap();
    }
    let aw = Awareness::open(&store).unwrap();
    assert_eq!(aw.index().len(), 3);
    assert_eq!(aw.index().count("task.end"), 1);
    let starts = aw.of_kind(&store, "instance.start").unwrap();
    assert_eq!(starts.len(), 1);
    assert!(matches!(
        &starts[0].kind,
        EventKind::Legacy { detail, .. } if detail == "P#1"
    ));
    // Legacy events carry no typed fields, so indexed postings skip them —
    // but the full-scan rebuild agrees with the incremental path.
    let rebuilt = aw.rebuild_index(&store).unwrap();
    assert_eq!(&rebuilt, aw.index());
}
