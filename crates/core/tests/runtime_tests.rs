//! End-to-end runtime tests: full processes executing in virtual time on
//! the simulated cluster, with every failure class of the paper injected.

use bioopera_cluster::{Cluster, NodeSpec, SimTime, Trace, TraceEventKind};
use bioopera_core::navigator; // used indirectly via runtime
use bioopera_core::state::{InstanceStatus, RunOutcome, TaskState};
use bioopera_core::{ActivityLibrary, ProgramOutput, Runtime, RuntimeConfig};
use bioopera_ocr::model::{EventAction, ExternalBinding, FailurePolicy, ParallelBody, TypeTag};
use bioopera_ocr::value::Value;
use bioopera_ocr::{Expr, ProcessBuilder, ProcessTemplate};
use bioopera_store::MemDisk;
use std::collections::BTreeMap;

// Silence "unused import" for navigator (kept to assert the pub API).
#[allow(unused)]
fn _navigator_api_exists() {
    let _ = navigator::bind_inputs_parts
        as fn(
            &ProcessTemplate,
            &bioopera_core::InstanceHeader,
            &BTreeMap<String, bioopera_core::TaskRecord>,
            &str,
        ) -> BTreeMap<String, Value>;
}

fn small_cluster() -> Cluster {
    Cluster::new(
        "test",
        vec![
            NodeSpec::new("n1", 2, 500, "linux"),
            NodeSpec::new("n2", 2, 500, "linux"),
            NodeSpec::new("n3", 1, 1000, "solaris"),
        ],
    )
}

/// A library with:
/// * `gen.list(count)` -> `items` = [0, .., count-1], cost 1 s
/// * `work.unit` -> squares `item`, cost = `cost_ms` input (default 60 s)
/// * `merge.sum` -> sums `results[i].value`, cost 2 s
/// * `fail.always` -> program error
/// * `fail.flaky` -> fails unless `attempt_ok` is set on the whiteboard
fn library() -> ActivityLibrary {
    let mut lib = ActivityLibrary::new();
    lib.register("gen.list", |inputs| {
        let count = inputs.get("count").and_then(|v| v.as_int()).unwrap_or(4);
        Ok(ProgramOutput::from_fields(
            [("items", Value::int_list(0..count))],
            1_000.0,
        ))
    });
    lib.register("work.unit", |inputs| {
        let item = inputs
            .get("item")
            .and_then(|v| v.as_int())
            .ok_or_else(|| "work.unit needs an item".to_string())?;
        let cost = inputs
            .get("cost_ms")
            .and_then(|v| v.as_float())
            .unwrap_or(60_000.0);
        Ok(ProgramOutput::from_fields(
            [("value", Value::Int(item * item))],
            cost,
        ))
    });
    lib.register("merge.sum", |inputs| {
        let results = inputs
            .get("results")
            .and_then(|v| v.as_list().map(|l| l.to_vec()))
            .ok_or_else(|| "merge.sum needs results".to_string())?;
        let total: i64 = results
            .iter()
            .filter_map(|r| r.get_path(&["value"]).and_then(|v| v.as_int()))
            .sum();
        Ok(ProgramOutput::from_fields(
            [("total", Value::Int(total))],
            2_000.0,
        ))
    });
    lib.register("fail.always", |_| Err("deliberate failure".to_string()));
    lib.register("noop", |_| {
        Ok(ProgramOutput::from_fields(
            [("ok", Value::Bool(true))],
            500.0,
        ))
    });
    lib.register("undo.noop", |_| Ok(ProgramOutput::instant(BTreeMap::new())));
    lib
}

/// items -> parallel squares -> sum, the canonical fan-out process.
fn fanout_template(count: i64, retries: u32) -> ProcessTemplate {
    ProcessBuilder::new("Fanout")
        .whiteboard_default("count", TypeTag::Int, Value::Int(count))
        .whiteboard_field("total", TypeTag::Int)
        .activity("Gen", "gen.list", |t| {
            t.input("count", TypeTag::Int)
                .output("items", TypeTag::List)
        })
        .parallel(
            "Fan",
            "items",
            ParallelBody::Activity(ExternalBinding::program("work.unit")),
            "results",
            |t| t.retries(retries),
        )
        .activity("Merge", "merge.sum", |t| {
            t.input("results", TypeTag::List)
                .output("total", TypeTag::Int)
        })
        .connect("Gen", "Fan")
        .connect("Fan", "Merge")
        .flow_from_whiteboard("count", "Gen", "count")
        .flow_to_task("Gen", "items", "Fan", "items")
        .flow_to_task("Fan", "results", "Merge", "results")
        .flow_to_whiteboard("Merge", "total", "total")
        .build()
        .unwrap()
}

fn runtime(cluster: Cluster) -> Runtime<MemDisk> {
    // Tests run minute-scale workloads; sample the series often enough to
    // observe them (experiments use the 2-hour default).
    let cfg = RuntimeConfig {
        heartbeat: SimTime::from_secs(20),
        ..Default::default()
    };
    Runtime::new(MemDisk::new(), cluster, library(), cfg).unwrap()
}

/// Sum of 0²..(n-1)².
fn expected_total(n: i64) -> i64 {
    (0..n).map(|i| i * i).sum()
}

#[test]
fn fanout_completes_with_correct_result() {
    let mut rt = runtime(small_cluster());
    rt.register_template(&fanout_template(6, 0)).unwrap();
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    assert_eq!(
        rt.whiteboard(id).unwrap()["total"],
        Value::Int(expected_total(6))
    );
    // Virtual time passed: 6 × 60 s of work on 5 CPUs plus overheads.
    assert!(rt.now() >= SimTime::from_secs(60));
    let stats = rt.stats(id).unwrap();
    assert_eq!(stats.activities, 8); // Gen + 6 children + Merge
                                     // Total work is ~363 reference-CPU-seconds; occupancy is lower when
                                     // the 2x-speed node (n3) takes jobs, but at least half runs at 1x.
    assert!(stats.cpu >= SimTime::from_secs(180), "cpu {}", stats.cpu);
    assert!(stats.cpu <= SimTime::from_secs(370), "cpu {}", stats.cpu);
    assert!(stats.max_cpus_used >= 1);
}

#[test]
fn parallelism_reduces_wall_time() {
    // Same work on a 1-CPU cluster vs a 6-CPU cluster.
    let run = |cluster: Cluster| {
        let mut rt = runtime(cluster);
        rt.register_template(&fanout_template(6, 0)).unwrap();
        let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
        rt.run_to_completion().unwrap();
        rt.stats(id).unwrap()
    };
    let single = run(Cluster::new(
        "one",
        vec![NodeSpec::new("solo", 1, 500, "linux")],
    ));
    let multi = run(Cluster::new(
        "six",
        (0..6)
            .map(|i| NodeSpec::new(format!("n{i}"), 1, 500, "linux"))
            .collect(),
    ));
    assert!(
        multi.wall.as_millis() * 3 < single.wall.as_millis(),
        "parallel {} vs serial {}",
        multi.wall,
        single.wall
    );
    // CPU time is essentially the same.
    let ratio = multi.cpu.as_millis() as f64 / single.cpu.as_millis() as f64;
    assert!((0.9..1.1).contains(&ratio), "cpu ratio {ratio}");
}

#[test]
fn node_crash_is_masked_and_work_completes() {
    let mut rt = runtime(small_cluster());
    rt.register_template(&fanout_template(8, 0)).unwrap();
    let mut trace = Trace::empty();
    // Kill n1 30 s in (children are mid-flight), revive it later.
    trace.push(
        SimTime::from_secs(30),
        TraceEventKind::NodeDown("n1".into()),
    );
    trace.push(SimTime::from_secs(200), TraceEventKind::NodeUp("n1".into()));
    rt.install_trace(&trace);
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    assert_eq!(
        rt.whiteboard(id).unwrap()["total"],
        Value::Int(expected_total(8))
    );
    // The awareness model recorded the masked failures.
    let crashes = rt.awareness().of_kind(rt.store(), "node.crash").unwrap();
    assert_eq!(crashes.len(), 1);
    let masked = rt
        .awareness()
        .of_kind(rt.store(), "task.systemfail")
        .unwrap();
    assert!(!masked.is_empty(), "jobs on n1 must have been re-queued");
}

#[test]
fn whole_cluster_failure_recovers() {
    let mut rt = runtime(small_cluster());
    rt.register_template(&fanout_template(6, 0)).unwrap();
    let mut trace = Trace::empty();
    trace.push(SimTime::from_secs(20), TraceEventKind::AllNodesDown);
    trace.push(SimTime::from_secs(500), TraceEventKind::AllNodesUp);
    rt.install_trace(&trace);
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    assert_eq!(
        rt.whiteboard(id).unwrap()["total"],
        Value::Int(expected_total(6))
    );
    // The computation paused during the outage.
    assert!(rt.now() >= SimTime::from_secs(500));
}

#[test]
fn server_crash_resumes_without_losing_completed_work() {
    let mut rt = runtime(small_cluster());
    rt.register_template(&fanout_template(6, 0)).unwrap();
    let mut trace = Trace::empty();
    // Crash the server after Gen has certainly completed (Gen costs 1 s,
    // latency 2 s) but while children run; recover a minute later.
    trace.push(SimTime::from_secs(30), TraceEventKind::ServerCrash);
    trace.push(SimTime::from_secs(90), TraceEventKind::ServerRecover);
    rt.install_trace(&trace);
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    assert_eq!(
        rt.whiteboard(id).unwrap()["total"],
        Value::Int(expected_total(6))
    );
    // Gen ran exactly once: completed work survived the server crash.
    let ends = rt.awareness().of_kind(rt.store(), "task.end").unwrap();
    let gen_ends = ends
        .iter()
        .filter(|e| e.kind.task_path() == Some("Gen"))
        .count();
    assert_eq!(gen_ends, 1, "Gen must not be re-executed after recovery");
}

#[test]
fn network_outage_buffers_results_at_pecs() {
    let mut rt = runtime(small_cluster());
    rt.register_template(&fanout_template(5, 0)).unwrap();
    let mut trace = Trace::empty();
    // Outage covers the completion times of the first child wave.
    trace.push(SimTime::from_secs(10), TraceEventKind::NetworkDown);
    trace.push(SimTime::from_secs(300), TraceEventKind::NetworkUp);
    rt.install_trace(&trace);
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    assert_eq!(
        rt.whiteboard(id).unwrap()["total"],
        Value::Int(expected_total(5))
    );
    // Jobs finished during the outage were *not* re-executed: every child
    // ended exactly once.
    let ends = rt.awareness().of_kind(rt.store(), "task.end").unwrap();
    for i in 0..5 {
        let n = ends
            .iter()
            .filter(|e| e.kind.task_path() == Some(format!("Fan[{i}]").as_str()))
            .count();
        assert_eq!(n, 1, "child {i} should complete exactly once");
    }
}

#[test]
fn disk_full_forces_reruns_until_freed() {
    let mut rt = runtime(small_cluster());
    rt.register_template(&fanout_template(4, 0)).unwrap();
    let mut trace = Trace::empty();
    trace.push(SimTime::from_secs(5), TraceEventKind::DiskFull);
    trace.push(SimTime::from_secs(400), TraceEventKind::DiskFreed);
    rt.install_trace(&trace);
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    assert_eq!(
        rt.whiteboard(id).unwrap()["total"],
        Value::Int(expected_total(4))
    );
    let diskfails = rt.awareness().of_kind(rt.store(), "task.diskfull").unwrap();
    assert!(
        !diskfails.is_empty(),
        "some completions must have hit the full disk"
    );
}

#[test]
fn operator_suspend_drains_and_resume_continues() {
    let mut rt = runtime(small_cluster());
    rt.register_template(&fanout_template(6, 0)).unwrap();
    let mut trace = Trace::empty();
    trace.push(SimTime::from_secs(5), TraceEventKind::OperatorSuspend);
    trace.push(SimTime::from_hours(2), TraceEventKind::OperatorResume);
    rt.install_trace(&trace);
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    // Wall time reflects the suspension.
    let stats = rt.stats(id).unwrap();
    assert!(stats.wall >= SimTime::from_hours(2));
}

#[test]
fn api_suspend_quiesces_run_and_resume_completes() {
    // Regression for the suspended-instance wedge: an API-suspended
    // instance must not spin or error `run_to_completion` — the run
    // quiesces with a suspended count, and resume picks it back up.
    let mut rt = runtime(small_cluster());
    rt.register_template(&fanout_template(4, 0)).unwrap();
    let parked = rt.submit("Fanout", BTreeMap::new()).unwrap();
    let free = rt.submit("Fanout", BTreeMap::new()).unwrap();
    rt.suspend(parked).unwrap();
    let outcome = rt.run_to_completion().unwrap();
    assert_eq!(outcome, RunOutcome::Quiesced { suspended: 1 });
    assert_eq!(rt.instance_status(parked), Some(InstanceStatus::Suspended));
    assert_eq!(rt.instance_status(free), Some(InstanceStatus::Completed));
    rt.resume(parked).unwrap();
    let outcome = rt.run_to_completion().unwrap();
    assert_eq!(outcome, RunOutcome::Completed);
    assert_eq!(rt.instance_status(parked), Some(InstanceStatus::Completed));
}

#[test]
fn program_failure_exhausts_retries_then_aborts() {
    let t = ProcessBuilder::new("Doomed")
        .activity("Bad", "fail.always", |t| t.retries(2))
        .build()
        .unwrap();
    let mut rt = runtime(small_cluster());
    rt.register_template(&t).unwrap();
    let id = rt.submit("Doomed", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Aborted));
    let fails = rt.awareness().of_kind(rt.store(), "task.fail").unwrap();
    assert_eq!(fails.len(), 3, "1 try + 2 retries");
}

#[test]
fn ignore_policy_lets_process_complete_despite_failure() {
    let t = ProcessBuilder::new("Tolerant")
        .activity("Bad", "fail.always", |t| t)
        .activity("Good", "noop", |t| t)
        .connect("Bad", "Good")
        .on_failure("Bad", FailurePolicy::Ignore)
        .build()
        .unwrap();
    let mut rt = runtime(small_cluster());
    rt.register_template(&t).unwrap();
    let id = rt.submit("Tolerant", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    // Good was dead-path-eliminated (its one connector came from a skip).
    assert_eq!(
        rt.task_record(id, "Good").unwrap().state,
        TaskState::Skipped
    );
}

#[test]
fn sphere_compensation_runs_on_abort() {
    let t = ProcessBuilder::new("Atomic")
        .activity("S1", "noop", |t| t)
        .activity("S2", "fail.always", |t| t)
        .connect("S1", "S2")
        .sphere("Sp", ["S1", "S2"], [("S1", "undo.noop")])
        .on_failure("S2", FailurePolicy::CompensateSphere("Sp".into()))
        .build()
        .unwrap();
    let mut rt = runtime(small_cluster());
    rt.register_template(&t).unwrap();
    let id = rt.submit("Atomic", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Aborted));
    assert_eq!(
        rt.task_record(id, "S1").unwrap().state,
        TaskState::Compensated
    );
    let comps = rt
        .awareness()
        .of_kind(rt.store(), "task.compensate")
        .unwrap();
    assert_eq!(comps.len(), 1);
    assert!(matches!(
        &comps[0].kind,
        bioopera_core::EventKind::TaskCompensate { program, .. } if program == "undo.noop"
    ));
}

#[test]
fn subprocess_late_binding_uses_template_at_start_time() {
    // Parent references template "Sub" which is registered *after* the
    // parent, and swapped before the second run.
    let parent = ProcessBuilder::new("Parent")
        .whiteboard_default("x", TypeTag::Int, Value::Int(7))
        .subprocess("Child", "Sub", |t| {
            t.input("x", TypeTag::Int).output("y", TypeTag::Int)
        })
        .activity("After", "noop", |t| t)
        .connect("Child", "After")
        .flow_from_whiteboard("x", "Child", "x")
        .build()
        .unwrap();
    let sub_v1 = ProcessBuilder::new("Sub")
        .whiteboard_field("x", TypeTag::Int)
        .whiteboard_field("y", TypeTag::Int)
        .activity("Work", "work.unit", |t| {
            t.input("item", TypeTag::Int).output("value", TypeTag::Int)
        })
        .flow_from_whiteboard("x", "Work", "item")
        .flow_to_whiteboard("Work", "value", "y")
        .build()
        .unwrap();

    let mut rt = runtime(small_cluster());
    rt.register_template(&parent).unwrap();
    rt.register_template(&sub_v1).unwrap();
    let id = rt.submit("Parent", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    let child_rec = rt.task_record(id, "Child").unwrap();
    assert_eq!(child_rec.state, TaskState::Ended);
    // Child squared 7: parent task output y = 49 (from the child's
    // whiteboard).
    assert_eq!(child_rec.outputs["y"], Value::Int(49));
}

#[test]
fn parallel_subprocess_bodies_run_one_instance_per_element() {
    let chunk = ProcessBuilder::new("Chunk")
        .whiteboard_field("item", TypeTag::Int)
        .whiteboard_field("value", TypeTag::Int)
        .activity("Square", "work.unit", |t| {
            t.input("item", TypeTag::Int).output("value", TypeTag::Int)
        })
        .flow_from_whiteboard("item", "Square", "item")
        .flow_to_whiteboard("Square", "value", "value")
        .build()
        .unwrap();
    let t = ProcessBuilder::new("FanSub")
        .whiteboard_field("total", TypeTag::Int)
        .activity("Gen", "gen.list", |t| {
            t.input_default("count", TypeTag::Int, Value::Int(4))
                .output("items", TypeTag::List)
        })
        .parallel(
            "Fan",
            "items",
            ParallelBody::Subprocess("Chunk".into()),
            "results",
            |t| t,
        )
        .activity("Merge", "merge.sum", |t| {
            t.input("results", TypeTag::List)
                .output("total", TypeTag::Int)
        })
        .connect("Gen", "Fan")
        .connect("Fan", "Merge")
        .flow_to_task("Gen", "items", "Fan", "items")
        .flow_to_task("Fan", "results", "Merge", "results")
        .flow_to_whiteboard("Merge", "total", "total")
        .build()
        .unwrap();
    let mut rt = runtime(small_cluster());
    rt.register_template(&chunk).unwrap();
    rt.register_template(&t).unwrap();
    let id = rt.submit("FanSub", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    assert_eq!(
        rt.whiteboard(id).unwrap()["total"],
        Value::Int(expected_total(4))
    );
    // 4 child instances + the parent.
    assert_eq!(rt.instances().len(), 5);
}

#[test]
fn event_handlers_set_data_and_suspend() {
    let t = ProcessBuilder::new("Evented")
        .whiteboard_default("threshold", TypeTag::Float, Value::Float(80.0))
        .activity("A", "noop", |t| t)
        .on_event(
            "retune",
            EventAction::SetData("threshold".into(), Expr::Lit(Value::Float(95.0))),
        )
        .on_event("pause", EventAction::Suspend)
        .on_event("go", EventAction::Resume)
        .build()
        .unwrap();
    let mut rt = runtime(small_cluster());
    rt.register_template(&t).unwrap();
    let id = rt.submit("Evented", BTreeMap::new()).unwrap();
    rt.signal_event(id, "retune").unwrap();
    assert_eq!(rt.whiteboard(id).unwrap()["threshold"], Value::Float(95.0));
    rt.signal_event(id, "pause").unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Suspended));
    rt.signal_event(id, "go").unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Running));
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
}

#[test]
fn placement_constraints_honored() {
    let t = ProcessBuilder::new("Placed")
        .activity("OnSun", "noop", |t| t.on_os("solaris"))
        .build()
        .unwrap();
    let mut rt = runtime(small_cluster());
    rt.register_template(&t).unwrap();
    let id = rt.submit("Placed", BTreeMap::new()).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(
        rt.task_record(id, "OnSun").unwrap().node.as_deref(),
        Some("n3")
    );
}

#[test]
fn what_if_planner_reports_affected_jobs() {
    use bioopera_core::Planner;
    let mut rt = runtime(small_cluster());
    rt.register_template(&fanout_template(6, 0)).unwrap();
    let _id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    // Advance until children are in flight: run a bounded number of events
    // by installing a "probe" — simplest: run until jobs exist by stepping
    // through a silent trace event far in the future and polling; here we
    // run to completion in a clone-free way, so instead submit and pump
    // manually: the public API exposes in_flight_jobs after run begins.
    // Drive a few events by running with a trace that suspends early.
    let mut trace = Trace::empty();
    trace.push(SimTime::from_secs(25), TraceEventKind::OperatorSuspend);
    trace.push(SimTime::from_days(300), TraceEventKind::OperatorResume);
    rt.install_trace(&trace);
    // Run: will finish eventually; but we want to inspect mid-run. Use the
    // suspension window: run_to_completion processes everything, so
    // instead we check the planner *before* running (no jobs yet) and
    // after (no jobs left) — the mid-run check happens in the runtime's
    // own unit context. Here: verify the report shape on the idle state.
    let impact = Planner::what_if_offline(&rt, &["n1", "n3"]);
    assert_eq!(impact.cpus_lost, 3);
    assert_eq!(impact.offline.len(), 2);
    assert_eq!(impact.instances.len(), 1);
    let text = impact.report();
    assert!(text.contains("what-if"));
    rt.run_to_completion().unwrap();
    let impact = Planner::what_if_offline(&rt, &["n1"]);
    assert!(
        impact.instances.is_empty(),
        "terminal instances are not affected"
    );
}

#[test]
fn migration_rescues_starved_jobs() {
    // One fast node that gets fully occupied by external users right after
    // dispatch, plus a slow-but-free node.  Without migration the job
    // waits for the external load to clear (day 2); with migration it
    // finishes quickly on the other node.
    let cluster = || {
        Cluster::new(
            "mig",
            vec![
                NodeSpec::new("hot", 1, 1000, "linux"),
                NodeSpec::new("cold", 1, 400, "linux"),
            ],
        )
    };
    let template = ProcessBuilder::new("OneJob")
        .activity("W", "work.unit", |t| {
            t.input_default("item", TypeTag::Int, Value::Int(3))
                .input_default("cost_ms", TypeTag::Float, Value::Float(600_000.0))
                .output("value", TypeTag::Int)
        })
        .build()
        .unwrap();
    let mut trace = Trace::empty();
    // External users grab the hot node just as the job starts, for 2 days.
    trace.push(
        SimTime::from_secs(3),
        TraceEventKind::ExternalLoad {
            node: "hot".into(),
            cpus: 1.0,
        },
    );
    trace.push(
        SimTime::from_days(2),
        TraceEventKind::ExternalLoad {
            node: "hot".into(),
            cpus: 0.0,
        },
    );

    let run = |migration| {
        // Least-loaded: the first dispatch goes to the (idle, faster) hot
        // node; after migration the starved node reports load 1.0 so the
        // job lands on the cold node.  (Fastest-fit would re-pick the hot
        // node forever — the paper's §5.4 caveat, covered by the
        // scheduling ablation bench.)
        let cfg = RuntimeConfig {
            policy: Box::new(bioopera_core::LeastLoaded),
            migration,
            heartbeat: SimTime::from_mins(30),
            ..Default::default()
        };
        let mut rt = Runtime::new(MemDisk::new(), cluster(), library(), cfg).unwrap();
        rt.register_template(&template).unwrap();
        let id = rt.submit("OneJob", BTreeMap::new()).unwrap();
        rt.install_trace(&trace);
        rt.run_to_completion().unwrap();
        assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
        rt.stats(id).unwrap().wall
    };
    let without = run(None);
    let with = run(Some(bioopera_core::runtime::MigrationConfig {
        patience: SimTime::from_hours(1),
    }));
    assert!(
        with.as_millis() * 4 < without.as_millis(),
        "migration should rescue the job: with {} vs without {}",
        with,
        without
    );
}

#[test]
fn deterministic_replay_same_disk_content() {
    let run_digest = || {
        let mut rt = runtime(small_cluster());
        rt.register_template(&fanout_template(5, 0)).unwrap();
        let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
        rt.run_to_completion().unwrap();
        (
            rt.now(),
            rt.whiteboard(id).unwrap().clone(),
            rt.stats(id).unwrap().cpu,
            rt.awareness().all(rt.store()).unwrap().len(),
        )
    };
    assert_eq!(run_digest(), run_digest());
}

#[test]
fn queue_wait_metric_survives_server_crash() {
    // A task that queues through a server outage must report its *full*
    // wait — from the moment it became Ready, not from recovery.  The
    // enqueue time is persisted on the TaskRecord (`ready_at`), so the
    // rebuilt server picks up where the crashed one left off.
    let t = ProcessBuilder::new("Waiter")
        .activity("W", "noop", |t| t)
        .build()
        .unwrap();
    let mut rt = runtime(small_cluster());
    rt.register_template(&t).unwrap();
    let mut trace = Trace::empty();
    // The instance is suspended before anything dispatches; the server
    // crashes and recovers mid-wait, and the operator resumes at 300 s.
    trace.push(SimTime::from_secs(60), TraceEventKind::ServerCrash);
    trace.push(SimTime::from_secs(120), TraceEventKind::ServerRecover);
    trace.push(SimTime::from_secs(300), TraceEventKind::OperatorResume);
    rt.install_trace(&trace);
    let id = rt.submit("Waiter", BTreeMap::new()).unwrap();
    rt.suspend(id).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    let starts = rt.awareness().of_kind(rt.store(), "task.start").unwrap();
    let queue_ms = starts
        .iter()
        .find_map(|e| match &e.kind {
            bioopera_core::EventKind::TaskStart { queue_ms, .. } => Some(*queue_ms),
            _ => None,
        })
        .expect("the task must have started");
    // The wait spans the whole outage (~300 s); a stamp re-taken at
    // recovery would report only the post-recovery slice (~180 s).
    assert!(
        queue_ms >= 290_000,
        "queue wait must span the server outage, got {queue_ms} ms"
    );
}

#[test]
fn stale_completion_after_abort_is_recorded_not_fatal() {
    // Abort an instance while a job is in flight: the completion arrives
    // for a task whose instance is terminal.  The runtime must survive
    // (no panic, no error) — at most noting the anomaly — and the
    // remaining workload must keep running.
    let mut rt = runtime(small_cluster());
    rt.register_template(&fanout_template(4, 0)).unwrap();
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    let other = rt.submit("Fanout", BTreeMap::new()).unwrap();
    // Abort the first instance almost immediately — its Gen job (1 s
    // cost, 2 s latency) is still in flight.
    rt.abort(id).unwrap();
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Aborted));
    assert_eq!(rt.instance_status(other), Some(InstanceStatus::Completed));
}

#[test]
fn store_survives_and_instance_is_queryable_after_manual_crash() {
    let mut rt = runtime(small_cluster());
    rt.register_template(&fanout_template(4, 0)).unwrap();
    let id = rt.submit("Fanout", BTreeMap::new()).unwrap();
    rt.crash_server().unwrap();
    assert!(rt.instances().is_empty(), "volatile state gone");
    rt.recover_server().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Running));
    rt.run_to_completion().unwrap();
    assert_eq!(rt.instance_status(id), Some(InstanceStatus::Completed));
    assert_eq!(
        rt.whiteboard(id).unwrap()["total"],
        Value::Int(expected_total(4))
    );
}
