//! The awareness model: persistent history of everything that happened.
//!
//! "Beyond task start times, task finish times and task failures, the
//! system also stores information regarding the load in each node, node
//! availability, node failure, node capacity, and other relevant
//! information regarding the state of the computing environment.  All
//! together, this information allows the creation of an awareness model"
//! (§3.4).  Records live in the History space and survive everything.
//!
//! Events carry a structured [`EventKind`] taxonomy (instance, task, node,
//! cluster and operator events with typed fields) rather than free-form
//! strings; records written by earlier versions still deserialize as
//! [`EventKind::Legacy`].  An in-memory [`AwarenessIndex`] is maintained
//! incrementally on every [`Awareness::record`] — by-kind / by-instance /
//! by-node postings, counters, gauges and latency histograms — so
//! monitoring queries never rescan the store.  Appends are buffered and
//! flushed as **one store batch per navigator step** ([`Awareness::flush`]),
//! keeping WAL traffic proportional to steps rather than events while
//! preserving per-step crash atomicity.

use crate::metrics::Histogram;
use bioopera_cluster::SimTime;
use bioopera_store::{Batch, Disk, Space, Store, StoreError, TypedSpace};
use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What happened, with typed fields.  `instance` is the [`InstanceId`],
/// `path` the task path inside the process template, `node` a cluster node
/// name; durations are virtual milliseconds.
///
/// [`InstanceId`]: crate::state::InstanceId
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A process instance was submitted and started.
    InstanceStart {
        /// Instance id.
        instance: u64,
        /// Template name it was instantiated from.
        template: String,
    },
    /// An instance reached `Completed`.
    InstanceComplete {
        /// Instance id.
        instance: u64,
    },
    /// An instance reached `Aborted`.
    InstanceAbort {
        /// Instance id.
        instance: u64,
    },
    /// A lineage-driven partial recomputation was applied.
    InstanceRecompute {
        /// The new instance id.
        instance: u64,
        /// The terminal source instance whose recorded outputs are reused.
        source: u64,
        /// Tasks/fields whose change triggered the recompute.
        changed: Vec<String>,
    },
    /// The operator restarted an instance (e.g. after a non-reporting TEU).
    InstanceRestart {
        /// Instance id.
        instance: u64,
        /// Dispatched tasks pulled back into the ready queue.
        requeued: u64,
    },
    /// The operator suspended an instance.
    InstanceSuspend {
        /// Instance id.
        instance: u64,
    },
    /// The operator resumed an instance.
    InstanceResume {
        /// Instance id.
        instance: u64,
    },
    /// A task was dispatched to a node.
    TaskStart {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
        /// Node it was placed on.
        node: String,
        /// TEU job id on that node.
        job: u64,
        /// Time spent ready-but-unscheduled before dispatch.
        queue_ms: u64,
    },
    /// A task finished and its effects were applied.
    TaskEnd {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
        /// Node it ran on.
        node: String,
        /// Dispatch→completion wall time.
        run_ms: u64,
        /// Reference-CPU milliseconds charged.
        cpu_ms: f64,
    },
    /// A task failed with a program-level error.
    TaskFail {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
        /// Program error message.
        error: String,
    },
    /// A task failure reclassified as a system failure (node fault, §3.4)
    /// and scheduled for transparent re-execution.
    TaskSystemFail {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
        /// What the system observed (crash, network partition, ...).
        reason: String,
    },
    /// A TEU stopped reporting; the operator will restart the instance.
    TaskNonReport {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
    },
    /// A task died to a full disk on its node.
    TaskDiskFull {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
    },
    /// A masked failure was deferred with an exponential-backoff timer
    /// (annotation alongside `task.systemfail`; the dispatch slot was
    /// already released by that event).
    TaskBackoff {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
        /// Masked failures so far (drives the exponent).
        attempt: u32,
        /// Virtual milliseconds until the task may be re-dispatched.
        delay_ms: u64,
    },
    /// A task system-failed once too often (distinct-node poison set or
    /// exhausted retry budget) and was escalated to a program failure.
    TaskPoisoned {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
        /// Why masking stopped.
        reason: String,
    },
    /// A dispatched task was pulled off a dead node and requeued.
    TaskMigrate {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
        /// The node it was evacuated from.
        node: String,
    },
    /// A compensation program ran while aborting an instance.
    TaskCompensate {
        /// Instance id.
        instance: u64,
        /// Task path being compensated.
        path: String,
        /// Compensation program name.
        program: String,
    },
    /// A late-bound subprocess was instantiated.
    SubprocessStart {
        /// Parent instance id.
        instance: u64,
        /// Subprocess task path in the parent.
        path: String,
        /// Child instance id.
        child: u64,
        /// Child template name.
        template: String,
    },
    /// A finished child instance reported to an already-completed
    /// subprocess slot (duplicate delivery, ignored).
    SubprocessDuplicate {
        /// Parent instance id.
        instance: u64,
        /// Subprocess task path in the parent.
        path: String,
        /// Child instance id.
        child: u64,
    },
    /// An external event was signalled into an instance.
    EventSignal {
        /// Instance id.
        instance: u64,
        /// Event name.
        event: String,
    },
    /// A node crashed.
    NodeCrash {
        /// Node name.
        node: String,
    },
    /// A node came back.
    NodeRecover {
        /// Node name.
        node: String,
    },
    /// Consecutive job failures pushed a node into quarantine: the
    /// scheduler will not place work there until the interval expires.
    NodeQuarantine {
        /// Node name.
        node: String,
        /// Consecutive failures that triggered the quarantine.
        failures: u32,
    },
    /// A node's quarantine interval expired; it re-enters scheduling on
    /// probation.
    NodeProbation {
        /// Node name.
        node: String,
    },
    /// A node's PEC lost its network link to the server: no dispatches,
    /// completions buffer at the node until it rejoins.
    NodePartition {
        /// Node name.
        node: String,
    },
    /// A partitioned node rejoined; its buffered completions were
    /// delivered.
    NodeRejoin {
        /// Node name.
        node: String,
    },
    /// A load sample: external (non-BioOpera) CPU pressure on a node.
    NodeLoad {
        /// Node name.
        node: String,
        /// CPUs' worth of external load.
        cpus: f64,
    },
    /// The whole cluster failed (switch failure, Fig. 5).
    ClusterFailure,
    /// The whole cluster recovered.
    ClusterRecover,
    /// The cluster was upgraded mid-run (Fig. 6).
    ClusterUpgrade {
        /// CPUs added.
        cpus: u32,
    },
    /// The BioOpera server recovered after a crash and rebuilt from the
    /// store.
    ServerRecover {
        /// Dispatched tasks requeued during rebuild.
        requeued: u64,
    },
    /// Operator suspended the whole engine.
    OperatorSuspend,
    /// Operator resumed the whole engine.
    OperatorResume,
    /// A record written before the typed taxonomy (old string format).
    Legacy {
        /// The old free-form kind, e.g. `task.end`.
        kind: String,
        /// The old free-form detail string.
        detail: String,
    },
}

impl EventKind {
    /// The stable dot-separated label (`task.end`, `node.crash`, ...) —
    /// the same strings the pre-taxonomy records used, so label-based
    /// queries span old and new history.  [`Legacy`] records answer with
    /// their stored kind.
    ///
    /// [`Legacy`]: EventKind::Legacy
    pub fn label(&self) -> &str {
        match self {
            EventKind::InstanceStart { .. } => "instance.start",
            EventKind::InstanceComplete { .. } => "instance.complete",
            EventKind::InstanceAbort { .. } => "instance.abort",
            EventKind::InstanceRecompute { .. } => "instance.recompute",
            EventKind::InstanceRestart { .. } => "instance.restart",
            EventKind::InstanceSuspend { .. } => "instance.suspend",
            EventKind::InstanceResume { .. } => "instance.resume",
            EventKind::TaskStart { .. } => "task.start",
            EventKind::TaskEnd { .. } => "task.end",
            EventKind::TaskFail { .. } => "task.fail",
            EventKind::TaskSystemFail { .. } => "task.systemfail",
            EventKind::TaskNonReport { .. } => "task.nonreport",
            EventKind::TaskDiskFull { .. } => "task.diskfull",
            EventKind::TaskBackoff { .. } => "task.backoff",
            EventKind::TaskPoisoned { .. } => "task.poisoned",
            EventKind::TaskMigrate { .. } => "task.migrate",
            EventKind::TaskCompensate { .. } => "task.compensate",
            EventKind::SubprocessStart { .. } => "subprocess.start",
            EventKind::SubprocessDuplicate { .. } => "subprocess.duplicate",
            EventKind::EventSignal { .. } => "event.signal",
            EventKind::NodeCrash { .. } => "node.crash",
            EventKind::NodeRecover { .. } => "node.recover",
            EventKind::NodeQuarantine { .. } => "node.quarantine",
            EventKind::NodeProbation { .. } => "node.probation",
            EventKind::NodePartition { .. } => "node.partition",
            EventKind::NodeRejoin { .. } => "node.rejoin",
            EventKind::NodeLoad { .. } => "node.load",
            EventKind::ClusterFailure => "cluster.failure",
            EventKind::ClusterRecover => "cluster.recover",
            EventKind::ClusterUpgrade { .. } => "cluster.upgrade",
            EventKind::ServerRecover { .. } => "server.recover",
            EventKind::OperatorSuspend => "operator.suspend",
            EventKind::OperatorResume => "operator.resume",
            EventKind::Legacy { kind, .. } => kind,
        }
    }

    /// The instance this event concerns, if any.
    pub fn instance(&self) -> Option<u64> {
        match self {
            EventKind::InstanceStart { instance, .. }
            | EventKind::InstanceComplete { instance }
            | EventKind::InstanceAbort { instance }
            | EventKind::InstanceRecompute { instance, .. }
            | EventKind::InstanceRestart { instance, .. }
            | EventKind::InstanceSuspend { instance }
            | EventKind::InstanceResume { instance }
            | EventKind::TaskStart { instance, .. }
            | EventKind::TaskEnd { instance, .. }
            | EventKind::TaskFail { instance, .. }
            | EventKind::TaskSystemFail { instance, .. }
            | EventKind::TaskNonReport { instance, .. }
            | EventKind::TaskDiskFull { instance, .. }
            | EventKind::TaskBackoff { instance, .. }
            | EventKind::TaskPoisoned { instance, .. }
            | EventKind::TaskMigrate { instance, .. }
            | EventKind::TaskCompensate { instance, .. }
            | EventKind::SubprocessStart { instance, .. }
            | EventKind::SubprocessDuplicate { instance, .. }
            | EventKind::EventSignal { instance, .. } => Some(*instance),
            _ => None,
        }
    }

    /// The task path this event concerns, if any.
    pub fn task_path(&self) -> Option<&str> {
        match self {
            EventKind::TaskStart { path, .. }
            | EventKind::TaskEnd { path, .. }
            | EventKind::TaskFail { path, .. }
            | EventKind::TaskSystemFail { path, .. }
            | EventKind::TaskNonReport { path, .. }
            | EventKind::TaskDiskFull { path, .. }
            | EventKind::TaskBackoff { path, .. }
            | EventKind::TaskPoisoned { path, .. }
            | EventKind::TaskMigrate { path, .. }
            | EventKind::TaskCompensate { path, .. }
            | EventKind::SubprocessStart { path, .. }
            | EventKind::SubprocessDuplicate { path, .. } => Some(path),
            _ => None,
        }
    }

    /// The node this event concerns, if any.
    pub fn node(&self) -> Option<&str> {
        match self {
            EventKind::TaskStart { node, .. }
            | EventKind::TaskEnd { node, .. }
            | EventKind::TaskMigrate { node, .. }
            | EventKind::NodeCrash { node }
            | EventKind::NodeRecover { node }
            | EventKind::NodeQuarantine { node, .. }
            | EventKind::NodeProbation { node }
            | EventKind::NodePartition { node }
            | EventKind::NodeRejoin { node }
            | EventKind::NodeLoad { node, .. } => Some(node),
            _ => None,
        }
    }
}

/// Label comparison, so `event.kind == "task.end"` reads like the old
/// string-typed field.
impl PartialEq<&str> for EventKind {
    fn eq(&self, other: &&str) -> bool {
        self.label() == *other
    }
}

impl PartialEq<str> for EventKind {
    fn eq(&self, other: &str) -> bool {
        self.label() == other
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One history record.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistoryEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: EventKind,
}

/// Hand-written so pre-taxonomy records still load: the old format was
/// `{"at": ..., "kind": "<string>", "detail": "<string>"}` — a top-level
/// `detail` field marks it (typed records never serialize one), and its
/// free-form strings become [`EventKind::Legacy`].
impl Deserialize for HistoryEvent {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let entries = match c {
            Content::Map(entries) => entries,
            other => {
                return Err(DeError::custom(format!(
                    "expected history event map, found {other:?}"
                )))
            }
        };
        let at: SimTime = serde::__field(entries, "at")?;
        let kind_c = entries
            .iter()
            .find(|(k, _)| k == "kind")
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::custom("history event missing `kind`"))?;
        let detail = entries.iter().find(|(k, _)| k == "detail").map(|(_, v)| v);
        let kind = match (kind_c, detail) {
            (Content::Str(kind), Some(Content::Str(detail))) => EventKind::Legacy {
                kind: kind.clone(),
                detail: detail.clone(),
            },
            (_, None) => EventKind::from_content(kind_c).or_else(|e| match kind_c {
                // A bare kind string that is no unit-variant name is still
                // a legacy record (tolerate a missing detail field).
                Content::Str(kind) => Ok(EventKind::Legacy {
                    kind: kind.clone(),
                    detail: String::new(),
                }),
                _ => Err(e),
            })?,
            (_, Some(other)) => {
                return Err(DeError::custom(format!(
                    "history event `detail` must be a string, found {other:?}"
                )))
            }
        };
        Ok(HistoryEvent { at, kind })
    }
}

/// Awareness-layer errors: store failures, plus history keys that do not
/// belong to the append sequence (foreign or corrupt keys must surface,
/// never silently reset the sequence — that would overwrite history).
#[derive(Debug)]
pub enum AwarenessError {
    /// The underlying store failed.
    Store(StoreError),
    /// A History-space key under the event prefix is not a sequence number.
    BadKey {
        /// The offending key (without the `ev/` prefix).
        key: String,
    },
}

impl fmt::Display for AwarenessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AwarenessError::Store(e) => write!(f, "store: {e}"),
            AwarenessError::BadKey { key } => {
                write!(f, "history key `{key}` is not a sequence number")
            }
        }
    }
}

impl std::error::Error for AwarenessError {}

impl From<StoreError> for AwarenessError {
    fn from(e: StoreError) -> Self {
        AwarenessError::Store(e)
    }
}

/// In-memory index over the event log, maintained incrementally as events
/// are recorded (and rebuilt from the store on open/recovery).  Answers
/// the monitoring queries — counts, postings, latency histograms, gauges —
/// without rescanning the History space.
///
/// Invariant (checked by the equivalence proptests): ingesting the full
/// event log in sequence order produces the same index as the incremental
/// path, so every query here equals its full-scan answer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AwarenessIndex {
    log: Vec<HistoryEvent>,
    by_kind: BTreeMap<String, Vec<usize>>,
    by_instance: BTreeMap<u64, Vec<usize>>,
    by_node: BTreeMap<String, Vec<usize>>,
    run_ms: Histogram,
    queue_ms: Histogram,
    in_flight: u64,
    peak_in_flight: u64,
    nodes_down: BTreeSet<String>,
    nodes_quarantined: BTreeSet<String>,
    total_cpu_ms: f64,
}

impl AwarenessIndex {
    /// Fold one event in (events must arrive in sequence order).
    pub fn ingest(&mut self, ev: &HistoryEvent) {
        match &ev.kind {
            EventKind::TaskStart { queue_ms, .. } => {
                self.queue_ms.observe(*queue_ms);
                self.in_flight += 1;
                self.peak_in_flight = self.peak_in_flight.max(self.in_flight);
            }
            EventKind::TaskEnd { run_ms, cpu_ms, .. } => {
                self.run_ms.observe(*run_ms);
                self.total_cpu_ms += cpu_ms;
                self.in_flight = self.in_flight.saturating_sub(1);
            }
            // Terminal-or-requeue outcomes: the dispatch slot is gone.
            // (`task.diskfull` / `task.migrate` / `task.backoff` are
            // annotations always paired with a `task.systemfail` or
            // `task.poisoned` for the same slot, so they must not
            // decrement too.)
            EventKind::TaskFail { .. }
            | EventKind::TaskSystemFail { .. }
            | EventKind::TaskPoisoned { .. }
            | EventKind::TaskNonReport { .. } => {
                self.in_flight = self.in_flight.saturating_sub(1);
            }
            EventKind::InstanceRestart { requeued, .. } => {
                self.in_flight = self.in_flight.saturating_sub(*requeued);
            }
            EventKind::NodeCrash { node } => {
                self.nodes_down.insert(node.clone());
            }
            EventKind::NodeRecover { node } => {
                self.nodes_down.remove(node);
            }
            EventKind::NodeQuarantine { node, .. } => {
                self.nodes_quarantined.insert(node.clone());
            }
            EventKind::NodeProbation { node } => {
                self.nodes_quarantined.remove(node);
            }
            // A server crash loses all volatile dispatch state; rebuild
            // requeues what was dispatched.
            EventKind::ServerRecover { .. } => self.in_flight = 0,
            _ => {}
        }
        let i = self.log.len();
        self.by_kind
            .entry(ev.kind.label().to_string())
            .or_default()
            .push(i);
        if let Some(id) = ev.kind.instance() {
            self.by_instance.entry(id).or_default().push(i);
        }
        if let Some(node) = ev.kind.node() {
            self.by_node.entry(node.to_string()).or_default().push(i);
        }
        self.log.push(ev.clone());
    }

    /// Events indexed.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// The whole log, in sequence order.
    pub fn events(&self) -> &[HistoryEvent] {
        &self.log
    }

    /// How many events carry this kind label.
    pub fn count(&self, kind: &str) -> usize {
        self.by_kind.get(kind).map_or(0, Vec::len)
    }

    /// `(label, count)` for every kind seen, label-sorted.
    pub fn counts_by_kind(&self) -> Vec<(String, usize)> {
        self.by_kind
            .iter()
            .map(|(k, v)| (k.clone(), v.len()))
            .collect()
    }

    /// Events with this kind label, in order.
    pub fn of_kind(&self, kind: &str) -> Vec<&HistoryEvent> {
        self.posting(self.by_kind.get(kind))
    }

    /// Events concerning one instance, in order.
    pub fn for_instance(&self, instance: u64) -> Vec<&HistoryEvent> {
        self.posting(self.by_instance.get(&instance))
    }

    /// Events concerning one node, in order.
    pub fn for_node(&self, node: &str) -> Vec<&HistoryEvent> {
        self.posting(self.by_node.get(node))
    }

    fn posting(&self, ids: Option<&Vec<usize>>) -> Vec<&HistoryEvent> {
        ids.map_or_else(Vec::new, |v| v.iter().map(|&i| &self.log[i]).collect())
    }

    /// Dispatch→completion wall-time histogram of ended tasks.
    pub fn run_ms(&self) -> &Histogram {
        &self.run_ms
    }

    /// Ready→dispatch queue-wait histogram of dispatched tasks.
    pub fn queue_ms(&self) -> &Histogram {
        &self.queue_ms
    }

    /// Tasks currently dispatched (gauge).
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Most concurrently dispatched tasks ever observed.
    pub fn peak_in_flight(&self) -> u64 {
        self.peak_in_flight
    }

    /// Nodes currently believed down (crashed, not yet recovered).
    pub fn nodes_down(&self) -> &BTreeSet<String> {
        &self.nodes_down
    }

    /// Nodes currently quarantined by the dependability policy.
    pub fn nodes_quarantined(&self) -> &BTreeSet<String> {
        &self.nodes_quarantined
    }

    /// Reference-CPU milliseconds charged by all ended tasks.
    pub fn total_cpu_ms(&self) -> f64 {
        self.total_cpu_ms
    }
}

/// Sequence keys are zero-padded to 20 digits so every representable `u64`
/// sorts lexicographically; pre-widening records used 10 digits, which
/// collides past 10^10 — `open`/`all` therefore order by *parsed* value,
/// never by raw key.
fn event_key(seq: u64) -> String {
    format!("{seq:020}")
}

/// Append-only writer/reader for the History space, with buffered appends
/// and the incremental [`AwarenessIndex`].
pub struct Awareness {
    events: TypedSpace<HistoryEvent>,
    next_seq: u64,
    pending: Vec<(u64, HistoryEvent)>,
    index: AwarenessIndex,
}

impl Awareness {
    /// Open over a store, continuing after any existing records and
    /// rebuilding the index from them.  A key under the event prefix that
    /// does not parse as a sequence number is an error — resetting the
    /// sequence to 0 would overwrite history.
    pub fn open<D: Disk>(store: &Store<D>) -> Result<Self, AwarenessError> {
        let events: TypedSpace<HistoryEvent> = TypedSpace::new(Space::History, "ev/");
        let existing = Self::scan_sorted(&events, store)?;
        let next_seq = existing.last().map(|(seq, _)| seq + 1).unwrap_or(0);
        let mut index = AwarenessIndex::default();
        for (_, ev) in &existing {
            index.ingest(ev);
        }
        Ok(Awareness {
            events,
            next_seq,
            pending: Vec::new(),
            index,
        })
    }

    /// Scan the durable log and sort by parsed sequence number (10- and
    /// 20-digit keys interleave lexicographically, so raw key order lies).
    fn scan_sorted<D: Disk>(
        _events: &TypedSpace<HistoryEvent>,
        store: &Store<D>,
    ) -> Result<Vec<(u64, HistoryEvent)>, AwarenessError> {
        // Raw scan so a foreign key is reported as `BadKey` even when its
        // value would not decode as an event either.
        let mut out = Vec::new();
        for (key, bytes) in store.scan_prefix(Space::History, "ev/")? {
            let suffix = &key["ev/".len()..];
            let seq = suffix.parse::<u64>().map_err(|_| AwarenessError::BadKey {
                key: suffix.to_string(),
            })?;
            let ev: HistoryEvent =
                serde_json::from_slice(&bytes).map_err(|e| StoreError::Codec(e.to_string()))?;
            out.push((seq, ev));
        }
        out.sort_by_key(|(seq, _)| *seq);
        Ok(out)
    }

    /// Record an event: index it immediately, buffer the durable append
    /// until the next [`flush`](Awareness::flush).
    pub fn record(&mut self, at: SimTime, kind: EventKind) {
        let ev = HistoryEvent { at, kind };
        self.index.ingest(&ev);
        self.pending.push((self.next_seq, ev));
        self.next_seq += 1;
    }

    /// Write all buffered events as one atomic store batch.  Returns the
    /// number of events flushed.  Called once per navigator step by the
    /// runtime; tests call it directly.
    pub fn flush<D: Disk>(&mut self, store: &Store<D>) -> Result<usize, StoreError> {
        match self.pending_batch()? {
            Some(batch) => {
                store.apply(batch)?;
                Ok(self.confirm_flushed())
            }
            None => Ok(0),
        }
    }

    /// Build the durable batch for all buffered events *without* clearing
    /// them — the group-commit path.  The runtime hands this batch to
    /// [`Store::apply_many`] together with the navigator's own persistence
    /// batch (one disk append for both), then calls
    /// [`confirm_flushed`](Awareness::confirm_flushed) once the commit
    /// succeeded.  Returns `None` when nothing is buffered.
    pub fn pending_batch(&self) -> Result<Option<Batch>, StoreError> {
        if self.pending.is_empty() {
            return Ok(None);
        }
        let mut batch = Batch::new();
        for (seq, ev) in &self.pending {
            self.events.put_in(&mut batch, &event_key(*seq), ev)?;
        }
        Ok(Some(batch))
    }

    /// Mark the events last returned by
    /// [`pending_batch`](Awareness::pending_batch) as durably committed.
    /// Returns how many events were confirmed.
    pub fn confirm_flushed(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        n
    }

    /// Drop buffered events without writing them — a server crash loses
    /// the un-flushed tail of the current step (the index is rebuilt from
    /// the store on recovery, restoring agreement).
    pub fn discard_pending(&mut self) {
        self.pending.clear();
    }

    /// Buffered events awaiting [`flush`](Awareness::flush).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The incremental index (includes buffered events).
    pub fn index(&self) -> &AwarenessIndex {
        &self.index
    }

    /// All events in sequence order: the durable log plus the buffered
    /// tail.
    pub fn all<D: Disk>(&self, store: &Store<D>) -> Result<Vec<HistoryEvent>, AwarenessError> {
        let mut seqd = Self::scan_sorted(&self.events, store)?;
        seqd.extend(self.pending.iter().cloned());
        seqd.sort_by_key(|(seq, _)| *seq);
        Ok(seqd.into_iter().map(|(_, ev)| ev).collect())
    }

    /// Events of a given kind label — answered from the index.
    pub fn of_kind<D: Disk>(
        &self,
        _store: &Store<D>,
        kind: &str,
    ) -> Result<Vec<HistoryEvent>, AwarenessError> {
        Ok(self.index.of_kind(kind).into_iter().cloned().collect())
    }

    /// Count by kind — the monitoring dashboards' summary query, answered
    /// from the index.
    pub fn counts_by_kind<D: Disk>(
        &self,
        _store: &Store<D>,
    ) -> Result<Vec<(String, usize)>, AwarenessError> {
        Ok(self.index.counts_by_kind())
    }

    /// Rebuild an index from a full store scan — the oracle the
    /// incremental index is checked against in the equivalence proptests.
    pub fn rebuild_index<D: Disk>(
        &self,
        store: &Store<D>,
    ) -> Result<AwarenessIndex, AwarenessError> {
        let mut index = AwarenessIndex::default();
        for ev in self.all(store)? {
            index.ingest(&ev);
        }
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioopera_store::MemDisk;

    fn task_end(path: &str, node: &str, run_ms: u64) -> EventKind {
        EventKind::TaskEnd {
            instance: 7,
            path: path.into(),
            node: node.into(),
            run_ms,
            cpu_ms: run_ms as f64,
        }
    }

    #[test]
    fn records_survive_reopen_and_keep_ordering() {
        let disk = MemDisk::new();
        let store = Store::open(disk.clone()).unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        aw.record(
            SimTime::from_secs(1),
            EventKind::TaskStart {
                instance: 1,
                path: "A".into(),
                node: "n1".into(),
                job: 0,
                queue_ms: 250,
            },
        );
        aw.record(SimTime::from_secs(2), task_end("A", "n1", 1_000));
        aw.record(
            SimTime::from_secs(3),
            EventKind::NodeCrash { node: "n1".into() },
        );
        assert_eq!(aw.pending_len(), 3);
        assert_eq!(aw.flush(&store).unwrap(), 3);
        assert_eq!(aw.pending_len(), 0);
        drop(aw);
        drop(store);

        let store = Store::open(disk).unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        // Continues the sequence instead of overwriting.
        aw.record(
            SimTime::from_secs(4),
            EventKind::NodeRecover { node: "n1".into() },
        );
        aw.flush(&store).unwrap();
        let all = aw.all(&store).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].kind, "task.start");
        assert_eq!(all[3].kind, "node.recover");
        assert_eq!(aw.of_kind(&store, "node.crash").unwrap().len(), 1);
        let counts = aw.counts_by_kind(&store).unwrap();
        assert!(counts.contains(&("task.end".to_string(), 1)));
        // The rebuilt index saw the crash then the recovery.
        assert!(aw.index().nodes_down().is_empty());
        assert_eq!(aw.index().run_ms().count(), 1);
        assert_eq!(aw.index().queue_ms().mean_ms(), 250.0);
    }

    #[test]
    fn index_tracks_gauges_and_postings() {
        let disk = MemDisk::new();
        let store = Store::open(disk).unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        for (i, path) in ["A", "B"].iter().enumerate() {
            aw.record(
                SimTime::from_secs(i as u64),
                EventKind::TaskStart {
                    instance: 7,
                    path: path.to_string(),
                    node: "n1".into(),
                    job: i as u64,
                    queue_ms: 0,
                },
            );
        }
        assert_eq!(aw.index().in_flight(), 2);
        assert_eq!(aw.index().peak_in_flight(), 2);
        aw.record(SimTime::from_secs(3), task_end("A", "n1", 500));
        assert_eq!(aw.index().in_flight(), 1);
        assert_eq!(aw.index().for_instance(7).len(), 3);
        assert_eq!(aw.index().for_node("n1").len(), 3);
        assert_eq!(aw.index().count("task.start"), 2);
        assert_eq!(aw.index().total_cpu_ms(), 500.0);
        // Queries see buffered events before any flush.
        assert_eq!(aw.of_kind(&store, "task.end").unwrap().len(), 1);
        assert_eq!(aw.all(&store).unwrap().len(), 3);
    }

    #[test]
    fn legacy_string_records_reopen_and_query() {
        let disk = MemDisk::new();
        let store = Store::open(disk).unwrap();
        // Bytes exactly as the pre-taxonomy code wrote them: 10-digit
        // keys, free-form kind/detail strings.
        store
            .put(
                Space::History,
                "ev/0000000000".to_string(),
                br#"{"at":[1000],"kind":"task.start","detail":"A on n1"}"#.to_vec(),
            )
            .unwrap();
        store
            .put(
                Space::History,
                "ev/0000000001".to_string(),
                br#"{"at":[2000],"kind":"task.end","detail":"A"}"#.to_vec(),
            )
            .unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        assert_eq!(aw.index().len(), 2);
        assert_eq!(aw.index().count("task.end"), 1);
        let ends = aw.of_kind(&store, "task.end").unwrap();
        assert_eq!(
            ends[0].kind,
            EventKind::Legacy {
                kind: "task.end".into(),
                detail: "A".into()
            }
        );
        // New records continue after the legacy tail, and ordering stays
        // numeric even though 20-digit keys sort before 10-digit ones.
        aw.record(SimTime::from_secs(3), task_end("B", "n2", 100));
        aw.flush(&store).unwrap();
        let all = aw.all(&store).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].kind, "task.end");
        assert_eq!(all[2].kind.task_path(), Some("B"));
        drop(aw);
        let aw = Awareness::open(&store).unwrap();
        assert_eq!(aw.index().len(), 3);
    }

    #[test]
    fn foreign_key_is_a_typed_error_not_a_sequence_reset() {
        let disk = MemDisk::new();
        let store = Store::open(disk).unwrap();
        store
            .put(
                Space::History,
                "ev/not-a-number".to_string(),
                br#"{"at":[0],"kind":"x","detail":""}"#.to_vec(),
            )
            .unwrap();
        match Awareness::open(&store) {
            Err(AwarenessError::BadKey { key }) => assert_eq!(key, "not-a-number"),
            Err(other) => panic!("expected BadKey, got {other}"),
            Ok(_) => panic!("expected BadKey, got a working Awareness"),
        }
    }

    #[test]
    fn typed_event_roundtrips_through_json() {
        let ev = HistoryEvent {
            at: SimTime::from_secs(9),
            kind: EventKind::TaskStart {
                instance: 3,
                path: "Gen".into(),
                node: "n2".into(),
                job: 11,
                queue_ms: 42,
            },
        };
        let json = serde_json::to_string(&ev).unwrap();
        // No `detail` field: that name is reserved as the legacy marker.
        assert!(!json.contains("\"detail\""));
        let back: HistoryEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
        // Unit variants roundtrip too.
        let ev = HistoryEvent {
            at: SimTime::ZERO,
            kind: EventKind::ClusterFailure,
        };
        let back: HistoryEvent =
            serde_json::from_str(&serde_json::to_string(&ev).unwrap()).unwrap();
        assert_eq!(back, ev);
    }
}
