//! The awareness model: persistent history of everything that happened.
//!
//! "Beyond task start times, task finish times and task failures, the
//! system also stores information regarding the load in each node, node
//! availability, node failure, node capacity, and other relevant
//! information regarding the state of the computing environment.  All
//! together, this information allows the creation of an awareness model"
//! (§3.4).  Records live in the History space and survive everything.

use bioopera_cluster::SimTime;
use bioopera_store::{Disk, Space, Store, TypedSpace};
use serde::{Deserialize, Serialize};

/// One history record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Category, e.g. `task.end`, `node.crash`, `server.recover`.
    pub kind: String,
    /// Free-form details (instance/task/node names, counts).
    pub detail: String,
}

/// Append-only writer/reader for the History space.
pub struct Awareness {
    events: TypedSpace<HistoryEvent>,
    next_seq: u64,
}

impl Awareness {
    /// Open over a store, continuing after any existing records.
    pub fn open<D: Disk>(store: &Store<D>) -> Result<Self, bioopera_store::StoreError> {
        let events: TypedSpace<HistoryEvent> = TypedSpace::new(Space::History, "ev/");
        let existing = events.scan(store)?;
        let next_seq = existing
            .last()
            .and_then(|(k, _)| k.parse::<u64>().ok().map(|n| n + 1))
            .unwrap_or(0);
        Ok(Awareness { events, next_seq })
    }

    /// Record an event.
    pub fn record<D: Disk>(
        &mut self,
        store: &Store<D>,
        at: SimTime,
        kind: impl Into<String>,
        detail: impl Into<String>,
    ) -> Result<(), bioopera_store::StoreError> {
        let ev = HistoryEvent {
            at,
            kind: kind.into(),
            detail: detail.into(),
        };
        let key = format!("{:010}", self.next_seq);
        self.next_seq += 1;
        self.events.put(store, &key, &ev)
    }

    /// All events in order.
    pub fn all<D: Disk>(
        &self,
        store: &Store<D>,
    ) -> Result<Vec<HistoryEvent>, bioopera_store::StoreError> {
        Ok(self
            .events
            .scan(store)?
            .into_iter()
            .map(|(_, e)| e)
            .collect())
    }

    /// Events of a given kind.
    pub fn of_kind<D: Disk>(
        &self,
        store: &Store<D>,
        kind: &str,
    ) -> Result<Vec<HistoryEvent>, bioopera_store::StoreError> {
        Ok(self
            .all(store)?
            .into_iter()
            .filter(|e| e.kind == kind)
            .collect())
    }

    /// Count by kind — the monitoring dashboards' summary query.
    pub fn counts_by_kind<D: Disk>(
        &self,
        store: &Store<D>,
    ) -> Result<Vec<(String, usize)>, bioopera_store::StoreError> {
        let mut map = std::collections::BTreeMap::new();
        for e in self.all(store)? {
            *map.entry(e.kind).or_insert(0usize) += 1;
        }
        Ok(map.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioopera_store::MemDisk;

    #[test]
    fn records_survive_reopen_and_keep_ordering() {
        let disk = MemDisk::new();
        let store = Store::open(disk.clone()).unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        aw.record(&store, SimTime::from_secs(1), "task.start", "A on n1")
            .unwrap();
        aw.record(&store, SimTime::from_secs(2), "task.end", "A")
            .unwrap();
        aw.record(&store, SimTime::from_secs(3), "node.crash", "n1")
            .unwrap();
        drop(aw);
        drop(store);

        let store = Store::open(disk).unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        // Continues the sequence instead of overwriting.
        aw.record(&store, SimTime::from_secs(4), "node.recover", "n1")
            .unwrap();
        let all = aw.all(&store).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].kind, "task.start");
        assert_eq!(all[3].kind, "node.recover");
        assert_eq!(aw.of_kind(&store, "node.crash").unwrap().len(), 1);
        let counts = aw.counts_by_kind(&store).unwrap();
        assert!(counts.contains(&("task.end".to_string(), 1)));
    }
}
