//! The awareness model: persistent history of everything that happened.
//!
//! "Beyond task start times, task finish times and task failures, the
//! system also stores information regarding the load in each node, node
//! availability, node failure, node capacity, and other relevant
//! information regarding the state of the computing environment.  All
//! together, this information allows the creation of an awareness model"
//! (§3.4).  Records live in the History space and survive everything.
//!
//! Events carry a structured [`EventKind`] taxonomy (instance, task, node,
//! cluster and operator events with typed fields) rather than free-form
//! strings; records written by earlier versions still deserialize as
//! [`EventKind::Legacy`].  An in-memory [`AwarenessIndex`] is maintained
//! incrementally on every [`Awareness::record`] — by-kind / by-instance /
//! by-node postings, counters, gauges and latency histograms — so
//! monitoring queries never rescan the store.  Appends are buffered and
//! flushed as **one store batch per navigator step** ([`Awareness::flush`]),
//! keeping WAL traffic proportional to steps rather than events while
//! preserving per-step crash atomicity.

use crate::metrics::Histogram;
use bioopera_cluster::SimTime;
use bioopera_store::{Batch, Disk, Space, Store, StoreError, TypedSpace};
use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What happened, with typed fields.  `instance` is the [`InstanceId`],
/// `path` the task path inside the process template, `node` a cluster node
/// name; durations are virtual milliseconds.
///
/// [`InstanceId`]: crate::state::InstanceId
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A process instance was submitted and started.
    InstanceStart {
        /// Instance id.
        instance: u64,
        /// Template name it was instantiated from.
        template: String,
    },
    /// An instance reached `Completed`.
    InstanceComplete {
        /// Instance id.
        instance: u64,
    },
    /// An instance reached `Aborted`.
    InstanceAbort {
        /// Instance id.
        instance: u64,
    },
    /// A lineage-driven partial recomputation was applied.
    InstanceRecompute {
        /// The new instance id.
        instance: u64,
        /// The terminal source instance whose recorded outputs are reused.
        source: u64,
        /// Tasks/fields whose change triggered the recompute.
        changed: Vec<String>,
    },
    /// The operator restarted an instance (e.g. after a non-reporting TEU).
    InstanceRestart {
        /// Instance id.
        instance: u64,
        /// Dispatched tasks pulled back into the ready queue.
        requeued: u64,
    },
    /// The operator suspended an instance.
    InstanceSuspend {
        /// Instance id.
        instance: u64,
    },
    /// The operator resumed an instance.
    InstanceResume {
        /// Instance id.
        instance: u64,
    },
    /// A task was dispatched to a node.
    TaskStart {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
        /// Node it was placed on.
        node: String,
        /// TEU job id on that node.
        job: u64,
        /// Time spent ready-but-unscheduled before dispatch.
        queue_ms: u64,
    },
    /// A task finished and its effects were applied.
    TaskEnd {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
        /// Node it ran on.
        node: String,
        /// Dispatch→completion wall time.
        run_ms: u64,
        /// Reference-CPU milliseconds charged.
        cpu_ms: f64,
    },
    /// A task failed with a program-level error.
    TaskFail {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
        /// Program error message.
        error: String,
    },
    /// A task failure reclassified as a system failure (node fault, §3.4)
    /// and scheduled for transparent re-execution.
    TaskSystemFail {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
        /// What the system observed (crash, network partition, ...).
        reason: String,
    },
    /// A TEU stopped reporting; the operator will restart the instance.
    TaskNonReport {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
    },
    /// A task died to a full disk on its node.
    TaskDiskFull {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
    },
    /// A masked failure was deferred with an exponential-backoff timer
    /// (annotation alongside `task.systemfail`; the dispatch slot was
    /// already released by that event).
    TaskBackoff {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
        /// Masked failures so far (drives the exponent).
        attempt: u32,
        /// Virtual milliseconds until the task may be re-dispatched.
        delay_ms: u64,
    },
    /// A task system-failed once too often (distinct-node poison set or
    /// exhausted retry budget) and was escalated to a program failure.
    TaskPoisoned {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
        /// Why masking stopped.
        reason: String,
    },
    /// A dispatched task was pulled off a dead node and requeued.
    TaskMigrate {
        /// Instance id.
        instance: u64,
        /// Task path.
        path: String,
        /// The node it was evacuated from.
        node: String,
    },
    /// A compensation program ran while aborting an instance.
    TaskCompensate {
        /// Instance id.
        instance: u64,
        /// Task path being compensated.
        path: String,
        /// Compensation program name.
        program: String,
    },
    /// A late-bound subprocess was instantiated.
    SubprocessStart {
        /// Parent instance id.
        instance: u64,
        /// Subprocess task path in the parent.
        path: String,
        /// Child instance id.
        child: u64,
        /// Child template name.
        template: String,
    },
    /// A finished child instance reported to an already-completed
    /// subprocess slot (duplicate delivery, ignored).
    SubprocessDuplicate {
        /// Parent instance id.
        instance: u64,
        /// Subprocess task path in the parent.
        path: String,
        /// Child instance id.
        child: u64,
    },
    /// An event referenced an instance or task record the engine does not
    /// know — a stale in-flight completion after recovery, a foreign
    /// journal record, or a cross-shard race.  Recorded instead of
    /// panicking; the triggering event is dropped.
    StaleEvent {
        /// The instance the event referenced.
        instance: u64,
        /// The task path it referenced, if any.
        path: Option<String>,
        /// What the engine was doing when the lookup failed.
        context: String,
    },
    /// An external event was signalled into an instance.
    EventSignal {
        /// Instance id.
        instance: u64,
        /// Event name.
        event: String,
    },
    /// A node crashed.
    NodeCrash {
        /// Node name.
        node: String,
    },
    /// A node came back.
    NodeRecover {
        /// Node name.
        node: String,
    },
    /// Consecutive job failures pushed a node into quarantine: the
    /// scheduler will not place work there until the interval expires.
    NodeQuarantine {
        /// Node name.
        node: String,
        /// Consecutive failures that triggered the quarantine.
        failures: u32,
    },
    /// A node's quarantine interval expired; it re-enters scheduling on
    /// probation.
    NodeProbation {
        /// Node name.
        node: String,
    },
    /// A node's PEC lost its network link to the server: no dispatches,
    /// completions buffer at the node until it rejoins.
    NodePartition {
        /// Node name.
        node: String,
    },
    /// A partitioned node rejoined; its buffered completions were
    /// delivered.
    NodeRejoin {
        /// Node name.
        node: String,
    },
    /// A load sample: external (non-BioOpera) CPU pressure on a node.
    NodeLoad {
        /// Node name.
        node: String,
        /// CPUs' worth of external load.
        cpus: f64,
    },
    /// The whole cluster failed (switch failure, Fig. 5).
    ClusterFailure,
    /// The whole cluster recovered.
    ClusterRecover,
    /// The cluster was upgraded mid-run (Fig. 6).
    ClusterUpgrade {
        /// CPUs added.
        cpus: u32,
    },
    /// The BioOpera server recovered after a crash and rebuilt from the
    /// store.
    ServerRecover {
        /// Dispatched tasks requeued during rebuild.
        requeued: u64,
    },
    /// Operator suspended the whole engine.
    OperatorSuspend,
    /// Operator resumed the whole engine.
    OperatorResume,
    /// The tiered store spilled its memtable into sorted runs since the
    /// previous navigator step.  The read-side counters are cumulative
    /// store totals sampled with the spill, so the awareness index can
    /// report tier I/O health without polling the store.
    StoreSpill {
        /// Spills performed since the last store event.
        spills: u64,
        /// Sorted runs resident after the spill.
        runs: u64,
        /// Cumulative reads answered by run metadata alone (key-range
        /// check, sparse index, or bloom filter) — never a disk read.
        bloom_skips: u64,
        /// Cumulative block-cache hits.
        cache_hits: u64,
        /// Cumulative block-cache misses (block decoded from disk).
        cache_misses: u64,
    },
    /// Sorted runs were merged, or pushed down the level hierarchy.
    StoreCompaction {
        /// Merges/push-downs since the last store event.
        merges: u64,
        /// Deepest populated level after the merge (1 = L0 only).
        levels: u64,
        /// Largest single merge input observed so far, in bytes.
        max_merge_bytes: u64,
    },
    /// The retention watermark advanced: raw history records durably
    /// covered by the awareness rollup were retired from the store.
    StoreRetention {
        /// Records retired by this advance.
        retired: u64,
        /// Exclusive upper bound (store key) of the retired window.
        below: String,
    },
    /// A record written before the typed taxonomy (old string format).
    Legacy {
        /// The old free-form kind, e.g. `task.end`.
        kind: String,
        /// The old free-form detail string.
        detail: String,
    },
}

impl EventKind {
    /// The stable dot-separated label (`task.end`, `node.crash`, ...) —
    /// the same strings the pre-taxonomy records used, so label-based
    /// queries span old and new history.  [`Legacy`] records answer with
    /// their stored kind.
    ///
    /// [`Legacy`]: EventKind::Legacy
    pub fn label(&self) -> &str {
        match self {
            EventKind::InstanceStart { .. } => "instance.start",
            EventKind::InstanceComplete { .. } => "instance.complete",
            EventKind::InstanceAbort { .. } => "instance.abort",
            EventKind::InstanceRecompute { .. } => "instance.recompute",
            EventKind::InstanceRestart { .. } => "instance.restart",
            EventKind::InstanceSuspend { .. } => "instance.suspend",
            EventKind::InstanceResume { .. } => "instance.resume",
            EventKind::TaskStart { .. } => "task.start",
            EventKind::TaskEnd { .. } => "task.end",
            EventKind::TaskFail { .. } => "task.fail",
            EventKind::TaskSystemFail { .. } => "task.systemfail",
            EventKind::TaskNonReport { .. } => "task.nonreport",
            EventKind::TaskDiskFull { .. } => "task.diskfull",
            EventKind::TaskBackoff { .. } => "task.backoff",
            EventKind::TaskPoisoned { .. } => "task.poisoned",
            EventKind::TaskMigrate { .. } => "task.migrate",
            EventKind::TaskCompensate { .. } => "task.compensate",
            EventKind::SubprocessStart { .. } => "subprocess.start",
            EventKind::SubprocessDuplicate { .. } => "subprocess.duplicate",
            EventKind::StaleEvent { .. } => "event.stale",
            EventKind::EventSignal { .. } => "event.signal",
            EventKind::NodeCrash { .. } => "node.crash",
            EventKind::NodeRecover { .. } => "node.recover",
            EventKind::NodeQuarantine { .. } => "node.quarantine",
            EventKind::NodeProbation { .. } => "node.probation",
            EventKind::NodePartition { .. } => "node.partition",
            EventKind::NodeRejoin { .. } => "node.rejoin",
            EventKind::NodeLoad { .. } => "node.load",
            EventKind::ClusterFailure => "cluster.failure",
            EventKind::ClusterRecover => "cluster.recover",
            EventKind::ClusterUpgrade { .. } => "cluster.upgrade",
            EventKind::ServerRecover { .. } => "server.recover",
            EventKind::OperatorSuspend => "operator.suspend",
            EventKind::OperatorResume => "operator.resume",
            EventKind::StoreSpill { .. } => "store.spill",
            EventKind::StoreCompaction { .. } => "store.compaction",
            EventKind::StoreRetention { .. } => "store.retention",
            EventKind::Legacy { kind, .. } => kind,
        }
    }

    /// The instance this event concerns, if any.
    pub fn instance(&self) -> Option<u64> {
        match self {
            EventKind::InstanceStart { instance, .. }
            | EventKind::InstanceComplete { instance }
            | EventKind::InstanceAbort { instance }
            | EventKind::InstanceRecompute { instance, .. }
            | EventKind::InstanceRestart { instance, .. }
            | EventKind::InstanceSuspend { instance }
            | EventKind::InstanceResume { instance }
            | EventKind::TaskStart { instance, .. }
            | EventKind::TaskEnd { instance, .. }
            | EventKind::TaskFail { instance, .. }
            | EventKind::TaskSystemFail { instance, .. }
            | EventKind::TaskNonReport { instance, .. }
            | EventKind::TaskDiskFull { instance, .. }
            | EventKind::TaskBackoff { instance, .. }
            | EventKind::TaskPoisoned { instance, .. }
            | EventKind::TaskMigrate { instance, .. }
            | EventKind::TaskCompensate { instance, .. }
            | EventKind::SubprocessStart { instance, .. }
            | EventKind::SubprocessDuplicate { instance, .. }
            | EventKind::StaleEvent { instance, .. }
            | EventKind::EventSignal { instance, .. } => Some(*instance),
            _ => None,
        }
    }

    /// The task path this event concerns, if any.
    pub fn task_path(&self) -> Option<&str> {
        match self {
            EventKind::TaskStart { path, .. }
            | EventKind::TaskEnd { path, .. }
            | EventKind::TaskFail { path, .. }
            | EventKind::TaskSystemFail { path, .. }
            | EventKind::TaskNonReport { path, .. }
            | EventKind::TaskDiskFull { path, .. }
            | EventKind::TaskBackoff { path, .. }
            | EventKind::TaskPoisoned { path, .. }
            | EventKind::TaskMigrate { path, .. }
            | EventKind::TaskCompensate { path, .. }
            | EventKind::SubprocessStart { path, .. }
            | EventKind::SubprocessDuplicate { path, .. } => Some(path),
            EventKind::StaleEvent { path, .. } => path.as_deref(),
            _ => None,
        }
    }

    /// The node this event concerns, if any.
    pub fn node(&self) -> Option<&str> {
        match self {
            EventKind::TaskStart { node, .. }
            | EventKind::TaskEnd { node, .. }
            | EventKind::TaskMigrate { node, .. }
            | EventKind::NodeCrash { node }
            | EventKind::NodeRecover { node }
            | EventKind::NodeQuarantine { node, .. }
            | EventKind::NodeProbation { node }
            | EventKind::NodePartition { node }
            | EventKind::NodeRejoin { node }
            | EventKind::NodeLoad { node, .. } => Some(node),
            _ => None,
        }
    }
}

/// Label comparison, so `event.kind == "task.end"` reads like the old
/// string-typed field.
impl PartialEq<&str> for EventKind {
    fn eq(&self, other: &&str) -> bool {
        self.label() == *other
    }
}

impl PartialEq<str> for EventKind {
    fn eq(&self, other: &str) -> bool {
        self.label() == other
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One history record.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistoryEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: EventKind,
}

/// Hand-written so pre-taxonomy records still load: the old format was
/// `{"at": ..., "kind": "<string>", "detail": "<string>"}` — a top-level
/// `detail` field marks it (typed records never serialize one), and its
/// free-form strings become [`EventKind::Legacy`].
impl Deserialize for HistoryEvent {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let entries = match c {
            Content::Map(entries) => entries,
            other => {
                return Err(DeError::custom(format!(
                    "expected history event map, found {other:?}"
                )))
            }
        };
        let at: SimTime = serde::__field(entries, "at")?;
        let kind_c = entries
            .iter()
            .find(|(k, _)| k == "kind")
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::custom("history event missing `kind`"))?;
        let detail = entries.iter().find(|(k, _)| k == "detail").map(|(_, v)| v);
        let kind = match (kind_c, detail) {
            (Content::Str(kind), Some(Content::Str(detail))) => EventKind::Legacy {
                kind: kind.clone(),
                detail: detail.clone(),
            },
            (_, None) => EventKind::from_content(kind_c).or_else(|e| match kind_c {
                // A bare kind string that is no unit-variant name is still
                // a legacy record (tolerate a missing detail field).
                Content::Str(kind) => Ok(EventKind::Legacy {
                    kind: kind.clone(),
                    detail: String::new(),
                }),
                _ => Err(e),
            })?,
            (_, Some(other)) => {
                return Err(DeError::custom(format!(
                    "history event `detail` must be a string, found {other:?}"
                )))
            }
        };
        Ok(HistoryEvent { at, kind })
    }
}

/// Awareness-layer errors: store failures, plus history keys that do not
/// belong to the append sequence (foreign or corrupt keys must surface,
/// never silently reset the sequence — that would overwrite history).
#[derive(Debug)]
pub enum AwarenessError {
    /// The underlying store failed.
    Store(StoreError),
    /// A History-space key under the event prefix is not a sequence number.
    BadKey {
        /// The offending key (without the `ev/` prefix).
        key: String,
    },
}

impl fmt::Display for AwarenessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AwarenessError::Store(e) => write!(f, "store: {e}"),
            AwarenessError::BadKey { key } => {
                write!(f, "history key `{key}` is not a sequence number")
            }
        }
    }
}

impl std::error::Error for AwarenessError {}

impl From<StoreError> for AwarenessError {
    fn from(e: StoreError) -> Self {
        AwarenessError::Store(e)
    }
}

/// In-memory index over the event log, maintained incrementally as events
/// are recorded (and rebuilt from the store on open/recovery).  Answers
/// the monitoring queries — counts, postings, latency histograms, gauges —
/// without rescanning the History space.
///
/// Invariant (checked by the equivalence proptests): ingesting the full
/// event log in sequence order produces the same index as the incremental
/// path, so every query here equals its full-scan answer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AwarenessIndex {
    log: Vec<HistoryEvent>,
    by_kind: BTreeMap<String, Vec<usize>>,
    by_instance: BTreeMap<u64, Vec<usize>>,
    by_node: BTreeMap<String, Vec<usize>>,
    run_ms: Histogram,
    queue_ms: Histogram,
    in_flight: u64,
    peak_in_flight: u64,
    nodes_down: BTreeSet<String>,
    nodes_quarantined: BTreeSet<String>,
    total_cpu_ms: f64,
    /// Tier I/O health counters folded from `store.*` events: `spills`,
    /// `merges` and `retired` accumulate deltas; `runs`, `levels`,
    /// `bloom_skips`, `cache_hits` and `cache_misses` hold the latest
    /// sampled store totals; `max_merge_bytes` keeps the maximum.
    store_io: BTreeMap<String, u64>,
    /// Events folded into a durable [`RollupRecord`] before this index
    /// was opened: they are part of every aggregate (counts, histograms,
    /// gauges) but carry no in-memory log entry or postings.  Zero when
    /// the index was built from a full scan.
    base_len: u64,
    /// Per-kind counts of the summarized prefix.
    base_counts: BTreeMap<String, u64>,
}

impl AwarenessIndex {
    /// Fold one event in (events must arrive in sequence order).
    pub fn ingest(&mut self, ev: &HistoryEvent) {
        match &ev.kind {
            EventKind::TaskStart { queue_ms, .. } => {
                self.queue_ms.observe(*queue_ms);
                self.in_flight += 1;
                self.peak_in_flight = self.peak_in_flight.max(self.in_flight);
            }
            EventKind::TaskEnd { run_ms, cpu_ms, .. } => {
                self.run_ms.observe(*run_ms);
                self.total_cpu_ms += cpu_ms;
                self.in_flight = self.in_flight.saturating_sub(1);
            }
            // Terminal-or-requeue outcomes: the dispatch slot is gone.
            // (`task.diskfull` / `task.migrate` / `task.backoff` are
            // annotations always paired with a `task.systemfail` or
            // `task.poisoned` for the same slot, so they must not
            // decrement too.)
            EventKind::TaskFail { .. }
            | EventKind::TaskSystemFail { .. }
            | EventKind::TaskPoisoned { .. }
            | EventKind::TaskNonReport { .. } => {
                self.in_flight = self.in_flight.saturating_sub(1);
            }
            EventKind::InstanceRestart { requeued, .. } => {
                self.in_flight = self.in_flight.saturating_sub(*requeued);
            }
            EventKind::NodeCrash { node } => {
                self.nodes_down.insert(node.clone());
            }
            EventKind::NodeRecover { node } => {
                self.nodes_down.remove(node);
            }
            EventKind::NodeQuarantine { node, .. } => {
                self.nodes_quarantined.insert(node.clone());
            }
            EventKind::NodeProbation { node } => {
                self.nodes_quarantined.remove(node);
            }
            // A server crash loses all volatile dispatch state; rebuild
            // requeues what was dispatched.
            EventKind::ServerRecover { .. } => self.in_flight = 0,
            EventKind::StoreSpill {
                spills,
                runs,
                bloom_skips,
                cache_hits,
                cache_misses,
            } => {
                *self.store_io.entry("spills".into()).or_insert(0) += spills;
                self.store_io.insert("runs".into(), *runs);
                self.store_io.insert("bloom_skips".into(), *bloom_skips);
                self.store_io.insert("cache_hits".into(), *cache_hits);
                self.store_io.insert("cache_misses".into(), *cache_misses);
            }
            EventKind::StoreCompaction {
                merges,
                levels,
                max_merge_bytes,
            } => {
                *self.store_io.entry("merges".into()).or_insert(0) += merges;
                self.store_io.insert("levels".into(), *levels);
                let top = self.store_io.entry("max_merge_bytes".into()).or_insert(0);
                *top = (*top).max(*max_merge_bytes);
            }
            EventKind::StoreRetention { retired, .. } => {
                *self.store_io.entry("retired".into()).or_insert(0) += retired;
            }
            _ => {}
        }
        let i = self.log.len();
        self.by_kind
            .entry(ev.kind.label().to_string())
            .or_default()
            .push(i);
        if let Some(id) = ev.kind.instance() {
            self.by_instance.entry(id).or_default().push(i);
        }
        if let Some(node) = ev.kind.node() {
            self.by_node.entry(node.to_string()).or_default().push(i);
        }
        self.log.push(ev.clone());
    }

    /// Events indexed — the summarized prefix plus the in-memory tail.
    pub fn len(&self) -> usize {
        self.base_len as usize + self.log.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events folded into the rollup this index was seeded from (zero
    /// for a full-scan index).  Postings queries ([`of_kind`],
    /// [`for_instance`], [`for_node`], [`events`]) cover only the tail
    /// beyond this prefix; every aggregate covers the full history.
    ///
    /// [`of_kind`]: AwarenessIndex::of_kind
    /// [`for_instance`]: AwarenessIndex::for_instance
    /// [`for_node`]: AwarenessIndex::for_node
    /// [`events`]: AwarenessIndex::events
    pub fn summarized(&self) -> u64 {
        self.base_len
    }

    /// The in-memory tail of the log, in sequence order (the whole log
    /// when [`summarized`](AwarenessIndex::summarized) is zero).
    pub fn events(&self) -> &[HistoryEvent] {
        &self.log
    }

    /// How many events carry this kind label, across the summarized
    /// prefix and the tail.
    pub fn count(&self, kind: &str) -> usize {
        self.base_counts.get(kind).copied().unwrap_or(0) as usize
            + self.by_kind.get(kind).map_or(0, Vec::len)
    }

    /// `(label, count)` for every kind seen, label-sorted, across the
    /// summarized prefix and the tail.
    pub fn counts_by_kind(&self) -> Vec<(String, usize)> {
        let mut out: BTreeMap<String, usize> = self
            .base_counts
            .iter()
            .map(|(k, &n)| (k.clone(), n as usize))
            .collect();
        for (k, v) in &self.by_kind {
            *out.entry(k.clone()).or_insert(0) += v.len();
        }
        out.into_iter().collect()
    }

    /// Seed an index from a durable rollup: aggregates restored, log and
    /// postings empty (the caller ingests the tail on top).
    fn from_rollup(r: &RollupRecord) -> AwarenessIndex {
        AwarenessIndex {
            run_ms: r.run_ms.clone(),
            queue_ms: r.queue_ms.clone(),
            in_flight: r.in_flight,
            peak_in_flight: r.peak_in_flight,
            nodes_down: r.nodes_down.iter().cloned().collect(),
            nodes_quarantined: r.nodes_quarantined.iter().cloned().collect(),
            total_cpu_ms: r.total_cpu_ms,
            store_io: r.store_io.clone(),
            base_len: r.base,
            base_counts: r.counts.clone(),
            ..AwarenessIndex::default()
        }
    }

    /// Snapshot every aggregate as a rollup covering sequence numbers
    /// `[0, base)`.  Only valid when the index has ingested exactly the
    /// events below `base` — which is how [`Awareness::pending_batch`]
    /// calls it (the rollup rides the same atomic batch as the tail
    /// events it folds in).
    fn to_rollup(&self, base: u64) -> RollupRecord {
        RollupRecord {
            base,
            counts: self
                .counts_by_kind()
                .into_iter()
                .map(|(k, n)| (k, n as u64))
                .collect(),
            run_ms: self.run_ms.clone(),
            queue_ms: self.queue_ms.clone(),
            in_flight: self.in_flight,
            peak_in_flight: self.peak_in_flight,
            nodes_down: self.nodes_down.iter().cloned().collect(),
            nodes_quarantined: self.nodes_quarantined.iter().cloned().collect(),
            total_cpu_ms: self.total_cpu_ms,
            store_io: self.store_io.clone(),
        }
    }

    /// Events with this kind label, in order.
    pub fn of_kind(&self, kind: &str) -> Vec<&HistoryEvent> {
        self.posting(self.by_kind.get(kind))
    }

    /// Events concerning one instance, in order.
    pub fn for_instance(&self, instance: u64) -> Vec<&HistoryEvent> {
        self.posting(self.by_instance.get(&instance))
    }

    /// Events concerning one node, in order.
    pub fn for_node(&self, node: &str) -> Vec<&HistoryEvent> {
        self.posting(self.by_node.get(node))
    }

    fn posting(&self, ids: Option<&Vec<usize>>) -> Vec<&HistoryEvent> {
        ids.map_or_else(Vec::new, |v| v.iter().map(|&i| &self.log[i]).collect())
    }

    /// Dispatch→completion wall-time histogram of ended tasks.
    pub fn run_ms(&self) -> &Histogram {
        &self.run_ms
    }

    /// Ready→dispatch queue-wait histogram of dispatched tasks.
    pub fn queue_ms(&self) -> &Histogram {
        &self.queue_ms
    }

    /// Tasks currently dispatched (gauge).
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Most concurrently dispatched tasks ever observed.
    pub fn peak_in_flight(&self) -> u64 {
        self.peak_in_flight
    }

    /// Nodes currently believed down (crashed, not yet recovered).
    pub fn nodes_down(&self) -> &BTreeSet<String> {
        &self.nodes_down
    }

    /// Nodes currently quarantined by the dependability policy.
    pub fn nodes_quarantined(&self) -> &BTreeSet<String> {
        &self.nodes_quarantined
    }

    /// Reference-CPU milliseconds charged by all ended tasks.
    pub fn total_cpu_ms(&self) -> f64 {
        self.total_cpu_ms
    }

    /// Tier I/O health counters folded from `store.*` events — spill and
    /// merge totals, the latest sampled bloom-skip and block-cache
    /// hit/miss counters, and records retired by retention.  Empty until
    /// the first store event is recorded.
    pub fn store_io(&self) -> &BTreeMap<String, u64> {
        &self.store_io
    }
}

/// Sequence keys are zero-padded to 20 digits so every representable `u64`
/// sorts lexicographically; pre-widening records used 10 digits, which
/// collides past 10^10 — `open`/`all` therefore order by *parsed* value,
/// never by raw key.
fn event_key(seq: u64) -> String {
    format!("{seq:020}")
}

/// History-space key of the durable awareness rollup.  Deliberately
/// outside the `ev/` prefix so event scans never see it; it sorts after
/// every event key, so tail scans skip it by prefix.
const ROLLUP_KEY: &str = "rollup";

/// Default rollup cadence: fold the summary forward once this many new
/// events have accumulated since the last rollup.
pub const DEFAULT_ROLLUP_EVERY: u64 = 512;

/// The durable aggregate summary of the event-log prefix `[0, base)`,
/// written atomically **with** the flush batch whose events it covers —
/// so it can never describe events the crash discarded.  Seeding an
/// index from it plus a tail scan (`seq >= base`) reproduces every
/// aggregate query of a full-history scan, which is what makes
/// [`Awareness::open_tail`] O(tail) instead of O(history).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RollupRecord {
    /// Events with sequence number below this are summarized.
    base: u64,
    /// Per-kind-label event counts.
    counts: BTreeMap<String, u64>,
    /// Task run-time histogram.
    run_ms: Histogram,
    /// Queue-wait histogram.
    queue_ms: Histogram,
    /// Tasks dispatched but not yet resolved.
    in_flight: u64,
    /// High-water mark of `in_flight`.
    peak_in_flight: u64,
    /// Nodes believed down (sets serialize as sorted lists).
    nodes_down: Vec<String>,
    /// Nodes under quarantine.
    nodes_quarantined: Vec<String>,
    /// Total reference-CPU milliseconds charged.
    total_cpu_ms: f64,
    /// Tier I/O counters folded from `store.*` events.  Decodes as empty
    /// from rollups written before the field existed.
    store_io: BTreeMap<String, u64>,
}

/// Append-only writer/reader for the History space, with buffered appends
/// and the incremental [`AwarenessIndex`].
pub struct Awareness {
    events: TypedSpace<HistoryEvent>,
    next_seq: u64,
    pending: Vec<(u64, HistoryEvent)>,
    index: AwarenessIndex,
    /// Fold a fresh rollup into the next flush batch once this many
    /// events have accumulated past `rollup_base`.
    rollup_every: u64,
    /// `base` of the newest durable rollup (0 = none).
    rollup_base: u64,
    /// `base` of the rollup included in the batch last returned by
    /// [`pending_batch`](Awareness::pending_batch), committed by
    /// [`confirm_flushed`](Awareness::confirm_flushed).
    pending_rollup: Option<u64>,
    /// Events deserialized by the most recent open — the O(tail) witness
    /// asserted by tests and reported by benches.
    open_scanned: u64,
}

impl Awareness {
    /// Open over a store, continuing after any existing records and
    /// rebuilding the index from a **full scan** of them.  A key under
    /// the event prefix that does not parse as a sequence number is an
    /// error — resetting the sequence to 0 would overwrite history.
    ///
    /// This is the exact, O(history) path; [`Awareness::open_tail`]
    /// resumes from the durable rollup instead.
    pub fn open<D: Disk>(store: &Store<D>) -> Result<Self, AwarenessError> {
        let events: TypedSpace<HistoryEvent> = TypedSpace::new(Space::History, "ev/");
        let existing = Self::scan_sorted(&events, store)?;
        let next_seq = existing.last().map(|(seq, _)| seq + 1).unwrap_or(0);
        let mut index = AwarenessIndex::default();
        for (_, ev) in &existing {
            index.ingest(ev);
        }
        // Even an exact open keeps the rollup cadence anchored so the
        // next flush does not immediately rewrite an up-to-date summary.
        let rollup_base = Self::read_rollup(store)?.map_or(0, |r| r.base);
        Ok(Awareness {
            events,
            next_seq,
            pending: Vec::new(),
            index,
            rollup_every: DEFAULT_ROLLUP_EVERY,
            rollup_base,
            pending_rollup: None,
            open_scanned: existing.len() as u64,
        })
    }

    /// Open over a store in **O(tail)**: seed the index from the durable
    /// rollup, then scan and ingest only the events at or past its
    /// `base`.  Every aggregate query (counts, histograms, gauges)
    /// equals the full-scan answer; postings queries on the raw index
    /// cover only the tail, and [`Awareness::of_kind`] transparently
    /// falls back to a store scan when that matters.  With no rollup on
    /// disk this is exactly [`Awareness::open`].
    pub fn open_tail<D: Disk>(store: &Store<D>) -> Result<Self, AwarenessError> {
        let Some(rollup) = Self::read_rollup(store)? else {
            return Self::open(store);
        };
        let events: TypedSpace<HistoryEvent> = TypedSpace::new(Space::History, "ev/");
        let base = rollup.base;
        let mut index = AwarenessIndex::from_rollup(&rollup);
        let start = format!("ev/{}", event_key(base));
        let mut tail: Vec<(u64, HistoryEvent)> = Vec::new();
        for (key, bytes) in store.scan_from(Space::History, &start)? {
            // Non-event keys (the rollup itself sorts after every event
            // key) are not ours to validate here.
            let Some(suffix) = key.strip_prefix("ev/") else {
                continue;
            };
            let seq = suffix.parse::<u64>().map_err(|_| AwarenessError::BadKey {
                key: suffix.to_string(),
            })?;
            // Pre-widening 10-digit keys interleave lexicographically
            // with 20-digit ones, so the scan can surface already-rolled
            // -up events; the parsed value is the truth.
            if seq < base {
                continue;
            }
            let ev: HistoryEvent =
                serde_json::from_slice(&bytes).map_err(|e| StoreError::Codec(e.to_string()))?;
            tail.push((seq, ev));
        }
        tail.sort_by_key(|(seq, _)| *seq);
        let next_seq = tail.last().map(|(seq, _)| seq + 1).unwrap_or(base);
        let scanned = tail.len() as u64;
        for (_, ev) in &tail {
            index.ingest(ev);
        }
        Ok(Awareness {
            events,
            next_seq,
            pending: Vec::new(),
            index,
            rollup_every: DEFAULT_ROLLUP_EVERY,
            rollup_base: base,
            pending_rollup: None,
            open_scanned: scanned,
        })
    }

    fn read_rollup<D: Disk>(store: &Store<D>) -> Result<Option<RollupRecord>, AwarenessError> {
        match store.get(Space::History, ROLLUP_KEY)? {
            Some(bytes) => Ok(Some(
                serde_json::from_slice(&bytes).map_err(|e| StoreError::Codec(e.to_string()))?,
            )),
            None => Ok(None),
        }
    }

    /// `base` of the newest durable rollup (0 when none exists yet).
    pub fn rollup_base(&self) -> u64 {
        self.rollup_base
    }

    /// History-space key of the first event **not** covered by the
    /// durable rollup — the exclusive upper bound below which raw `ev/`
    /// records may be retired by windowed retention without losing any
    /// aggregate (the rollup already summarizes them, and
    /// [`Awareness::open_tail`] never scans below it).  `None` until a
    /// rollup has been committed.
    pub fn rolled_up_below(&self) -> Option<String> {
        (self.rollup_base > 0).then(|| format!("ev/{}", event_key(self.rollup_base)))
    }

    /// Events deserialized by the open that produced this handle: the
    /// whole history for [`Awareness::open`], only the tail for
    /// [`Awareness::open_tail`].
    pub fn open_scanned(&self) -> u64 {
        self.open_scanned
    }

    /// Override the rollup cadence (tests and benches force tiny values
    /// to exercise the rollup path constantly).
    pub fn set_rollup_every(&mut self, every: u64) {
        self.rollup_every = every.max(1);
    }

    /// Scan the durable log and sort by parsed sequence number (10- and
    /// 20-digit keys interleave lexicographically, so raw key order lies).
    fn scan_sorted<D: Disk>(
        _events: &TypedSpace<HistoryEvent>,
        store: &Store<D>,
    ) -> Result<Vec<(u64, HistoryEvent)>, AwarenessError> {
        // Raw scan so a foreign key is reported as `BadKey` even when its
        // value would not decode as an event either.
        let mut out = Vec::new();
        for (key, bytes) in store.scan_prefix(Space::History, "ev/")? {
            let suffix = &key["ev/".len()..];
            let seq = suffix.parse::<u64>().map_err(|_| AwarenessError::BadKey {
                key: suffix.to_string(),
            })?;
            let ev: HistoryEvent =
                serde_json::from_slice(&bytes).map_err(|e| StoreError::Codec(e.to_string()))?;
            out.push((seq, ev));
        }
        out.sort_by_key(|(seq, _)| *seq);
        Ok(out)
    }

    /// Record an event: index it immediately, buffer the durable append
    /// until the next [`flush`](Awareness::flush).
    pub fn record(&mut self, at: SimTime, kind: EventKind) {
        let ev = HistoryEvent { at, kind };
        self.index.ingest(&ev);
        self.pending.push((self.next_seq, ev));
        self.next_seq += 1;
    }

    /// Write all buffered events as one atomic store batch.  Returns the
    /// number of events flushed.  Called once per navigator step by the
    /// runtime; tests call it directly.
    pub fn flush<D: Disk>(&mut self, store: &Store<D>) -> Result<usize, StoreError> {
        match self.pending_batch()? {
            Some(batch) => {
                store.apply(batch)?;
                Ok(self.confirm_flushed())
            }
            None => Ok(0),
        }
    }

    /// Build the durable batch for all buffered events *without* clearing
    /// them — the group-commit path.  The runtime hands this batch to
    /// [`Store::apply_many`] together with the navigator's own persistence
    /// batch (one disk append for both), then calls
    /// [`confirm_flushed`](Awareness::confirm_flushed) once the commit
    /// succeeded.  Returns `None` when nothing is buffered.
    pub fn pending_batch(&mut self) -> Result<Option<Batch>, StoreError> {
        if self.pending.is_empty() {
            return Ok(None);
        }
        let mut batch = Batch::new();
        for (seq, ev) in &self.pending {
            self.events.put_in(&mut batch, &event_key(*seq), ev)?;
        }
        // Rollup cadence: once enough events have accumulated past the
        // last durable summary, fold everything up to (and including)
        // this batch into a fresh rollup and write it in the SAME atomic
        // batch.  A crash either keeps both the events and the summary
        // that covers them, or neither — the rollup can never run ahead
        // of the log it summarizes.
        if self.next_seq - self.rollup_base >= self.rollup_every {
            let rollup = self.index.to_rollup(self.next_seq);
            let body = serde_json::to_vec(&rollup).map_err(StoreError::from)?;
            batch.put(Space::History, ROLLUP_KEY, body);
            self.pending_rollup = Some(self.next_seq);
        }
        Ok(Some(batch))
    }

    /// Mark the events last returned by
    /// [`pending_batch`](Awareness::pending_batch) as durably committed.
    /// Returns how many events were confirmed.
    pub fn confirm_flushed(&mut self) -> usize {
        if let Some(base) = self.pending_rollup.take() {
            self.rollup_base = base;
        }
        let n = self.pending.len();
        self.pending.clear();
        n
    }

    /// Drop buffered events without writing them — a server crash loses
    /// the un-flushed tail of the current step (the index is rebuilt from
    /// the store on recovery, restoring agreement).
    pub fn discard_pending(&mut self) {
        self.pending_rollup = None;
        self.pending.clear();
    }

    /// Buffered events awaiting [`flush`](Awareness::flush).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The incremental index (includes buffered events).
    pub fn index(&self) -> &AwarenessIndex {
        &self.index
    }

    /// All events in sequence order: the durable log plus the buffered
    /// tail.
    pub fn all<D: Disk>(&self, store: &Store<D>) -> Result<Vec<HistoryEvent>, AwarenessError> {
        let mut seqd = Self::scan_sorted(&self.events, store)?;
        seqd.extend(self.pending.iter().cloned());
        seqd.sort_by_key(|(seq, _)| *seq);
        Ok(seqd.into_iter().map(|(_, ev)| ev).collect())
    }

    /// Events of a given kind label — answered from the index when it
    /// holds the full log, from a store scan when the prefix was rolled
    /// up (the index then only has the tail's postings).
    pub fn of_kind<D: Disk>(
        &self,
        store: &Store<D>,
        kind: &str,
    ) -> Result<Vec<HistoryEvent>, AwarenessError> {
        if self.index.summarized() == 0 {
            return Ok(self.index.of_kind(kind).into_iter().cloned().collect());
        }
        Ok(self
            .all(store)?
            .into_iter()
            .filter(|ev| ev.kind.label() == kind)
            .collect())
    }

    /// Count by kind — the monitoring dashboards' summary query, answered
    /// from the index.
    pub fn counts_by_kind<D: Disk>(
        &self,
        _store: &Store<D>,
    ) -> Result<Vec<(String, usize)>, AwarenessError> {
        Ok(self.index.counts_by_kind())
    }

    /// Rebuild an index from a full store scan — the oracle the
    /// incremental index is checked against in the equivalence proptests.
    pub fn rebuild_index<D: Disk>(
        &self,
        store: &Store<D>,
    ) -> Result<AwarenessIndex, AwarenessError> {
        let mut index = AwarenessIndex::default();
        for ev in self.all(store)? {
            index.ingest(&ev);
        }
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioopera_store::MemDisk;

    fn task_end(path: &str, node: &str, run_ms: u64) -> EventKind {
        EventKind::TaskEnd {
            instance: 7,
            path: path.into(),
            node: node.into(),
            run_ms,
            cpu_ms: run_ms as f64,
        }
    }

    #[test]
    fn records_survive_reopen_and_keep_ordering() {
        let disk = MemDisk::new();
        let store = Store::open(disk.clone()).unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        aw.record(
            SimTime::from_secs(1),
            EventKind::TaskStart {
                instance: 1,
                path: "A".into(),
                node: "n1".into(),
                job: 0,
                queue_ms: 250,
            },
        );
        aw.record(SimTime::from_secs(2), task_end("A", "n1", 1_000));
        aw.record(
            SimTime::from_secs(3),
            EventKind::NodeCrash { node: "n1".into() },
        );
        assert_eq!(aw.pending_len(), 3);
        assert_eq!(aw.flush(&store).unwrap(), 3);
        assert_eq!(aw.pending_len(), 0);
        drop(aw);
        drop(store);

        let store = Store::open(disk).unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        // Continues the sequence instead of overwriting.
        aw.record(
            SimTime::from_secs(4),
            EventKind::NodeRecover { node: "n1".into() },
        );
        aw.flush(&store).unwrap();
        let all = aw.all(&store).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].kind, "task.start");
        assert_eq!(all[3].kind, "node.recover");
        assert_eq!(aw.of_kind(&store, "node.crash").unwrap().len(), 1);
        let counts = aw.counts_by_kind(&store).unwrap();
        assert!(counts.contains(&("task.end".to_string(), 1)));
        // The rebuilt index saw the crash then the recovery.
        assert!(aw.index().nodes_down().is_empty());
        assert_eq!(aw.index().run_ms().count(), 1);
        assert_eq!(aw.index().queue_ms().mean_ms(), 250.0);
    }

    #[test]
    fn index_tracks_gauges_and_postings() {
        let disk = MemDisk::new();
        let store = Store::open(disk).unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        for (i, path) in ["A", "B"].iter().enumerate() {
            aw.record(
                SimTime::from_secs(i as u64),
                EventKind::TaskStart {
                    instance: 7,
                    path: path.to_string(),
                    node: "n1".into(),
                    job: i as u64,
                    queue_ms: 0,
                },
            );
        }
        assert_eq!(aw.index().in_flight(), 2);
        assert_eq!(aw.index().peak_in_flight(), 2);
        aw.record(SimTime::from_secs(3), task_end("A", "n1", 500));
        assert_eq!(aw.index().in_flight(), 1);
        assert_eq!(aw.index().for_instance(7).len(), 3);
        assert_eq!(aw.index().for_node("n1").len(), 3);
        assert_eq!(aw.index().count("task.start"), 2);
        assert_eq!(aw.index().total_cpu_ms(), 500.0);
        // Queries see buffered events before any flush.
        assert_eq!(aw.of_kind(&store, "task.end").unwrap().len(), 1);
        assert_eq!(aw.all(&store).unwrap().len(), 3);
    }

    #[test]
    fn legacy_string_records_reopen_and_query() {
        let disk = MemDisk::new();
        let store = Store::open(disk).unwrap();
        // Bytes exactly as the pre-taxonomy code wrote them: 10-digit
        // keys, free-form kind/detail strings.
        store
            .put(
                Space::History,
                "ev/0000000000".to_string(),
                br#"{"at":[1000],"kind":"task.start","detail":"A on n1"}"#.to_vec(),
            )
            .unwrap();
        store
            .put(
                Space::History,
                "ev/0000000001".to_string(),
                br#"{"at":[2000],"kind":"task.end","detail":"A"}"#.to_vec(),
            )
            .unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        assert_eq!(aw.index().len(), 2);
        assert_eq!(aw.index().count("task.end"), 1);
        let ends = aw.of_kind(&store, "task.end").unwrap();
        assert_eq!(
            ends[0].kind,
            EventKind::Legacy {
                kind: "task.end".into(),
                detail: "A".into()
            }
        );
        // New records continue after the legacy tail, and ordering stays
        // numeric even though 20-digit keys sort before 10-digit ones.
        aw.record(SimTime::from_secs(3), task_end("B", "n2", 100));
        aw.flush(&store).unwrap();
        let all = aw.all(&store).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].kind, "task.end");
        assert_eq!(all[2].kind.task_path(), Some("B"));
        drop(aw);
        let aw = Awareness::open(&store).unwrap();
        assert_eq!(aw.index().len(), 3);
    }

    #[test]
    fn foreign_key_is_a_typed_error_not_a_sequence_reset() {
        let disk = MemDisk::new();
        let store = Store::open(disk).unwrap();
        store
            .put(
                Space::History,
                "ev/not-a-number".to_string(),
                br#"{"at":[0],"kind":"x","detail":""}"#.to_vec(),
            )
            .unwrap();
        match Awareness::open(&store) {
            Err(AwarenessError::BadKey { key }) => assert_eq!(key, "not-a-number"),
            Err(other) => panic!("expected BadKey, got {other}"),
            Ok(_) => panic!("expected BadKey, got a working Awareness"),
        }
    }

    #[test]
    fn typed_event_roundtrips_through_json() {
        let ev = HistoryEvent {
            at: SimTime::from_secs(9),
            kind: EventKind::TaskStart {
                instance: 3,
                path: "Gen".into(),
                node: "n2".into(),
                job: 11,
                queue_ms: 42,
            },
        };
        let json = serde_json::to_string(&ev).unwrap();
        // No `detail` field: that name is reserved as the legacy marker.
        assert!(!json.contains("\"detail\""));
        let back: HistoryEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
        // Unit variants roundtrip too.
        let ev = HistoryEvent {
            at: SimTime::ZERO,
            kind: EventKind::ClusterFailure,
        };
        let back: HistoryEvent =
            serde_json::from_str(&serde_json::to_string(&ev).unwrap()).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn rollup_makes_reopen_o_tail_with_identical_aggregates() {
        let disk = MemDisk::new();
        let store = Store::open(disk.clone()).unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        aw.set_rollup_every(16);
        for i in 0..100u64 {
            aw.record(
                SimTime::from_secs(i),
                EventKind::TaskStart {
                    instance: i % 3,
                    path: "A".into(),
                    node: "n1".into(),
                    job: i,
                    queue_ms: i % 11,
                },
            );
            aw.record(SimTime::from_secs(i), task_end("A", "n1", 5 + i % 7));
            if i % 9 == 0 {
                aw.record(
                    SimTime::from_secs(i),
                    EventKind::NodeCrash { node: "n2".into() },
                );
            }
            if i % 8 == 7 {
                aw.flush(&store).unwrap();
            }
        }
        aw.flush(&store).unwrap();
        assert!(aw.rollup_base() > 0, "cadence never produced a rollup");

        let exact = Awareness::open(&store).unwrap();
        let tail = Awareness::open_tail(&store).unwrap();
        // O(tail): the rollup spared most of the history from being
        // deserialized again.
        assert_eq!(exact.open_scanned(), exact.index().len() as u64);
        assert!(
            tail.open_scanned() < exact.open_scanned() / 2,
            "tail open scanned {} of {} events",
            tail.open_scanned(),
            exact.open_scanned()
        );
        assert_eq!(tail.index().summarized(), tail.rollup_base());

        // Every aggregate agrees with the full scan.
        assert_eq!(tail.index().len(), exact.index().len());
        assert_eq!(
            tail.index().counts_by_kind(),
            exact.index().counts_by_kind()
        );
        assert_eq!(
            tail.index().count("task.end"),
            exact.index().count("task.end")
        );
        assert_eq!(tail.index().run_ms(), exact.index().run_ms());
        assert_eq!(tail.index().queue_ms(), exact.index().queue_ms());
        assert_eq!(tail.index().in_flight(), exact.index().in_flight());
        assert_eq!(
            tail.index().peak_in_flight(),
            exact.index().peak_in_flight()
        );
        assert_eq!(tail.index().nodes_down(), exact.index().nodes_down());
        assert_eq!(tail.index().total_cpu_ms(), exact.index().total_cpu_ms());

        // Postings fall back to the store, so full-history queries still
        // answer exactly.
        let all_tail = tail.of_kind(&store, "task.end").unwrap();
        let all_exact = exact.of_kind(&store, "task.end").unwrap();
        assert_eq!(all_tail, all_exact);
        assert_eq!(tail.all(&store).unwrap(), exact.all(&store).unwrap());

        // And appending through the tail handle continues the sequence —
        // no old event is overwritten.
        let mut tail = tail;
        tail.record(SimTime::from_secs(999), task_end("Z", "n1", 1));
        tail.flush(&store).unwrap();
        let reread = Awareness::open(&store).unwrap();
        assert_eq!(reread.index().len(), exact.index().len() + 1);
    }

    #[test]
    fn rollup_rides_the_flush_batch_atomically() {
        let disk = MemDisk::new();
        let store = Store::open(disk.clone()).unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        aw.set_rollup_every(4);
        for i in 0..6u64 {
            aw.record(SimTime::from_secs(i), task_end("A", "n1", 10));
        }
        // The pending batch carries both the events and the rollup; a
        // discarded batch must leave the durable cadence untouched.
        assert!(aw.pending_batch().unwrap().is_some());
        aw.discard_pending();
        assert_eq!(aw.rollup_base(), 0);
        assert!(Awareness::read_rollup(&store).unwrap().is_none());

        // A discard models a server crash losing the un-flushed tail:
        // recovery reopens the handle, re-records, and a real flush
        // commits rollup and events together.
        let mut aw = Awareness::open(&store).unwrap();
        aw.set_rollup_every(4);
        for i in 0..6u64 {
            aw.record(SimTime::from_secs(i), task_end("A", "n1", 10));
        }
        aw.flush(&store).unwrap();
        assert_eq!(aw.rollup_base(), 6);
        let durable = Awareness::read_rollup(&store).unwrap().unwrap();
        assert_eq!(durable.base, 6);
        assert_eq!(durable.counts.get("task.end"), Some(&6));

        // The rollup key is invisible to event scans.
        let reopened = Awareness::open(&store).unwrap();
        assert_eq!(reopened.index().len(), 6);
        assert_eq!(reopened.rollup_base(), 6);
    }

    #[test]
    fn legacy_narrow_keys_do_not_double_count_after_rollup() {
        // A store written by the pre-widening engine uses 10-digit keys;
        // those interleave lexicographically with 20-digit keys, so the
        // tail scan must filter by parsed sequence number, not raw key.
        let disk = MemDisk::new();
        let store = Store::open(disk.clone()).unwrap();
        for seq in 0..8u64 {
            let body = format!("{{\"at\":[{seq}],\"kind\":\"old\",\"detail\":\"d{seq}\"}}");
            store
                .put(Space::History, format!("ev/{seq:010}"), body.into_bytes())
                .unwrap();
        }
        let mut aw = Awareness::open(&store).unwrap();
        assert_eq!(aw.index().len(), 8);
        aw.set_rollup_every(2);
        for i in 0..4u64 {
            aw.record(SimTime::from_secs(i), task_end("A", "n1", 10));
            aw.flush(&store).unwrap();
        }
        let tail = Awareness::open_tail(&store).unwrap();
        let exact = Awareness::open(&store).unwrap();
        assert_eq!(tail.index().len(), exact.index().len());
        assert_eq!(
            tail.index().counts_by_kind(),
            exact.index().counts_by_kind()
        );
    }

    fn spill(spills: u64, runs: u64, skips: u64, hits: u64, misses: u64) -> EventKind {
        EventKind::StoreSpill {
            spills,
            runs,
            bloom_skips: skips,
            cache_hits: hits,
            cache_misses: misses,
        }
    }

    #[test]
    fn store_events_fold_tier_io_deltas_and_sampled_gauges() {
        let store = Store::open(MemDisk::new()).unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        assert!(aw.index().store_io().is_empty());
        aw.record(SimTime::from_secs(1), spill(2, 3, 10, 4, 5));
        aw.record(SimTime::from_secs(2), spill(1, 2, 25, 9, 8));
        aw.record(
            SimTime::from_secs(3),
            EventKind::StoreCompaction {
                merges: 1,
                levels: 2,
                max_merge_bytes: 4096,
            },
        );
        aw.record(
            SimTime::from_secs(4),
            EventKind::StoreCompaction {
                merges: 2,
                levels: 3,
                max_merge_bytes: 1024,
            },
        );
        aw.record(
            SimTime::from_secs(5),
            EventKind::StoreRetention {
                retired: 7,
                below: "ev/00000000000000000040".into(),
            },
        );
        aw.record(
            SimTime::from_secs(6),
            EventKind::StoreRetention {
                retired: 3,
                below: "ev/00000000000000000080".into(),
            },
        );

        let io = aw.index().store_io();
        // Per-event deltas accumulate...
        assert_eq!(io.get("spills"), Some(&3));
        assert_eq!(io.get("merges"), Some(&3));
        assert_eq!(io.get("retired"), Some(&10));
        // ...cumulative sampled gauges keep the latest observation...
        assert_eq!(io.get("runs"), Some(&2));
        assert_eq!(io.get("bloom_skips"), Some(&25));
        assert_eq!(io.get("cache_hits"), Some(&9));
        assert_eq!(io.get("cache_misses"), Some(&8));
        assert_eq!(io.get("levels"), Some(&3));
        // ...and the merge high-water mark keeps the max, not the latest.
        assert_eq!(io.get("max_merge_bytes"), Some(&4096));

        // Store events are ordinary history records with stable labels.
        assert_eq!(aw.index().count("store.spill"), 2);
        assert_eq!(aw.index().count("store.compaction"), 2);
        assert_eq!(aw.index().count("store.retention"), 2);
        aw.flush(&store).unwrap();
        assert_eq!(aw.of_kind(&store, "store.retention").unwrap().len(), 2);
    }

    #[test]
    fn tier_io_counters_survive_the_rollup_fold() {
        let disk = MemDisk::new();
        let store = Store::open(disk.clone()).unwrap();
        let mut aw = Awareness::open(&store).unwrap();
        aw.set_rollup_every(4);
        for i in 0..24u64 {
            aw.record(SimTime::from_secs(i), spill(1, i % 5, 2 * i, i, i / 2));
            if i % 6 == 5 {
                aw.record(
                    SimTime::from_secs(i),
                    EventKind::StoreCompaction {
                        merges: 1,
                        levels: 2,
                        max_merge_bytes: 100 * i,
                    },
                );
            }
            aw.flush(&store).unwrap();
        }
        aw.record(
            SimTime::from_secs(99),
            EventKind::StoreRetention {
                retired: 12,
                below: "ev/00000000000000000016".into(),
            },
        );
        aw.flush(&store).unwrap();
        assert!(aw.rollup_base() > 0, "cadence never produced a rollup");
        // The retirement bound tracks the durable rollup base exactly.
        assert_eq!(
            aw.rolled_up_below(),
            Some(format!("ev/{}", event_key(aw.rollup_base())))
        );

        let exact = Awareness::open(&store).unwrap();
        let tail = Awareness::open_tail(&store).unwrap();
        assert!(tail.open_scanned() < exact.open_scanned());
        // The rollup carries the folded tier counters, so the O(tail)
        // open answers identically to the full scan.
        assert_eq!(tail.index().store_io(), exact.index().store_io());
        assert_eq!(exact.index().store_io().get("spills"), Some(&24));
        assert_eq!(exact.index().store_io().get("retired"), Some(&12));
        assert_eq!(exact.index().store_io().get("max_merge_bytes"), Some(&2300));
    }

    #[test]
    fn rollups_written_before_tier_io_decode_as_empty() {
        let mut index = AwarenessIndex::default();
        index.ingest(&HistoryEvent {
            at: SimTime::from_secs(1),
            kind: task_end("A", "n1", 10),
        });
        let json = serde_json::to_string(&index.to_rollup(1)).unwrap();
        // Bytes exactly as pre-tier rollups had them: no `store_io`
        // member at all.
        let legacy = json.replace(",\"store_io\":{}", "");
        assert_ne!(legacy, json, "rollup no longer serializes store_io");
        let back: RollupRecord = serde_json::from_str(&legacy).unwrap();
        let rebuilt = AwarenessIndex::from_rollup(&back);
        assert!(rebuilt.store_io().is_empty());
        assert_eq!(rebuilt.count("task.end"), 1);
    }
}
