//! The BioOpera runtime: the server loop driving whole executions.
//!
//! This module owns the event kernel and implements the full life of the
//! system described in §3.2 and exercised in §5:
//!
//! * dispatch of ready activities to nodes (with per-activity dispatch
//!   latency), execution in virtual time on the processor-sharing nodes,
//!   delivery of results through the activity queue;
//! * the recovery module: node crashes, whole-cluster failures, network
//!   outages (results buffered at the PECs), disk-full periods (completed
//!   activities cannot persist results and are re-run), **server crashes**
//!   (all volatile state dropped, the store re-opened, instances rebuilt
//!   from the instance space and resumed);
//! * operator actions: suspend (running jobs drain), resume, abort,
//!   process restart, external events with template event handlers;
//! * the optional **kill-and-restart migration** strategy discussed in
//!   §5.4 (abort TEUs starved by higher-priority external jobs and
//!   re-schedule them elsewhere);
//! * measurement: availability/utilization time series (Figures 5/6) and
//!   a labeled event log.
//!
//! Everything the navigator decides is persisted in one atomic store batch
//! *before* the runtime acts on it; the recovery property tests crash the
//! runtime at arbitrary points and verify the resumed run completes with
//! identical results.

use crate::awareness::{Awareness, EventKind};
use crate::dependability::{self, DependabilityConfig, NodeHealth, RetryDecision, SystemCause};
use crate::dispatcher::{self, NodeView, SchedulingPolicy};
use crate::error::{EngineError, EngineResult};
use crate::library::{ActivityLibrary, ProgramOutput};
use crate::metrics::{RunReport, SeriesRollup};
use crate::navigator::{self, FailureKind, InstanceView, NavOutcome};
use crate::state::{
    keys, InstanceHeader, InstanceId, InstanceStatus, RunOutcome, TaskRecord, TaskState,
};
use bioopera_cluster::trace::{Trace, TraceEvent, TraceEventKind};
use bioopera_cluster::{Cluster, JobId, JobOutcome, NetworkState, SimKernel, SimTime};
use bioopera_ocr::model::{ParallelBody, ProcessTemplate, TaskKind};
use bioopera_ocr::value::Value;
use bioopera_ocr::ExternalBinding;
use bioopera_store::{Batch, CompactionPolicy, Disk, Space, Store, StoreStats};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Events driving the runtime's kernel.
#[derive(Debug, Clone)]
enum EngineEvent {
    /// A dispatched job reaches its node and starts executing.
    JobStart { node: String, job: JobId },
    /// A node may have finished its earliest job (validated by generation).
    JobDone { node: String, generation: u64 },
    /// An environment trace event fires.
    Trace(TraceEvent),
    /// Periodic series sampling / migration checks.
    Heartbeat,
    /// The warm-standby backup server assumes control (§6 future work).
    BackupFailover,
    /// A task's backoff deadline passed: wake the dispatch pump.  The
    /// deadline itself lives in the task record (`retry.retry_at`), so a
    /// stale or duplicate event is harmless — the pump re-checks.
    RetryAt {
        /// Owning instance.
        instance: InstanceId,
        /// Task path.
        path: String,
    },
    /// A node's quarantine interval elapsed; `epoch` guards against stale
    /// timers releasing a newer quarantine early.
    QuarantineExpire {
        /// Node name.
        node: String,
        /// Quarantine epoch this timer was armed for.
        epoch: u64,
    },
}

pub use crate::metrics::SeriesSample;

/// Aggregate statistics of a finished instance (Table 1 rows).
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Wall-clock (virtual) duration.
    pub wall: SimTime,
    /// Summed CPU occupancy of all executed activities.
    pub cpu: SimTime,
    /// Number of executed activities (parallel children count
    /// individually; control tasks with zero cost count too).
    pub activities: u64,
    /// CPU per activity (`CPU(Π)/|Π|`).
    pub cpu_per_activity: SimTime,
    /// Peak processors in use at any series sample.
    pub max_cpus_used: u32,
}

/// Kill-and-restart migration (§5.4 future-work strategy, implemented as
/// an ablation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// A job is migrated once its node has given it (almost) no CPU for
    /// this long.
    pub patience: SimTime,
}

/// Runtime configuration.
pub struct RuntimeConfig {
    /// Series sampling period (Figures 5/6 use two hours).
    pub heartbeat: SimTime,
    /// Wall-clock latency between dispatch and job start on the node
    /// ("each alignment requires ... a few seconds to schedule, distribute,
    /// initiate").
    pub dispatch_latency: SimTime,
    /// Reference-CPU ms charged for a program run that fails (the work
    /// burned before the error surfaced).
    pub failed_run_cost_ms: f64,
    /// Scheduling policy.
    pub policy: Box<dyn SchedulingPolicy>,
    /// Optional kill-and-restart migration.
    pub migration: Option<MigrationConfig>,
    /// Warm-standby backup server (§6 future work): when set, a server
    /// crash is followed by an automatic takeover after this delay instead
    /// of waiting for a repair/maintenance `ServerRecover`.
    pub backup_failover: Option<SimTime>,
    /// Compact the store when the WAL exceeds this many bytes.
    pub compact_wal_bytes: u64,
    /// Dependability policies: retry budgets, backoff, quarantine, poison
    /// escalation (`DependabilityConfig::disabled()` reproduces the
    /// pre-policy instant-requeue engine).
    pub dependability: DependabilityConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            heartbeat: SimTime::from_hours(2),
            dispatch_latency: SimTime::from_secs(2),
            failed_run_cost_ms: 500.0,
            policy: Box::new(dispatcher::LeastLoaded),
            migration: None,
            backup_failover: None,
            compact_wal_bytes: 8 * 1024 * 1024,
            dependability: DependabilityConfig::default(),
        }
    }
}

/// Volatile per-instance server memory (rebuilt from the store after a
/// server crash).
struct InstanceMem {
    template: ProcessTemplate,
    header: InstanceHeader,
    tasks: BTreeMap<String, TaskRecord>,
}

impl InstanceMem {
    /// A *container* task's state is driven by something else — a parallel
    /// parent by its children, a subprocess task (or a parallel child with
    /// a subprocess body) by its child instance.  Containers are never
    /// re-queued directly: doing so would duplicate running work.
    fn is_container(&self, path: &str) -> bool {
        if let Some(rec) = self.tasks.get(path) {
            if let Some(parent) = rec.parallel_parent() {
                return matches!(
                    navigator::parallel_body(&self.template, parent),
                    Some(ParallelBody::Subprocess(_))
                );
            }
        }
        matches!(
            self.template.task(path).map(|t| &t.kind),
            Some(TaskKind::Parallel { .. }) | Some(TaskKind::Subprocess { .. })
        )
    }
}

/// A job the server believes is on (or travelling to) a node.
struct InFlight {
    instance: InstanceId,
    path: String,
    node: String,
    /// The deterministic program result, computed at dispatch.
    result: Result<ProgramOutput, String>,
    /// Job never reports back (paper's event 10) when set.
    silent: bool,
    /// Heartbeats this job has spent fully starved (for migration).
    starved_beats: u32,
}

/// The runtime.
pub struct Runtime<D: Disk + Clone> {
    disk: D,
    store: Store<D>,
    kernel: SimKernel<EngineEvent>,
    cluster: Cluster,
    library: ActivityLibrary,
    awareness: Awareness,
    cfg: RuntimeConfig,

    // ---- volatile server memory (lost on server crash) ----
    instances: BTreeMap<InstanceId, InstanceMem>,
    in_flight: BTreeMap<JobId, InFlight>,
    ready_queue: VecDeque<(InstanceId, String)>,
    next_instance_id: InstanceId,
    next_job_id: JobId,

    // ---- environment state ----
    server_up: bool,
    disk_full: bool,
    operator_suspended: bool,
    /// Completions that arrived during a network outage (global, or a
    /// per-node partition), buffered at PECs.
    pec_buffer: Vec<(String, JobId, f64)>,
    /// Pending silent-failure injections (paper event 10).
    non_report_budget: u32,
    /// Node health scores (dependability policy).  Volatile mirror of the
    /// `health/` records in the configuration space; rebuilt from the
    /// store after a server crash.
    node_health: BTreeMap<String, NodeHealth>,

    // ---- measurement ----
    series: Vec<SeriesSample>,
    event_log: Vec<(SimTime, String)>,
    heartbeat_scheduled: bool,
    auto_restarts: u32,

    // ---- store awareness ----
    /// Tier counters at the last store-event emission; diffed at each
    /// step boundary to turn spills and merges into `store.*` events.
    tier_stats: Option<StoreStats>,
    /// Retire raw `ev/` history records once the durable awareness
    /// rollup covers them (windowed retention; opt-in).
    history_retention: bool,
    /// `rollup_base` the last retention advance was issued for.
    retained_rollup_base: u64,
}

impl<D: Disk + Clone> Runtime<D> {
    /// Create a runtime over `disk` (recovering any existing state),
    /// managing `cluster` with `library` and `cfg`.
    pub fn new(
        disk: D,
        cluster: Cluster,
        library: ActivityLibrary,
        cfg: RuntimeConfig,
    ) -> EngineResult<Self> {
        let store = Store::open(disk.clone())?;
        store.set_compaction_policy(Some(CompactionPolicy {
            wal_bytes_threshold: cfg.compact_wal_bytes,
            min_wal_batches: 1,
        }));
        let awareness = Awareness::open_tail(&store)?;
        // Record the hardware configuration (§3.2: configuration space).
        for node in cluster.nodes() {
            store.put(
                Space::Configuration,
                keys::node(&node.spec.name),
                serde_json::to_vec(&node.spec).map_err(bioopera_store::StoreError::from)?,
            )?;
        }
        let mut rt = Runtime {
            disk,
            store,
            kernel: SimKernel::new(),
            cluster,
            library,
            awareness,
            cfg,
            instances: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            ready_queue: VecDeque::new(),
            next_instance_id: 1,
            next_job_id: 1,
            server_up: true,
            disk_full: false,
            operator_suspended: false,
            pec_buffer: Vec::new(),
            non_report_budget: 0,
            node_health: BTreeMap::new(),
            series: Vec::new(),
            event_log: Vec::new(),
            heartbeat_scheduled: false,
            auto_restarts: 0,
            tier_stats: None,
            history_retention: std::env::var("BIOOPERA_HISTORY_RETENTION").is_ok_and(|v| v == "1"),
            retained_rollup_base: 0,
        };
        rt.rebuild_from_store()?;
        Ok(rt)
    }

    // ------------------------------------------------------------------
    // Public API
    // ------------------------------------------------------------------

    /// Validate a template and admit it to the template space.
    pub fn register_template(&mut self, t: &ProcessTemplate) -> EngineResult<()> {
        bioopera_ocr::validate(t)?;
        self.store.put(
            Space::Template,
            keys::template(&t.name),
            serde_json::to_vec(t).map_err(bioopera_store::StoreError::from)?,
        )?;
        Ok(())
    }

    /// Start an instance of `template_name` with initial whiteboard data.
    pub fn submit(
        &mut self,
        template_name: &str,
        initial: BTreeMap<String, Value>,
    ) -> EngineResult<InstanceId> {
        let id = self.instantiate(template_name, initial, None)?;
        self.flush_awareness()?;
        Ok(id)
    }

    fn instantiate(
        &mut self,
        template_name: &str,
        initial: BTreeMap<String, Value>,
        parent: Option<(InstanceId, String)>,
    ) -> EngineResult<InstanceId> {
        let template = self.load_template(template_name)?;
        let id = self.next_instance_id;
        self.next_instance_id += 1;
        let mut header = InstanceHeader {
            id,
            template: template_name.to_string(),
            status: InstanceStatus::Running,
            whiteboard: BTreeMap::new(),
            parent,
            created_at: self.kernel.now(),
            ended_at: None,
        };
        let mut tasks = BTreeMap::new();
        let outcome = {
            let mut view = InstanceView {
                template: &template,
                header: &mut header,
                tasks: &mut tasks,
            };
            navigator::init_instance(&mut view, &initial)?
        };
        let mem = InstanceMem {
            template,
            header,
            tasks,
        };
        self.instances.insert(id, mem);
        self.persist_full_instance(id)?;
        self.awareness.record(
            self.kernel.now(),
            EventKind::InstanceStart {
                instance: id,
                template: template_name.to_string(),
            },
        );
        self.apply_outcome(id, outcome)?;
        self.ensure_heartbeat();
        Ok(id)
    }

    fn load_template(&self, name: &str) -> EngineResult<ProcessTemplate> {
        let bytes = self
            .store
            .get(Space::Template, &keys::template(name))?
            .ok_or_else(|| EngineError::UnknownTemplate(name.to_string()))?;
        serde_json::from_slice(&bytes)
            .map_err(|e| EngineError::Internal(format!("corrupt template {name}: {e}")))
    }

    /// Install an environment trace (schedules every event).
    pub fn install_trace(&mut self, trace: &Trace) {
        for ev in trace.sorted_events() {
            self.kernel.schedule_at(ev.at, EngineEvent::Trace(ev));
        }
    }

    /// Drive the simulation until every instance is terminal or the only
    /// non-terminal instances are operator-suspended.
    ///
    /// Suspension is a steering state, not a failure: the run quiesces
    /// with [`RunOutcome::Quiesced`] instead of wedging, and a `resume`
    /// followed by another `run_to_completion` picks the work back up.
    pub fn run_to_completion(&mut self) -> EngineResult<RunOutcome> {
        while self.step()? {}
        let suspended = self
            .instances
            .values()
            .filter(|m| m.header.status == InstanceStatus::Suspended)
            .count() as u64;
        if suspended > 0 {
            Ok(RunOutcome::Quiesced { suspended })
        } else {
            Ok(RunOutcome::Completed)
        }
    }

    /// One scheduler iteration: dispatch, then process the next event.
    /// Returns `Ok(false)` once every instance is terminal.
    ///
    /// All awareness events the iteration produced are flushed as one
    /// atomic store batch at the end of the step.
    pub fn step(&mut self) -> EngineResult<bool> {
        let more = self.step_inner()?;
        self.flush_awareness()?;
        Ok(more)
    }

    fn step_inner(&mut self) -> EngineResult<bool> {
        if !self.instances.is_empty() && self.all_terminal() {
            return Ok(false);
        }
        self.pump()?;
        self.ensure_heartbeat();
        match self.kernel.pop() {
            Some((at, ev)) => {
                self.handle(at, ev)?;
                Ok(true)
            }
            None => {
                if self.all_terminal() {
                    return Ok(false);
                }
                if self.try_unstall()? {
                    return Ok(true);
                }
                // Every remaining instance is operator-suspended and no
                // work is in flight: the world is quiescent by request,
                // not deadlocked.  `resume()` continues the run.
                if self.in_flight.is_empty()
                    && self.instances.values().all(|m| {
                        m.header.status.is_terminal()
                            || m.header.status == InstanceStatus::Suspended
                    })
                {
                    return Ok(false);
                }
                Err(EngineError::Internal(format!(
                    "deadlock at {}: no pending events but instances incomplete \
                     (queue={}, in_flight={}, suspended={}){}",
                    self.kernel.now(),
                    self.ready_queue.len(),
                    self.in_flight.len(),
                    self.operator_suspended,
                    self.deadlock_detail(),
                )))
            }
        }
    }

    /// Events processed so far (progress reporting).
    pub fn events_processed(&self) -> u64 {
        self.kernel.processed()
    }

    /// Activities waiting in the activity queue.
    pub fn ready_queue_len(&self) -> usize {
        self.ready_queue.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Status of an instance.
    pub fn instance_status(&self, id: InstanceId) -> Option<InstanceStatus> {
        self.instances.get(&id).map(|m| m.header.status)
    }

    /// Whiteboard of an instance.
    pub fn whiteboard(&self, id: InstanceId) -> Option<&BTreeMap<String, Value>> {
        self.instances.get(&id).map(|m| &m.header.whiteboard)
    }

    /// A task record.
    pub fn task_record(&self, id: InstanceId, path: &str) -> Option<&TaskRecord> {
        self.instances.get(&id).and_then(|m| m.tasks.get(path))
    }

    /// All task records of an instance.
    pub fn task_records(&self, id: InstanceId) -> Option<&BTreeMap<String, TaskRecord>> {
        self.instances.get(&id).map(|m| &m.tasks)
    }

    /// The recorded availability/utilization series.
    pub fn series(&self) -> &[SeriesSample] {
        &self.series
    }

    /// The labeled event log (trace labels + engine reactions).
    pub fn event_log(&self) -> &[(SimTime, String)] {
        &self.event_log
    }

    /// The persistent store (for planner/history queries).
    pub fn store(&self) -> &Store<D> {
        &self.store
    }

    /// The cluster (for planner queries).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The awareness model.
    pub fn awareness(&self) -> &Awareness {
        &self.awareness
    }

    /// Flush buffered awareness events (one batch).  No-op while the
    /// server is down — the store is poisoned and the pending tail is
    /// discarded by the crash path.  Tier activity since the previous
    /// flush is recorded as `store.*` events riding the same batch, and
    /// (when enabled) raw history below the durable rollup is retired.
    fn flush_awareness(&mut self) -> EngineResult<()> {
        if self.server_up {
            self.record_store_events();
            self.awareness.flush(&self.store)?;
            self.maybe_retain_history()?;
        }
        Ok(())
    }

    /// Turn the store's tier counters into awareness events: one
    /// `store.spill` and/or `store.compaction` per step boundary where
    /// the counters moved, carrying the deltas (and sampling the
    /// cumulative read-side counters so the index can report cache and
    /// bloom health).
    fn record_store_events(&mut self) {
        let stats = self.store.stats();
        let prev = self.tier_stats.replace(stats);
        let (prev_spills, prev_merges) = prev.map_or((0, 0), |p| (p.spills, p.run_merges));
        let now = self.kernel.now();
        if stats.spills > prev_spills {
            self.awareness.record(
                now,
                EventKind::StoreSpill {
                    spills: stats.spills - prev_spills,
                    runs: stats.runs as u64,
                    bloom_skips: stats.bloom_skips,
                    cache_hits: stats.cache_hits,
                    cache_misses: stats.cache_misses,
                },
            );
        }
        if stats.run_merges > prev_merges {
            self.awareness.record(
                now,
                EventKind::StoreCompaction {
                    merges: stats.run_merges - prev_merges,
                    levels: stats.levels as u64,
                    max_merge_bytes: stats.max_merge_bytes,
                },
            );
        }
    }

    /// Windowed retention: once the awareness rollup durably covers a
    /// prefix of the event log, retire the raw `ev/` records below it.
    /// The rollup already answers every aggregate query over that
    /// prefix, and [`Awareness::open_tail`] never scans below its base,
    /// so no recovery path needs the retired records.  Off by default;
    /// enabled via [`set_history_retention`](Runtime::set_history_retention)
    /// or `BIOOPERA_HISTORY_RETENTION=1`.
    fn maybe_retain_history(&mut self) -> EngineResult<()> {
        if !self.history_retention {
            return Ok(());
        }
        let base = self.awareness.rollup_base();
        if base == 0 || base == self.retained_rollup_base {
            return Ok(());
        }
        let Some(below) = self.awareness.rolled_up_below() else {
            return Ok(());
        };
        let retired = self.store.retain_below(Space::History, "ev/", &below)?;
        self.retained_rollup_base = base;
        if retired > 0 {
            // Recorded now, durable with the next step's batch.
            self.awareness.record(
                self.kernel.now(),
                EventKind::StoreRetention { retired, below },
            );
        }
        Ok(())
    }

    /// Enable or disable windowed history retention (see
    /// [`maybe_retain_history`](Runtime::maybe_retain_history)).
    pub fn set_history_retention(&mut self, on: bool) {
        self.history_retention = on;
    }

    /// Override the awareness rollup cadence (tests and benches force
    /// tiny values so the rollup and retention paths run constantly).
    pub fn set_rollup_every(&mut self, every: u64) {
        self.awareness.set_rollup_every(every);
    }

    /// Snapshot everything this run tells the operator — per-kind event
    /// counters, task latency histograms, gauges, the series rolled up
    /// into `bin`-wide windows, and the labeled event log — as one
    /// serializable [`RunReport`].
    pub fn run_report(&self, bin: SimTime) -> RunReport {
        let idx = self.awareness.index();
        RunReport {
            taken_at_ms: self.kernel.now().as_millis(),
            events: idx.len() as u64,
            counters: idx
                .counts_by_kind()
                .into_iter()
                .map(|(k, n)| (k, n as u64))
                .collect(),
            task_run_ms: idx.run_ms().clone(),
            task_queue_ms: idx.queue_ms().clone(),
            peak_in_flight: idx.peak_in_flight(),
            total_cpu_ms: idx.total_cpu_ms(),
            auto_restarts: self.auto_restarts,
            series: SeriesRollup::by_width(&self.series, bin).bins().to_vec(),
            event_log: self
                .event_log
                .iter()
                .map(|(at, msg)| (at.as_millis(), msg.clone()))
                .collect(),
        }
    }

    /// Instances known to the server, with status.
    pub fn instances(&self) -> Vec<(InstanceId, InstanceStatus, String)> {
        self.instances
            .iter()
            .map(|(id, m)| (*id, m.header.status, m.header.template.clone()))
            .collect()
    }

    /// Jobs currently in flight: `(instance, task path, node)`.
    pub fn in_flight_jobs(&self) -> Vec<(InstanceId, String, String)> {
        self.in_flight
            .values()
            .map(|f| (f.instance, f.path.clone(), f.node.clone()))
            .collect()
    }

    /// Plain-data view of (cluster, in-flight jobs, instance task state)
    /// for the engine-agnostic what-if core — see
    /// [`crate::planner::PlannerSnapshot`].
    pub fn planner_snapshot(&self) -> crate::planner::PlannerSnapshot {
        use crate::planner::{PlannerInstance, PlannerNode, PlannerSnapshot, PlannerTask};
        let nodes = self
            .cluster
            .nodes()
            .iter()
            .map(|n| PlannerNode {
                name: n.spec.name.clone(),
                os: Some(n.spec.os.clone()),
                cpus: n.cpus_online(),
                up: n.is_up(),
            })
            .collect();
        let mut instances = Vec::new();
        for (id, mem) in &self.instances {
            if mem.header.status.is_terminal() {
                continue;
            }
            instances.push(PlannerInstance {
                id: *id,
                template: mem.header.template.clone(),
                tasks: mem
                    .tasks
                    .values()
                    .map(|rec| PlannerTask {
                        path: rec.path.clone(),
                        state: rec.state,
                        binding: crate::planner::binding_of(
                            &mem.template,
                            rec.parallel_parent().unwrap_or(&rec.path),
                        ),
                    })
                    .collect(),
            });
        }
        PlannerSnapshot {
            nodes,
            in_flight: self.in_flight_jobs(),
            instances,
        }
    }

    /// How many times the runtime performed the automatic operator-restart
    /// that re-schedules non-reporting TEUs.
    pub fn auto_restarts(&self) -> u32 {
        self.auto_restarts
    }

    /// Aggregate statistics of one instance (plus all its subprocess
    /// children).
    pub fn stats(&self, id: InstanceId) -> EngineResult<RunStats> {
        let mem = self
            .instances
            .get(&id)
            .ok_or(EngineError::UnknownInstance(id))?;
        let mut cpu_ms = 0.0f64;
        let mut activities = 0u64;
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            let m = self
                .instances
                .get(&cur)
                .ok_or(EngineError::UnknownInstance(cur))?;
            for rec in m.tasks.values() {
                let is_container = match rec.parallel_parent() {
                    // Children of a parallel-subprocess body proxy a child
                    // instance: their CPU is counted in that instance.
                    Some(parent) => matches!(
                        crate::navigator::parallel_body(&m.template, parent),
                        Some(ParallelBody::Subprocess(_))
                    ),
                    None => matches!(
                        m.template.task(&rec.path).map(|t| &t.kind),
                        Some(TaskKind::Parallel { .. }) | Some(TaskKind::Subprocess { .. })
                    ),
                };
                if is_container {
                    continue; // their work is counted via children
                }
                if rec.state == TaskState::Ended {
                    cpu_ms += rec.cpu_ms;
                    activities += 1;
                }
            }
            // Children instances.
            for (cid, cm) in &self.instances {
                if cm.header.parent.as_ref().map(|(p, _)| *p) == Some(cur) {
                    stack.push(*cid);
                }
            }
        }
        let wall = mem
            .header
            .ended_at
            .unwrap_or(self.kernel.now())
            .saturating_sub(mem.header.created_at);
        let max_cpus_used = self
            .series
            .iter()
            .map(|s| s.utilization.round() as u32)
            .max()
            .unwrap_or(0);
        Ok(RunStats {
            wall,
            cpu: SimTime::from_millis(cpu_ms.round() as u64),
            activities,
            cpu_per_activity: SimTime::from_millis(if activities == 0 {
                0
            } else {
                (cpu_ms / activities as f64).round() as u64
            }),
            max_cpus_used,
        })
    }

    /// Operator suspend of one instance: drain running jobs, start nothing.
    pub fn suspend(&mut self, id: InstanceId) -> EngineResult<()> {
        let mem = self
            .instances
            .get_mut(&id)
            .ok_or(EngineError::UnknownInstance(id))?;
        if mem.header.status == InstanceStatus::Running {
            mem.header.status = InstanceStatus::Suspended;
            self.persist_header(id)?;
            self.awareness.record(
                self.kernel.now(),
                EventKind::InstanceSuspend { instance: id },
            );
            self.flush_awareness()?;
            self.log(format!("instance {id} suspended"));
        }
        Ok(())
    }

    /// Operator resume.
    pub fn resume(&mut self, id: InstanceId) -> EngineResult<()> {
        let now = self.kernel.now();
        let outcome = {
            let mem = self
                .instances
                .get_mut(&id)
                .ok_or(EngineError::UnknownInstance(id))?;
            let mut view = InstanceView {
                template: &mem.template,
                header: &mut mem.header,
                tasks: &mut mem.tasks,
            };
            navigator::on_resume(&mut view, now)
        };
        self.persist_after_nav(id, &outcome, &[])?;
        self.apply_outcome(id, outcome)?;
        self.awareness.record(
            self.kernel.now(),
            EventKind::InstanceResume { instance: id },
        );
        self.flush_awareness()?;
        self.log(format!("instance {id} resumed"));
        Ok(())
    }

    /// Operator abort.
    pub fn abort(&mut self, id: InstanceId) -> EngineResult<()> {
        let now = self.kernel.now();
        let jobs: Vec<JobId> = self
            .in_flight
            .iter()
            .filter(|(_, f)| f.instance == id)
            .map(|(j, _)| *j)
            .collect();
        for job in jobs {
            if let Some(f) = self.in_flight.remove(&job) {
                if let Some(n) = self.cluster.node_mut(&f.node) {
                    n.abort_job(now, job);
                }
            }
        }
        if let Some(mem) = self.instances.get_mut(&id) {
            mem.header.status = InstanceStatus::Aborted;
            mem.header.ended_at = Some(now);
        }
        self.persist_header(id)?;
        self.awareness
            .record(now, EventKind::InstanceAbort { instance: id });
        self.flush_awareness()?;
        self.resync_all_nodes();
        self.log(format!("instance {id} aborted by operator"));
        Ok(())
    }

    /// Operator process restart: every in-flight task of the instance is
    /// pulled back and re-queued ("the process was re-started and BioOpera
    /// immediately re-scheduled the TEUs that then completed successfully").
    pub fn restart_instance(&mut self, id: InstanceId) -> EngineResult<()> {
        let now = self.kernel.now();
        let jobs: Vec<JobId> = self
            .in_flight
            .iter()
            .filter(|(_, f)| f.instance == id)
            .map(|(j, _)| *j)
            .collect();
        for job in jobs {
            if let Some(f) = self.in_flight.remove(&job) {
                if let Some(n) = self.cluster.node_mut(&f.node) {
                    n.abort_job(now, job);
                }
            }
        }
        let mut outcome = NavOutcome::default();
        let restartable: Vec<String> = self
            .instances
            .get(&id)
            .map(|mem| {
                mem.tasks
                    .iter()
                    .filter(|(path, rec)| {
                        rec.state == TaskState::Dispatched && !mem.is_container(path)
                    })
                    .map(|(path, _)| path.clone())
                    .collect()
            })
            .unwrap_or_default();
        if let Some(mem) = self.instances.get_mut(&id) {
            for path in restartable {
                if let Some(rec) = mem.tasks.get_mut(&path) {
                    rec.state = TaskState::Ready;
                    rec.node = None;
                    outcome.newly_ready.push(path);
                }
            }
        }
        self.awareness.record(
            now,
            EventKind::InstanceRestart {
                instance: id,
                requeued: outcome.newly_ready.len() as u64,
            },
        );
        self.persist_after_nav(id, &outcome, &[])?;
        self.apply_outcome(id, outcome)?;
        self.flush_awareness()?;
        self.resync_all_nodes();
        self.log(format!(
            "instance {id} restarted; in-flight TEUs re-scheduled"
        ));
        Ok(())
    }

    /// Selective recomputation (§6, lineage tracking): start a new
    /// instance of the same template that **reuses** the recorded outputs
    /// of every task unaffected by the `changed` set and re-executes only
    /// the downstream closure — "recompute processes as data inputs or
    /// algorithms change" without starting from the beginning.
    ///
    /// The source instance must be terminal.  Returns the new instance id.
    pub fn recompute(&mut self, source: InstanceId, changed: &[&str]) -> EngineResult<InstanceId> {
        let (template_name, reuse_records, whiteboard) = {
            let mem = self
                .instances
                .get(&source)
                .ok_or(EngineError::UnknownInstance(source))?;
            if !mem.header.status.is_terminal() {
                return Err(EngineError::BadStatus(format!(
                    "instance {source} is still running; recompute needs a terminal source"
                )));
            }
            let plan =
                crate::lineage::RecomputePlan::build(&mem.template, &mem.tasks, source, changed)?;
            let mut reuse: Vec<TaskRecord> = plan
                .reuse
                .iter()
                .filter_map(|p| mem.tasks.get(p).cloned())
                .collect();
            // Replay mapping phases in original completion order so
            // whiteboard overwrites resolve the same way they did.
            reuse.sort_by_key(|r| r.ended_at.unwrap_or(SimTime::ZERO));
            (
                mem.header.template.clone(),
                reuse,
                mem.header.whiteboard.clone(),
            )
        };
        let id = self.instantiate(&template_name, whiteboard, None)?;
        let outcome = {
            let mem = self
                .instances
                .get_mut(&id)
                .ok_or(EngineError::UnknownInstance(id))?;
            let mut view = InstanceView {
                template: &mem.template,
                header: &mut mem.header,
                tasks: &mut mem.tasks,
            };
            let mut replay_order = Vec::new();
            for rec in reuse_records {
                let mut r = rec;
                // Reused work costs nothing in the new instance's books.
                r.cpu_ms = 0.0;
                replay_order.push((r.state, r.path.clone()));
                view.tasks.insert(r.path.clone(), r);
            }
            for (state, path) in replay_order {
                if state == TaskState::Ended {
                    navigator::replay_mapping(&mut view, &path);
                }
            }
            navigator::reevaluate(&mut view, self.kernel.now())?
        };
        self.persist_full_instance(id)?;
        self.awareness.record(
            self.kernel.now(),
            EventKind::InstanceRecompute {
                instance: id,
                source,
                changed: changed.iter().map(|c| c.to_string()).collect(),
            },
        );
        self.apply_outcome(id, outcome)?;
        self.flush_awareness()?;
        self.log(format!(
            "instance {id}: selective recomputation of {} (reusing the rest of instance {source})",
            changed.join(", ")
        ));
        Ok(id)
    }

    /// Signal a named event to an instance (runs its `ON EVENT` handlers).
    pub fn signal_event(&mut self, id: InstanceId, event: &str) -> EngineResult<()> {
        let actions: Vec<bioopera_ocr::model::EventAction> = {
            let mem = self
                .instances
                .get(&id)
                .ok_or(EngineError::UnknownInstance(id))?;
            mem.template
                .on_event
                .iter()
                .filter(|h| h.event == event)
                .map(|h| h.action.clone())
                .collect()
        };
        for action in actions {
            use bioopera_ocr::model::EventAction::*;
            match action {
                Suspend => self.suspend(id)?,
                Resume => self.resume(id)?,
                Abort => self.abort(id)?,
                SetData(field, e) => {
                    let value = {
                        let Some(mem) = self.instances.get_mut(&id) else {
                            continue;
                        };
                        let view = InstanceView {
                            template: &mem.template,
                            header: &mut mem.header,
                            tasks: &mut mem.tasks,
                        };
                        navigator::eval_in_instance(&view, &e)?
                    };
                    let Some(mem) = self.instances.get_mut(&id) else {
                        continue;
                    };
                    mem.header.whiteboard.insert(field.clone(), value);
                    self.persist_header(id)?;
                    self.log(format!("instance {id}: event {event} set {field}"));
                }
            }
        }
        self.awareness.record(
            self.kernel.now(),
            EventKind::EventSignal {
                instance: id,
                event: event.to_string(),
            },
        );
        self.flush_awareness()?;
        Ok(())
    }

    /// Crash the server immediately (test hook; traces use
    /// `TraceEventKind::ServerCrash`).
    pub fn crash_server(&mut self) -> EngineResult<()> {
        self.on_server_crash()
    }

    /// Recover the server immediately (test hook).
    pub fn recover_server(&mut self) -> EngineResult<()> {
        self.on_server_recover()
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, at: SimTime, ev: EngineEvent) -> EngineResult<()> {
        match ev {
            EngineEvent::JobStart { node, job } => self.on_job_start(at, &node, job),
            EngineEvent::JobDone { node, generation } => self.on_job_done(at, &node, generation),
            EngineEvent::Trace(t) => self.on_trace(at, t),
            EngineEvent::Heartbeat => self.on_heartbeat(at),
            EngineEvent::BackupFailover => {
                if !self.server_up {
                    self.on_server_recover()?;
                    self.log("backup server assumed control".into());
                }
                Ok(())
            }
            // Pure wake-up: the next pump() re-checks `retry.retry_at`
            // against the (now advanced) clock and dispatches.  Firing
            // while the server is down, or after the deadline moved, is
            // harmless.
            EngineEvent::RetryAt { instance, path } => {
                let _ = (instance, path); // carried for kernel-dump debugging
                Ok(())
            }
            EngineEvent::QuarantineExpire { node, epoch } => {
                self.on_quarantine_expire(at, &node, epoch)
            }
        }
    }

    fn on_quarantine_expire(&mut self, at: SimTime, node: &str, epoch: u64) -> EngineResult<()> {
        if !self.server_up {
            // The recovery path re-derives expiry timers from the
            // persisted health records.
            return Ok(());
        }
        let Some(health) = self.node_health.get_mut(node) else {
            return Ok(());
        };
        if health.on_quarantine_expired(epoch) {
            self.awareness.record(
                at,
                EventKind::NodeProbation {
                    node: node.to_string(),
                },
            );
            self.persist_node_health(node)?;
            self.log(format!("node {node} left quarantine (probation)"));
        }
        Ok(())
    }

    fn on_job_start(&mut self, at: SimTime, node_name: &str, job: JobId) -> EngineResult<()> {
        if !self.server_up {
            return Ok(()); // dispatch was annulled by the server crash
        }
        let Some(flight) = self.in_flight.get(&job) else {
            return Ok(()); // annulled (abort/restart)
        };
        let work = match &flight.result {
            Ok(out) => out.cost_ref_ms.max(1.0),
            Err(_) => self.cfg.failed_run_cost_ms.max(1.0),
        };
        let node_up = self
            .cluster
            .node(node_name)
            .map(|n| n.is_up())
            .unwrap_or(false);
        if !node_up {
            // Node died while the job was in transit: system failure.
            let Some(flight) = self.in_flight.remove(&job) else {
                return Ok(());
            };
            self.system_failure(
                flight.instance,
                &flight.path,
                Some(node_name),
                SystemCause::Environment,
                "node down at job start",
            )?;
            return Ok(());
        }
        // Flaky fault: the node looks up but kills the job on arrival.
        // This failure *is* the node's fault — it feeds health scoring
        // and the task's poison set.
        let flaky = self
            .cluster
            .node_mut(node_name)
            .map(|n| n.consume_flaky_kill())
            .unwrap_or(false);
        if flaky {
            let Some(flight) = self.in_flight.remove(&job) else {
                return Ok(());
            };
            self.system_failure(
                flight.instance,
                &flight.path,
                Some(node_name),
                SystemCause::NodeFault,
                "flaky node killed the job",
            )?;
            return Ok(());
        }
        let Some(node) = self.cluster.node_mut(node_name) else {
            return Ok(());
        };
        node.start_job(at, job, work);
        self.resync_node(node_name);
        Ok(())
    }

    fn on_job_done(&mut self, at: SimTime, node_name: &str, generation: u64) -> EngineResult<()> {
        let Some(node) = self.cluster.node_mut(node_name) else {
            return Ok(());
        };
        if node.generation != generation || !node.is_up() {
            return Ok(()); // stale completion event
        }
        let finished = node.take_finished(at);
        for (job, outcome) in finished {
            let cpu_ms = match outcome {
                JobOutcome::Completed { cpu_ms } => cpu_ms,
                JobOutcome::Killed => 0.0,
            };
            self.deliver_completion(at, node_name, job, cpu_ms)?;
        }
        self.resync_node(node_name);
        Ok(())
    }

    /// A PEC reports a finished job back to the server's activity queue.
    fn deliver_completion(
        &mut self,
        at: SimTime,
        node_name: &str,
        job: JobId,
        cpu_ms: f64,
    ) -> EngineResult<()> {
        if self.cluster.network() == NetworkState::Down {
            // Buffered at the PEC until connectivity returns.
            self.pec_buffer.push((node_name.to_string(), job, cpu_ms));
            return Ok(());
        }
        // A per-node partition buffers the same way: the PEC holds the
        // result until its link to the server heals.
        if self
            .cluster
            .node(node_name)
            .map(|n| !n.is_reachable())
            .unwrap_or(false)
        {
            self.pec_buffer.push((node_name.to_string(), job, cpu_ms));
            return Ok(());
        }
        if !self.server_up {
            // Server down: the PEC cannot deliver; with the server's
            // volatile state gone the result is useless — recovery re-runs
            // the task.
            return Ok(());
        }
        let Some(flight) = self.in_flight.remove(&job) else {
            return Ok(()); // annulled
        };
        if flight.silent {
            // Paper event 10: the TEU finished but never reported.
            self.awareness.record(
                at,
                EventKind::TaskNonReport {
                    instance: flight.instance,
                    path: flight.path.clone(),
                },
            );
            return Ok(());
        }
        if self.disk_full {
            // Results cannot be persisted: the activity is treated as
            // failed by the environment and will be re-run.
            self.awareness.record(
                at,
                EventKind::TaskDiskFull {
                    instance: flight.instance,
                    path: flight.path.clone(),
                },
            );
            self.system_failure(
                flight.instance,
                &flight.path,
                Some(node_name),
                SystemCause::Environment,
                "disk full",
            )?;
            return Ok(());
        }
        // The node delivered a result: whatever the program said, the
        // node itself worked — end its failure streak, and reset the
        // task's masked-failure bookkeeping.
        self.note_node_success(node_name)?;
        if let Some(mem) = self.instances.get_mut(&flight.instance) {
            if let Some(rec) = mem.tasks.get_mut(&flight.path) {
                rec.retry = None;
            }
        }
        // Dispatch→completion wall time (read before the navigator clears
        // per-run fields).
        let run_ms = self
            .instances
            .get(&flight.instance)
            .and_then(|m| m.tasks.get(&flight.path))
            .and_then(|r| r.started_at)
            .map(|s| at.saturating_sub(s).as_millis())
            .unwrap_or(0);
        match flight.result {
            Ok(out) => {
                let result = {
                    let Some(mem) = self.instances.get_mut(&flight.instance) else {
                        self.note_stale(flight.instance, Some(&flight.path), "completion");
                        return Ok(());
                    };
                    let mut view = InstanceView {
                        template: &mem.template,
                        header: &mut mem.header,
                        tasks: &mut mem.tasks,
                    };
                    navigator::on_task_ended(&mut view, &flight.path, out.outputs, at, cpu_ms)
                };
                let outcome = match result {
                    Ok(outcome) => outcome,
                    // A completion for a record that no longer exists (a
                    // stale in-flight job racing a restart or recovery)
                    // is evidence, not poison: record it and drop it.
                    Err(EngineError::UnknownTask(i, p)) => {
                        self.note_stale(i, Some(&p), "completion");
                        return Ok(());
                    }
                    Err(e) => return Err(e),
                };
                self.awareness.record(
                    at,
                    EventKind::TaskEnd {
                        instance: flight.instance,
                        path: flight.path.clone(),
                        node: node_name.to_string(),
                        run_ms,
                        cpu_ms,
                    },
                );
                self.persist_after_nav(
                    flight.instance,
                    &outcome,
                    std::slice::from_ref(&flight.path),
                )?;
                self.apply_outcome(flight.instance, outcome)?;
            }
            Err(msg) => {
                let result = {
                    let Some(mem) = self.instances.get_mut(&flight.instance) else {
                        self.note_stale(flight.instance, Some(&flight.path), "failure report");
                        return Ok(());
                    };
                    let mut view = InstanceView {
                        template: &mem.template,
                        header: &mut mem.header,
                        tasks: &mut mem.tasks,
                    };
                    navigator::on_task_failed(&mut view, &flight.path, FailureKind::Program, at)
                };
                let outcome = match result {
                    Ok(outcome) => outcome,
                    Err(EngineError::UnknownTask(i, p)) => {
                        self.note_stale(i, Some(&p), "failure report");
                        return Ok(());
                    }
                    Err(e) => return Err(e),
                };
                self.awareness.record(
                    at,
                    EventKind::TaskFail {
                        instance: flight.instance,
                        path: flight.path.clone(),
                        error: msg,
                    },
                );
                self.persist_after_nav(
                    flight.instance,
                    &outcome,
                    std::slice::from_ref(&flight.path),
                )?;
                self.apply_outcome(flight.instance, outcome)?;
            }
        }
        Ok(())
    }

    fn on_trace(&mut self, at: SimTime, ev: TraceEvent) -> EngineResult<()> {
        if let Some(label) = &ev.label {
            self.log(label.clone());
        }
        match ev.kind {
            TraceEventKind::NodeDown(name) => {
                let killed = match self.cluster.node_mut(&name) {
                    Some(n) => n.crash(at),
                    None => Vec::new(),
                };
                if self.server_up {
                    self.awareness
                        .record(at, EventKind::NodeCrash { node: name.clone() });
                }
                self.fail_jobs(&killed, "node crash")?;
            }
            TraceEventKind::NodeUp(name) => {
                if let Some(n) = self.cluster.node_mut(&name) {
                    n.recover(at);
                }
                if self.server_up {
                    self.awareness
                        .record(at, EventKind::NodeRecover { node: name });
                }
            }
            TraceEventKind::AllNodesDown => {
                let mut killed = Vec::new();
                for n in self.cluster.nodes_mut() {
                    killed.extend(n.crash(at));
                }
                if self.server_up {
                    self.awareness.record(at, EventKind::ClusterFailure);
                }
                self.fail_jobs(&killed, "cluster failure")?;
            }
            TraceEventKind::AllNodesUp => {
                for n in self.cluster.nodes_mut() {
                    n.recover(at);
                }
                if self.server_up {
                    self.awareness.record(at, EventKind::ClusterRecover);
                }
            }
            TraceEventKind::NetworkDown => {
                self.cluster.set_network(NetworkState::Down);
            }
            TraceEventKind::NetworkUp => {
                self.cluster.set_network(NetworkState::Up);
                // Deliver everything the PECs buffered.
                let buffered = std::mem::take(&mut self.pec_buffer);
                for (node, job, cpu_ms) in buffered {
                    self.deliver_completion(at, &node, job, cpu_ms)?;
                }
            }
            TraceEventKind::ExternalLoadAll { fraction } => {
                for n in self.cluster.nodes_mut() {
                    let cpus = n.cpus_online() as f64;
                    n.set_external_load(at, fraction * cpus);
                }
                if self.server_up {
                    // §3.4: load samples feed the same awareness taxonomy.
                    let loads: Vec<(String, f64)> = self
                        .cluster
                        .nodes()
                        .iter()
                        .map(|n| (n.spec.name.clone(), n.external_cpus()))
                        .collect();
                    for (node, cpus) in loads {
                        self.awareness
                            .record(at, EventKind::NodeLoad { node, cpus });
                    }
                }
                self.resync_all_nodes();
            }
            TraceEventKind::ExternalLoad { node, cpus } => {
                if let Some(n) = self.cluster.node_mut(&node) {
                    n.set_external_load(at, cpus);
                }
                if self.server_up {
                    self.awareness.record(
                        at,
                        EventKind::NodeLoad {
                            node: node.clone(),
                            cpus,
                        },
                    );
                }
                self.resync_node(&node);
            }
            TraceEventKind::UpgradeAllTo { cpus } => {
                for n in self.cluster.nodes_mut() {
                    n.set_cpus(at, cpus);
                }
                if self.server_up {
                    self.awareness
                        .record(at, EventKind::ClusterUpgrade { cpus });
                }
                self.resync_all_nodes();
            }
            TraceEventKind::ServerCrash => self.on_server_crash()?,
            TraceEventKind::ServerRecover => self.on_server_recover()?,
            TraceEventKind::OperatorSuspend => {
                self.operator_suspended = true;
                if self.server_up {
                    self.awareness.record(at, EventKind::OperatorSuspend);
                }
            }
            TraceEventKind::OperatorResume => {
                self.operator_suspended = false;
                if self.server_up {
                    self.awareness.record(at, EventKind::OperatorResume);
                }
                let ids: Vec<InstanceId> = self.instances.keys().copied().collect();
                for id in ids {
                    if self.instance_status(id) == Some(InstanceStatus::Suspended) {
                        self.resume(id)?;
                    }
                }
            }
            TraceEventKind::DiskFull => {
                self.disk_full = true;
            }
            TraceEventKind::DiskFreed => {
                self.disk_full = false;
            }
            TraceEventKind::NodeFlaky { node, kills } => {
                if let Some(n) = self.cluster.node_mut(&node) {
                    n.set_flaky(kills);
                }
            }
            TraceEventKind::NodePartition(name) => {
                if let Some(n) = self.cluster.node_mut(&name) {
                    n.set_reachable(false);
                }
                if self.server_up {
                    self.awareness
                        .record(at, EventKind::NodePartition { node: name });
                }
            }
            TraceEventKind::NodeRejoin(name) => {
                if let Some(n) = self.cluster.node_mut(&name) {
                    n.set_reachable(true);
                }
                if self.server_up {
                    self.awareness
                        .record(at, EventKind::NodeRejoin { node: name.clone() });
                }
                // Deliver what this node's PEC buffered during the
                // partition (a still-unreachable node's entries are
                // re-buffered by `deliver_completion`).
                let buffered = std::mem::take(&mut self.pec_buffer);
                for (node, job, cpu_ms) in buffered {
                    self.deliver_completion(at, &node, job, cpu_ms)?;
                }
            }
            TraceEventKind::TaskNonReport { count } => {
                // Mark up to `count` in-flight jobs as silent.
                let mut remaining = count;
                for flight in self.in_flight.values_mut() {
                    if remaining == 0 {
                        break;
                    }
                    if !flight.silent {
                        flight.silent = true;
                        remaining -= 1;
                    }
                }
                self.non_report_budget += count - remaining;
            }
        }
        Ok(())
    }

    fn on_heartbeat(&mut self, at: SimTime) -> EngineResult<()> {
        self.heartbeat_scheduled = false;
        self.cluster.advance_all(at);
        self.series.push(SeriesSample {
            at,
            availability: self.cluster.availability(),
            utilization: self.cluster.utilization(),
        });
        // Stall watchdog: nothing running, nothing queued, server healthy,
        // yet instances incomplete — the signature of TEUs that finished
        // but never reported (paper event 10).  The operator "re-starts
        // the process and BioOpera immediately re-schedules the TEUs".
        if self.server_up
            && !self.operator_suspended
            && self.cluster.network() == NetworkState::Up
            && self.in_flight.is_empty()
            && self.ready_queue.is_empty()
        {
            let stuck: Vec<InstanceId> = self
                .instances
                .iter()
                .filter(|(_, m)| {
                    m.header.status == InstanceStatus::Running
                        && m.tasks
                            .values()
                            .any(|r| r.state == TaskState::Dispatched && !m.is_container(&r.path))
                })
                .map(|(id, _)| *id)
                .collect();
            if !stuck.is_empty() {
                for id in stuck {
                    self.restart_instance(id)?;
                }
                self.auto_restarts += 1;
            }
        }
        // Kill-and-restart migration: abort fully-starved jobs.
        if let Some(mig) = self.cfg.migration {
            let beats_needed =
                (mig.patience.as_millis() / self.cfg.heartbeat.as_millis().max(1)).max(1) as u32;
            let starved: Vec<JobId> = self
                .in_flight
                .iter_mut()
                .filter_map(|(job, f)| {
                    let starved = self
                        .cluster
                        .node(&f.node)
                        .map(|n| n.is_up() && n.cpus_online() as f64 <= n.external_cpus())
                        .unwrap_or(false);
                    if starved {
                        f.starved_beats += 1;
                        (f.starved_beats >= beats_needed).then_some(*job)
                    } else {
                        f.starved_beats = 0;
                        None
                    }
                })
                .collect();
            for job in starved {
                if let Some(f) = self.in_flight.remove(&job) {
                    if let Some(n) = self.cluster.node_mut(&f.node) {
                        n.abort_job(at, job);
                    }
                    self.awareness.record(
                        at,
                        EventKind::TaskMigrate {
                            instance: f.instance,
                            path: f.path.clone(),
                            node: f.node.clone(),
                        },
                    );
                    self.system_failure(
                        f.instance,
                        &f.path,
                        Some(&f.node),
                        SystemCause::Environment,
                        "migrated off starved node",
                    )?;
                    self.resync_node(&f.node);
                }
            }
        }
        self.ensure_heartbeat();
        Ok(())
    }

    fn ensure_heartbeat(&mut self) {
        // Re-arm only while something can still change: pending events
        // (trace, job completions), queued or in-flight work.  When the
        // world is truly quiescent the run loop's unstall logic takes
        // over; an unconditional re-arm would tick forever on a stuck
        // instance.  Queue entries whose instance is operator-suspended
        // are not runnable work — counting them would tick forever on a
        // suspended instance (pump defers them back every iteration).
        let runnable_queued = self.ready_queue.iter().any(|(id, _)| {
            self.instances
                .get(id)
                .map(|m| m.header.status == InstanceStatus::Running)
                .unwrap_or(false)
        });
        // In-flight jobs whose node is partitioned cannot deliver; once
        // their results are PEC-buffered nothing changes until the link
        // heals, so they alone must not keep the heartbeat alive (the
        // run loop's unstall logic repairs the partition instead).
        let deliverable_in_flight = self.in_flight.values().any(|f| {
            self.cluster
                .node(&f.node)
                .map(|n| n.is_reachable())
                .unwrap_or(true)
        });
        let work_remains = !self.all_terminal()
            && (self.kernel.pending() > 0 || deliverable_in_flight || runnable_queued);
        if work_remains && !self.heartbeat_scheduled {
            self.kernel
                .schedule_after(self.cfg.heartbeat, EngineEvent::Heartbeat);
            self.heartbeat_scheduled = true;
        }
    }

    // ------------------------------------------------------------------
    // Server crash / recovery
    // ------------------------------------------------------------------

    fn on_server_crash(&mut self) -> EngineResult<()> {
        if !self.server_up {
            return Ok(());
        }
        let now = self.kernel.now();
        self.server_up = false;
        // "When the BioOpera server fails, ongoing processes are stopped."
        let jobs: Vec<(JobId, String)> = self
            .in_flight
            .iter()
            .map(|(j, f)| (*j, f.node.clone()))
            .collect();
        for (job, node) in jobs {
            if let Some(n) = self.cluster.node_mut(&node) {
                n.abort_job(now, job);
            }
        }
        // All volatile server memory is gone — including awareness events
        // recorded this step but not yet flushed (the index is rebuilt
        // from the store on recovery).
        self.instances.clear();
        self.in_flight.clear();
        self.ready_queue.clear();
        self.pec_buffer.clear();
        self.node_health.clear();
        self.awareness.discard_pending();
        self.store.poison();
        self.resync_all_nodes();
        if let Some(delay) = self.cfg.backup_failover {
            self.kernel
                .schedule_after(delay, EngineEvent::BackupFailover);
        }
        self.log("server crash: volatile state lost; jobs stopped".into());
        Ok(())
    }

    fn on_server_recover(&mut self) -> EngineResult<()> {
        if self.server_up {
            return Ok(());
        }
        self.store = Store::open(self.disk.clone())?;
        self.store.set_compaction_policy(Some(CompactionPolicy {
            wal_bytes_threshold: self.cfg.compact_wal_bytes,
            min_wal_batches: 1,
        }));
        self.awareness = Awareness::open_tail(&self.store)?;
        self.server_up = true;
        let requeued = self.rebuild_from_store()?;
        self.awareness
            .record(self.kernel.now(), EventKind::ServerRecover { requeued });
        self.flush_awareness()?;
        self.log("server recovered: instances rebuilt from the instance space".into());
        self.ensure_heartbeat();
        Ok(())
    }

    /// Rebuild all volatile state from the persistent spaces (cold start
    /// and post-crash recovery use the same path).  Returns how many
    /// dispatched/ready tasks were pulled back into the activity queue.
    fn rebuild_from_store(&mut self) -> EngineResult<u64> {
        self.instances.clear();
        self.ready_queue.clear();
        self.in_flight.clear();
        // Node health records are authoritative in the configuration
        // space; reload them and re-derive the quarantine-expiry timers
        // that died with the server's kernel state.
        self.node_health.clear();
        for (key, bytes) in self
            .store
            .scan_prefix(Space::Configuration, dependability::HEALTH_PREFIX)?
        {
            let Some(name) = key.strip_prefix(dependability::HEALTH_PREFIX) else {
                continue;
            };
            let health: NodeHealth = serde_json::from_slice(&bytes)
                .map_err(|e| EngineError::Internal(format!("corrupt node health {key}: {e}")))?;
            self.node_health.insert(name.to_string(), health);
        }
        let now = self.kernel.now();
        let interval = self.cfg.dependability.quarantine_interval;
        let expirations: Vec<(String, SimTime, u64)> = self
            .node_health
            .iter()
            .filter(|(_, h)| h.is_quarantined())
            .map(|(n, h)| {
                let started = h.quarantined_at.unwrap_or(now);
                (n.clone(), started + interval, h.epoch)
            })
            .collect();
        for (name, expire_at, epoch) in expirations {
            if expire_at > now {
                self.kernel.schedule_at(
                    expire_at,
                    EngineEvent::QuarantineExpire { node: name, epoch },
                );
            } else {
                // The interval elapsed while the server was down.
                self.on_quarantine_expire(now, &name, epoch)?;
            }
        }
        let headers = self.store.scan_prefix(Space::Instance, "inst/")?;
        let mut ids: Vec<InstanceId> = Vec::new();
        for (key, bytes) in &headers {
            if key.ends_with("/header") {
                let header: InstanceHeader = serde_json::from_slice(bytes)
                    .map_err(|e| EngineError::Internal(format!("corrupt header {key}: {e}")))?;
                ids.push(header.id);
                let template = self.load_template(&header.template)?;
                self.instances.insert(
                    header.id,
                    InstanceMem {
                        template,
                        header,
                        tasks: BTreeMap::new(),
                    },
                );
            }
        }
        for (key, bytes) in &headers {
            if let Some(rest) = key.strip_prefix("inst/") {
                if let Some((id_str, task_key)) = rest.split_once("/task/") {
                    let id: InstanceId = id_str
                        .parse()
                        .map_err(|_| EngineError::Internal(format!("bad key {key}")))?;
                    let rec: TaskRecord = serde_json::from_slice(bytes)
                        .map_err(|e| EngineError::Internal(format!("corrupt task {key}: {e}")))?;
                    if let Some(mem) = self.instances.get_mut(&id) {
                        mem.tasks.insert(task_key.to_string(), rec);
                    }
                }
            }
        }
        self.next_instance_id = ids.iter().max().map(|m| m + 1).unwrap_or(1);
        // In-flight work was lost with the server: re-queue it.  Container
        // tasks (parallel parents, subprocesses) stay Dispatched — their
        // children records / child instances drive them.
        let mut requeue: Vec<(InstanceId, String)> = Vec::new();
        for (id, mem) in self.instances.iter() {
            if mem.header.status.is_terminal() {
                continue;
            }
            for (path, rec) in mem.tasks.iter() {
                match rec.state {
                    TaskState::Dispatched if !mem.is_container(path) => {
                        requeue.push((*id, path.clone()));
                    }
                    TaskState::Ready => requeue.push((*id, path.clone())),
                    _ => {}
                }
            }
        }
        requeue.sort();
        let requeued = requeue.len() as u64;
        for (id, path) in requeue {
            let Some(rec) = self
                .instances
                .get_mut(&id)
                .and_then(|m| m.tasks.get_mut(&path))
            else {
                continue;
            };
            if rec.state == TaskState::Dispatched {
                rec.state = TaskState::Ready;
                rec.node = None;
                // The job was running when the server died; its wait
                // starts over at recovery.
                rec.ready_at = Some(now);
            } else if rec.ready_at.is_none() {
                // A task that sat Ready through the outage keeps its
                // persisted enqueue time, so queue-wait metrics report
                // the full wait including the outage.  Records written
                // before `ready_at` existed decode as `None` and get the
                // recovery time as a lower bound.
                rec.ready_at = Some(now);
            }
            // Reconstruct the pending backoff timer: the RetryAt event
            // died with the kernel consumer, but the deadline survived in
            // the record.  A deadline already in the past needs no event —
            // the pump dispatches it immediately.
            if let Some(t) = rec.retry_at() {
                if t > now {
                    self.kernel.schedule_at(
                        t,
                        EngineEvent::RetryAt {
                            instance: id,
                            path: path.clone(),
                        },
                    );
                }
            }
            self.persist_task(id, &path)?;
            self.enqueue_ready(id, path);
        }
        // Reconcile the rare crash window between "child instance became
        // terminal" and "parent task concluded": deliver those completions
        // now so the parent is not stuck in Dispatched forever.
        let pending_children: Vec<(InstanceId, String, InstanceId, bool)> = self
            .instances
            .iter()
            .filter_map(|(cid, cm)| {
                let (pid, ptask) = cm.header.parent.clone()?;
                if !cm.header.status.is_terminal() {
                    return None;
                }
                let parent = self.instances.get(&pid)?;
                let rec = parent.tasks.get(&ptask)?;
                (rec.state == TaskState::Dispatched).then(|| {
                    (
                        pid,
                        ptask,
                        *cid,
                        cm.header.status == InstanceStatus::Completed,
                    )
                })
            })
            .collect();
        for (pid, ptask, cid, success) in pending_children {
            self.on_child_instance_done(pid, &ptask, cid, success)?;
        }
        Ok(requeued)
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    /// Try to dispatch everything in the ready queue.
    fn pump(&mut self) -> EngineResult<()> {
        if !self.server_up
            || self.operator_suspended
            || self.cluster.network() == NetworkState::Down
        {
            return Ok(());
        }
        let now = self.kernel.now();
        let mut deferred: VecDeque<(InstanceId, String)> = VecDeque::new();
        while let Some((id, path)) = self.ready_queue.pop_front() {
            let Some(mem) = self.instances.get(&id) else {
                continue;
            };
            if mem.header.status != InstanceStatus::Running {
                deferred.push_back((id, path));
                continue;
            }
            let Some(rec) = mem.tasks.get(&path) else {
                continue;
            };
            if rec.state != TaskState::Ready {
                continue; // stale queue entry
            }
            // Parked on a backoff deadline: its RetryAt event wakes us.
            if rec.retry_at().map(|t| t > now).unwrap_or(false) {
                deferred.push_back((id, path));
                continue;
            }
            match self.task_flavor(id, &path) {
                TaskFlavor::Activity(binding) => {
                    if !self.dispatch_activity(id, &path, &binding)? {
                        deferred.push_back((id, path));
                    }
                }
                TaskFlavor::ParallelParent => {
                    let (children, outcome) = {
                        let Some(mem) = self.instances.get_mut(&id) else {
                            self.note_stale(id, Some(&path), "parallel expansion");
                            continue;
                        };
                        let mut view = InstanceView {
                            template: &mem.template,
                            header: &mut mem.header,
                            tasks: &mut mem.tasks,
                        };
                        navigator::expand_parallel(&mut view, &path, self.kernel.now())?
                    };
                    let extra: Vec<String> =
                        children.iter().cloned().chain([path.clone()]).collect();
                    self.persist_after_nav(id, &outcome, &extra)?;
                    for child in children {
                        self.enqueue_ready(id, child);
                    }
                    self.apply_outcome(id, outcome)?;
                }
                TaskFlavor::Subprocess(template_name) => {
                    self.start_subprocess(id, &path, &template_name)?;
                }
                TaskFlavor::Unknown => {
                    // The queue entry's record or template declaration is
                    // gone (foreign journal record, template mismatch):
                    // drop it as a recorded stale event rather than
                    // poisoning the whole step.
                    self.note_stale(id, Some(&path), "dispatch: task has no flavor");
                }
            }
        }
        self.ready_queue = deferred;
        Ok(())
    }

    fn task_flavor(&self, id: InstanceId, path: &str) -> TaskFlavor {
        let Some(mem) = self.instances.get(&id) else {
            return TaskFlavor::Unknown;
        };
        let Some(rec) = mem.tasks.get(path) else {
            return TaskFlavor::Unknown;
        };
        if let Some(parent) = rec.parallel_parent() {
            return match navigator::parallel_body(&mem.template, parent) {
                Some(ParallelBody::Activity(b)) => TaskFlavor::Activity(b.clone()),
                Some(ParallelBody::Subprocess(t)) => TaskFlavor::Subprocess(t.clone()),
                None => TaskFlavor::Unknown,
            };
        }
        match mem.template.task(path).map(|t| &t.kind) {
            Some(TaskKind::Activity { binding }) => TaskFlavor::Activity(binding.clone()),
            Some(TaskKind::Parallel { .. }) => TaskFlavor::ParallelParent,
            Some(TaskKind::Subprocess { template }) => TaskFlavor::Subprocess(template.clone()),
            None => TaskFlavor::Unknown,
        }
    }

    /// Dispatch one activity; `false` means no node is available now.
    fn dispatch_activity(
        &mut self,
        id: InstanceId,
        path: &str,
        binding: &ExternalBinding,
    ) -> EngineResult<bool> {
        let now = self.kernel.now();
        let program = self
            .library
            .get(&binding.program)
            .ok_or_else(|| EngineError::UnknownProgram(binding.program.clone()))?;
        // Node views with committed (in-transit) jobs accounted.
        let mut committed: BTreeMap<&str, u32> = BTreeMap::new();
        for f in self.in_flight.values() {
            *committed.entry(f.node.as_str()).or_default() += 1;
        }
        let views: Vec<NodeView> = self
            .cluster
            .nodes()
            .iter()
            .map(|n| {
                let quarantined = self
                    .node_health
                    .get(&n.spec.name)
                    .map(|h| h.is_quarantined())
                    .unwrap_or(false);
                NodeView::new(
                    n.spec.name.clone(),
                    n.spec.os.clone(),
                    n.spec.speed(),
                    n.cpus_online(),
                    committed.get(n.spec.name.as_str()).copied().unwrap_or(0),
                    n.load_fraction(),
                    // A partitioned node is indistinguishable from a down
                    // one for dispatch purposes.
                    n.is_up() && n.is_reachable(),
                    quarantined,
                )
            })
            .collect();
        let Some(node_name) = dispatcher::schedule(self.cfg.policy.as_mut(), &views, binding)
        else {
            return Ok(false);
        };
        let node_name = node_name.to_string();
        // Bind inputs and run the (deterministic) program now; the node
        // will "execute" for the program's declared cost in virtual time.
        let Some(inputs) = self.instances.get(&id).and_then(|mem| {
            let rec = mem.tasks.get(path)?;
            Some(if rec.is_parallel_child() {
                rec.inputs.clone()
            } else {
                navigator::bind_inputs_parts(&mem.template, &mem.header, &mem.tasks, path)
            })
        }) else {
            self.note_stale(id, Some(path), "dispatch");
            return Ok(true); // handled: the stale queue entry is dropped
        };
        let result = program(&inputs);
        let job = self.next_job_id;
        self.next_job_id += 1;
        let queue_ms = {
            let Some(rec) = self
                .instances
                .get_mut(&id)
                .and_then(|m| m.tasks.get_mut(path))
            else {
                self.note_stale(id, Some(path), "dispatch");
                return Ok(true);
            };
            rec.state = TaskState::Dispatched;
            rec.node = Some(node_name.clone());
            rec.started_at = Some(now);
            rec.inputs = inputs;
            // The backoff deadline is spent; budget counters and the
            // poison set live on until a completion is delivered.
            if let Some(r) = rec.retry.as_mut() {
                r.retry_at = None;
            }
            // Queue-wait runs from the *persisted* enqueue time, so a
            // wait spanning a server outage is reported in full.
            rec.ready_at
                .take()
                .map(|since| now.saturating_sub(since).as_millis())
                .unwrap_or(0)
        };
        self.persist_task(id, path)?;
        self.awareness.record(
            now,
            EventKind::TaskStart {
                instance: id,
                path: path.to_string(),
                node: node_name.clone(),
                job,
                queue_ms,
            },
        );
        self.in_flight.insert(
            job,
            InFlight {
                instance: id,
                path: path.to_string(),
                node: node_name.clone(),
                result,
                silent: false,
                starved_beats: 0,
            },
        );
        self.kernel.schedule_after(
            self.cfg.dispatch_latency,
            EngineEvent::JobStart {
                node: node_name,
                job,
            },
        );
        Ok(true)
    }

    fn start_subprocess(
        &mut self,
        id: InstanceId,
        path: &str,
        template_name: &str,
    ) -> EngineResult<()> {
        let now = self.kernel.now();
        let Some(initial) = self.instances.get(&id).and_then(|mem| {
            let rec = mem.tasks.get(path)?;
            Some(if rec.is_parallel_child() {
                rec.inputs.clone()
            } else {
                navigator::bind_inputs_parts(&mem.template, &mem.header, &mem.tasks, path)
            })
        }) else {
            self.note_stale(id, Some(path), "subprocess start");
            return Ok(());
        };
        {
            let Some(rec) = self
                .instances
                .get_mut(&id)
                .and_then(|m| m.tasks.get_mut(path))
            else {
                self.note_stale(id, Some(path), "subprocess start");
                return Ok(());
            };
            rec.state = TaskState::Dispatched;
            rec.started_at = Some(now);
            rec.inputs = initial.clone();
            rec.ready_at = None;
        }
        self.persist_task(id, path)?;
        // Late binding: the template is resolved from the template space
        // *now*, not when the parent was defined.
        let child = self.instantiate(template_name, initial, Some((id, path.to_string())))?;
        self.awareness.record(
            now,
            EventKind::SubprocessStart {
                instance: id,
                path: path.to_string(),
                child,
                template: template_name.to_string(),
            },
        );
        Ok(())
    }

    // ------------------------------------------------------------------
    // Outcome / persistence plumbing
    // ------------------------------------------------------------------

    /// Queue a ready task, stamping when it became ready on the record
    /// itself (first entry wins — re-queuing an already-waiting task
    /// keeps the original time).  The stamp lives on the persisted
    /// [`TaskRecord`], so queue-wait metrics survive a server crash.
    fn enqueue_ready(&mut self, id: InstanceId, path: String) {
        let now = self.kernel.now();
        if let Some(rec) = self
            .instances
            .get_mut(&id)
            .and_then(|m| m.tasks.get_mut(&path))
        {
            rec.ready_at.get_or_insert(now);
        }
        self.ready_queue.push_back((id, path));
    }

    /// Act on a navigation outcome: queue ready tasks, run compensations,
    /// propagate completion to parent instances.
    fn apply_outcome(&mut self, id: InstanceId, outcome: NavOutcome) -> EngineResult<()> {
        for path in &outcome.newly_ready {
            self.enqueue_ready(id, path.clone());
        }
        for (task, program) in &outcome.compensations {
            // Compensation programs are control actions; run them
            // immediately (zero-cost) and record them.
            if let Some(prog) = self.library.get(program) {
                let _ = prog(&BTreeMap::new());
            }
            self.awareness.record(
                self.kernel.now(),
                EventKind::TaskCompensate {
                    instance: id,
                    path: task.clone(),
                    program: program.clone(),
                },
            );
        }
        if outcome.completed || outcome.aborted {
            let parent = self
                .instances
                .get(&id)
                .and_then(|m| m.header.parent.clone());
            self.awareness.record(
                self.kernel.now(),
                if outcome.completed {
                    EventKind::InstanceComplete { instance: id }
                } else {
                    EventKind::InstanceAbort { instance: id }
                },
            );
            if let Some((pid, ptask)) = parent {
                self.on_child_instance_done(pid, &ptask, id, outcome.completed)?;
            }
        }
        Ok(())
    }

    /// A subprocess child instance finished; conclude the parent task.
    fn on_child_instance_done(
        &mut self,
        parent_id: InstanceId,
        parent_task: &str,
        child_id: InstanceId,
        success: bool,
    ) -> EngineResult<()> {
        let now = self.kernel.now();
        // A duplicate delivery (e.g. an orphaned pre-crash child finishing
        // after the task was re-driven) must not conclude the task twice.
        let parent_state = self
            .instances
            .get(&parent_id)
            .and_then(|m| m.tasks.get(parent_task))
            .map(|r| r.state);
        if parent_state != Some(TaskState::Dispatched) {
            self.awareness.record(
                now,
                EventKind::SubprocessDuplicate {
                    instance: parent_id,
                    path: parent_task.to_string(),
                    child: child_id,
                },
            );
            return Ok(());
        }
        if success {
            // The child's whiteboard fields matching the parent task's
            // declared outputs become the task outputs.
            let (outputs, child_cpu) = {
                let (Some(child), Some(parent)) = (
                    self.instances.get(&child_id),
                    self.instances.get(&parent_id),
                ) else {
                    self.note_stale(parent_id, Some(parent_task), "child completion");
                    return Ok(());
                };
                let declared: Vec<String> = parent
                    .tasks
                    .get(parent_task)
                    .map(|r| {
                        if r.is_parallel_child() {
                            // Children of parallel-subprocess bodies expose
                            // the whole child whiteboard.
                            Vec::new()
                        } else {
                            parent
                                .template
                                .task(parent_task)
                                .map(|t| t.outputs.iter().map(|f| f.name.clone()).collect())
                                .unwrap_or_default()
                        }
                    })
                    .unwrap_or_default();
                let outputs: BTreeMap<String, Value> = if declared.is_empty() {
                    child.header.whiteboard.clone()
                } else {
                    declared
                        .into_iter()
                        .filter_map(|f| child.header.whiteboard.get(&f).map(|v| (f, v.clone())))
                        .collect()
                };
                let child_cpu: f64 = child
                    .tasks
                    .values()
                    .filter(|r| r.state == TaskState::Ended)
                    .map(|r| {
                        // Skip container records (their cpu duplicates
                        // children).
                        let is_container = !r.is_parallel_child()
                            && matches!(
                                child.template.task(&r.path).map(|t| &t.kind),
                                Some(TaskKind::Parallel { .. }) | Some(TaskKind::Subprocess { .. })
                            );
                        if is_container {
                            0.0
                        } else {
                            r.cpu_ms
                        }
                    })
                    .sum();
                (outputs, child_cpu)
            };
            let outcome = {
                let Some(mem) = self.instances.get_mut(&parent_id) else {
                    self.note_stale(parent_id, Some(parent_task), "child completion");
                    return Ok(());
                };
                let mut view = InstanceView {
                    template: &mem.template,
                    header: &mut mem.header,
                    tasks: &mut mem.tasks,
                };
                navigator::on_task_ended(&mut view, parent_task, outputs, now, child_cpu)?
            };
            self.persist_after_nav(parent_id, &outcome, &[parent_task.to_string()])?;
            self.apply_outcome(parent_id, outcome)?;
        } else {
            let outcome = {
                let Some(mem) = self.instances.get_mut(&parent_id) else {
                    self.note_stale(parent_id, Some(parent_task), "child failure");
                    return Ok(());
                };
                let mut view = InstanceView {
                    template: &mem.template,
                    header: &mut mem.header,
                    tasks: &mut mem.tasks,
                };
                navigator::on_task_failed(&mut view, parent_task, FailureKind::Program, now)?
            };
            self.persist_after_nav(parent_id, &outcome, &[parent_task.to_string()])?;
            self.apply_outcome(parent_id, outcome)?;
        }
        Ok(())
    }

    /// Handle a system failure of `(id, path)` hosted on `node` (if
    /// known).  The dependability policy decides between the paper's
    /// masked requeue (now with a backoff deadline) and poison/budget
    /// escalation to program-failure semantics; node-attributable causes
    /// additionally feed the node's health score.
    fn system_failure(
        &mut self,
        id: InstanceId,
        path: &str,
        node: Option<&str>,
        cause: SystemCause,
        why: &str,
    ) -> EngineResult<()> {
        let now = self.kernel.now();
        if self
            .instances
            .get(&id)
            .map(|m| !m.tasks.contains_key(path))
            .unwrap_or(true)
        {
            // The failure outlived its instance (aborted between the fault
            // and its delivery): record it and move on.
            self.note_stale(id, Some(path), why);
            return Ok(());
        }
        let decision = if self.cfg.dependability.enabled {
            let Some(rec) = self
                .instances
                .get_mut(&id)
                .and_then(|m| m.tasks.get_mut(path))
            else {
                self.note_stale(id, Some(path), why);
                return Ok(());
            };
            let retry = rec.retry_mut();
            retry.sys_failures += 1;
            if cause == SystemCause::NodeFault {
                if let Some(n) = node {
                    retry.note_failed_node(n);
                }
            }
            let snapshot = retry.clone();
            self.cfg.dependability.decide(id, path, &snapshot, cause)
        } else {
            RetryDecision::Requeue {
                delay: SimTime::ZERO,
            }
        };
        match decision {
            RetryDecision::Requeue { delay } => {
                let outcome = {
                    let Some(mem) = self.instances.get_mut(&id) else {
                        self.note_stale(id, Some(path), why);
                        return Ok(());
                    };
                    let mut view = InstanceView {
                        template: &mem.template,
                        header: &mut mem.header,
                        tasks: &mut mem.tasks,
                    };
                    navigator::on_task_failed(&mut view, path, FailureKind::System, now)?
                };
                self.awareness.record(
                    now,
                    EventKind::TaskSystemFail {
                        instance: id,
                        path: path.to_string(),
                        reason: why.to_string(),
                    },
                );
                if delay > SimTime::ZERO {
                    let retry_at = now + delay;
                    let attempt = {
                        let Some(rec) = self
                            .instances
                            .get_mut(&id)
                            .and_then(|m| m.tasks.get_mut(path))
                        else {
                            self.note_stale(id, Some(path), why);
                            return Ok(());
                        };
                        let retry = rec.retry_mut();
                        retry.retry_at = Some(retry_at);
                        retry.sys_failures
                    };
                    self.kernel.schedule_at(
                        retry_at,
                        EngineEvent::RetryAt {
                            instance: id,
                            path: path.to_string(),
                        },
                    );
                    self.awareness.record(
                        now,
                        EventKind::TaskBackoff {
                            instance: id,
                            path: path.to_string(),
                            attempt,
                            delay_ms: delay.as_millis(),
                        },
                    );
                }
                self.persist_after_nav(id, &outcome, &[path.to_string()])?;
                self.apply_outcome(id, outcome)?;
            }
            RetryDecision::Escalate { reason } => {
                // Stop masking: the failure becomes visible through the
                // task's ordinary retry/failure-policy machinery.
                let outcome = {
                    let Some(mem) = self.instances.get_mut(&id) else {
                        self.note_stale(id, Some(path), why);
                        return Ok(());
                    };
                    if let Some(r) = mem.tasks.get_mut(path).and_then(|rec| rec.retry.as_mut()) {
                        r.retry_at = None;
                    }
                    let mut view = InstanceView {
                        template: &mem.template,
                        header: &mut mem.header,
                        tasks: &mut mem.tasks,
                    };
                    navigator::on_task_failed(&mut view, path, FailureKind::Program, now)?
                };
                self.awareness.record(
                    now,
                    EventKind::TaskPoisoned {
                        instance: id,
                        path: path.to_string(),
                        reason: reason.clone(),
                    },
                );
                self.log(format!("instance {id}: task {path} escalated ({reason})"));
                self.persist_after_nav(id, &outcome, &[path.to_string()])?;
                self.apply_outcome(id, outcome)?;
            }
        }
        if self.cfg.dependability.enabled && cause == SystemCause::NodeFault {
            if let Some(name) = node {
                self.note_node_failure(name, now)?;
            }
        }
        Ok(())
    }

    /// Charge one node-attributable failure to `name`'s health score,
    /// quarantining it at the configured threshold.
    fn note_node_failure(&mut self, name: &str, now: SimTime) -> EngineResult<()> {
        let threshold = self.cfg.dependability.quarantine_threshold;
        let interval = self.cfg.dependability.quarantine_interval;
        let health = self.node_health.entry(name.to_string()).or_default();
        let quarantined = health.on_job_failed(now, threshold);
        let (failures, epoch) = (health.consecutive_failures, health.epoch);
        if quarantined {
            self.awareness.record(
                now,
                EventKind::NodeQuarantine {
                    node: name.to_string(),
                    failures,
                },
            );
            self.kernel.schedule_at(
                now + interval,
                EngineEvent::QuarantineExpire {
                    node: name.to_string(),
                    epoch,
                },
            );
            self.log(format!(
                "node {name} quarantined after {failures} consecutive failures"
            ));
        }
        self.persist_node_health(name)?;
        Ok(())
    }

    /// A node delivered a completed job: end its failure streak.
    fn note_node_success(&mut self, name: &str) -> EngineResult<()> {
        if !self.cfg.dependability.enabled {
            return Ok(());
        }
        let Some(health) = self.node_health.get_mut(name) else {
            return Ok(());
        };
        let before = health.clone();
        health.on_job_succeeded();
        if *health != before {
            self.persist_node_health(name)?;
        }
        Ok(())
    }

    /// Write `name`'s health record to the configuration space.
    fn persist_node_health(&mut self, name: &str) -> EngineResult<()> {
        if !self.server_up {
            return Ok(());
        }
        let Some(health) = self.node_health.get(name) else {
            return Ok(());
        };
        self.store.put(
            Space::Configuration,
            dependability::health_key(name),
            serde_json::to_vec(health).map_err(bioopera_store::StoreError::from)?,
        )?;
        Ok(())
    }

    /// The dependability health score of a node, if it has one.
    pub fn node_health(&self, name: &str) -> Option<&NodeHealth> {
        self.node_health.get(name)
    }

    fn fail_jobs(&mut self, killed: &[JobId], why: &str) -> EngineResult<()> {
        for job in killed {
            if let Some(f) = self.in_flight.remove(job) {
                if self.server_up {
                    // A crash kills the whole node, not one job — an
                    // environment fault, so the node's health streak and
                    // the tasks' poison sets are not charged.
                    self.system_failure(
                        f.instance,
                        &f.path,
                        Some(&f.node),
                        SystemCause::Environment,
                        why,
                    )?;
                }
            }
        }
        self.resync_all_nodes();
        Ok(())
    }

    fn log(&mut self, msg: String) {
        self.event_log.push((self.kernel.now(), msg));
    }

    /// An event referenced an instance or task record the engine no
    /// longer (or never) knew — a completion outliving an abort, a
    /// foreign journal record, a cross-shard race.  The paper's stance
    /// is that the server must survive its own history: record the
    /// anomaly in the awareness space and drop the event instead of
    /// panicking.
    fn note_stale(&mut self, instance: InstanceId, path: Option<&str>, context: &str) {
        self.awareness.record(
            self.kernel.now(),
            EventKind::StaleEvent {
                instance,
                path: path.map(str::to_string),
                context: context.to_string(),
            },
        );
    }

    /// A bounded breakdown of what is stuck, appended to the deadlock
    /// diagnostic — rendered by the shared [`crate::diagnostics::survey`]
    /// so "suspended (resumable)" vs "stuck" reads identically on the
    /// serial and shard paths.
    fn deadlock_detail(&self) -> String {
        crate::diagnostics::survey(
            self.instances
                .iter()
                .map(|(id, mem)| (*id, mem.header.status, &mem.tasks)),
        )
        .1
    }

    fn all_terminal(&self) -> bool {
        self.instances
            .values()
            .all(|m| m.header.status.is_terminal())
            || self.instances.is_empty()
    }

    /// Handle stalls: silent TEUs (paper event 10) trigger the operator
    /// restart the paper describes; anything else is a real deadlock.
    fn try_unstall(&mut self) -> EngineResult<bool> {
        if !self.server_up {
            // Trace ended with the server down: bring it back (an operator
            // would).
            self.on_server_recover()?;
            self.log("operator restarted the BioOpera server".into());
            return Ok(true);
        }
        if self.operator_suspended {
            self.operator_suspended = false;
            self.log("operator resumed the suspended computation".into());
            let ids: Vec<InstanceId> = self.instances.keys().copied().collect();
            for id in ids {
                if self.instance_status(id) == Some(InstanceStatus::Suspended) {
                    self.resume(id)?;
                }
            }
            return Ok(true);
        }
        // Quiescent but incomplete: instances stuck on dispatched tasks
        // whose results will never arrive (non-reporting TEUs) get the
        // operator-restart treatment.
        if self.in_flight.is_empty() && self.ready_queue.is_empty() {
            let stuck: Vec<InstanceId> = self
                .instances
                .iter()
                .filter(|(_, m)| {
                    m.header.status == InstanceStatus::Running
                        && m.tasks
                            .values()
                            .any(|r| r.state == TaskState::Dispatched && !m.is_container(&r.path))
                })
                .map(|(id, _)| *id)
                .collect();
            if !stuck.is_empty() {
                for id in stuck {
                    self.restart_instance(id)?;
                }
                self.auto_restarts += 1;
                return Ok(true);
            }
        }
        // Tasks parked on backoff deadlines whose RetryAt timer was lost
        // (it fired while the server was down, say): re-arm the earliest
        // so time can advance to it.
        let next_retry = self
            .ready_queue
            .iter()
            .filter_map(|(id, path)| {
                let rec = self.instances.get(id)?.tasks.get(path)?;
                if rec.state != TaskState::Ready {
                    return None;
                }
                rec.retry_at()
                    .filter(|t| *t > self.kernel.now())
                    .map(|t| (t, *id, path.clone()))
            })
            .min();
        if let Some((t, id, path)) = next_retry {
            self.kernel
                .schedule_at(t, EngineEvent::RetryAt { instance: id, path });
            return Ok(true);
        }
        // A partition that the trace never healed: the buffered results
        // are the only way forward, so the operator repairs the links.
        let partitioned: Vec<String> = self
            .cluster
            .nodes()
            .iter()
            .filter(|n| !n.is_reachable())
            .map(|n| n.spec.name.clone())
            .collect();
        if !partitioned.is_empty() {
            let now = self.kernel.now();
            for name in partitioned {
                if let Some(n) = self.cluster.node_mut(&name) {
                    n.set_reachable(true);
                }
                self.awareness
                    .record(now, EventKind::NodeRejoin { node: name });
            }
            let buffered = std::mem::take(&mut self.pec_buffer);
            for (node, job, cpu_ms) in buffered {
                self.deliver_completion(now, &node, job, cpu_ms)?;
            }
            self.log("operator repaired the partitioned links".into());
            self.resync_all_nodes();
            return Ok(true);
        }
        // Ready work that could not be placed (all nodes down at the end of
        // a trace, say) resolves itself only if nodes return; if the queue
        // has entries but no event is pending, nothing will ever change.
        Ok(false)
    }

    // ---- persistence helpers ----

    /// Commit a persistence batch, coalescing any awareness events
    /// buffered so far into the same disk append (group commit).  Each
    /// batch stays its own atomic WAL frame, but the events become
    /// durable *with* the navigation state they precede instead of
    /// waiting for the end-of-step flush — persisted-before-visible is
    /// preserved, one disk append cheaper per navigation.
    fn commit_with_awareness(&mut self, batch: Batch) -> EngineResult<()> {
        if self.server_up {
            if let Some(events) = self.awareness.pending_batch()? {
                self.store.apply_many([events, batch])?;
                self.awareness.confirm_flushed();
                return Ok(());
            }
        }
        self.store.apply(batch)?;
        Ok(())
    }

    /// Persist the header and every task record of an instance in one
    /// atomic batch (used at instantiation).
    fn persist_full_instance(&mut self, id: InstanceId) -> EngineResult<()> {
        // Stamp enqueue times before the records hit disk, so an initial
        // task's queue wait is measured from instantiation even across a
        // crash.
        let now = self.kernel.now();
        if let Some(mem) = self.instances.get_mut(&id) {
            for rec in mem.tasks.values_mut() {
                if rec.state == TaskState::Ready {
                    rec.ready_at.get_or_insert(now);
                }
            }
        }
        let mem = self
            .instances
            .get(&id)
            .ok_or(EngineError::UnknownInstance(id))?;
        let mut batch = Batch::new();
        batch.put(
            Space::Instance,
            keys::header(id),
            serde_json::to_vec(&mem.header).map_err(bioopera_store::StoreError::from)?,
        );
        for (path, rec) in &mem.tasks {
            batch.put(
                Space::Instance,
                keys::task(id, path),
                serde_json::to_vec(rec).map_err(bioopera_store::StoreError::from)?,
            );
        }
        self.commit_with_awareness(batch)?;
        Ok(())
    }

    fn persist_header(&mut self, id: InstanceId) -> EngineResult<()> {
        let mem = self
            .instances
            .get(&id)
            .ok_or(EngineError::UnknownInstance(id))?;
        self.store.put(
            Space::Instance,
            keys::header(id),
            serde_json::to_vec(&mem.header).map_err(bioopera_store::StoreError::from)?,
        )?;
        Ok(())
    }

    fn persist_task(&mut self, id: InstanceId, path: &str) -> EngineResult<()> {
        let Some(mem) = self.instances.get(&id) else {
            return Ok(());
        };
        let Some(rec) = mem.tasks.get(path) else {
            return Ok(());
        };
        self.store.put(
            Space::Instance,
            keys::task(id, path),
            serde_json::to_vec(rec).map_err(bioopera_store::StoreError::from)?,
        )?;
        Ok(())
    }

    /// Persist the header plus every task record a navigation step could
    /// have touched, in one atomic batch.
    fn persist_after_nav(
        &mut self,
        id: InstanceId,
        outcome: &NavOutcome,
        extra_paths: &[String],
    ) -> EngineResult<()> {
        let Some(mem) = self.instances.get(&id) else {
            return Ok(());
        };
        let now = self.kernel.now();
        let mut paths: BTreeSet<String> = BTreeSet::new();
        for p in extra_paths {
            paths.insert(p.clone());
        }
        for p in &outcome.newly_ready {
            paths.insert(p.clone());
        }
        for p in &outcome.newly_skipped {
            paths.insert(p.clone());
        }
        for (p, _) in &outcome.compensations {
            paths.insert(p.clone());
        }
        // Mapping-phase targets and parallel parents of anything touched.
        for p in paths.clone() {
            if let Some(parent) = mem
                .tasks
                .get(&p)
                .and_then(|r| r.parallel_parent().map(str::to_string))
            {
                paths.insert(parent.clone());
                // The parent's mapping targets too (it may have concluded).
                for flow in mem.template.dataflows_from_task(&parent) {
                    if let bioopera_ocr::model::DataRef::TaskField(t, _) = &flow.to {
                        paths.insert(t.clone());
                    }
                }
            }
            if mem.template.task(&p).is_some() {
                for flow in mem.template.dataflows_from_task(&p) {
                    if let bioopera_ocr::model::DataRef::TaskField(t, _) = &flow.to {
                        paths.insert(t.clone());
                    }
                }
            }
        }
        // Normalise the persisted enqueue stamp before serialising:
        // records entering `Ready` carry the time they queued (first
        // entry wins), records leaving it drop the stamp.  Doing this
        // here — before the batch is built — is what makes queue-wait
        // metrics crash-proof.
        if let Some(mem) = self.instances.get_mut(&id) {
            for p in &paths {
                if let Some(rec) = mem.tasks.get_mut(p) {
                    if rec.state == TaskState::Ready {
                        rec.ready_at.get_or_insert(now);
                    } else {
                        rec.ready_at = None;
                    }
                }
            }
        }
        let Some(mem) = self.instances.get(&id) else {
            return Ok(());
        };
        let mut batch = Batch::new();
        batch.put(
            Space::Instance,
            keys::header(id),
            serde_json::to_vec(&mem.header).map_err(bioopera_store::StoreError::from)?,
        );
        for p in &paths {
            if let Some(rec) = mem.tasks.get(p) {
                batch.put(
                    Space::Instance,
                    keys::task(id, p),
                    serde_json::to_vec(rec).map_err(bioopera_store::StoreError::from)?,
                );
            }
        }
        self.commit_with_awareness(batch)?;
        Ok(())
    }

    // ---- node completion-event plumbing ----

    fn resync_node(&mut self, name: &str) {
        let Some(node) = self.cluster.node(name) else {
            return;
        };
        if let Some((at, _)) = node.next_completion(self.kernel.now()) {
            self.kernel.schedule_at(
                at,
                EngineEvent::JobDone {
                    node: name.to_string(),
                    generation: node.generation,
                },
            );
        }
    }

    fn resync_all_nodes(&mut self) {
        let names: Vec<String> = self
            .cluster
            .nodes()
            .iter()
            .map(|n| n.spec.name.clone())
            .collect();
        for n in names {
            self.resync_node(&n);
        }
    }
}

enum TaskFlavor {
    Activity(ExternalBinding),
    ParallelParent,
    Subprocess(String),
    Unknown,
}
