//! Metrics primitives for the awareness layer: latency histograms,
//! availability/utilization series samples and their time-binned rollups,
//! and the per-run [`RunReport`] JSON emitter.
//!
//! The paper's awareness model (§3.4) is not only an event log — it is the
//! substrate for *queries* about the computing environment.  This module
//! holds the numeric machinery those queries share: a log-scale histogram
//! for task run/queue latencies, and the binned series rollups that the
//! Figure 5/6 regenerators consume instead of hand-rolling their own
//! aggregation.

use bioopera_cluster::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log₂ buckets in a [`Histogram`].  Bucket `i` covers
/// `[2^(i-1), 2^i)` milliseconds (bucket 0 is `[0, 1)`); 40 buckets reach
/// past 17 virtual years, beyond any simulated run.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-memory log-scale latency histogram over millisecond values.
///
/// Mergeable, serializable, and cheap to update on every event — the
/// awareness index maintains one for task run times and one for activity
/// queue waits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Per-bucket observation counts (log₂ buckets, see
    /// [`HISTOGRAM_BUCKETS`]).
    counts: Vec<u64>,
    /// Total observations.
    count: u64,
    /// Sum of observed values (exact, for the mean).
    sum_ms: f64,
    /// Smallest observed value.
    min_ms: u64,
    /// Largest observed value.
    max_ms: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ms: 0.0,
            min_ms: u64::MAX,
            max_ms: 0,
        }
    }

    fn bucket_of(ms: u64) -> usize {
        if ms == 0 {
            0
        } else {
            (64 - ms.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Record one observation of `ms` milliseconds.
    pub fn observe(&mut self, ms: u64) {
        self.counts[Self::bucket_of(ms)] += 1;
        self.count += 1;
        self.sum_ms += ms as f64;
        self.min_ms = self.min_ms.min(ms);
        self.max_ms = self.max_ms.max(ms);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ms += other.sum_ms;
        self.min_ms = self.min_ms.min(other.min_ms);
        self.max_ms = self.max_ms.max(other.max_ms);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observed value, ms (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms / self.count as f64
        }
    }

    /// Smallest observation, ms (`None` when empty).
    pub fn min_ms(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_ms)
    }

    /// Largest observation, ms.
    pub fn max_ms(&self) -> u64 {
        self.max_ms
    }

    /// Approximate `q`-quantile (0..=1): the upper bound of the bucket
    /// containing the `q`-th observation, clamped to the observed max.
    pub fn quantile_ms(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if i == 0 { 1 } else { 1u64 << i };
                return upper.min(self.max_ms.max(1));
            }
        }
        self.max_ms
    }

    /// Per-bucket counts (for report emission / plotting).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }
}

/// One sample of the Figures 5/6 availability/utilization series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesSample {
    /// Sample time.
    pub at: SimTime,
    /// Processors available from the server's perspective.
    pub availability: u32,
    /// Processors executing BioOpera jobs.
    pub utilization: f64,
}

/// One bin of a [`SeriesRollup`]: mean availability/utilization over a
/// time window, carry-filled from the preceding sample when the window
/// itself is empty (the chart convention of Figures 5/6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RollupBin {
    /// Window start, virtual ms.
    pub start_ms: u64,
    /// Window end (exclusive), virtual ms.
    pub end_ms: u64,
    /// Samples that fell inside the window (0 when carry-filled).
    pub samples: u32,
    /// Mean processors available.
    pub availability: f64,
    /// Mean processors computing BioOpera jobs.
    pub utilization: f64,
}

/// A binned availability/utilization time series — the shared rollup the
/// figure regenerators, the [`RunReport`] and the awareness example all
/// consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesRollup {
    bins: Vec<RollupBin>,
}

impl SeriesRollup {
    /// `bins` equal-width windows over `[0, horizon_days]` days.  Empty
    /// windows carry the nearest preceding sample forward (falling back to
    /// the first sample), which is exactly the aggregation the ASCII
    /// lifecycle charts have always used — their columns are these bins.
    pub fn over_days(samples: &[SeriesSample], horizon_days: f64, bins: usize) -> Self {
        let mut out = Vec::with_capacity(bins);
        for col in 0..bins {
            let lo = horizon_days * col as f64 / bins as f64;
            let hi = horizon_days * (col + 1) as f64 / bins as f64;
            let bucket: Vec<&SeriesSample> = samples
                .iter()
                .filter(|s| {
                    let d = s.at.as_days_f64();
                    d >= lo && d < hi
                })
                .collect();
            let (avail, util, n) = if bucket.is_empty() {
                match samples
                    .iter()
                    .rev()
                    .find(|s| s.at.as_days_f64() < hi)
                    .or(samples.first())
                {
                    Some(prev) => (prev.availability as f64, prev.utilization, 0),
                    None => (0.0, 0.0, 0),
                }
            } else {
                (
                    bucket.iter().map(|s| s.availability as f64).sum::<f64>() / bucket.len() as f64,
                    bucket.iter().map(|s| s.utilization).sum::<f64>() / bucket.len() as f64,
                    bucket.len() as u32,
                )
            };
            out.push(RollupBin {
                start_ms: SimTime::from_secs_f64(lo * 86_400.0).as_millis(),
                end_ms: SimTime::from_secs_f64(hi * 86_400.0).as_millis(),
                samples: n,
                availability: avail,
                utilization: util,
            });
        }
        SeriesRollup { bins: out }
    }

    /// Fixed-width bins of `width` virtual time covering all samples.
    pub fn by_width(samples: &[SeriesSample], width: SimTime) -> Self {
        let width_ms = width.as_millis().max(1);
        let horizon_ms = samples.last().map(|s| s.at.as_millis() + 1).unwrap_or(0);
        let bins = horizon_ms.div_ceil(width_ms) as usize;
        let horizon_days = (bins as u64 * width_ms) as f64 / 86_400_000.0;
        Self::over_days(samples, horizon_days, bins.max(1))
    }

    /// The bins.
    pub fn bins(&self) -> &[RollupBin] {
        &self.bins
    }
}

/// The Figures 5/6 CSV rendering of a series (`day,availability,utilization`).
pub fn series_csv(samples: &[SeriesSample]) -> String {
    let mut csv = String::from("day,availability,utilization\n");
    for s in samples {
        let _ = writeln!(
            csv,
            "{:.3},{},{:.2}",
            s.at.as_days_f64(),
            s.availability,
            s.utilization
        );
    }
    csv
}

/// Mean utilization over the samples matching `pred` (0 when none match) —
/// the before/after-upgrade comparison of the Figure 6 discussion.
pub fn mean_utilization_where(
    samples: &[SeriesSample],
    pred: impl Fn(&SeriesSample) -> bool,
) -> f64 {
    let v: Vec<f64> = samples
        .iter()
        .filter(|s| pred(s))
        .map(|s| s.utilization)
        .collect();
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

/// Everything one run tells the operator, as a single JSON document:
/// per-kind event counters, task latency histograms, the binned
/// availability/utilization series, and the labeled event log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Virtual time when the report was taken, ms.
    pub taken_at_ms: u64,
    /// History events recorded (durable + pending).
    pub events: u64,
    /// Event counts by kind label (`task.end`, `node.crash`, ...).
    pub counters: BTreeMap<String, u64>,
    /// Wall (dispatch→completion) latency of ended tasks.
    pub task_run_ms: Histogram,
    /// Activity-queue wait (ready→dispatch) of dispatched tasks.
    pub task_queue_ms: Histogram,
    /// Most concurrently in-flight tasks observed.
    pub peak_in_flight: u64,
    /// Reference-CPU milliseconds charged by ended tasks.
    pub total_cpu_ms: f64,
    /// Automatic operator restarts for non-reporting TEUs.
    pub auto_restarts: u32,
    /// Binned availability/utilization series.
    pub series: Vec<RollupBin>,
    /// The labeled event log: `(virtual ms, message)`.
    pub event_log: Vec<(u64, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for ms in [0u64, 1, 1, 3, 8, 100, 100, 100, 5_000] {
            h.observe(ms);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max_ms(), 5_000);
        assert_eq!(h.min_ms(), Some(0));
        assert!((h.mean_ms() - 5313.0 / 9.0).abs() < 1e-9);
        // The median observation (8 ms) lives in the [8,16) bucket.
        assert_eq!(h.quantile_ms(0.5), 16);
        assert_eq!(h.quantile_ms(1.0), 5_000);
        let mut other = Histogram::new();
        other.observe(1_000_000);
        h.merge(&other);
        assert_eq!(h.count(), 10);
        assert_eq!(h.max_ms(), 1_000_000);
    }

    #[test]
    fn rollup_bins_mean_and_carry() {
        let samples: Vec<SeriesSample> = (0..4)
            .map(|i| SeriesSample {
                at: SimTime::from_hours(i * 6), // all inside day 0
                availability: 10,
                utilization: i as f64,
            })
            .collect();
        let r = SeriesRollup::over_days(&samples, 2.0, 2);
        assert_eq!(r.bins().len(), 2);
        assert_eq!(r.bins()[0].samples, 4);
        assert!((r.bins()[0].utilization - 1.5).abs() < 1e-12);
        // Day 1 has no samples: carried forward from the last day-0 sample.
        assert_eq!(r.bins()[1].samples, 0);
        assert!((r.bins()[1].utilization - 3.0).abs() < 1e-12);
        assert!((r.bins()[1].availability - 10.0).abs() < 1e-12);
    }

    #[test]
    fn csv_matches_figure_format() {
        let samples = vec![SeriesSample {
            at: SimTime::from_hours(36),
            availability: 7,
            utilization: 3.25,
        }];
        assert_eq!(
            series_csv(&samples),
            "day,availability,utilization\n1.500,7,3.25\n"
        );
    }

    #[test]
    fn mean_utilization_filters() {
        let samples: Vec<SeriesSample> = (0..10)
            .map(|i| SeriesSample {
                at: SimTime::from_days(i),
                availability: 4,
                utilization: i as f64,
            })
            .collect();
        let m = mean_utilization_where(&samples, |s| s.at.as_days_f64() >= 5.0);
        assert!((m - 7.0).abs() < 1e-12);
        assert_eq!(mean_utilization_where(&samples, |_| false), 0.0);
    }
}
