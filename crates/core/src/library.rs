//! The activity library (paper §3.2, "library management element").
//!
//! "The library management element allows the definition of the runtime
//! aspects of activities: program to be invoked, input, output, where it
//! runs, how to pass arguments."  Here a program is a deterministic Rust
//! closure that, given the activity's input structure, produces its output
//! structure plus the amount of reference-CPU work the job represents; the
//! runtime charges that work to the node the dispatcher picked.
//!
//! Determinism matters: a retried or re-dispatched activity must produce
//! the same outputs, which is what makes recovery transparent.

use bioopera_ocr::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What a program run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramOutput {
    /// The activity's output structure.
    pub outputs: BTreeMap<String, Value>,
    /// Reference-CPU milliseconds of work this run represents.
    pub cost_ref_ms: f64,
}

impl ProgramOutput {
    /// An output set with zero cost (control-only activities).
    pub fn instant(outputs: BTreeMap<String, Value>) -> Self {
        ProgramOutput {
            outputs,
            cost_ref_ms: 0.0,
        }
    }

    /// Convenience builder from field pairs.
    pub fn from_fields(
        fields: impl IntoIterator<Item = (&'static str, Value)>,
        cost_ref_ms: f64,
    ) -> Self {
        ProgramOutput {
            outputs: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            cost_ref_ms,
        }
    }
}

/// A program body: inputs → outputs + cost, or a failure message.
pub type Program = dyn Fn(&BTreeMap<String, Value>) -> Result<ProgramOutput, String> + Send + Sync;

/// The library mapping external-binding program names to bodies.
#[derive(Clone, Default)]
pub struct ActivityLibrary {
    programs: BTreeMap<String, Arc<Program>>,
}

impl ActivityLibrary {
    /// Empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `name`; replaces any previous registration.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: Fn(&BTreeMap<String, Value>) -> Result<ProgramOutput, String> + Send + Sync + 'static,
    {
        self.programs.insert(name.into(), Arc::new(f));
        self
    }

    /// Register a program that always succeeds with fixed outputs and cost
    /// (useful for tests and control activities).
    pub fn register_const(
        &mut self,
        name: impl Into<String>,
        outputs: BTreeMap<String, Value>,
        cost_ref_ms: f64,
    ) -> &mut Self {
        self.register(name, move |_| {
            Ok(ProgramOutput {
                outputs: outputs.clone(),
                cost_ref_ms,
            })
        })
    }

    /// Look up a program.
    pub fn get(&self, name: &str) -> Option<Arc<Program>> {
        self.programs.get(name).cloned()
    }

    /// Registered program names (sorted).
    pub fn names(&self) -> Vec<&str> {
        self.programs.keys().map(|s| s.as_str()).collect()
    }
}

impl std::fmt::Debug for ActivityLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActivityLibrary")
            .field("programs", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_run() {
        let mut lib = ActivityLibrary::new();
        lib.register("math.double", |inputs| {
            let x = inputs
                .get("x")
                .and_then(|v| v.as_int())
                .ok_or_else(|| "missing int input x".to_string())?;
            Ok(ProgramOutput::from_fields([("y", Value::Int(x * 2))], 10.0))
        });
        let prog = lib.get("math.double").unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert("x".to_string(), Value::Int(21));
        let out = prog(&inputs).unwrap();
        assert_eq!(out.outputs["y"], Value::Int(42));
        assert_eq!(out.cost_ref_ms, 10.0);
        // Failure path.
        let err = prog(&BTreeMap::new()).unwrap_err();
        assert!(err.contains("missing"));
    }

    #[test]
    fn unknown_program_is_none_and_names_sorted() {
        let mut lib = ActivityLibrary::new();
        lib.register_const("z.prog", BTreeMap::new(), 0.0);
        lib.register_const("a.prog", BTreeMap::new(), 0.0);
        assert!(lib.get("nope").is_none());
        assert_eq!(lib.names(), vec!["a.prog", "z.prog"]);
    }

    #[test]
    fn determinism_of_registered_programs() {
        let mut lib = ActivityLibrary::new();
        lib.register("echo", |inputs| {
            Ok(ProgramOutput {
                outputs: inputs.clone(),
                cost_ref_ms: 1.0,
            })
        });
        let p = lib.get("echo").unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert("k".into(), Value::from("v"));
        assert_eq!(p(&inputs).unwrap(), p(&inputs).unwrap());
    }
}
