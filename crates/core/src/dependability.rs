//! Dependability policies: retry budgets, exponential backoff, node
//! quarantine and poison-task escalation.
//!
//! The paper masks system failures by silently re-queueing the affected
//! task (§3.4).  Taken literally that is unsafe: a node that
//! deterministically kills every job it is given (crash-looping service,
//! bad disk, flaky NIC) drives an infinite dispatch→fail→requeue livelock.
//! This module holds the policy layer that bounds the loop:
//!
//! * **retry budgets + backoff** — every masked failure increments a
//!   per-task counter and defers the re-dispatch by an exponentially
//!   growing, deterministically jittered delay (a `RetryAt` engine event
//!   on the virtual clock instead of an instant requeue);
//! * **node health scoring** — consecutive node-attributable job failures
//!   push the node into *quarantine* (ineligible for scheduling), decaying
//!   to *probation* after a configurable virtual interval;
//! * **poison escalation** — a task that node-fails on `K` distinct nodes
//!   (or exhausts its budget) stops being masked and is escalated to
//!   program-failure semantics, so the instance fails visibly instead of
//!   looping forever.
//!
//! All of this state persists through the store (see
//! [`crate::state::TaskRecord::retry`] and the `health/` keys in the
//! configuration space) and is reconstructed by the runtime's
//! `rebuild_from_store`.

use bioopera_cluster::SimTime;
use serde::{Deserialize, Serialize};

/// Why a system failure happened — decides whether the failure indicts
/// the node that hosted the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemCause {
    /// Environment-wide fault (node/cluster crash, server outage, disk
    /// full, network partition, migration): retried with backoff, but the
    /// node is not blamed — the whole environment misbehaved.
    Environment,
    /// A fault attributable to the hosting node itself (a flaky node
    /// killing the job): counts toward node health and the poison set.
    NodeFault,
}

/// What the policy layer decided to do with a masked failure.
#[derive(Debug, Clone, PartialEq)]
pub enum RetryDecision {
    /// Mask and re-queue, not before `delay` of virtual time has passed.
    Requeue {
        /// Backoff delay (zero = the pre-policy instant requeue).
        delay: SimTime,
    },
    /// Stop masking: escalate to program-failure semantics.
    Escalate {
        /// Human-readable escalation reason (goes into the event log).
        reason: String,
    },
}

/// Per-task dependability bookkeeping, embedded in
/// [`crate::state::TaskRecord`] so it survives server crashes.  The field
/// is `Option`al there: records written before this policy layer existed
/// decode as `None` and behave like a fresh state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RetryState {
    /// Masked system failures since the last successful run.
    pub sys_failures: u32,
    /// Virtual deadline before which the task must not be re-dispatched
    /// (the pending backoff timer; a `RetryAt` event fires at it).
    pub retry_at: Option<SimTime>,
    /// Distinct nodes on which the task suffered node-attributable
    /// failures (the poison set).
    pub failed_nodes: Vec<String>,
}

impl RetryState {
    /// Note one node-attributable failure on `node`.
    pub fn note_failed_node(&mut self, node: &str) {
        if !self.failed_nodes.iter().any(|n| n == node) {
            self.failed_nodes.push(node.to_string());
        }
    }
}

/// Health classification of one node, as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// No recent evidence against the node.
    Healthy,
    /// Recently released from quarantine; eligible again, one more
    /// failure streak sends it straight back.
    Probation,
    /// Ineligible for scheduling until the quarantine interval expires.
    Quarantined,
}

/// Persistent health record of one node (configuration space,
/// `health/{node}` keys).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeHealth {
    /// Current classification.
    pub state: HealthState,
    /// Consecutive node-attributable job failures.
    pub consecutive_failures: u32,
    /// When the current quarantine started (set iff `Quarantined`).
    pub quarantined_at: Option<SimTime>,
    /// Bumped on every quarantine entry; expiry events carry the epoch
    /// they were scheduled for, so a stale timer cannot release a newer
    /// quarantine early.
    pub epoch: u64,
}

impl Default for NodeHealth {
    fn default() -> Self {
        NodeHealth {
            state: HealthState::Healthy,
            consecutive_failures: 0,
            quarantined_at: None,
            epoch: 0,
        }
    }
}

impl NodeHealth {
    /// Record one node-attributable job failure at `now`.  Returns `true`
    /// when this failure pushed the node into quarantine.
    pub fn on_job_failed(&mut self, now: SimTime, threshold: u32) -> bool {
        self.consecutive_failures += 1;
        if self.state != HealthState::Quarantined && self.consecutive_failures >= threshold.max(1) {
            self.state = HealthState::Quarantined;
            self.quarantined_at = Some(now);
            self.epoch += 1;
            true
        } else {
            false
        }
    }

    /// Record a successful job completion: the failure streak ends, and a
    /// probation node is rehabilitated.  A quarantined node stays
    /// quarantined until its interval expires (the success may be a
    /// straggler dispatched before the quarantine).
    pub fn on_job_succeeded(&mut self) {
        self.consecutive_failures = 0;
        if self.state == HealthState::Probation {
            self.state = HealthState::Healthy;
        }
    }

    /// The quarantine timer for `epoch` fired.  Returns `true` when the
    /// node actually left quarantine (stale epochs are ignored).
    pub fn on_quarantine_expired(&mut self, epoch: u64) -> bool {
        if self.state == HealthState::Quarantined && self.epoch == epoch {
            self.state = HealthState::Probation;
            self.consecutive_failures = 0;
            self.quarantined_at = None;
            true
        } else {
            false
        }
    }

    /// Is the node currently ineligible for scheduling?
    pub fn is_quarantined(&self) -> bool {
        self.state == HealthState::Quarantined
    }
}

/// Tunables of the dependability policy layer.
#[derive(Debug, Clone, PartialEq)]
pub struct DependabilityConfig {
    /// Master switch.  `false` reproduces the pre-policy engine: instant
    /// requeue, no budgets, no quarantine (the livelock baseline the
    /// chaos scenario measures against).
    pub enabled: bool,
    /// Node-attributable masked failures a task may accumulate before it
    /// is escalated to a program failure.
    pub system_retry_budget: u32,
    /// First backoff delay.
    pub backoff_base: SimTime,
    /// Multiplier applied per additional failure.
    pub backoff_factor: f64,
    /// Backoff ceiling.
    pub backoff_max: SimTime,
    /// Maximum deterministic jitter added to each delay (milliseconds).
    pub jitter_ms: u64,
    /// Seed the jitter is derived from (wire the trace seed here so a
    /// seeded run reproduces byte-identically).
    pub jitter_seed: u64,
    /// Consecutive node-attributable failures before a node is
    /// quarantined.
    pub quarantine_threshold: u32,
    /// How long a quarantine lasts before decaying to probation.
    pub quarantine_interval: SimTime,
    /// Distinct failing nodes after which a task is poisoned.
    pub poison_distinct_nodes: usize,
}

impl Default for DependabilityConfig {
    fn default() -> Self {
        DependabilityConfig {
            enabled: true,
            system_retry_budget: 32,
            backoff_base: SimTime::from_secs(1),
            backoff_factor: 2.0,
            backoff_max: SimTime::from_secs(60),
            jitter_ms: 500,
            jitter_seed: 0,
            quarantine_threshold: 3,
            quarantine_interval: SimTime::from_mins(10),
            poison_distinct_nodes: 3,
        }
    }
}

impl DependabilityConfig {
    /// The pre-policy engine: instant requeue forever (the livelock
    /// baseline).
    pub fn disabled() -> Self {
        DependabilityConfig {
            enabled: false,
            ..Default::default()
        }
    }

    /// The backoff delay for the `sys_failures`-th masked failure of
    /// `(instance, path)`: `base * factor^(n-1)` capped at `backoff_max`,
    /// plus a deterministic jitter in `[0, jitter_ms]` derived from the
    /// seed — identical inputs always yield the identical delay.
    pub fn backoff_delay(&self, instance: u64, path: &str, sys_failures: u32) -> SimTime {
        let exp = sys_failures.saturating_sub(1).min(24);
        let scaled = self.backoff_base.as_millis() as f64 * self.backoff_factor.powi(exp as i32);
        let capped = scaled.min(self.backoff_max.as_millis() as f64).max(1.0) as u64;
        let jitter = if self.jitter_ms == 0 {
            0
        } else {
            let mut h = self.jitter_seed ^ instance.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for b in path.bytes() {
                h = splitmix64(h ^ b as u64);
            }
            splitmix64(h ^ sys_failures as u64) % (self.jitter_ms + 1)
        };
        SimTime::from_millis(capped + jitter)
    }

    /// Decide what to do with a masked failure whose bookkeeping has
    /// already been folded into `retry`.  Only node-attributable failures
    /// can escalate: environment faults (cluster crash, disk full) are
    /// the paper's masked class and stay masked — backoff alone bounds
    /// their requeue rate, and the environment eventually recovers.
    pub fn decide(
        &self,
        instance: u64,
        path: &str,
        retry: &RetryState,
        cause: SystemCause,
    ) -> RetryDecision {
        if !self.enabled {
            return RetryDecision::Requeue {
                delay: SimTime::ZERO,
            };
        }
        if cause == SystemCause::NodeFault {
            if retry.failed_nodes.len() >= self.poison_distinct_nodes.max(1) {
                return RetryDecision::Escalate {
                    reason: format!(
                        "poisoned: system-failed on {} distinct nodes ({})",
                        retry.failed_nodes.len(),
                        retry.failed_nodes.join(", ")
                    ),
                };
            }
            if retry.sys_failures > self.system_retry_budget {
                return RetryDecision::Escalate {
                    reason: format!(
                        "system-retry budget exhausted ({} > {})",
                        retry.sys_failures, self.system_retry_budget
                    ),
                };
            }
        }
        RetryDecision::Requeue {
            delay: self.backoff_delay(instance, path, retry.sys_failures),
        }
    }
}

/// SplitMix64: the standard 64-bit finalizer, good enough for jitter and
/// dependency-free (the core crate deliberately has no `rand`).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Key of a node's persistent health record (configuration space).
pub fn health_key(node: &str) -> String {
    format!("health/{node}")
}

/// Prefix of all health records.
pub const HEALTH_PREFIX: &str = "health/";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = DependabilityConfig {
            jitter_ms: 0,
            ..Default::default()
        };
        let d1 = cfg.backoff_delay(1, "T", 1);
        let d2 = cfg.backoff_delay(1, "T", 2);
        let d3 = cfg.backoff_delay(1, "T", 3);
        assert_eq!(d1, SimTime::from_secs(1));
        assert_eq!(d2, SimTime::from_secs(2));
        assert_eq!(d3, SimTime::from_secs(4));
        let far = cfg.backoff_delay(1, "T", 30);
        assert_eq!(far, cfg.backoff_max, "capped at the ceiling");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let cfg = DependabilityConfig {
            jitter_ms: 250,
            jitter_seed: 42,
            ..Default::default()
        };
        let a = cfg.backoff_delay(7, "Align[3]", 2);
        let b = cfg.backoff_delay(7, "Align[3]", 2);
        assert_eq!(a, b, "same inputs, same delay");
        let base = DependabilityConfig {
            jitter_ms: 0,
            ..cfg.clone()
        }
        .backoff_delay(7, "Align[3]", 2);
        assert!(a >= base && a <= base + SimTime::from_millis(250));
        // Different seeds (in general) shift the jitter.
        let other = DependabilityConfig {
            jitter_seed: 43,
            ..cfg.clone()
        };
        let any_differs =
            (0..8).any(|n| cfg.backoff_delay(7, "X", n) != other.backoff_delay(7, "X", n));
        assert!(any_differs, "seed must influence the jitter");
    }

    #[test]
    fn quarantine_state_machine() {
        let mut h = NodeHealth::default();
        assert!(!h.on_job_failed(SimTime::from_secs(1), 3));
        assert!(!h.on_job_failed(SimTime::from_secs(2), 3));
        assert!(h.on_job_failed(SimTime::from_secs(3), 3), "third strike");
        assert!(h.is_quarantined());
        assert_eq!(h.epoch, 1);
        // Stale epoch does not release it.
        assert!(!h.on_quarantine_expired(0));
        assert!(h.is_quarantined());
        // The matching epoch does.
        assert!(h.on_quarantine_expired(1));
        assert_eq!(h.state, HealthState::Probation);
        assert_eq!(h.consecutive_failures, 0);
        // A success rehabilitates a probation node.
        h.on_job_succeeded();
        assert_eq!(h.state, HealthState::Healthy);
        // Failures while quarantined keep counting but never re-enter.
        let mut q = NodeHealth::default();
        q.on_job_failed(SimTime::ZERO, 1);
        let epoch = q.epoch;
        assert!(!q.on_job_failed(SimTime::from_secs(1), 1));
        assert_eq!(q.epoch, epoch, "no epoch churn while quarantined");
    }

    #[test]
    fn decide_escalates_on_poison_and_budget() {
        let cfg = DependabilityConfig {
            poison_distinct_nodes: 2,
            system_retry_budget: 4,
            jitter_ms: 0,
            ..Default::default()
        };
        let mut retry = RetryState {
            sys_failures: 1,
            ..Default::default()
        };
        retry.note_failed_node("a");
        assert!(matches!(
            cfg.decide(1, "T", &retry, SystemCause::NodeFault),
            RetryDecision::Requeue { .. }
        ));
        retry.note_failed_node("b");
        retry.note_failed_node("b"); // duplicate is not counted twice
        assert_eq!(retry.failed_nodes.len(), 2);
        assert!(matches!(
            cfg.decide(1, "T", &retry, SystemCause::NodeFault),
            RetryDecision::Escalate { .. }
        ));
        // Budget exhaustion escalates too.
        let mut r2 = RetryState {
            sys_failures: 5,
            ..Default::default()
        };
        r2.note_failed_node("a");
        assert!(matches!(
            cfg.decide(1, "T", &r2, SystemCause::NodeFault),
            RetryDecision::Escalate { .. }
        ));
        // Environment faults never escalate, whatever the counters say.
        assert!(matches!(
            cfg.decide(1, "T", &r2, SystemCause::Environment),
            RetryDecision::Requeue { .. }
        ));
        // Disabled policy reproduces the instant requeue.
        assert_eq!(
            DependabilityConfig::disabled().decide(1, "T", &r2, SystemCause::NodeFault),
            RetryDecision::Requeue {
                delay: SimTime::ZERO
            }
        );
    }

    #[test]
    fn retry_state_serde_roundtrip() {
        let mut r = RetryState {
            sys_failures: 3,
            retry_at: Some(SimTime::from_secs(9)),
            ..Default::default()
        };
        r.note_failed_node("n1");
        r.note_failed_node("n2");
        let json = serde_json::to_string(&r).unwrap();
        let back: RetryState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let h = NodeHealth {
            state: HealthState::Quarantined,
            consecutive_failures: 3,
            quarantined_at: Some(SimTime::from_secs(5)),
            epoch: 2,
        };
        let json = serde_json::to_string(&h).unwrap();
        let back: NodeHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
