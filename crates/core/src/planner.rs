//! Planning and dealing with outages (paper §3.5).
//!
//! "A system administrator could ask the system which processes will be
//! affected if a node or set of nodes is taken off-line.  BioOpera will
//! then use the configuration information and the process structure to
//! determine whether alternatives exist and will then re-schedule the
//! processes accordingly, notifying the administrator of the processes
//! that will stop, how far in their execution these processes are, their
//! priority, and so forth."
//!
//! The analysis itself is a pure function of a [`PlannerSnapshot`] — a
//! plain-data view of (cluster nodes, in-flight jobs, instance task
//! state) that both engines know how to produce: the serial [`Runtime`]
//! from its live cluster simulator, the shard engine from its journals
//! and dispatch service.  Keeping one core means a what-if answer can
//! never depend on which step loop executed the workload.

use crate::runtime::Runtime;
use crate::state::{InstanceId, TaskState};
use bioopera_ocr::model::TaskKind;
use bioopera_ocr::ProcessTemplate;
use bioopera_store::Disk;
use std::collections::BTreeSet;

/// One affected in-flight job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffectedJob {
    /// Instance owning the task.
    pub instance: InstanceId,
    /// Task path.
    pub task: String,
    /// The node it currently occupies.
    pub node: String,
    /// Can it be placed on a surviving node (placement constraints)?
    pub reschedulable: bool,
}

/// Per-instance impact summary.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceImpact {
    /// Instance id.
    pub instance: InstanceId,
    /// Template name.
    pub template: String,
    /// Fraction of (non-container) tasks already completed, in [0, 1].
    pub progress: f64,
    /// Whether the instance would stop making progress entirely (some
    /// affected or future task cannot run on the surviving nodes).
    pub would_stall: bool,
}

/// Result of a what-if analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageImpact {
    /// Hypothetically removed nodes.
    pub offline: Vec<String>,
    /// CPUs lost.
    pub cpus_lost: u32,
    /// In-flight jobs that would be killed.
    pub affected_jobs: Vec<AffectedJob>,
    /// Per-instance summaries.
    pub instances: Vec<InstanceImpact>,
}

impl OutageImpact {
    /// Render the administrator notification.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "what-if: taking {} node(s) off-line ({} CPUs): {}",
            self.offline.len(),
            self.cpus_lost,
            self.offline.join(", ")
        );
        let _ = writeln!(
            out,
            "  {} in-flight job(s) would be killed:",
            self.affected_jobs.len()
        );
        for j in &self.affected_jobs {
            let _ = writeln!(
                out,
                "    instance {} task {} on {} -> {}",
                j.instance,
                j.task,
                j.node,
                if j.reschedulable {
                    "re-schedulable"
                } else {
                    "NOT re-schedulable"
                }
            );
        }
        for i in &self.instances {
            let _ = writeln!(
                out,
                "  instance {} ({}) {:.0}% complete{}",
                i.instance,
                i.template,
                i.progress * 100.0,
                if i.would_stall {
                    " — WOULD STALL"
                } else {
                    ""
                }
            );
        }
        out
    }
}

/// One cluster node as the planner sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannerNode {
    /// Node name.
    pub name: String,
    /// Operating system, when the engine models one (the shard engine's
    /// logical nodes do not; an OS-constrained binding then has no
    /// feasible survivor, which is the conservative answer).
    pub os: Option<String>,
    /// CPUs (or slot capacity) this node contributes.
    pub cpus: u32,
    /// Is the node currently usable (up, not quarantined)?
    pub up: bool,
}

/// One task as the planner sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannerTask {
    /// Task path (parallel children use indexed paths).
    pub path: String,
    /// Current execution state.
    pub state: TaskState,
    /// Placement constraints `(os, hosts)` of the activity behind the
    /// task, if it is activity-like.
    pub binding: Option<(Option<String>, Vec<String>)>,
}

/// One non-terminal instance as the planner sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerInstance {
    /// Instance id.
    pub id: InstanceId,
    /// Template name.
    pub template: String,
    /// Every task record of the instance.
    pub tasks: Vec<PlannerTask>,
}

/// Engine-agnostic input to the what-if analysis: plain data, no
/// references into an engine, so the core is a pure function either
/// facade can call with a view assembled from its own state.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerSnapshot {
    /// Cluster nodes.
    pub nodes: Vec<PlannerNode>,
    /// In-flight `(instance, task path, node)` jobs.
    pub in_flight: Vec<(InstanceId, String, String)>,
    /// Non-terminal instances.
    pub instances: Vec<PlannerInstance>,
}

impl PlannerSnapshot {
    /// Analyze the impact of taking `offline` nodes away.
    pub fn what_if(&self, offline: &[&str]) -> OutageImpact {
        let offline_set: BTreeSet<&str> = offline.iter().copied().collect();
        let survivors: Vec<&PlannerNode> = self
            .nodes
            .iter()
            .filter(|n| !offline_set.contains(n.name.as_str()) && n.up)
            .collect();
        let cpus_lost = self
            .nodes
            .iter()
            .filter(|n| offline_set.contains(n.name.as_str()))
            .map(|n| n.cpus)
            .sum();

        // Placement feasibility of a binding on the surviving set.
        let feasible = |os: Option<&str>, hosts: &[String]| -> bool {
            survivors.iter().any(|n| {
                os.map(|o| n.os.as_deref() == Some(o)).unwrap_or(true)
                    && (hosts.is_empty() || hosts.contains(&n.name))
            })
        };
        let task_of = |instance: InstanceId, path: &str| -> Option<&PlannerTask> {
            self.instances
                .iter()
                .find(|i| i.id == instance)?
                .tasks
                .iter()
                .find(|t| t.path == path)
        };

        let mut affected_jobs = Vec::new();
        for (instance, task, node) in &self.in_flight {
            if !offline_set.contains(node.as_str()) {
                continue;
            }
            let reschedulable = task_of(*instance, task)
                .map(|t| match &t.binding {
                    Some((os, hosts)) => feasible(os.as_deref(), hosts),
                    None => !survivors.is_empty(),
                })
                .unwrap_or(false);
            affected_jobs.push(AffectedJob {
                instance: *instance,
                task: task.clone(),
                node: node.clone(),
                reschedulable,
            });
        }

        let mut instances = Vec::new();
        for inst in &self.instances {
            let mut total = 0usize;
            let mut done = 0usize;
            let mut stall = survivors.is_empty();
            for t in &inst.tasks {
                total += 1;
                if t.state == TaskState::Ended || t.state == TaskState::Skipped {
                    done += 1;
                } else if matches!(t.state, TaskState::Ready | TaskState::Dispatched) {
                    if let Some((os, hosts)) = &t.binding {
                        if !feasible(os.as_deref(), hosts) {
                            stall = true;
                        }
                    }
                }
            }
            instances.push(InstanceImpact {
                instance: inst.id,
                template: inst.template.clone(),
                progress: if total == 0 {
                    0.0
                } else {
                    done as f64 / total as f64
                },
                would_stall: stall,
            });
        }

        OutageImpact {
            offline: offline.iter().map(|s| s.to_string()).collect(),
            cpus_lost,
            affected_jobs,
            instances,
        }
    }
}

/// Placement constraints `(os, hosts)` of the activity a task declaration
/// resolves to.  `decl_name` is the declared task — a parallel child
/// passes its parent's name, since children inherit the body's binding.
pub(crate) fn binding_of(
    template: &ProcessTemplate,
    decl_name: &str,
) -> Option<(Option<String>, Vec<String>)> {
    match &template.task(decl_name)?.kind {
        TaskKind::Activity { binding } => Some((binding.os.clone(), binding.hosts.clone())),
        TaskKind::Parallel {
            body: bioopera_ocr::ParallelBody::Activity(b),
            ..
        } => Some((b.os.clone(), b.hosts.clone())),
        _ => None,
    }
}

/// The what-if planner.
pub struct Planner;

impl Planner {
    /// Analyze the impact of taking `offline` nodes away from the runtime's
    /// cluster, using the live instance state and configuration space.
    pub fn what_if_offline<D: Disk + Clone>(rt: &Runtime<D>, offline: &[&str]) -> OutageImpact {
        rt.planner_snapshot().what_if(offline)
    }
}
