//! Planning and dealing with outages (paper §3.5).
//!
//! "A system administrator could ask the system which processes will be
//! affected if a node or set of nodes is taken off-line.  BioOpera will
//! then use the configuration information and the process structure to
//! determine whether alternatives exist and will then re-schedule the
//! processes accordingly, notifying the administrator of the processes
//! that will stop, how far in their execution these processes are, their
//! priority, and so forth."

use crate::runtime::Runtime;
use crate::state::{InstanceId, TaskState};
use bioopera_ocr::model::TaskKind;
use bioopera_store::Disk;
use std::collections::BTreeSet;

/// One affected in-flight job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffectedJob {
    /// Instance owning the task.
    pub instance: InstanceId,
    /// Task path.
    pub task: String,
    /// The node it currently occupies.
    pub node: String,
    /// Can it be placed on a surviving node (placement constraints)?
    pub reschedulable: bool,
}

/// Per-instance impact summary.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceImpact {
    /// Instance id.
    pub instance: InstanceId,
    /// Template name.
    pub template: String,
    /// Fraction of (non-container) tasks already completed, in [0, 1].
    pub progress: f64,
    /// Whether the instance would stop making progress entirely (some
    /// affected or future task cannot run on the surviving nodes).
    pub would_stall: bool,
}

/// Result of a what-if analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageImpact {
    /// Hypothetically removed nodes.
    pub offline: Vec<String>,
    /// CPUs lost.
    pub cpus_lost: u32,
    /// In-flight jobs that would be killed.
    pub affected_jobs: Vec<AffectedJob>,
    /// Per-instance summaries.
    pub instances: Vec<InstanceImpact>,
}

impl OutageImpact {
    /// Render the administrator notification.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "what-if: taking {} node(s) off-line ({} CPUs): {}",
            self.offline.len(),
            self.cpus_lost,
            self.offline.join(", ")
        );
        let _ = writeln!(
            out,
            "  {} in-flight job(s) would be killed:",
            self.affected_jobs.len()
        );
        for j in &self.affected_jobs {
            let _ = writeln!(
                out,
                "    instance {} task {} on {} -> {}",
                j.instance,
                j.task,
                j.node,
                if j.reschedulable {
                    "re-schedulable"
                } else {
                    "NOT re-schedulable"
                }
            );
        }
        for i in &self.instances {
            let _ = writeln!(
                out,
                "  instance {} ({}) {:.0}% complete{}",
                i.instance,
                i.template,
                i.progress * 100.0,
                if i.would_stall {
                    " — WOULD STALL"
                } else {
                    ""
                }
            );
        }
        out
    }
}

/// The what-if planner.
pub struct Planner;

impl Planner {
    /// Analyze the impact of taking `offline` nodes away from the runtime's
    /// cluster, using the live instance state and configuration space.
    pub fn what_if_offline<D: Disk + Clone>(rt: &Runtime<D>, offline: &[&str]) -> OutageImpact {
        let offline_set: BTreeSet<&str> = offline.iter().copied().collect();
        let survivors: Vec<&bioopera_cluster::Node> = rt
            .cluster()
            .nodes()
            .iter()
            .filter(|n| !offline_set.contains(n.spec.name.as_str()) && n.is_up())
            .collect();
        let cpus_lost = rt
            .cluster()
            .nodes()
            .iter()
            .filter(|n| offline_set.contains(n.spec.name.as_str()))
            .map(|n| n.cpus_online())
            .sum();

        // Placement feasibility of a binding on the surviving set.
        let feasible = |os: Option<&str>, hosts: &[String]| -> bool {
            survivors.iter().any(|n| {
                os.map(|o| o == n.spec.os).unwrap_or(true)
                    && (hosts.is_empty() || hosts.contains(&n.spec.name))
            })
        };

        let mut affected_jobs = Vec::new();
        for (instance, task, node) in rt.in_flight_jobs() {
            if !offline_set.contains(node.as_str()) {
                continue;
            }
            // Look up the binding constraints of the task.
            let reschedulable = rt
                .task_records(instance)
                .and_then(|tasks| tasks.get(&task))
                .map(|_| {
                    // Parallel children inherit the parent body's binding;
                    // plain activities their own.
                    let binding = task_binding(rt, instance, &task);
                    match binding {
                        Some((os, hosts)) => feasible(os.as_deref(), &hosts),
                        None => !survivors.is_empty(),
                    }
                })
                .unwrap_or(false);
            affected_jobs.push(AffectedJob {
                instance,
                task,
                node,
                reschedulable,
            });
        }

        let mut instances = Vec::new();
        for (id, status, template) in rt.instances() {
            if status.is_terminal() {
                continue;
            }
            let Some(tasks) = rt.task_records(id) else {
                continue;
            };
            let mut total = 0usize;
            let mut done = 0usize;
            let mut stall = survivors.is_empty();
            for rec in tasks.values() {
                total += 1;
                if rec.state == TaskState::Ended || rec.state == TaskState::Skipped {
                    done += 1;
                } else if matches!(rec.state, TaskState::Ready | TaskState::Dispatched) {
                    if let Some((os, hosts)) = task_binding(rt, id, &rec.path) {
                        if !feasible(os.as_deref(), &hosts) {
                            stall = true;
                        }
                    }
                }
            }
            instances.push(InstanceImpact {
                instance: id,
                template,
                progress: if total == 0 {
                    0.0
                } else {
                    done as f64 / total as f64
                },
                would_stall: stall,
            });
        }

        OutageImpact {
            offline: offline.iter().map(|s| s.to_string()).collect(),
            cpus_lost,
            affected_jobs,
            instances,
        }
    }
}

/// Placement constraints `(os, hosts)` of the activity behind a task path.
fn task_binding<D: Disk + Clone>(
    rt: &Runtime<D>,
    instance: InstanceId,
    path: &str,
) -> Option<(Option<String>, Vec<String>)> {
    let tasks = rt.task_records(instance)?;
    let rec = tasks.get(path)?;
    let (_, template_name) = rt
        .instances()
        .into_iter()
        .find(|(id, _, _)| *id == instance)
        .map(|(id, _, t)| (id, t))?;
    let template_bytes = rt
        .store()
        .get(
            bioopera_store::Space::Template,
            &crate::state::keys::template(&template_name),
        )
        .ok()??;
    let template: bioopera_ocr::ProcessTemplate = serde_json::from_slice(&template_bytes).ok()?;
    let decl_name = rec.parallel_parent().unwrap_or(path);
    match &template.task(decl_name)?.kind {
        TaskKind::Activity { binding } => Some((binding.os.clone(), binding.hosts.clone())),
        TaskKind::Parallel {
            body: bioopera_ocr::ParallelBody::Activity(b),
            ..
        } => Some((b.os.clone(), b.hosts.clone())),
        _ => None,
    }
}
