//! Lineage tracking and selective recomputation.
//!
//! "Lineage tracking is done automatically and all dependencies are
//! persistently recorded.  This makes it possible for the system to
//! recompute processes as data inputs or algorithms change" (§6).  The
//! tower of information is the motivating case: "it makes sense to keep
//! the results of each step so that it is not necessary to start from the
//! beginning every time an algorithm changes.  This requires one to keep
//! track of which steps produced which data" (§1).
//!
//! Dependencies are already persistent — they are the template's data-flow
//! and control-flow arcs plus the per-task records in the instance space.
//! This module derives the lineage graph from them and implements
//! *selective recomputation*: given a completed instance and a set of
//! tasks whose algorithm (or whose inputs) changed, start a new instance
//! that **reuses** every unaffected task's recorded outputs and re-executes
//! only the downstream closure.

use crate::error::{EngineError, EngineResult};
use crate::state::{InstanceId, TaskState};
use bioopera_ocr::model::{DataRef, ProcessTemplate};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The lineage graph of one template: which tasks' outputs feed which
/// tasks, directly or through the whiteboard.
#[derive(Debug, Clone)]
pub struct Lineage {
    /// Direct data dependents: task → tasks consuming its outputs.
    dependents: BTreeMap<String, BTreeSet<String>>,
    /// Direct data producers: task → tasks it consumes from.
    producers: BTreeMap<String, BTreeSet<String>>,
}

impl Lineage {
    /// Derive the lineage graph from a template's data flows.  Whiteboard
    /// fields act as conduits: a flow `A.x -> WHITEBOARD.w` plus
    /// `WHITEBOARD.w -> B.y` makes `B` a dependent of `A`.  Control
    /// connectors also induce dependencies: an activation condition that
    /// reads `A.x` makes the *target* task data-dependent on `A`.
    pub fn derive(template: &ProcessTemplate) -> Lineage {
        let mut dependents: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut producers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut add = |from: &str, to: &str| {
            if from != to {
                dependents
                    .entry(from.to_string())
                    .or_default()
                    .insert(to.to_string());
                producers
                    .entry(to.to_string())
                    .or_default()
                    .insert(from.to_string());
            }
        };
        // Whiteboard writers per field.
        let mut wb_writers: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for flow in &template.dataflows {
            if let (DataRef::TaskField(task, _), DataRef::Whiteboard(field)) =
                (&flow.from, &flow.to)
            {
                wb_writers
                    .entry(field.as_str())
                    .or_default()
                    .push(task.as_str());
            }
        }
        for flow in &template.dataflows {
            match (&flow.from, &flow.to) {
                (DataRef::TaskField(src, _), DataRef::TaskField(dst, _)) => add(src, dst),
                (DataRef::Whiteboard(field), DataRef::TaskField(dst, _)) => {
                    if let Some(writers) = wb_writers.get(field.as_str()) {
                        for w in writers.clone() {
                            add(w, dst);
                        }
                    }
                }
                _ => {}
            }
        }
        // Guard references: `CONNECTOR A -> B WHEN C.x > 0` makes B depend
        // on C (and, trivially, on A through control flow).
        for conn in &template.connectors {
            for path in conn.condition.referenced_paths() {
                if let Some(head) = path.first() {
                    if template.task(head).is_some() {
                        add(head, &conn.to);
                    }
                }
            }
        }
        Lineage {
            dependents,
            producers,
        }
    }

    /// Tasks that directly consume `task`'s outputs.
    pub fn direct_dependents(&self, task: &str) -> Vec<&str> {
        self.dependents
            .get(task)
            .map(|s| s.iter().map(|x| x.as_str()).collect())
            .unwrap_or_default()
    }

    /// Tasks whose outputs `task` directly consumes.
    pub fn direct_producers(&self, task: &str) -> Vec<&str> {
        self.producers
            .get(task)
            .map(|s| s.iter().map(|x| x.as_str()).collect())
            .unwrap_or_default()
    }

    /// The downstream closure: everything that must be recomputed when the
    /// given tasks change (the tasks themselves included).
    pub fn invalidation_closure<'a>(
        &self,
        changed: impl IntoIterator<Item = &'a str>,
    ) -> BTreeSet<String> {
        let mut out: BTreeSet<String> = BTreeSet::new();
        let mut queue: VecDeque<String> = changed.into_iter().map(|s| s.to_string()).collect();
        while let Some(task) = queue.pop_front() {
            if !out.insert(task.clone()) {
                continue;
            }
            if let Some(deps) = self.dependents.get(&task) {
                for d in deps {
                    queue.push_back(d.clone());
                }
            }
        }
        out
    }

    /// The provenance closure: everything that (transitively) contributed
    /// data to `task` — the audit-trail query.
    pub fn provenance_closure(&self, task: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut queue = VecDeque::from([task.to_string()]);
        while let Some(t) = queue.pop_front() {
            if !out.insert(t.clone()) {
                continue;
            }
            if let Some(ps) = self.producers.get(&t) {
                for p in ps {
                    queue.push_back(p.clone());
                }
            }
        }
        out
    }
}

/// A recomputation plan: which recorded results a new instance can reuse.
#[derive(Debug, Clone, PartialEq)]
pub struct RecomputePlan {
    /// The source instance.
    pub source: InstanceId,
    /// Tasks to re-execute (the invalidation closure, intersected with
    /// what actually ran).
    pub recompute: BTreeSet<String>,
    /// Tasks whose recorded outputs will be reused verbatim.
    pub reuse: BTreeSet<String>,
}

impl RecomputePlan {
    /// Build a plan from a completed instance and the changed task set.
    ///
    /// Parallel children follow their parent: if a parallel task is
    /// invalidated, all its children are; otherwise all are reused.
    pub fn build(
        template: &ProcessTemplate,
        tasks: &BTreeMap<String, crate::state::TaskRecord>,
        source: InstanceId,
        changed: &[&str],
    ) -> EngineResult<RecomputePlan> {
        for c in changed {
            if template.task(c).is_none() {
                return Err(EngineError::Internal(format!(
                    "cannot recompute unknown task `{c}`"
                )));
            }
        }
        let lineage = Lineage::derive(template);
        let invalid = lineage.invalidation_closure(changed.iter().copied());
        let mut recompute = BTreeSet::new();
        let mut reuse = BTreeSet::new();
        for (path, rec) in tasks {
            let owner = rec.parallel_parent().unwrap_or(path.as_str());
            if invalid.contains(owner) {
                recompute.insert(path.clone());
            } else if rec.state == TaskState::Ended || rec.state == TaskState::Skipped {
                reuse.insert(path.clone());
            } else {
                recompute.insert(path.clone());
            }
        }
        Ok(RecomputePlan {
            source,
            recompute,
            reuse,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioopera_ocr::model::TypeTag;
    use bioopera_ocr::{Expr, ProcessBuilder};

    /// The tower-of-information shape: Gene -> Translate -> {Align -> Tree,
    /// Structure}, with a whiteboard conduit.
    fn tower_like() -> ProcessTemplate {
        ProcessBuilder::new("T")
            .whiteboard_field("proteins", TypeTag::List)
            .activity("Gene", "g", |t| t.output("genes", TypeTag::List))
            .activity("Translate", "t", |t| {
                t.input("genes", TypeTag::List)
                    .output("proteins", TypeTag::List)
            })
            .activity("Align", "a", |t| {
                t.input("proteins", TypeTag::List)
                    .output("dists", TypeTag::List)
            })
            .activity("Tree", "n", |t| t.input("dists", TypeTag::List))
            .activity("Structure", "s", |t| t.input("proteins", TypeTag::List))
            .connect("Gene", "Translate")
            .connect("Translate", "Align")
            .connect("Align", "Tree")
            .connect("Translate", "Structure")
            .flow_to_task("Gene", "genes", "Translate", "genes")
            .flow_to_whiteboard("Translate", "proteins", "proteins")
            .flow_from_whiteboard("proteins", "Align", "proteins")
            .flow_from_whiteboard("proteins", "Structure", "proteins")
            .flow_to_task("Align", "dists", "Tree", "dists")
            .build()
            .unwrap()
    }

    #[test]
    fn whiteboard_conduits_carry_lineage() {
        let lineage = Lineage::derive(&tower_like());
        // Translate writes the whiteboard field both Align and Structure read.
        let deps = lineage.direct_dependents("Translate");
        assert!(deps.contains(&"Align"));
        assert!(deps.contains(&"Structure"));
        assert_eq!(lineage.direct_producers("Tree"), vec!["Align"]);
    }

    #[test]
    fn invalidation_closure_is_downstream_only() {
        let lineage = Lineage::derive(&tower_like());
        // A new alignment algorithm: only Align and Tree must re-run.
        let inv = lineage.invalidation_closure(["Align"]);
        assert_eq!(
            inv.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            vec!["Align", "Tree"]
        );
        // New gene finder: everything downstream re-runs.
        let inv = lineage.invalidation_closure(["Gene"]);
        assert_eq!(inv.len(), 5);
    }

    #[test]
    fn provenance_closure_is_upstream_only() {
        let lineage = Lineage::derive(&tower_like());
        let prov = lineage.provenance_closure("Tree");
        assert!(prov.contains("Align"));
        assert!(prov.contains("Translate"));
        assert!(prov.contains("Gene"));
        assert!(!prov.contains("Structure"));
    }

    #[test]
    fn guard_references_induce_dependencies() {
        let t = ProcessBuilder::new("G")
            .activity("Probe", "p", |t| t.output("quality", TypeTag::Float))
            .activity("A", "a", |t| t)
            .activity("B", "b", |t| t)
            .connect("Probe", "A")
            .connect_when(
                "A",
                "B",
                Expr::Bin(
                    bioopera_ocr::expr::BinOp::Gt,
                    Box::new(Expr::path("Probe.quality")),
                    Box::new(Expr::Lit(bioopera_ocr::Value::Float(0.5))),
                ),
            )
            .build()
            .unwrap();
        let lineage = Lineage::derive(&t);
        assert!(lineage.direct_dependents("Probe").contains(&"B"));
        let inv = lineage.invalidation_closure(["Probe"]);
        assert!(inv.contains("B"));
    }

    #[test]
    fn recompute_plan_reuses_unaffected_and_follows_parallel_children() {
        use crate::state::TaskRecord;
        let template = tower_like();
        let mut tasks: BTreeMap<String, TaskRecord> = BTreeMap::new();
        for name in ["Gene", "Translate", "Align", "Tree", "Structure"] {
            let mut rec = TaskRecord::new(name);
            rec.state = TaskState::Ended;
            tasks.insert(name.to_string(), rec);
        }
        let plan = RecomputePlan::build(&template, &tasks, 7, &["Align"]).unwrap();
        assert!(plan.recompute.contains("Align"));
        assert!(plan.recompute.contains("Tree"));
        assert!(plan.reuse.contains("Gene"));
        assert!(plan.reuse.contains("Translate"));
        assert!(plan.reuse.contains("Structure"));
        // Unknown task rejected.
        assert!(RecomputePlan::build(&template, &tasks, 7, &["Nope"]).is_err());
    }
}
