//! # bioopera-core
//!
//! The BioOpera engine (paper §3): "a high-level distributed operating
//! system managing processes and the resources of a computer cluster".
//!
//! Architecture (Fig. 2):
//!
//! * the **navigator** ([`navigator`]) interprets OCR process instances —
//!   evaluates activation conditions, binds task inputs, runs the mapping
//!   phase on completion, expands parallel tasks, late-binds subprocesses;
//! * the **dispatcher** ([`dispatcher`]) schedules ready activities onto
//!   cluster nodes under pluggable scheduling/load-balancing policies and
//!   placement constraints;
//! * the **recovery module** and the persistent **spaces** ([`state`],
//!   backed by `bioopera-store`) make every transition durable *before* it
//!   is acted on, so node, network and server failures never lose completed
//!   work;
//! * the **awareness model** ([`awareness`]) persistently records task
//!   timings, node events and load samples, powering monitoring queries;
//! * the **dependability policies** ([`dependability`]) bound the masked
//!   system-failure loop: per-task retry budgets with exponential backoff,
//!   node quarantine, and poison-task escalation;
//! * the **planner** ([`planner`]) answers what-if questions ("which
//!   processes are affected if these nodes go off-line?", §3.5);
//! * the **runtime** ([`runtime`]) ties the engine to the discrete-event
//!   cluster simulator and drives whole month-long executions, including
//!   every failure class of the paper's evaluation.

pub mod awareness;
pub mod dependability;
mod diagnostics;
pub mod dispatcher;
pub mod error;
pub mod library;
pub mod lineage;
pub mod metrics;
pub mod navigator;
pub mod planner;
pub mod runtime;
pub mod shard;
pub mod state;

pub use awareness::{Awareness, AwarenessError, AwarenessIndex, EventKind, HistoryEvent};
pub use dependability::{
    DependabilityConfig, HealthState, NodeHealth, RetryDecision, RetryState, SystemCause,
};
pub use dispatcher::{AvoidSaturated, FastestFit, LeastLoaded, RoundRobin, SchedulingPolicy};
pub use error::{EngineError, EngineResult};
pub use library::{ActivityLibrary, Program, ProgramOutput};
pub use lineage::{Lineage, RecomputePlan};
pub use metrics::{
    mean_utilization_where, series_csv, Histogram, RollupBin, RunReport, SeriesRollup, SeriesSample,
};
pub use planner::{OutageImpact, Planner, PlannerNode, PlannerSnapshot};
pub use runtime::{RunStats, Runtime, RuntimeConfig};
pub use shard::{ControlOp, FaultInjection, ShardConfig, ShardEngine, ShardRunStats};
pub use state::{InstanceHeader, InstanceId, InstanceStatus, RunOutcome, TaskRecord, TaskState};
