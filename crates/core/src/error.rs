//! Engine errors.

use std::fmt;

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors surfaced by the BioOpera engine.
#[derive(Debug)]
pub enum EngineError {
    /// The persistent store failed (or simulated a crash).
    Store(bioopera_store::StoreError),
    /// The awareness model found inconsistent history state.
    Awareness(crate::awareness::AwarenessError),
    /// A template failed validation on submission.
    Validation(bioopera_ocr::ValidationError),
    /// A referenced template does not exist in the template space
    /// (late binding resolves at start time; this is the runtime error).
    UnknownTemplate(String),
    /// A referenced instance does not exist.
    UnknownInstance(u64),
    /// A referenced task record does not exist in its instance — a stale
    /// in-flight completion, a foreign journal record, or a template/
    /// record mismatch.  `(instance, task path)`.
    UnknownTask(u64, String),
    /// An activity's program is not in the activity library.
    UnknownProgram(String),
    /// A guard failed to evaluate (bad data reference or type error).
    Guard(String, bioopera_ocr::EvalError),
    /// The operation conflicts with the instance's status.
    BadStatus(String),
    /// Internal invariant broken (a bug; carries context).
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Store(e) => write!(f, "store: {e}"),
            EngineError::Awareness(e) => write!(f, "awareness: {e}"),
            EngineError::Validation(e) => write!(f, "template invalid: {e}"),
            EngineError::UnknownTemplate(t) => write!(f, "unknown template `{t}`"),
            EngineError::UnknownInstance(i) => write!(f, "unknown instance {i}"),
            EngineError::UnknownTask(i, p) => write!(f, "unknown task `{p}` of instance {i}"),
            EngineError::UnknownProgram(p) => write!(f, "program `{p}` not in activity library"),
            EngineError::Guard(ctx, e) => write!(f, "guard on {ctx}: {e}"),
            EngineError::BadStatus(m) => write!(f, "{m}"),
            EngineError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<bioopera_store::StoreError> for EngineError {
    fn from(e: bioopera_store::StoreError) -> Self {
        EngineError::Store(e)
    }
}

impl From<crate::awareness::AwarenessError> for EngineError {
    fn from(e: crate::awareness::AwarenessError) -> Self {
        // Store failures keep their own classification (recovery logic
        // matches on them, e.g. simulated crashes).
        match e {
            crate::awareness::AwarenessError::Store(s) => EngineError::Store(s),
            other => EngineError::Awareness(other),
        }
    }
}

impl From<bioopera_ocr::ValidationError> for EngineError {
    fn from(e: bioopera_ocr::ValidationError) -> Self {
        EngineError::Validation(e)
    }
}
