//! The dispatcher: scheduling and load balancing.
//!
//! "Once the navigator decides which step(s) to execute next, the
//! information is passed to the dispatcher which, in turn, schedules the
//! task and associates it with a processing node in the cluster ...  If the
//! choice of assignment is not unique, the node is determined by the
//! scheduling and load balancing policy in use" (§3.2).

use bioopera_ocr::model::ExternalBinding;
use serde::{Deserialize, Serialize};

/// The dispatcher's view of one node at scheduling time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeView {
    /// Node name.
    pub name: String,
    /// Operating system.
    pub os: String,
    /// Speed factor relative to the reference machine.
    pub speed: f64,
    /// CPUs online.
    pub cpus_online: u32,
    /// BioOpera jobs currently hosted.
    pub running_jobs: u32,
    /// Instantaneous load fraction in [0, 1] as last reported by the
    /// node's load monitor (includes external users).
    pub load: f64,
    /// Is the node reachable and healthy?
    pub up: bool,
}

impl NodeView {
    /// Dispatch slots left: one job per online CPU.
    pub fn free_slots(&self) -> u32 {
        self.cpus_online.saturating_sub(self.running_jobs)
    }
}

/// A scheduling policy picks among *eligible* candidates (already filtered
/// for health, capacity and placement constraints).
///
/// `eligible` holds indices into `nodes`; the policy returns one of those
/// indices (into `nodes`, not into `eligible`), or `None` to defer.
/// Carrying original indices lets [`schedule`] resolve the winner in O(1)
/// and lets wrappers filter without materializing a new candidate slice.
pub trait SchedulingPolicy: Send {
    /// Index into `nodes` of the chosen node (drawn from `eligible`), or
    /// `None` to defer.
    fn choose(&mut self, nodes: &[NodeView], eligible: &[usize]) -> Option<usize>;
    /// Policy name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Pick the node with the lowest reported load; ties broken by speed then
/// name (deterministic).
#[derive(Debug, Default, Clone)]
pub struct LeastLoaded;

impl SchedulingPolicy for LeastLoaded {
    fn choose(&mut self, nodes: &[NodeView], eligible: &[usize]) -> Option<usize> {
        eligible.iter().copied().min_by(|&a, &b| {
            let (na, nb) = (&nodes[a], &nodes[b]);
            na.load
                .partial_cmp(&nb.load)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    nb.speed
                        .partial_cmp(&na.speed)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(na.name.cmp(&nb.name))
        })
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Pick the fastest node with a free slot; ties broken by load then name.
#[derive(Debug, Default, Clone)]
pub struct FastestFit;

impl SchedulingPolicy for FastestFit {
    fn choose(&mut self, nodes: &[NodeView], eligible: &[usize]) -> Option<usize> {
        eligible.iter().copied().min_by(|&a, &b| {
            let (na, nb) = (&nodes[a], &nodes[b]);
            nb.speed
                .partial_cmp(&na.speed)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    na.load
                        .partial_cmp(&nb.load)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(na.name.cmp(&nb.name))
        })
    }

    fn name(&self) -> &'static str {
        "fastest-fit"
    }
}

/// Rotate through candidates regardless of load (the naive baseline the
/// scheduling ablation compares against).
#[derive(Debug, Default, Clone)]
pub struct RoundRobin {
    counter: usize,
}

impl SchedulingPolicy for RoundRobin {
    fn choose(&mut self, _nodes: &[NodeView], eligible: &[usize]) -> Option<usize> {
        if eligible.is_empty() {
            return None;
        }
        let i = eligible[self.counter % eligible.len()];
        self.counter += 1;
        Some(i)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Wrap a policy so it *defers* instead of placing work on nodes whose
/// reported load exceeds `threshold` — a job started there would only
/// starve behind the external users (§5.4).  BioOpera "schedule\[s\] the
/// computation according to machine usage and availability" (§3.4); this
/// is the usage-aware half.
pub struct AvoidSaturated<P> {
    /// The wrapped policy.
    pub inner: P,
    /// Maximum acceptable load fraction.
    pub threshold: f64,
    /// Reusable filter buffer: avoids allocating on every `choose`.
    keep: Vec<usize>,
}

impl<P: SchedulingPolicy> AvoidSaturated<P> {
    /// Wrap `inner` with a load ceiling.
    pub fn new(inner: P, threshold: f64) -> Self {
        AvoidSaturated {
            inner,
            threshold,
            keep: Vec::new(),
        }
    }
}

impl<P: SchedulingPolicy> SchedulingPolicy for AvoidSaturated<P> {
    fn choose(&mut self, nodes: &[NodeView], eligible: &[usize]) -> Option<usize> {
        self.keep.clear();
        self.keep.extend(
            eligible
                .iter()
                .copied()
                .filter(|&i| nodes[i].load < self.threshold),
        );
        if self.keep.is_empty() {
            return None; // defer: waiting beats starving
        }
        self.inner.choose(nodes, &self.keep)
    }

    fn name(&self) -> &'static str {
        "avoid-saturated"
    }
}

/// Filter nodes by an activity's placement constraints and capacity, then
/// ask the policy.  Returns the chosen node name.
pub fn schedule<'a>(
    policy: &mut dyn SchedulingPolicy,
    nodes: &'a [NodeView],
    binding: &ExternalBinding,
) -> Option<&'a str> {
    let eligible: Vec<usize> = (0..nodes.len())
        .filter(|&i| {
            let n = &nodes[i];
            n.up && n.free_slots() > 0
                && binding.os.as_deref().map(|os| os == n.os).unwrap_or(true)
                && (binding.hosts.is_empty() || binding.hosts.contains(&n.name))
        })
        .collect();
    if eligible.is_empty() {
        return None;
    }
    let idx = policy.choose(nodes, &eligible)?;
    Some(nodes[idx].name.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, os: &str, speed: f64, cpus: u32, jobs: u32, load: f64) -> NodeView {
        NodeView {
            name: name.into(),
            os: os.into(),
            speed,
            cpus_online: cpus,
            running_jobs: jobs,
            load,
            up: true,
        }
    }

    fn any() -> ExternalBinding {
        ExternalBinding::program("p")
    }

    #[test]
    fn least_loaded_prefers_idle_node() {
        let nodes = vec![
            node("busy", "linux", 1.0, 2, 0, 0.9),
            node("idle", "linux", 1.0, 2, 0, 0.1),
        ];
        let mut p = LeastLoaded;
        assert_eq!(schedule(&mut p, &nodes, &any()), Some("idle"));
    }

    #[test]
    fn fastest_fit_prefers_speed() {
        let nodes = vec![
            node("slow", "linux", 0.7, 2, 0, 0.0),
            node("fast", "linux", 1.2, 2, 0, 0.5),
        ];
        let mut p = FastestFit;
        assert_eq!(schedule(&mut p, &nodes, &any()), Some("fast"));
    }

    #[test]
    fn round_robin_rotates() {
        let nodes = vec![
            node("a", "linux", 1.0, 4, 0, 0.0),
            node("b", "linux", 1.0, 4, 0, 0.0),
        ];
        let mut p = RoundRobin::default();
        assert_eq!(schedule(&mut p, &nodes, &any()), Some("a"));
        assert_eq!(schedule(&mut p, &nodes, &any()), Some("b"));
        assert_eq!(schedule(&mut p, &nodes, &any()), Some("a"));
    }

    #[test]
    fn placement_constraints_filter() {
        let nodes = vec![
            node("sun1", "solaris", 0.7, 1, 0, 0.0),
            node("pc1", "linux", 1.0, 2, 0, 0.0),
        ];
        let mut p = LeastLoaded;
        let mut b = any();
        b.os = Some("solaris".into());
        assert_eq!(schedule(&mut p, &nodes, &b), Some("sun1"));
        let mut b2 = any();
        b2.hosts = vec!["pc1".into()];
        assert_eq!(schedule(&mut p, &nodes, &b2), Some("pc1"));
        let mut b3 = any();
        b3.os = Some("irix".into());
        assert_eq!(schedule(&mut p, &nodes, &b3), None);
    }

    #[test]
    fn full_nodes_are_ineligible() {
        let nodes = vec![node("a", "linux", 1.0, 2, 2, 0.0)];
        let mut p = LeastLoaded;
        assert_eq!(schedule(&mut p, &nodes, &any()), None);
        // Down nodes too.
        let mut n = node("b", "linux", 1.0, 2, 0, 0.0);
        n.up = false;
        assert_eq!(schedule(&mut p, &[n], &any()), None);
    }

    #[test]
    fn avoid_saturated_defers_rather_than_starving() {
        let nodes = vec![
            node("busy", "linux", 1.0, 2, 0, 0.99),
            node("alsobusy", "linux", 1.0, 2, 0, 0.97),
        ];
        let mut p = AvoidSaturated::new(LeastLoaded, 0.95);
        assert_eq!(
            schedule(&mut p, &nodes, &any()),
            None,
            "defer on saturation"
        );
        let nodes2 = vec![
            node("busy", "linux", 1.0, 2, 0, 0.99),
            node("free", "linux", 0.7, 1, 0, 0.1),
        ];
        assert_eq!(schedule(&mut p, &nodes2, &any()), Some("free"));
    }

    #[test]
    fn deterministic_tie_break_by_name() {
        let nodes = vec![
            node("zeta", "linux", 1.0, 2, 0, 0.3),
            node("alpha", "linux", 1.0, 2, 0, 0.3),
        ];
        let mut p = LeastLoaded;
        assert_eq!(schedule(&mut p, &nodes, &any()), Some("alpha"));
    }
}
