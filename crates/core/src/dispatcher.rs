//! The dispatcher: scheduling and load balancing.
//!
//! "Once the navigator decides which step(s) to execute next, the
//! information is passed to the dispatcher which, in turn, schedules the
//! task and associates it with a processing node in the cluster ...  If the
//! choice of assignment is not unique, the node is determined by the
//! scheduling and load balancing policy in use" (§3.2).

use bioopera_ocr::model::ExternalBinding;
use serde::{Deserialize, Serialize};

/// The dispatcher's view of one node at scheduling time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeView {
    /// Node name.
    pub name: String,
    /// Operating system.
    pub os: String,
    /// Speed factor relative to the reference machine.
    pub speed: f64,
    /// CPUs online.
    pub cpus_online: u32,
    /// BioOpera jobs currently hosted.
    pub running_jobs: u32,
    /// Instantaneous load fraction in [0, 1] as last reported by the
    /// node's load monitor (includes external users).
    pub load: f64,
    /// Is the node reachable and healthy?
    pub up: bool,
    /// Is the node quarantined by the dependability policy?  Quarantined
    /// nodes are filtered out of the eligible set in [`schedule`].
    pub quarantined: bool,
}

impl NodeView {
    /// Build a view, rejecting non-finite measurements: a node reporting
    /// `NaN`/`inf` load or speed has a broken monitor and is treated as
    /// down rather than being fed to the comparison-based policies.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: String,
        os: String,
        speed: f64,
        cpus_online: u32,
        running_jobs: u32,
        load: f64,
        up: bool,
        quarantined: bool,
    ) -> Self {
        let finite = speed.is_finite() && load.is_finite();
        NodeView {
            name,
            os,
            speed: if finite { speed } else { 0.0 },
            cpus_online,
            running_jobs,
            load: if finite { load } else { 1.0 },
            up: up && finite,
            quarantined,
        }
    }

    /// Dispatch slots left: one job per online CPU.
    pub fn free_slots(&self) -> u32 {
        self.cpus_online.saturating_sub(self.running_jobs)
    }
}

/// A scheduling policy picks among *eligible* candidates (already filtered
/// for health, capacity and placement constraints).
///
/// `eligible` holds indices into `nodes`; the policy returns one of those
/// indices (into `nodes`, not into `eligible`), or `None` to defer.
/// Carrying original indices lets [`schedule`] resolve the winner in O(1)
/// and lets wrappers filter without materializing a new candidate slice.
pub trait SchedulingPolicy: Send {
    /// Index into `nodes` of the chosen node (drawn from `eligible`), or
    /// `None` to defer.
    fn choose(&mut self, nodes: &[NodeView], eligible: &[usize]) -> Option<usize>;
    /// Policy name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Load measurement sanitized for comparison: a non-finite reading (broken
/// monitor) compares as the worst possible load, so it can never win a
/// lowest-load contest.  `total_cmp` then gives a strict weak order.
fn load_key(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        f64::INFINITY
    }
}

/// Speed measurement sanitized for comparison: non-finite readings compare
/// as the slowest possible node, so they can never win a fastest contest
/// (raw `total_cmp` would rank NaN *above* every finite speed).
fn speed_key(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        f64::NEG_INFINITY
    }
}

/// Pick the node with the lowest reported load; ties broken by speed then
/// name (deterministic).
#[derive(Debug, Default, Clone)]
pub struct LeastLoaded;

impl SchedulingPolicy for LeastLoaded {
    fn choose(&mut self, nodes: &[NodeView], eligible: &[usize]) -> Option<usize> {
        eligible.iter().copied().min_by(|&a, &b| {
            let (na, nb) = (&nodes[a], &nodes[b]);
            load_key(na.load)
                .total_cmp(&load_key(nb.load))
                .then(speed_key(nb.speed).total_cmp(&speed_key(na.speed)))
                .then(na.name.cmp(&nb.name))
        })
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Pick the fastest node with a free slot; ties broken by load then name.
#[derive(Debug, Default, Clone)]
pub struct FastestFit;

impl SchedulingPolicy for FastestFit {
    fn choose(&mut self, nodes: &[NodeView], eligible: &[usize]) -> Option<usize> {
        eligible.iter().copied().min_by(|&a, &b| {
            let (na, nb) = (&nodes[a], &nodes[b]);
            speed_key(nb.speed)
                .total_cmp(&speed_key(na.speed))
                .then(load_key(na.load).total_cmp(&load_key(nb.load)))
                .then(na.name.cmp(&nb.name))
        })
    }

    fn name(&self) -> &'static str {
        "fastest-fit"
    }
}

/// Rotate through candidates regardless of load (the naive baseline the
/// scheduling ablation compares against).
///
/// The rotation pointer is the *node index* last chosen, not a running
/// counter: a `counter % eligible.len()` scheme shifts with the eligible
/// set's size, so membership churn (nodes crashing, filling up, returning)
/// skews the pointer and can starve a node indefinitely.  Advancing past
/// the last-chosen index visits every persistently eligible node.
#[derive(Debug, Default, Clone)]
pub struct RoundRobin {
    /// Index (into `nodes`) of the last node handed work.
    last: Option<usize>,
}

impl SchedulingPolicy for RoundRobin {
    fn choose(&mut self, _nodes: &[NodeView], eligible: &[usize]) -> Option<usize> {
        if eligible.is_empty() {
            return None;
        }
        // `eligible` is ascending (built by an index-range filter): pick
        // the first candidate after the last choice, wrapping around.
        let pick = self
            .last
            .and_then(|l| eligible.iter().copied().find(|&i| i > l))
            .unwrap_or(eligible[0]);
        self.last = Some(pick);
        Some(pick)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Wrap a policy so it *defers* instead of placing work on nodes whose
/// reported load exceeds `threshold` — a job started there would only
/// starve behind the external users (§5.4).  BioOpera "schedule\[s\] the
/// computation according to machine usage and availability" (§3.4); this
/// is the usage-aware half.
pub struct AvoidSaturated<P> {
    /// The wrapped policy.
    pub inner: P,
    /// Maximum acceptable load fraction.
    pub threshold: f64,
    /// Reusable filter buffer: avoids allocating on every `choose`.
    keep: Vec<usize>,
}

impl<P: SchedulingPolicy> AvoidSaturated<P> {
    /// Wrap `inner` with a load ceiling.
    pub fn new(inner: P, threshold: f64) -> Self {
        AvoidSaturated {
            inner,
            threshold,
            keep: Vec::new(),
        }
    }
}

impl<P: SchedulingPolicy> SchedulingPolicy for AvoidSaturated<P> {
    fn choose(&mut self, nodes: &[NodeView], eligible: &[usize]) -> Option<usize> {
        self.keep.clear();
        self.keep.extend(
            eligible
                .iter()
                .copied()
                .filter(|&i| nodes[i].load < self.threshold),
        );
        if self.keep.is_empty() {
            return None; // defer: waiting beats starving
        }
        self.inner.choose(nodes, &self.keep)
    }

    fn name(&self) -> &'static str {
        "avoid-saturated"
    }
}

/// Filter nodes by an activity's placement constraints and capacity, then
/// ask the policy.  Returns the chosen node name.
pub fn schedule<'a>(
    policy: &mut dyn SchedulingPolicy,
    nodes: &'a [NodeView],
    binding: &ExternalBinding,
) -> Option<&'a str> {
    let eligible: Vec<usize> = (0..nodes.len())
        .filter(|&i| {
            let n = &nodes[i];
            n.up && !n.quarantined
                && n.free_slots() > 0
                && binding.os.as_deref().map(|os| os == n.os).unwrap_or(true)
                && (binding.hosts.is_empty() || binding.hosts.contains(&n.name))
        })
        .collect();
    if eligible.is_empty() {
        return None;
    }
    let idx = policy.choose(nodes, &eligible)?;
    Some(nodes[idx].name.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, os: &str, speed: f64, cpus: u32, jobs: u32, load: f64) -> NodeView {
        NodeView {
            name: name.into(),
            os: os.into(),
            speed,
            cpus_online: cpus,
            running_jobs: jobs,
            load,
            up: true,
            quarantined: false,
        }
    }

    fn any() -> ExternalBinding {
        ExternalBinding::program("p")
    }

    #[test]
    fn least_loaded_prefers_idle_node() {
        let nodes = vec![
            node("busy", "linux", 1.0, 2, 0, 0.9),
            node("idle", "linux", 1.0, 2, 0, 0.1),
        ];
        let mut p = LeastLoaded;
        assert_eq!(schedule(&mut p, &nodes, &any()), Some("idle"));
    }

    #[test]
    fn fastest_fit_prefers_speed() {
        let nodes = vec![
            node("slow", "linux", 0.7, 2, 0, 0.0),
            node("fast", "linux", 1.2, 2, 0, 0.5),
        ];
        let mut p = FastestFit;
        assert_eq!(schedule(&mut p, &nodes, &any()), Some("fast"));
    }

    #[test]
    fn round_robin_rotates() {
        let nodes = vec![
            node("a", "linux", 1.0, 4, 0, 0.0),
            node("b", "linux", 1.0, 4, 0, 0.0),
        ];
        let mut p = RoundRobin::default();
        assert_eq!(schedule(&mut p, &nodes, &any()), Some("a"));
        assert_eq!(schedule(&mut p, &nodes, &any()), Some("b"));
        assert_eq!(schedule(&mut p, &nodes, &any()), Some("a"));
    }

    #[test]
    fn placement_constraints_filter() {
        let nodes = vec![
            node("sun1", "solaris", 0.7, 1, 0, 0.0),
            node("pc1", "linux", 1.0, 2, 0, 0.0),
        ];
        let mut p = LeastLoaded;
        let mut b = any();
        b.os = Some("solaris".into());
        assert_eq!(schedule(&mut p, &nodes, &b), Some("sun1"));
        let mut b2 = any();
        b2.hosts = vec!["pc1".into()];
        assert_eq!(schedule(&mut p, &nodes, &b2), Some("pc1"));
        let mut b3 = any();
        b3.os = Some("irix".into());
        assert_eq!(schedule(&mut p, &nodes, &b3), None);
    }

    #[test]
    fn full_nodes_are_ineligible() {
        let nodes = vec![node("a", "linux", 1.0, 2, 2, 0.0)];
        let mut p = LeastLoaded;
        assert_eq!(schedule(&mut p, &nodes, &any()), None);
        // Down nodes too.
        let mut n = node("b", "linux", 1.0, 2, 0, 0.0);
        n.up = false;
        assert_eq!(schedule(&mut p, &[n], &any()), None);
    }

    #[test]
    fn avoid_saturated_defers_rather_than_starving() {
        let nodes = vec![
            node("busy", "linux", 1.0, 2, 0, 0.99),
            node("alsobusy", "linux", 1.0, 2, 0, 0.97),
        ];
        let mut p = AvoidSaturated::new(LeastLoaded, 0.95);
        assert_eq!(
            schedule(&mut p, &nodes, &any()),
            None,
            "defer on saturation"
        );
        let nodes2 = vec![
            node("busy", "linux", 1.0, 2, 0, 0.99),
            node("free", "linux", 0.7, 1, 0, 0.1),
        ];
        assert_eq!(schedule(&mut p, &nodes2, &any()), Some("free"));
    }

    #[test]
    fn round_robin_survives_membership_churn() {
        // a=0, b=1, c=2.  The old `counter % eligible.len()` scheme
        // starved c under this churn pattern: whenever b dropped out the
        // shrunken modulus re-aimed the pointer at a.
        let a = || node("a", "linux", 1.0, 1, 0, 0.0);
        let b = || node("b", "linux", 1.0, 1, 0, 0.0);
        let c = || node("c", "linux", 1.0, 1, 0, 0.0);
        let full = || node("b", "linux", 1.0, 1, 1, 0.0); // no free slot
        let mut p = RoundRobin::default();
        let mut picks = Vec::new();
        for round in 0..6 {
            // b flaps in and out of the eligible set every other round.
            let nodes = if round % 2 == 0 {
                vec![a(), b(), c()]
            } else {
                vec![a(), full(), c()]
            };
            picks.push(schedule(&mut p, &nodes, &any()).unwrap().to_string());
        }
        assert!(
            picks.iter().any(|n| n == "c"),
            "churn must not starve c: {picks:?}"
        );
        // Every eligible node is visited within one full rotation of a
        // stable set.
        let stable = vec![a(), b(), c()];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..3 {
            seen.insert(schedule(&mut p, &stable, &any()).unwrap().to_string());
        }
        assert_eq!(seen.len(), 3, "full rotation visits every node");
    }

    #[test]
    fn nan_load_cannot_win_and_is_rejected_at_construction() {
        // A raw NaN that slips into a view loses deterministically under
        // total_cmp, independent of input order.
        let mut broken = node("broken", "linux", 1.0, 2, 0, 0.0);
        broken.load = f64::NAN;
        let ok = node("ok", "linux", 1.0, 2, 0, 0.5);
        let mut p = LeastLoaded;
        assert_eq!(
            schedule(&mut p, &[broken.clone(), ok.clone()], &any()),
            Some("ok")
        );
        assert_eq!(schedule(&mut p, &[ok, broken], &any()), Some("ok"));
        // FastestFit with a NaN speed likewise.
        let mut slow_nan = node("nanspeed", "linux", 1.0, 2, 0, 0.0);
        slow_nan.speed = f64::NAN;
        let fast = node("fast", "linux", 1.2, 2, 0, 0.9);
        let mut f = FastestFit;
        assert_eq!(
            schedule(&mut f, &[slow_nan.clone(), fast.clone()], &any()),
            Some("fast")
        );
        assert_eq!(schedule(&mut f, &[fast, slow_nan], &any()), Some("fast"));
        // The constructor rejects non-finite measurements outright.
        let v = NodeView::new("m".into(), "linux".into(), f64::NAN, 2, 0, 0.1, true, false);
        assert!(!v.up, "non-finite speed marks the node down");
        assert_eq!(v.speed, 0.0);
        let v = NodeView::new(
            "m".into(),
            "linux".into(),
            1.0,
            2,
            0,
            f64::INFINITY,
            true,
            false,
        );
        assert!(!v.up, "non-finite load marks the node down");
        assert_eq!(v.load, 1.0);
        let v = NodeView::new("m".into(), "linux".into(), 1.0, 2, 0, 0.25, true, false);
        assert!(v.up, "finite measurements pass through");
        assert_eq!(v.load, 0.25);
    }

    #[test]
    fn quarantined_nodes_are_ineligible() {
        let mut q = node("q", "linux", 2.0, 4, 0, 0.0);
        q.quarantined = true;
        let h = node("h", "linux", 0.5, 1, 0, 0.9);
        let mut p = LeastLoaded;
        assert_eq!(
            schedule(&mut p, &[q.clone(), h], &any()),
            Some("h"),
            "quarantined node loses despite being idle and fast"
        );
        assert_eq!(schedule(&mut p, &[q], &any()), None);
    }

    #[test]
    fn deterministic_tie_break_by_name() {
        let nodes = vec![
            node("zeta", "linux", 1.0, 2, 0, 0.3),
            node("alpha", "linux", 1.0, 2, 0, 0.3),
        ];
        let mut p = LeastLoaded;
        assert_eq!(schedule(&mut p, &nodes, &any()), Some("alpha"));
    }
}
