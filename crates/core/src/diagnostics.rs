//! Shared stall diagnostics for both engine facades.
//!
//! When a run goes quiescent without finishing, the message the operator
//! sees must answer one question first: *is this a bug or a parked
//! experiment?*  A suspended instance is healthy — it resumes on demand —
//! while a `Running` instance with no queued work is a wedge worth a bug
//! report.  Both the serial facade and the shard engine render their
//! breakdown through [`survey`] so the two paths can never drift into
//! describing the same state differently.

use crate::state::{InstanceId, InstanceStatus, TaskRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Bounded so a 100k-instance stall stays a readable message, not a
/// memory spike.
const MAX_INSTANCES: usize = 8;
const MAX_TASKS: usize = 4;

/// Tallies of non-terminal instances, split by whether an operator can
/// fix them with `resume()`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StallSummary {
    /// Non-terminal and not suspended: quiescence here is a bug.
    pub stuck: usize,
    /// Parked by an operator (or a suspend-on-failure policy): resumable.
    pub suspended: usize,
}

/// Bounded per-instance breakdown of non-terminal state, distinguishing
/// "suspended (resumable)" from "stuck (bug)".  Returns the rendered
/// detail string plus the tallies the caller needs to decide whether the
/// quiescence is an error at all.
pub(crate) fn survey<'a>(
    instances: impl Iterator<Item = (InstanceId, InstanceStatus, &'a BTreeMap<String, TaskRecord>)>,
) -> (StallSummary, String) {
    let mut out = String::new();
    let mut summary = StallSummary::default();
    let mut shown = 0usize;
    for (id, status, tasks) in instances {
        if status.is_terminal() {
            continue;
        }
        let resumable = status == InstanceStatus::Suspended;
        if resumable {
            summary.suspended += 1;
        } else {
            summary.stuck += 1;
        }
        if shown >= MAX_INSTANCES {
            continue;
        }
        shown += 1;
        if resumable {
            let _ = write!(out, "; inst {id} [suspended (resumable)]");
        } else {
            let _ = write!(out, "; inst {id} [{status:?}, stuck]");
        }
        for (i, rec) in tasks
            .values()
            .filter(|r| !r.state.is_terminal())
            .enumerate()
        {
            if i >= MAX_TASKS {
                out.push_str(" …");
                break;
            }
            let _ = write!(out, " {}={:?}", rec.path, rec.state);
        }
    }
    let total = summary.stuck + summary.suspended;
    if total > shown {
        let _ = write!(out, "; (+{} more instances)", total - shown);
    }
    (summary, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::TaskState;

    fn task(path: &str, state: TaskState) -> (String, TaskRecord) {
        let mut rec = TaskRecord::new(path.to_string());
        rec.state = state;
        (path.to_string(), rec)
    }

    #[test]
    fn survey_separates_suspended_from_stuck() {
        let running: BTreeMap<String, TaskRecord> =
            [task("A", TaskState::Dispatched)].into_iter().collect();
        let parked: BTreeMap<String, TaskRecord> =
            [task("B", TaskState::Ready)].into_iter().collect();
        let done: BTreeMap<String, TaskRecord> = BTreeMap::new();
        let rows = [
            (1u64, InstanceStatus::Running, &running),
            (2u64, InstanceStatus::Suspended, &parked),
            (3u64, InstanceStatus::Completed, &done),
        ];
        let (summary, detail) = survey(rows.iter().map(|(i, s, t)| (*i, *s, *t)));
        assert_eq!(
            summary,
            StallSummary {
                stuck: 1,
                suspended: 1
            }
        );
        assert!(detail.contains("inst 1 [Running, stuck] A=Dispatched"));
        assert!(detail.contains("inst 2 [suspended (resumable)] B=Ready"));
        assert!(!detail.contains("inst 3"));
    }

    #[test]
    fn survey_bounds_output() {
        let tasks: BTreeMap<String, TaskRecord> = (0..8)
            .map(|i| task(&format!("T{i}"), TaskState::Ready))
            .collect();
        let rows: Vec<(u64, InstanceStatus, &BTreeMap<String, TaskRecord>)> = (1..=12)
            .map(|i| (i, InstanceStatus::Running, &tasks))
            .collect();
        let (summary, detail) = survey(rows.into_iter());
        assert_eq!(summary.stuck, 12);
        assert!(detail.contains("(+4 more instances)"));
        assert!(detail.contains(" …"));
    }
}
