//! The navigator: BioOpera's persistent process interpreter.
//!
//! "From the instance space, process execution is controlled by the
//! navigator.  In this sense, OCR acts as a persistent scripting language
//! interpreted by the navigator" (§3.2).  This module is *pure*: it
//! transforms in-memory copies of the instance records and reports what
//! changed; the runtime persists the changes atomically and talks to the
//! cluster.  That separation is what lets the recovery tests replay the
//! navigator deterministically.
//!
//! Semantics implemented here:
//!
//! * activation: a task becomes `Ready` once **all** incoming connectors
//!   are resolved and **at least one** condition evaluated to true;
//!   all-false means dead path → `Skipped` (and propagates);
//! * the **mapping phase** on task completion: outputs flow along data-flow
//!   connectors into the whiteboard and successor input structures;
//! * **parallel task** expansion: one child per element of the `OVER`
//!   list, degree of parallelism determined at runtime; the task concludes
//!   when every child has; results are collected into the `COLLECT` list;
//! * **failure semantics**: *system* failures (node crash, outage, disk)
//!   re-queue the task without consuming retries — the engine masks them;
//!   *program* failures consume retries, then apply the template's failure
//!   handler (alternative / ignore / compensate-sphere / abort / suspend);
//! * **spheres of atomicity**: compensation of completed members in
//!   reverse completion order.

use crate::error::{EngineError, EngineResult};
use crate::state::{parallel_child_path, InstanceHeader, InstanceStatus, TaskRecord, TaskState};
use bioopera_cluster::SimTime;
use bioopera_ocr::expr::{self, Env};
use bioopera_ocr::model::{DataRef, FailurePolicy, ParallelBody, ProcessTemplate, TaskKind};
use bioopera_ocr::value::Value;
use std::collections::BTreeMap;

/// Mutable view of one instance's state during a navigation step.
pub struct InstanceView<'a> {
    /// The (immutable) template.
    pub template: &'a ProcessTemplate,
    /// Header: status + whiteboard.
    pub header: &'a mut InstanceHeader,
    /// All task records, keyed by path.
    pub tasks: &'a mut BTreeMap<String, TaskRecord>,
}

/// What a navigation step decided (the runtime turns these into persistent
/// writes, dispatches, and child-instance operations).
#[derive(Debug, Default, PartialEq)]
pub struct NavOutcome {
    /// Task paths that just became `Ready`.
    pub newly_ready: Vec<String>,
    /// Task paths that were dead-path eliminated.
    pub newly_skipped: Vec<String>,
    /// The instance reached `Completed`.
    pub completed: bool,
    /// The instance was aborted by a failure policy.
    pub aborted: bool,
    /// The instance was suspended by a failure policy.
    pub suspended: bool,
    /// Compensation programs to run, in order: `(task, program)`.
    pub compensations: Vec<(String, String)>,
}

impl NavOutcome {
    fn merge(&mut self, other: NavOutcome) {
        self.newly_ready.extend(other.newly_ready);
        self.newly_skipped.extend(other.newly_skipped);
        self.completed |= other.completed;
        self.aborted |= other.aborted;
        self.suspended |= other.suspended;
        self.compensations.extend(other.compensations);
    }
}

/// Why a task attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Node crash, network outage, storage failure: the environment's
    /// fault.  Masked by re-queueing; never consumes retries.
    System,
    /// The program itself reported an error: consumes a retry, then the
    /// failure handler applies.
    Program,
}

/// Guard-expression environment over an instance.
struct GuardEnv<'a> {
    header: &'a InstanceHeader,
    tasks: &'a BTreeMap<String, TaskRecord>,
}

impl Env for GuardEnv<'_> {
    fn lookup(&self, path: &[String]) -> Option<Value> {
        if path.is_empty() {
            return None;
        }
        let head = path[0].as_str();
        if head == "WHITEBOARD" && path.len() >= 2 {
            return lookup_nested(self.header.whiteboard.get(&path[1]), &path[2..]);
        }
        if let Some(task) = self.tasks.get(head) {
            if path.len() >= 2 {
                return lookup_nested(task.outputs.get(&path[1]), &path[2..]);
            }
            return None;
        }
        lookup_nested(self.header.whiteboard.get(head), &path[1..])
    }
}

fn lookup_nested(base: Option<&Value>, rest: &[String]) -> Option<Value> {
    let mut cur = base?;
    for seg in rest {
        cur = cur.as_map()?.get(seg)?;
    }
    Some(cur.clone())
}

/// Initialize a fresh instance: create all task records, seed the
/// whiteboard from declarations plus `initial` values, and mark entry
/// tasks `Ready`.
pub fn init_instance(
    view: &mut InstanceView<'_>,
    initial: &BTreeMap<String, Value>,
) -> EngineResult<NavOutcome> {
    for field in &view.template.whiteboard {
        let v = initial
            .get(&field.name)
            .cloned()
            .or_else(|| field.default.clone())
            .unwrap_or(Value::Null);
        view.header.whiteboard.insert(field.name.clone(), v);
    }
    // Unknown initial fields are still placed on the whiteboard (the paper
    // lets operators add data at start time).
    for (k, v) in initial {
        view.header
            .whiteboard
            .entry(k.clone())
            .or_insert_with(|| v.clone());
    }
    for task in &view.template.tasks {
        view.tasks
            .insert(task.name.clone(), TaskRecord::new(task.name.clone()));
    }
    let mut out = NavOutcome::default();
    for name in view.template.initial_tasks() {
        let rec = view
            .tasks
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownTask(view.header.id, name.to_string()))?;
        rec.state = TaskState::Ready;
        out.newly_ready.push(name.to_string());
    }
    // A template whose entry tasks are all guarded off could complete
    // instantly; propagate handles the general case.
    let p = propagate(view)?;
    out.merge(p);
    Ok(out)
}

/// Bind the final input structure for a (template) task at dispatch time:
/// declaration defaults, then `WHITEBOARD -> task` dataflows, then values
/// mapped in by completed predecessors.
pub fn bind_inputs(view: &InstanceView<'_>, task_name: &str) -> BTreeMap<String, Value> {
    bind_inputs_parts(view.template, view.header, view.tasks, task_name)
}

/// [`bind_inputs`] over the raw parts (read-only callers avoid building a
/// mutable view).
pub fn bind_inputs_parts(
    template: &ProcessTemplate,
    header: &InstanceHeader,
    tasks: &BTreeMap<String, TaskRecord>,
    task_name: &str,
) -> BTreeMap<String, Value> {
    let view = PartsView {
        template,
        header,
        tasks,
    };
    view.bind(task_name)
}

struct PartsView<'a> {
    template: &'a ProcessTemplate,
    header: &'a InstanceHeader,
    tasks: &'a BTreeMap<String, TaskRecord>,
}

impl PartsView<'_> {
    fn bind(&self, task_name: &str) -> BTreeMap<String, Value> {
        let view = self;
        let mut inputs = BTreeMap::new();
        if let Some(decl) = view.template.task(task_name) {
            for f in &decl.inputs {
                if let Some(d) = &f.default {
                    inputs.insert(f.name.clone(), d.clone());
                }
            }
        }
        for flow in &view.template.dataflows {
            if let (DataRef::Whiteboard(w), DataRef::TaskField(t, f)) = (&flow.from, &flow.to) {
                if t == task_name {
                    if let Some(v) = view.header.whiteboard.get(w) {
                        if v.is_defined() {
                            inputs.insert(f.clone(), v.clone());
                        }
                    }
                }
            }
        }
        if let Some(rec) = view.tasks.get(task_name) {
            for (k, v) in &rec.inputs {
                inputs.insert(k.clone(), v.clone());
            }
        }
        inputs
    }
}

/// Handle successful completion of the task at `path` with `outputs`:
/// record, run the mapping phase, propagate readiness, detect completion.
pub fn on_task_ended(
    view: &mut InstanceView<'_>,
    path: &str,
    outputs: BTreeMap<String, Value>,
    now: SimTime,
    cpu_ms: f64,
) -> EngineResult<NavOutcome> {
    let parent = {
        let rec = view
            .tasks
            .get_mut(path)
            .ok_or_else(|| EngineError::UnknownTask(view.header.id, path.to_string()))?;
        rec.outputs = outputs;
        rec.state = TaskState::Ended;
        rec.ended_at = Some(now);
        rec.cpu_ms += cpu_ms;
        rec.parallel_parent().map(str::to_string)
    };
    let mut out = NavOutcome::default();

    if let Some(parent) = parent {
        // A parallel child finished; the parent concludes when all do.
        out.merge(check_parallel_parent(view, &parent, now)?);
    } else {
        // Template task: mapping phase along declared dataflows.
        run_mapping_phase(view, path);
        out.merge(propagate(view)?);
    }
    out.merge(check_completion(view, now));
    Ok(out)
}

/// Re-evaluate readiness and completion without a triggering event — used
/// when records are seeded externally (selective recomputation).
pub fn reevaluate(view: &mut InstanceView<'_>, now: SimTime) -> EngineResult<NavOutcome> {
    let mut out = propagate(view)?;
    out.merge(check_completion(view, now));
    Ok(out)
}

/// Replay the mapping phase of an (already `Ended`) task — used when its
/// recorded outputs are reused by a recomputation instance and successors
/// need their input buffers refilled.
pub fn replay_mapping(view: &mut InstanceView<'_>, task: &str) {
    if view.tasks.get(task).map(|r| r.state) == Some(TaskState::Ended)
        && view.template.task(task).is_some()
    {
        run_mapping_phase(view, task);
    }
}

/// Copy the completed task's outputs along its outgoing dataflows.
fn run_mapping_phase(view: &mut InstanceView<'_>, task: &str) {
    let flows: Vec<(String, DataRef)> = view
        .template
        .dataflows
        .iter()
        .filter_map(|d| match &d.from {
            DataRef::TaskField(t, f) if t == task => Some((f.clone(), d.to.clone())),
            _ => None,
        })
        .collect();
    for (field, to) in flows {
        let Some(value) = view
            .tasks
            .get(task)
            .and_then(|r| r.outputs.get(&field))
            .cloned()
        else {
            continue;
        };
        if !value.is_defined() {
            continue;
        }
        match to {
            DataRef::Whiteboard(w) => {
                view.header.whiteboard.insert(w, value);
            }
            DataRef::TaskField(t, f) => {
                if let Some(rec) = view.tasks.get_mut(&t) {
                    rec.inputs.insert(f, value);
                }
            }
        }
    }
}

/// Re-evaluate readiness of all inactive tasks until fixpoint.
fn propagate(view: &mut InstanceView<'_>) -> EngineResult<NavOutcome> {
    let mut out = NavOutcome::default();
    loop {
        let mut changed = false;
        let names: Vec<String> = view.template.tasks.iter().map(|t| t.name.clone()).collect();
        for name in names {
            // A template task with no record (foreign or truncated journal
            // state) cannot be activated; skip it rather than panic.
            if view.tasks.get(&name).map(|r| r.state) != Some(TaskState::Inactive) {
                continue;
            }
            let incoming = view.template.incoming(&name);
            debug_assert!(!incoming.is_empty(), "initial tasks are Ready at init");
            let mut all_resolved = true;
            let mut any_true = false;
            for conn in &incoming {
                // A missing source record counts as unresolved: the task
                // stays Inactive instead of firing on phantom state.
                let Some(src_state) = view.tasks.get(&conn.from).map(|r| r.state) else {
                    all_resolved = false;
                    break;
                };
                if !src_state.is_resolved() {
                    all_resolved = false;
                    break;
                }
                if src_state == TaskState::Ended {
                    let env = GuardEnv {
                        header: view.header,
                        tasks: view.tasks,
                    };
                    let fired = expr::eval_bool(&conn.condition, &env).map_err(|e| {
                        EngineError::Guard(format!("{} -> {}", conn.from, conn.to), e)
                    })?;
                    any_true |= fired;
                }
                // Skipped/Failed/Compensated sources contribute `false`.
            }
            if !all_resolved {
                continue;
            }
            let rec = view
                .tasks
                .get_mut(&name)
                .ok_or_else(|| EngineError::UnknownTask(view.header.id, name.clone()))?;
            if any_true {
                rec.state = TaskState::Ready;
                out.newly_ready.push(name.clone());
            } else {
                rec.state = TaskState::Skipped;
                out.newly_skipped.push(name.clone());
            }
            changed = true;
        }
        if !changed {
            return Ok(out);
        }
    }
}

/// Expand a `Ready` parallel task: create one child record per input
/// element.  Returns the child paths (all `Ready`).  An empty input list
/// completes the task immediately with an empty collection.
pub fn expand_parallel(
    view: &mut InstanceView<'_>,
    task_name: &str,
    now: SimTime,
) -> EngineResult<(Vec<String>, NavOutcome)> {
    let decl = view
        .template
        .task(task_name)
        .ok_or_else(|| EngineError::Internal(format!("no template task {task_name}")))?;
    let TaskKind::Parallel { over, .. } = &decl.kind else {
        return Err(EngineError::Internal(format!(
            "{task_name} is not a parallel task"
        )));
    };
    let bound = bind_inputs(view, task_name);
    let items: Vec<Value> = match bound.get(over.as_str()) {
        Some(Value::List(xs)) => xs.clone(),
        Some(other) => {
            return Err(EngineError::Internal(format!(
                "parallel {task_name}: OVER field `{over}` is {}, expected list",
                other.type_name()
            )))
        }
        None => Vec::new(),
    };
    {
        let rec = view
            .tasks
            .get_mut(task_name)
            .ok_or_else(|| EngineError::UnknownTask(view.header.id, task_name.to_string()))?;
        rec.inputs = bound.clone();
        rec.state = TaskState::Dispatched;
        rec.started_at = Some(now);
    }
    if items.is_empty() {
        // Degenerate parallel task: conclude immediately.
        let collect = collect_field(view.template, task_name)?;
        let mut outputs = BTreeMap::new();
        outputs.insert(collect, Value::List(Vec::new()));
        let out = on_task_ended(view, task_name, outputs, now, 0.0)?;
        return Ok((Vec::new(), out));
    }
    let mut paths = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let path = parallel_child_path(task_name, i);
        let mut rec = TaskRecord::new(path.clone());
        rec.state = TaskState::Ready;
        rec.inputs.insert("item".to_string(), item.clone());
        rec.inputs.insert("index".to_string(), Value::Int(i as i64));
        // Pass through the parallel task's other inputs (db name etc.).
        for (k, v) in &bound {
            if k != over {
                rec.inputs.insert(k.clone(), v.clone());
            }
        }
        view.tasks.insert(path.clone(), rec);
        paths.push(path);
    }
    Ok((paths, NavOutcome::default()))
}

fn collect_field(template: &ProcessTemplate, task: &str) -> EngineResult<String> {
    match &template.task(task).map(|t| &t.kind) {
        Some(TaskKind::Parallel { collect, .. }) => Ok(collect.clone()),
        _ => Err(EngineError::Internal(format!(
            "{task} lost its parallel kind"
        ))),
    }
}

/// The body of a parallel task (activity program or subprocess template).
pub fn parallel_body<'t>(template: &'t ProcessTemplate, task: &str) -> Option<&'t ParallelBody> {
    match &template.task(task)?.kind {
        TaskKind::Parallel { body, .. } => Some(body),
        _ => None,
    }
}

/// If all children of `parent` are terminal, conclude the parent with the
/// collected child outputs.
fn check_parallel_parent(
    view: &mut InstanceView<'_>,
    parent: &str,
    now: SimTime,
) -> EngineResult<NavOutcome> {
    if view.tasks.get(parent).map(|r| r.state) != Some(TaskState::Dispatched) {
        return Ok(NavOutcome::default());
    }
    let prefix = format!("{parent}[");
    let mut children: Vec<(usize, TaskState, BTreeMap<String, Value>, f64)> = view
        .tasks
        .iter()
        .filter(|(p, _)| p.starts_with(&prefix))
        .map(|(_, r)| {
            (
                r.parallel_index().unwrap_or(0),
                r.state,
                r.outputs.clone(),
                r.cpu_ms,
            )
        })
        .collect();
    if children.iter().any(|(_, s, _, _)| !s.is_terminal()) {
        return Ok(NavOutcome::default());
    }
    children.sort_by_key(|(i, _, _, _)| *i);
    let collected: Vec<Value> = children
        .iter()
        .map(|(_, _, outputs, _)| {
            Value::Map(
                outputs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            )
        })
        .collect();
    let child_cpu: f64 = children.iter().map(|(_, _, _, c)| c).sum();
    let collect = collect_field(view.template, parent)?;
    let mut outputs = BTreeMap::new();
    outputs.insert(collect, Value::List(collected));
    // The parent's CPU is the sum of its children's (already recorded on
    // the children; recorded again on the parent would double-count, so
    // pass 0 and keep the sum only in the parent's record field).
    let out = on_task_ended(view, parent, outputs, now, 0.0)?;
    if let Some(rec) = view.tasks.get_mut(parent) {
        rec.cpu_ms = child_cpu;
    }
    Ok(out)
}

/// Handle a failed attempt of the task at `path`.
pub fn on_task_failed(
    view: &mut InstanceView<'_>,
    path: &str,
    kind: FailureKind,
    now: SimTime,
) -> EngineResult<NavOutcome> {
    let (attempts, retries, parent_name) = {
        let rec = view
            .tasks
            .get_mut(path)
            .ok_or_else(|| EngineError::UnknownTask(view.header.id, path.to_string()))?;
        if kind == FailureKind::System {
            // Masked: back to the activity queue, no retry consumed.
            rec.state = TaskState::Ready;
            rec.node = None;
            return Ok(NavOutcome {
                newly_ready: vec![path.to_string()],
                ..Default::default()
            });
        }
        rec.attempts += 1;
        rec.state = TaskState::Failed;
        rec.node = None;
        let parent = rec.parallel_parent().map(str::to_string);
        (rec.attempts, 0u32, parent)
    };
    // Retry budget comes from the template declaration (children inherit
    // their parallel parent's).
    let decl_name = parent_name.as_deref().unwrap_or(path);
    let declared_retries = view
        .template
        .task(decl_name)
        .map(|t| t.retries)
        .unwrap_or(retries);
    if attempts <= declared_retries {
        let rec = view
            .tasks
            .get_mut(path)
            .ok_or_else(|| EngineError::UnknownTask(view.header.id, path.to_string()))?;
        rec.state = TaskState::Ready;
        return Ok(NavOutcome {
            newly_ready: vec![path.to_string()],
            ..Default::default()
        });
    }
    // Retries exhausted: apply the failure policy.
    let policy = view
        .template
        .failure_handler_for(decl_name)
        .map(|h| h.policy.clone())
        .unwrap_or(FailurePolicy::Abort);
    let mut out = NavOutcome::default();
    match policy {
        FailurePolicy::Ignore => {
            view.tasks
                .get_mut(path)
                .ok_or_else(|| EngineError::UnknownTask(view.header.id, path.to_string()))?
                .state = TaskState::Skipped;
            out.newly_skipped.push(path.to_string());
            if let Some(parent) = parent_name {
                out.merge(check_parallel_parent(view, &parent, now)?);
            } else {
                out.merge(propagate(view)?);
            }
            out.merge(check_completion(view, now));
        }
        FailurePolicy::Alternative(alt) => {
            view.tasks
                .get_mut(path)
                .ok_or_else(|| EngineError::UnknownTask(view.header.id, path.to_string()))?
                .state = TaskState::Skipped;
            out.newly_skipped.push(path.to_string());
            let alt_rec = view
                .tasks
                .get_mut(&alt)
                .ok_or_else(|| EngineError::Internal(format!("alternative {alt} missing")))?;
            if alt_rec.state == TaskState::Inactive || alt_rec.state == TaskState::Skipped {
                alt_rec.state = TaskState::Ready;
                out.newly_ready.push(alt);
            }
        }
        FailurePolicy::CompensateSphere(sphere_name) => {
            let sphere = view
                .template
                .spheres
                .iter()
                .find(|s| s.name == sphere_name)
                .cloned()
                .ok_or_else(|| EngineError::Internal(format!("sphere {sphere_name} missing")))?;
            // Compensate Ended members in reverse completion order.
            let mut ended: Vec<(SimTime, String)> = sphere
                .members
                .iter()
                .filter_map(|m| {
                    let r = view.tasks.get(m)?;
                    (r.state == TaskState::Ended)
                        .then(|| (r.ended_at.unwrap_or(SimTime::ZERO), m.clone()))
                })
                .collect();
            ended.sort();
            ended.reverse();
            for (_, member) in ended {
                // `ended` was collected from `view.tasks` above, but the
                // same typed-error discipline applies.
                view.tasks
                    .get_mut(&member)
                    .ok_or_else(|| EngineError::UnknownTask(view.header.id, member.clone()))?
                    .state = TaskState::Compensated;
                if let Some((_, prog)) = sphere.compensations.iter().find(|(t, _)| *t == member) {
                    out.compensations.push((member.clone(), prog.clone()));
                }
            }
            view.header.status = InstanceStatus::Aborted;
            view.header.ended_at = Some(now);
            out.aborted = true;
        }
        FailurePolicy::Abort => {
            view.header.status = InstanceStatus::Aborted;
            view.header.ended_at = Some(now);
            out.aborted = true;
        }
        FailurePolicy::Suspend => {
            view.header.status = InstanceStatus::Suspended;
            out.suspended = true;
        }
    }
    Ok(out)
}

/// On operator resume, give suspended/failed tasks another chance.
///
/// Also re-checks completion: an instance whose last task ended while it
/// was parked (in-flight work drains under suspension) has nothing left
/// to re-activate and must flip terminal now, not never.
pub fn on_resume(view: &mut InstanceView<'_>, now: SimTime) -> NavOutcome {
    let mut out = NavOutcome::default();
    if view.header.status == InstanceStatus::Suspended {
        view.header.status = InstanceStatus::Running;
    }
    for (path, rec) in view.tasks.iter_mut() {
        if rec.state == TaskState::Failed {
            rec.attempts = 0;
            rec.state = TaskState::Ready;
            out.newly_ready.push(path.clone());
        }
    }
    if out.newly_ready.is_empty() {
        let done = check_completion(view, now);
        out.completed = done.completed;
    }
    out
}

/// Completed = every template task terminal.
fn check_completion(view: &mut InstanceView<'_>, now: SimTime) -> NavOutcome {
    if view.header.status != InstanceStatus::Running {
        return NavOutcome::default();
    }
    let all_done = view.template.tasks.iter().all(|t| {
        view.tasks
            .get(&t.name)
            .map(|r| r.state.is_terminal())
            .unwrap_or(false)
    });
    if all_done {
        view.header.status = InstanceStatus::Completed;
        view.header.ended_at = Some(now);
        NavOutcome {
            completed: true,
            ..Default::default()
        }
    } else {
        NavOutcome::default()
    }
}

/// Evaluate an expression against the instance (used by event handlers'
/// `SET field = expr`).
pub fn eval_in_instance(
    view: &InstanceView<'_>,
    e: &bioopera_ocr::expr::Expr,
) -> EngineResult<Value> {
    let env = GuardEnv {
        header: view.header,
        tasks: view.tasks,
    };
    expr::eval(e, &env).map_err(|err| EngineError::Guard("event handler".into(), err))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioopera_ocr::model::{ExternalBinding, TypeTag};
    use bioopera_ocr::{Expr, ProcessBuilder};

    fn fresh(template: &ProcessTemplate) -> (InstanceHeader, BTreeMap<String, TaskRecord>) {
        let header = InstanceHeader {
            id: 1,
            template: template.name.clone(),
            status: InstanceStatus::Running,
            whiteboard: BTreeMap::new(),
            parent: None,
            created_at: SimTime::ZERO,
            ended_at: None,
        };
        (header, BTreeMap::new())
    }

    fn linear_template() -> ProcessTemplate {
        ProcessBuilder::new("Linear")
            .whiteboard_default("db", TypeTag::Str, Value::from("sp38"))
            .activity("A", "p.a", |t| t.output("x", TypeTag::Int))
            .activity("B", "p.b", |t| {
                t.input("x", TypeTag::Int).output("y", TypeTag::Int)
            })
            .activity("C", "p.c", |t| t.input("y", TypeTag::Int))
            .connect("A", "B")
            .connect("B", "C")
            .flow_to_task("A", "x", "B", "x")
            .flow_to_task("B", "y", "C", "y")
            .build()
            .unwrap()
    }

    fn outputs(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn linear_flow_runs_in_order() {
        let t = linear_template();
        let (mut header, mut tasks) = fresh(&t);
        let mut view = InstanceView {
            template: &t,
            header: &mut header,
            tasks: &mut tasks,
        };
        let out = init_instance(&mut view, &BTreeMap::new()).unwrap();
        assert_eq!(out.newly_ready, vec!["A"]);
        assert_eq!(view.header.whiteboard["db"], Value::from("sp38"));

        let out = on_task_ended(
            &mut view,
            "A",
            outputs(&[("x", Value::Int(7))]),
            SimTime::from_secs(1),
            5.0,
        )
        .unwrap();
        assert_eq!(out.newly_ready, vec!["B"]);
        assert!(!out.completed);
        // Mapping phase moved x into B's input buffer.
        assert_eq!(bind_inputs(&view, "B")["x"], Value::Int(7));

        let out = on_task_ended(
            &mut view,
            "B",
            outputs(&[("y", Value::Int(14))]),
            SimTime::from_secs(2),
            5.0,
        )
        .unwrap();
        assert_eq!(out.newly_ready, vec!["C"]);
        let out =
            on_task_ended(&mut view, "C", BTreeMap::new(), SimTime::from_secs(3), 5.0).unwrap();
        assert!(out.completed);
        assert_eq!(view.header.status, InstanceStatus::Completed);
        assert_eq!(view.header.ended_at, Some(SimTime::from_secs(3)));
    }

    fn branching_template() -> ProcessTemplate {
        // The all-vs-all head shape: QueueGen runs only without a queue file.
        ProcessBuilder::new("Branch")
            .activity("UI", "p.ui", |t| t.output("queue", TypeTag::List))
            .activity("QG", "p.qg", |t| t.output("queue", TypeTag::List))
            .activity("Prep", "p.prep", |t| t.input("queue", TypeTag::List))
            .connect_when("UI", "QG", Expr::undefined("UI.queue"))
            .connect_when("UI", "Prep", Expr::defined("UI.queue"))
            .connect("QG", "Prep")
            .flow_to_task("UI", "queue", "Prep", "queue")
            .flow_to_task("QG", "queue", "Prep", "queue")
            .build()
            .unwrap()
    }

    #[test]
    fn conditional_branch_with_queue_file_skips_queue_gen() {
        let t = branching_template();
        let (mut header, mut tasks) = fresh(&t);
        let mut view = InstanceView {
            template: &t,
            header: &mut header,
            tasks: &mut tasks,
        };
        init_instance(&mut view, &BTreeMap::new()).unwrap();
        let out = on_task_ended(
            &mut view,
            "UI",
            outputs(&[("queue", Value::int_list([1, 2, 3]))]),
            SimTime::ZERO,
            0.0,
        )
        .unwrap();
        assert_eq!(out.newly_skipped, vec!["QG"]);
        assert_eq!(out.newly_ready, vec!["Prep"]);
        assert_eq!(
            bind_inputs(&view, "Prep")["queue"],
            Value::int_list([1, 2, 3])
        );
    }

    #[test]
    fn conditional_branch_without_queue_file_runs_queue_gen() {
        let t = branching_template();
        let (mut header, mut tasks) = fresh(&t);
        let mut view = InstanceView {
            template: &t,
            header: &mut header,
            tasks: &mut tasks,
        };
        init_instance(&mut view, &BTreeMap::new()).unwrap();
        // UI produced no queue.
        let out = on_task_ended(&mut view, "UI", BTreeMap::new(), SimTime::ZERO, 0.0).unwrap();
        assert_eq!(out.newly_ready, vec!["QG"]);
        assert!(out.newly_skipped.is_empty());
        let out = on_task_ended(
            &mut view,
            "QG",
            outputs(&[("queue", Value::int_list([9]))]),
            SimTime::ZERO,
            0.0,
        )
        .unwrap();
        assert_eq!(out.newly_ready, vec!["Prep"]);
        assert_eq!(bind_inputs(&view, "Prep")["queue"], Value::int_list([9]));
    }

    fn parallel_template() -> ProcessTemplate {
        ProcessBuilder::new("Par")
            .activity("Prep", "p.prep", |t| t.output("parts", TypeTag::List))
            .parallel(
                "Fan",
                "parts",
                ParallelBody::Activity(ExternalBinding::program("p.work")),
                "results",
                |t| t.retries(1),
            )
            .activity("Merge", "p.merge", |t| t.input("results", TypeTag::List))
            .connect("Prep", "Fan")
            .connect("Fan", "Merge")
            .flow_to_task("Prep", "parts", "Fan", "parts")
            .flow_to_task("Fan", "results", "Merge", "results")
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_expansion_and_collection() {
        let t = parallel_template();
        let (mut header, mut tasks) = fresh(&t);
        let mut view = InstanceView {
            template: &t,
            header: &mut header,
            tasks: &mut tasks,
        };
        init_instance(&mut view, &BTreeMap::new()).unwrap();
        on_task_ended(
            &mut view,
            "Prep",
            outputs(&[("parts", Value::int_list([10, 20, 30]))]),
            SimTime::ZERO,
            0.0,
        )
        .unwrap();
        assert_eq!(view.tasks["Fan"].state, TaskState::Ready);

        let (children, _) = expand_parallel(&mut view, "Fan", SimTime::ZERO).unwrap();
        assert_eq!(children, vec!["Fan[0]", "Fan[1]", "Fan[2]"]);
        assert_eq!(view.tasks["Fan"].state, TaskState::Dispatched);
        assert_eq!(view.tasks["Fan[1]"].inputs["item"], Value::Int(20));
        assert_eq!(view.tasks["Fan[1]"].inputs["index"], Value::Int(1));

        // Children complete out of order; results collected in index order.
        for (i, val) in [(2usize, 300i64), (0, 100), (1, 200)] {
            let path = format!("Fan[{i}]");
            let out = on_task_ended(
                &mut view,
                &path,
                outputs(&[("r", Value::Int(val))]),
                SimTime::from_secs(i as u64),
                7.0,
            )
            .unwrap();
            if i == 1 {
                // Last to finish: parent concludes, Merge becomes ready.
                assert!(out.newly_ready.contains(&"Merge".to_string()));
            }
        }
        let results = view.tasks["Fan"].outputs["results"]
            .as_list()
            .unwrap()
            .to_vec();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].get_path(&["r"]), Some(&Value::Int(100)));
        assert_eq!(results[2].get_path(&["r"]), Some(&Value::Int(300)));
        // Parent CPU aggregates children.
        assert!((view.tasks["Fan"].cpu_ms - 21.0).abs() < 1e-9);
    }

    #[test]
    fn empty_parallel_list_completes_immediately() {
        let t = parallel_template();
        let (mut header, mut tasks) = fresh(&t);
        let mut view = InstanceView {
            template: &t,
            header: &mut header,
            tasks: &mut tasks,
        };
        init_instance(&mut view, &BTreeMap::new()).unwrap();
        on_task_ended(
            &mut view,
            "Prep",
            outputs(&[("parts", Value::List(vec![]))]),
            SimTime::ZERO,
            0.0,
        )
        .unwrap();
        let (children, out) = expand_parallel(&mut view, "Fan", SimTime::ZERO).unwrap();
        assert!(children.is_empty());
        assert!(out.newly_ready.contains(&"Merge".to_string()));
        assert_eq!(view.tasks["Fan"].state, TaskState::Ended);
    }

    #[test]
    fn system_failure_requeues_without_consuming_retries() {
        let t = parallel_template();
        let (mut header, mut tasks) = fresh(&t);
        let mut view = InstanceView {
            template: &t,
            header: &mut header,
            tasks: &mut tasks,
        };
        init_instance(&mut view, &BTreeMap::new()).unwrap();
        on_task_ended(
            &mut view,
            "Prep",
            outputs(&[("parts", Value::int_list([1]))]),
            SimTime::ZERO,
            0.0,
        )
        .unwrap();
        expand_parallel(&mut view, "Fan", SimTime::ZERO).unwrap();
        // Five node crashes in a row: still Ready every time, no attempts.
        for _ in 0..5 {
            view.tasks.get_mut("Fan[0]").unwrap().state = TaskState::Dispatched;
            let out =
                on_task_failed(&mut view, "Fan[0]", FailureKind::System, SimTime::ZERO).unwrap();
            assert_eq!(out.newly_ready, vec!["Fan[0]"]);
        }
        assert_eq!(view.tasks["Fan[0]"].attempts, 0);
    }

    #[test]
    fn program_failure_respects_retry_budget_then_default_aborts() {
        let t = parallel_template(); // Fan has retries(1); no handler => Abort
        let (mut header, mut tasks) = fresh(&t);
        let mut view = InstanceView {
            template: &t,
            header: &mut header,
            tasks: &mut tasks,
        };
        init_instance(&mut view, &BTreeMap::new()).unwrap();
        on_task_ended(
            &mut view,
            "Prep",
            outputs(&[("parts", Value::int_list([1]))]),
            SimTime::ZERO,
            0.0,
        )
        .unwrap();
        expand_parallel(&mut view, "Fan", SimTime::ZERO).unwrap();
        // First program failure: one retry available.
        let out = on_task_failed(&mut view, "Fan[0]", FailureKind::Program, SimTime::ZERO).unwrap();
        assert_eq!(out.newly_ready, vec!["Fan[0]"]);
        // Second: retries exhausted, default policy aborts the instance.
        let out = on_task_failed(&mut view, "Fan[0]", FailureKind::Program, SimTime::ZERO).unwrap();
        assert!(out.aborted);
        assert_eq!(view.header.status, InstanceStatus::Aborted);
    }

    #[test]
    fn ignore_policy_skips_failed_task_and_continues() {
        let t = ProcessBuilder::new("P")
            .activity("A", "p.a", |t| t)
            .activity("B", "p.b", |t| t)
            .connect("A", "B")
            .on_failure("A", FailurePolicy::Ignore)
            .build()
            .unwrap();
        let (mut header, mut tasks) = fresh(&t);
        let mut view = InstanceView {
            template: &t,
            header: &mut header,
            tasks: &mut tasks,
        };
        init_instance(&mut view, &BTreeMap::new()).unwrap();
        let out = on_task_failed(&mut view, "A", FailureKind::Program, SimTime::ZERO).unwrap();
        // A skipped; B's only incoming connector resolves false => B skipped
        // => process completed (everything terminal).
        assert!(out.newly_skipped.contains(&"A".to_string()));
        assert!(out.newly_skipped.contains(&"B".to_string()));
        assert!(out.completed);
    }

    #[test]
    fn alternative_policy_activates_the_alternative() {
        let t = ProcessBuilder::new("P")
            .activity("A", "p.a", |t| t)
            .activity("Alt", "p.alt", |t| t)
            .activity("B", "p.b", |t| t)
            .connect_when("A", "B", Expr::truth())
            .connect_when("Alt", "B", Expr::truth())
            .on_failure("A", FailurePolicy::Alternative("Alt".into()))
            .build()
            .unwrap();
        let (mut header, mut tasks) = fresh(&t);
        let mut view = InstanceView {
            template: &t,
            header: &mut header,
            tasks: &mut tasks,
        };
        init_instance(&mut view, &BTreeMap::new()).unwrap();
        // Both A and Alt are initial (no incoming): Alt already Ready; make
        // a variant where Alt is downstream-only by marking it skipped first.
        view.tasks.get_mut("Alt").unwrap().state = TaskState::Skipped;
        let out = on_task_failed(&mut view, "A", FailureKind::Program, SimTime::ZERO).unwrap();
        assert!(out.newly_ready.contains(&"Alt".to_string()));
        assert_eq!(view.tasks["A"].state, TaskState::Skipped);
    }

    #[test]
    fn sphere_compensation_runs_in_reverse_order() {
        let t = ProcessBuilder::new("P")
            .activity("S1", "p.s1", |t| t)
            .activity("S2", "p.s2", |t| t)
            .activity("S3", "p.s3", |t| t)
            .connect("S1", "S2")
            .connect("S2", "S3")
            .sphere(
                "Atomic",
                ["S1", "S2", "S3"],
                [("S1", "undo.s1"), ("S2", "undo.s2")],
            )
            .on_failure("S3", FailurePolicy::CompensateSphere("Atomic".into()))
            .build()
            .unwrap();
        let (mut header, mut tasks) = fresh(&t);
        let mut view = InstanceView {
            template: &t,
            header: &mut header,
            tasks: &mut tasks,
        };
        init_instance(&mut view, &BTreeMap::new()).unwrap();
        on_task_ended(&mut view, "S1", BTreeMap::new(), SimTime::from_secs(1), 0.0).unwrap();
        on_task_ended(&mut view, "S2", BTreeMap::new(), SimTime::from_secs(2), 0.0).unwrap();
        let out =
            on_task_failed(&mut view, "S3", FailureKind::Program, SimTime::from_secs(3)).unwrap();
        assert!(out.aborted);
        // Reverse completion order: S2's undo before S1's.
        assert_eq!(
            out.compensations,
            vec![
                ("S2".to_string(), "undo.s2".to_string()),
                ("S1".to_string(), "undo.s1".to_string())
            ]
        );
        assert_eq!(view.tasks["S1"].state, TaskState::Compensated);
        assert_eq!(view.tasks["S2"].state, TaskState::Compensated);
    }

    #[test]
    fn suspend_policy_and_resume_retry() {
        let t = ProcessBuilder::new("P")
            .activity("A", "p.a", |t| t)
            .on_failure("A", FailurePolicy::Suspend)
            .build()
            .unwrap();
        let (mut header, mut tasks) = fresh(&t);
        let mut view = InstanceView {
            template: &t,
            header: &mut header,
            tasks: &mut tasks,
        };
        init_instance(&mut view, &BTreeMap::new()).unwrap();
        let out = on_task_failed(&mut view, "A", FailureKind::Program, SimTime::ZERO).unwrap();
        assert!(out.suspended);
        assert_eq!(view.header.status, InstanceStatus::Suspended);
        let out = on_resume(&mut view, SimTime::ZERO);
        assert_eq!(out.newly_ready, vec!["A"]);
        assert_eq!(view.header.status, InstanceStatus::Running);
        assert_eq!(view.tasks["A"].attempts, 0, "resume resets the budget");
    }

    #[test]
    fn guard_env_sees_whiteboard_and_outputs() {
        let t = linear_template();
        let (mut header, mut tasks) = fresh(&t);
        let mut view = InstanceView {
            template: &t,
            header: &mut header,
            tasks: &mut tasks,
        };
        init_instance(&mut view, &BTreeMap::new()).unwrap();
        on_task_ended(
            &mut view,
            "A",
            outputs(&[("x", Value::Int(5))]),
            SimTime::ZERO,
            0.0,
        )
        .unwrap();
        let v = eval_in_instance(&view, &Expr::path("A.x")).unwrap();
        assert_eq!(v, Value::Int(5));
        let v = eval_in_instance(&view, &Expr::path("db")).unwrap();
        assert_eq!(v, Value::from("sp38"));
        let v = eval_in_instance(&view, &Expr::path("WHITEBOARD.db")).unwrap();
        assert_eq!(v, Value::from("sp38"));
    }

    #[test]
    fn initial_whiteboard_values_override_defaults() {
        let t = linear_template();
        let (mut header, mut tasks) = fresh(&t);
        let mut view = InstanceView {
            template: &t,
            header: &mut header,
            tasks: &mut tasks,
        };
        let mut init = BTreeMap::new();
        init.insert("db".to_string(), Value::from("sp39"));
        init.insert("extra".to_string(), Value::Int(1));
        init_instance(&mut view, &init).unwrap();
        assert_eq!(view.header.whiteboard["db"], Value::from("sp39"));
        assert_eq!(view.header.whiteboard["extra"], Value::Int(1));
    }
}
