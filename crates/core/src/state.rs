//! Persistent instance state: what the navigator reads and writes.
//!
//! "During execution, a process instance is persistent both in terms of the
//! data and the state of the execution" (§3.2).  Every record here has a
//! stable key in the instance space:
//!
//! * `inst/{id}/header`       — [`InstanceHeader`] (status + whiteboard)
//! * `inst/{id}/task/{path}`  — [`TaskRecord`] per task (parallel children
//!   use indexed paths such as `Alignment[3]`)

use crate::dependability::RetryState;
use bioopera_cluster::SimTime;
use bioopera_ocr::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a process instance.
pub type InstanceId = u64;

/// Life-cycle status of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceStatus {
    /// Being executed by the navigator.
    Running,
    /// Dispatch paused (operator action or event handler); running jobs
    /// drain, nothing new starts.
    Suspended,
    /// All tasks reached a terminal state.
    Completed,
    /// Aborted by a failure policy, an event, or an operator.
    Aborted,
}

impl InstanceStatus {
    /// Is the instance finished (no further navigation)?
    pub fn is_terminal(self) -> bool {
        matches!(self, InstanceStatus::Completed | InstanceStatus::Aborted)
    }
}

/// How a `run_to_completion` call ended.
///
/// A suspended instance is *not* an error: the operator parked it on
/// purpose and can resume it at any time (paper §3.4 — steering a
/// long-running experiment without losing dependability guarantees).
/// The engines therefore report quiescence-with-parked-work as a normal
/// outcome instead of wedging or mis-diagnosing a deadlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every instance reached a terminal status.
    Completed,
    /// Nothing left to do *right now*: every non-terminal instance is
    /// suspended and waits for an operator `resume`.
    Quiesced {
        /// How many instances are parked.
        suspended: u64,
    },
}

impl RunOutcome {
    /// Did every instance reach a terminal status?
    pub fn is_completed(self) -> bool {
        matches!(self, RunOutcome::Completed)
    }

    /// Number of suspended instances awaiting an operator resume.
    pub fn suspended(self) -> u64 {
        match self {
            RunOutcome::Completed => 0,
            RunOutcome::Quiesced { suspended } => suspended,
        }
    }
}

/// The instance-space header record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceHeader {
    /// Instance id.
    pub id: InstanceId,
    /// Name of the template this instance was created from.
    pub template: String,
    /// Current status.
    pub status: InstanceStatus,
    /// The global data area.
    pub whiteboard: BTreeMap<String, Value>,
    /// If this instance implements a subprocess task of another instance:
    /// `(parent instance, parent task path)`.
    pub parent: Option<(InstanceId, String)>,
    /// Virtual creation time.
    pub created_at: SimTime,
    /// Virtual completion time (set when terminal).
    pub ended_at: Option<SimTime>,
}

/// Execution state of one task (or one parallel child).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskState {
    /// Not yet eligible.
    Inactive,
    /// All activation requirements met; waiting in the activity queue.
    Ready,
    /// Handed to a node's execution client (activities), expanded
    /// (parallel tasks) or instantiated (subprocesses); in flight.
    Dispatched,
    /// Finished successfully; outputs are final.
    Ended,
    /// Dead path: every incoming activation condition resolved to false.
    Skipped,
    /// Exhausted retries; waiting for a failure policy or terminal.
    Failed,
    /// Undone by a sphere-of-atomicity compensation.
    Compensated,
}

impl TaskState {
    /// Terminal for the purpose of instance completion.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TaskState::Ended | TaskState::Skipped | TaskState::Compensated
        )
    }

    /// Does this state represent resolved control flow (connector sources
    /// in this state have had their conditions decided)?
    pub fn is_resolved(self) -> bool {
        matches!(
            self,
            TaskState::Ended | TaskState::Skipped | TaskState::Failed | TaskState::Compensated
        )
    }
}

/// The per-task instance-space record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Task path: the template task name, or `Name[i]` for a parallel
    /// child.
    pub path: String,
    /// Current state.
    pub state: TaskState,
    /// Input structure contents (filled by dataflows and defaults).
    pub inputs: BTreeMap<String, Value>,
    /// Output structure contents (set when `Ended`).
    pub outputs: BTreeMap<String, Value>,
    /// Execution attempts so far (for retry accounting).
    pub attempts: u32,
    /// Node that ran (or is running) the task.
    pub node: Option<String>,
    /// Consumed CPU milliseconds (reference-speed occupancy), for
    /// `CPU(Π)` accounting.
    pub cpu_ms: f64,
    /// Virtual start of the most recent attempt.
    pub started_at: Option<SimTime>,
    /// Virtual end (success only).
    pub ended_at: Option<SimTime>,
    /// When the task last became `Ready` (entered the activity queue).
    /// Persisted so queue-wait metrics survive a server crash: a task
    /// that waited through an outage reports the full wait, not just the
    /// post-recovery slice.  `None` while not queued — and for records
    /// written before this field existed, which decode as `None`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ready_at: Option<SimTime>,
    /// Dependability bookkeeping for masked system failures: budget
    /// counter, pending backoff deadline, poison set.  `None` until the
    /// first masked failure — and for records written before the policy
    /// layer existed, which decode as `None`.
    pub retry: Option<RetryState>,
}

impl TaskRecord {
    /// A fresh inactive record.
    pub fn new(path: impl Into<String>) -> Self {
        TaskRecord {
            path: path.into(),
            state: TaskState::Inactive,
            inputs: BTreeMap::new(),
            outputs: BTreeMap::new(),
            attempts: 0,
            node: None,
            cpu_ms: 0.0,
            started_at: None,
            ended_at: None,
            ready_at: None,
            retry: None,
        }
    }

    /// The retry bookkeeping, created on first use.
    pub fn retry_mut(&mut self) -> &mut RetryState {
        self.retry.get_or_insert_with(RetryState::default)
    }

    /// The pending backoff deadline, if one is set.
    pub fn retry_at(&self) -> Option<SimTime> {
        self.retry.as_ref().and_then(|r| r.retry_at)
    }

    /// Is this a parallel child record (`Name[i]`)?
    pub fn is_parallel_child(&self) -> bool {
        self.path.ends_with(']')
    }

    /// For `Name[i]`, the parent task name.
    pub fn parallel_parent(&self) -> Option<&str> {
        let open = self.path.rfind('[')?;
        self.path.ends_with(']').then(|| &self.path[..open])
    }

    /// For `Name[i]`, the child index.
    pub fn parallel_index(&self) -> Option<usize> {
        let open = self.path.rfind('[')?;
        self.path[open + 1..self.path.len() - 1].parse().ok()
    }
}

/// Build the path of a parallel child.
pub fn parallel_child_path(parent: &str, index: usize) -> String {
    format!("{parent}[{index}]")
}

/// Key helpers shared by runtime and planner.
pub mod keys {
    use super::InstanceId;

    /// Instance header key.
    pub fn header(id: InstanceId) -> String {
        format!("inst/{id:012}/header")
    }

    /// Task record key.
    pub fn task(id: InstanceId, path: &str) -> String {
        format!("inst/{id:012}/task/{path}")
    }

    /// Prefix of all task records of an instance.
    pub fn task_prefix(id: InstanceId) -> String {
        format!("inst/{id:012}/task/")
    }

    /// Prefix of all records of an instance.
    pub fn instance_prefix(id: InstanceId) -> String {
        format!("inst/{id:012}/")
    }

    /// Template key in the template space.
    pub fn template(name: &str) -> String {
        format!("tmpl/{name}")
    }

    /// Node key in the configuration space.
    pub fn node(name: &str) -> String {
        format!("node/{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_paths_roundtrip() {
        let r = TaskRecord::new(parallel_child_path("Alignment", 17));
        assert!(r.is_parallel_child());
        assert_eq!(r.parallel_parent(), Some("Alignment"));
        assert_eq!(r.parallel_index(), Some(17));
        let plain = TaskRecord::new("Alignment");
        assert!(!plain.is_parallel_child());
        assert_eq!(plain.parallel_parent(), None);
    }

    #[test]
    fn state_predicates() {
        assert!(TaskState::Ended.is_terminal());
        assert!(TaskState::Skipped.is_terminal());
        assert!(TaskState::Compensated.is_terminal());
        assert!(!TaskState::Failed.is_terminal());
        assert!(TaskState::Failed.is_resolved());
        assert!(!TaskState::Dispatched.is_resolved());
        assert!(!TaskState::Ready.is_resolved());
    }

    #[test]
    fn keys_sort_by_instance() {
        assert!(keys::header(1) < keys::header(2));
        assert!(keys::task(1, "A").starts_with(&keys::task_prefix(1)));
        assert!(keys::task(1, "A").starts_with(&keys::instance_prefix(1)));
        // Ids are zero-padded so instance 10 does not interleave with 1.
        assert!(!keys::header(10).starts_with("inst/1/"));
    }

    #[test]
    fn record_serde_roundtrip() {
        let mut r = TaskRecord::new("Prep");
        r.state = TaskState::Ended;
        r.inputs.insert("x".into(), Value::Int(5));
        r.outputs.insert("y".into(), Value::from(vec![1i64, 2]));
        r.cpu_ms = 123.5;
        r.node = Some("linneus1".into());
        let json = serde_json::to_string(&r).unwrap();
        let back: TaskRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn retry_state_roundtrips_and_old_records_decode() {
        let mut r = TaskRecord::new("Align[2]");
        {
            let retry = r.retry_mut();
            retry.sys_failures = 2;
            retry.retry_at = Some(SimTime::from_secs(30));
            retry.note_failed_node("linneus3");
        }
        assert_eq!(r.retry_at(), Some(SimTime::from_secs(30)));
        let json = serde_json::to_string(&r).unwrap();
        let back: TaskRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // A record serialized before the policy layer existed has no
        // `retry` field at all; it must decode as `None`.
        let old = r#"{"path":"Prep","state":"Inactive","inputs":{},"outputs":{},
                      "attempts":0,"node":null,"cpu_ms":0.0,
                      "started_at":null,"ended_at":null}"#;
        let legacy: TaskRecord = serde_json::from_str(old).unwrap();
        assert_eq!(legacy.retry, None);
        assert_eq!(legacy.retry_at(), None);
    }
}
