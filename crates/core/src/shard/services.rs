//! Cross-shard services fed by the barrier: dispatch + node health.
//!
//! The serial runtime's dispatcher and dependability policy act on global
//! state (cluster load, node health), so they cannot live inside a shard
//! without re-introducing shared mutation.  Here they run **at the
//! barrier**, single-threaded, over the already-sorted effect stream:
//!
//! * [`DispatchService`] owns the logical execution nodes.  Ready-task
//!   requests queue in barrier order; each barrier it grants free slots
//!   least-loaded-first (ties broken by node index), which is exactly the
//!   deterministic tie-break the serial dispatcher uses.
//! * Node faults reported through `Release { faulted: true }` feed a
//!   consecutive-failure score per node; at the configured threshold the
//!   node is quarantined — removed from scheduling for a fixed number of
//!   rounds — mirroring the dependability layer's quarantine policy.
//!
//! Because the service only ever consumes the sorted stream and its own
//! prior state, its decisions are a pure function of history: any thread
//! schedule and any shard count produce the same grants in the same
//! order.

use super::router::{Msg, Payload, SrcKey};
use crate::awareness::EventKind;
use crate::state::InstanceId;
use std::collections::VecDeque;

/// One logical execution node (a PEC slot pool in paper terms).
#[derive(Debug, Clone)]
pub struct LogicalNode {
    /// Node name (`node{i}`).
    pub name: String,
    /// Concurrent job capacity.
    pub capacity: usize,
    /// Jobs currently granted.
    pub in_flight: usize,
    /// Consecutive faulted releases (reset on success).
    pub consecutive_failures: u32,
    /// Quarantined until this round (exclusive); 0 = not quarantined.
    pub quarantined_until: u64,
}

/// A queued dispatch request.
#[derive(Debug, Clone)]
struct PendingRequest {
    instance: InstanceId,
    path: String,
    src: SrcKey,
}

/// The barrier-side dispatch + node-health service.
#[derive(Debug)]
pub struct DispatchService {
    nodes: Vec<LogicalNode>,
    queue: VecDeque<PendingRequest>,
    quarantine_threshold: u32,
    quarantine_rounds: u64,
    granted: u64,
}

impl DispatchService {
    /// `nodes` logical nodes of `capacity` slots each.
    pub fn new(nodes: usize, capacity: usize, quarantine_threshold: u32) -> Self {
        DispatchService {
            nodes: (0..nodes)
                .map(|i| LogicalNode {
                    name: format!("node{i}"),
                    capacity,
                    in_flight: 0,
                    consecutive_failures: 0,
                    quarantined_until: 0,
                })
                .collect(),
            queue: VecDeque::new(),
            quarantine_threshold,
            quarantine_rounds: 16,
            granted: 0,
        }
    }

    /// Queue a ready-task request (barrier order).
    pub fn request(&mut self, instance: InstanceId, path: String, src: SrcKey) {
        self.queue.push_back(PendingRequest {
            instance,
            path,
            src,
        });
    }

    /// Return a slot; a faulted release charges the node's health score
    /// and may quarantine it (the returned event records that).
    pub fn release(&mut self, node: &str, faulted: bool, round: u64) -> Option<EventKind> {
        let n = self.nodes.iter_mut().find(|n| n.name == node)?;
        n.in_flight = n.in_flight.saturating_sub(1);
        if faulted {
            n.consecutive_failures += 1;
            if n.consecutive_failures >= self.quarantine_threshold && n.quarantined_until <= round {
                n.quarantined_until = round + self.quarantine_rounds;
                return Some(EventKind::NodeQuarantine {
                    node: n.name.clone(),
                    failures: n.consecutive_failures,
                });
            }
        } else {
            n.consecutive_failures = 0;
        }
        None
    }

    /// Grant free slots to queued requests, least-loaded node first (tie:
    /// lowest index).  Returns the grant messages to route plus probation
    /// events for nodes whose quarantine just expired.
    pub fn assign(&mut self, round: u64) -> (Vec<Msg>, Vec<EventKind>) {
        let mut events = Vec::new();
        for n in &mut self.nodes {
            if n.quarantined_until != 0 && n.quarantined_until <= round {
                n.quarantined_until = 0;
                n.consecutive_failures = 0;
                events.push(EventKind::NodeProbation {
                    node: n.name.clone(),
                });
            }
        }
        let mut grants = Vec::new();
        while !self.queue.is_empty() {
            let pick = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.quarantined_until == 0 && n.in_flight < n.capacity)
                .min_by_key(|(i, n)| (n.in_flight, *i))
                .map(|(i, _)| i);
            let Some(i) = pick else {
                break; // saturated (or everything quarantined): wait a round
            };
            let Some(req) = self.queue.pop_front() else {
                break;
            };
            self.nodes[i].in_flight += 1;
            self.granted += 1;
            grants.push(Msg {
                dest: req.instance,
                src: req.src,
                payload: Payload::Grant {
                    path: req.path,
                    node: self.nodes[i].name.clone(),
                },
            });
        }
        (grants, events)
    }

    /// Requests waiting for a slot.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Slots currently granted and not yet released.
    pub fn in_flight(&self) -> usize {
        self.nodes.iter().map(|n| n.in_flight).sum()
    }

    /// Total grants issued over the engine's lifetime.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// The logical nodes (for diagnostics).
    pub fn nodes(&self) -> &[LogicalNode] {
        &self.nodes
    }

    /// Drop all volatile dispatch state (crash recovery: grants in flight
    /// are lost; ready tasks re-request from their rebuilt records).
    pub fn reset_volatile(&mut self) {
        self.queue.clear();
        for n in &mut self.nodes {
            n.in_flight = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_least_loaded_then_lowest_index() {
        let mut svc = DispatchService::new(2, 2, 3);
        for i in 0..3u64 {
            svc.request(i, "T".into(), (i, 0));
        }
        let (grants, _) = svc.assign(0);
        let nodes: Vec<&str> = grants
            .iter()
            .map(|m| match &m.payload {
                Payload::Grant { node, .. } => node.as_str(),
                _ => unreachable!(),
            })
            .collect();
        // 0 -> node0, 1 -> node1 (node0 now busier), 2 -> node0 (tie at 1
        // in-flight broken by index).
        assert_eq!(nodes, vec!["node0", "node1", "node0"]);
        assert_eq!(svc.in_flight(), 3);
    }

    #[test]
    fn saturation_queues_and_faults_quarantine() {
        let mut svc = DispatchService::new(1, 1, 2);
        svc.request(1, "A".into(), (1, 0));
        svc.request(2, "B".into(), (2, 0));
        let (grants, _) = svc.assign(0);
        assert_eq!(grants.len(), 1);
        assert_eq!(svc.queued(), 1);
        // Two consecutive faults quarantine the only node.
        assert!(svc.release("node0", true, 1).is_none());
        let (grants, _) = svc.assign(1);
        assert_eq!(grants.len(), 1);
        let q = svc.release("node0", true, 2);
        assert!(matches!(
            q,
            Some(EventKind::NodeQuarantine { failures: 2, .. })
        ));
        svc.request(3, "C".into(), (3, 0));
        let (grants, _) = svc.assign(3);
        assert!(grants.is_empty(), "quarantined node takes no work");
        // After the interval the node re-enters on probation and drains
        // the queue.
        let (grants, events) = svc.assign(2 + 16);
        assert_eq!(grants.len(), 1);
        assert!(matches!(
            events.as_slice(),
            [EventKind::NodeProbation { .. }]
        ));
    }
}
