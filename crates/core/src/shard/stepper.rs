//! The shard stepper: a pure function of `(shard journal, sorted inbox)`.
//!
//! One [`Shard`] owns the instances that hash-bucket onto it and nothing
//! else.  Each round it consumes its (sorted) inbox, runs the navigator on
//! the affected instances, and returns
//!
//! * a [`StepOutput`] — effects + events tagged with `(instance, seq)`
//!   source keys for the deterministic barrier merge, and
//! * one [`Batch`] per dirty instance — its header plus every task record
//!   the navigator touched, keyed under the shard's journal prefix so the
//!   per-shard group commits of concurrent steppers never interleave
//!   logically.
//!
//! Nothing in here reads global state: no dispatcher, no node table, no
//! other shard's instances.  Cross-instance interaction — even between two
//! instances on the *same* shard — travels through the outbox and waits
//! for the barrier, which is what makes an N-shard run bit-identical to a
//! 1-shard run.

use super::router::{splitmix64, ControlOp, Effect, Msg, Payload, ShardEvent, ShardId, StepOutput};
use crate::awareness::EventKind;
use crate::error::{EngineError, EngineResult};
use crate::library::ActivityLibrary;
use crate::navigator::{self, FailureKind, InstanceView, NavOutcome};
use crate::state::{keys, InstanceHeader, InstanceId, InstanceStatus, TaskRecord, TaskState};
use bioopera_cluster::SimTime;
use bioopera_ocr::model::{DataRef, ParallelBody, ProcessTemplate, TaskKind};
use bioopera_ocr::value::Value;
use bioopera_store::{shard_key, Batch, Disk, Space, Store};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Sequence numbers for events about instances the shard does not know
/// (stale grants, unknown templates) start here so they sort after any
/// live instance activity without colliding with it.
const STALE_SEQ_BASE: u64 = 1 << 32;

/// Deterministic node-fault injection for the shard torture harness: a
/// grant faults when the hash of `(seed, instance, path, attempt)` lands
/// under the configured rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjection {
    /// Hash seed (vary per torture iteration).
    pub seed: u64,
    /// Faults per million grants.
    pub rate_ppm: u32,
}

impl FaultInjection {
    /// Does this `(instance, path, attempt)` grant fault?
    pub fn hits(&self, instance: InstanceId, path: &str, attempt: u32) -> bool {
        let mut h = splitmix64(self.seed ^ splitmix64(instance));
        for b in path.bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h = splitmix64(h ^ u64::from(attempt));
        (h % 1_000_000) < u64::from(self.rate_ppm)
    }
}

/// Per-round shard metadata record (`s{NNNN}/meta`): the last round this
/// shard committed, used to resume the round clock after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardMeta {
    /// Last committed round.
    pub round: u64,
}

/// Read-only per-round context shared by all shard steppers.
pub struct StepCtx<'a> {
    /// Current round (the virtual clock: `now = from_secs(round)`).
    pub round: u64,
    /// Program bodies.
    pub library: &'a ActivityLibrary,
    /// Template space snapshot.
    pub templates: &'a BTreeMap<String, Arc<ProcessTemplate>>,
    /// Optional deterministic node-fault injection.
    pub faults: Option<&'a FaultInjection>,
    /// Masked system failures tolerated per task before escalation to a
    /// program failure (mirrors the serial dependability policy).
    pub retry_budget: u32,
}

impl StepCtx<'_> {
    fn now(&self) -> SimTime {
        SimTime::from_secs(self.round)
    }
}

/// One instance resident on a shard.
#[derive(Debug, Clone)]
pub struct InstanceSlot {
    /// The resolved template (shared, immutable).
    pub template: Arc<ProcessTemplate>,
    /// Header record.
    pub header: InstanceHeader,
    /// Task records by path.
    pub tasks: BTreeMap<String, TaskRecord>,
    /// Next event/effect sequence number (in-memory; the total order only
    /// has to hold within one engine lifetime).
    pub seq: u64,
}

impl InstanceSlot {
    /// Reference-CPU total of the instance (parallel children excluded —
    /// their sum is already recorded on the parent).
    pub fn cpu_ms(&self) -> f64 {
        self.tasks
            .values()
            .filter(|r| !r.is_parallel_child())
            .map(|r| r.cpu_ms)
            .sum()
    }
}

/// Which records of an instance this step touched.
#[derive(Debug, Default)]
struct Dirty {
    all: bool,
    tasks: BTreeSet<String>,
}

/// Transient per-step accumulation.
#[derive(Default)]
struct StepState {
    out: StepOutput,
    dirty: BTreeMap<InstanceId, Dirty>,
    stale_seq: BTreeMap<InstanceId, u64>,
    /// Root instances created this step: their commit retires the
    /// engine-level pending-start record.
    created_roots: BTreeSet<InstanceId>,
    /// Instances that entered the suspended set this step: their commit
    /// writes the durable `susp/` record in the same atomic frame as the
    /// header that carries the `Suspended` status.
    suspended_now: BTreeSet<InstanceId>,
    /// Instances that left the suspended set this step (resume): their
    /// commit deletes the `susp/` record atomically with the header.
    resumed_now: BTreeSet<InstanceId>,
}

impl StepState {
    fn mark(&mut self, id: InstanceId, path: &str) {
        self.dirty
            .entry(id)
            .or_default()
            .tasks
            .insert(path.to_string());
    }

    fn mark_header(&mut self, id: InstanceId) {
        self.dirty.entry(id).or_default();
    }

    fn mark_all(&mut self, id: InstanceId) {
        self.dirty.entry(id).or_default().all = true;
    }
}

/// What to do with a task that just became ready.
enum Act {
    Request,
    Spawn {
        template: String,
        initial: BTreeMap<String, Value>,
    },
    Expand,
    Skip,
    /// The instance is suspended: leave the task `Ready` (with its
    /// queue-wait clock running) and activate nothing until resume.
    Park,
    Stale(&'static str),
}

/// One hash bucket of the sharded navigator.
#[derive(Debug)]
pub struct Shard {
    /// Shard index (also the journal prefix).
    pub id: ShardId,
    /// Resident instances.
    pub slots: BTreeMap<InstanceId, InstanceSlot>,
}

impl Shard {
    /// An empty shard.
    pub fn new(id: ShardId) -> Self {
        Shard {
            id,
            slots: BTreeMap::new(),
        }
    }

    /// Rebuild a shard from its journal prefix.  Returns the shard plus
    /// the last round its meta record saw.  Records whose template is no
    /// longer registered are skipped (the engine records the anomaly).
    pub fn recover<D: Disk>(
        id: ShardId,
        store: &Store<D>,
        templates: &BTreeMap<String, Arc<ProcessTemplate>>,
    ) -> EngineResult<(Self, u64)> {
        let mut headers: BTreeMap<InstanceId, InstanceHeader> = BTreeMap::new();
        let mut tasks: BTreeMap<InstanceId, BTreeMap<String, TaskRecord>> = BTreeMap::new();
        let mut round = 0u64;
        for (key, bytes) in store.scan_shard(Space::Instance, id)? {
            if key == "meta" {
                if let Ok(meta) = serde_json::from_slice::<ShardMeta>(&bytes) {
                    round = meta.round;
                }
                continue;
            }
            let Some(rest) = key.strip_prefix("inst/") else {
                continue;
            };
            let Some((id_str, tail)) = rest.split_once('/') else {
                continue;
            };
            let Ok(iid) = id_str.parse::<InstanceId>() else {
                continue;
            };
            if tail == "header" {
                if let Ok(h) = serde_json::from_slice::<InstanceHeader>(&bytes) {
                    headers.insert(iid, h);
                }
            } else if tail.starts_with("task/") {
                if let Ok(r) = serde_json::from_slice::<TaskRecord>(&bytes) {
                    tasks.entry(iid).or_default().insert(r.path.clone(), r);
                }
            }
        }
        let mut slots = BTreeMap::new();
        for (iid, header) in headers {
            let Some(template) = templates.get(&header.template).cloned() else {
                continue;
            };
            slots.insert(
                iid,
                InstanceSlot {
                    template,
                    header,
                    tasks: tasks.remove(&iid).unwrap_or_default(),
                    seq: 0,
                },
            );
        }
        Ok((Shard { id, slots }, round))
    }

    /// Run one round: consume the inbox (sorted by source key), produce
    /// the outbox and one journal batch per dirty instance (plus the
    /// shard meta record).  Pure with respect to everything outside this
    /// shard's slots.
    pub fn step(
        &mut self,
        ctx: &StepCtx<'_>,
        mut inbox: Vec<Msg>,
    ) -> EngineResult<(StepOutput, Vec<Batch>)> {
        inbox.sort_by_key(|a| a.src);
        let mut st = StepState::default();
        for msg in inbox {
            self.handle(ctx, &mut st, msg)?;
        }
        let batches = self.build_batches(ctx, &st)?;
        Ok((st.out, batches))
    }

    fn handle(&mut self, ctx: &StepCtx<'_>, st: &mut StepState, msg: Msg) -> EngineResult<()> {
        match msg.payload {
            Payload::Start {
                template,
                initial,
                parent,
            } => self.on_start(ctx, st, msg.dest, template, initial, parent),
            Payload::Grant { path, node } => self.on_grant(ctx, st, msg.dest, path, node),
            Payload::ChildDone {
                path,
                child,
                success,
                outputs,
                cpu_ms,
            } => self.on_child_done(ctx, st, msg.dest, path, child, success, outputs, cpu_ms),
            Payload::Control { op } => self.on_control(ctx, st, msg.dest, op),
        }
    }

    /// Next sequence number for `instance` (live slots count up from
    /// their own counter; unknown instances use a transient high range).
    fn next_seq(&mut self, st: &mut StepState, instance: InstanceId) -> u64 {
        match self.slots.get_mut(&instance) {
            Some(slot) => {
                let s = slot.seq;
                slot.seq += 1;
                s
            }
            None => {
                let c = st.stale_seq.entry(instance).or_insert(STALE_SEQ_BASE);
                let s = *c;
                *c += 1;
                s
            }
        }
    }

    fn emit(&mut self, st: &mut StepState, round: u64, instance: InstanceId, kind: EventKind) {
        let seq = self.next_seq(st, instance);
        st.out.events.push(ShardEvent {
            round,
            instance,
            seq,
            kind,
        });
    }

    fn stale(
        &mut self,
        st: &mut StepState,
        round: u64,
        instance: InstanceId,
        path: Option<&str>,
        context: &str,
    ) {
        self.emit(
            st,
            round,
            instance,
            EventKind::StaleEvent {
                instance,
                path: path.map(str::to_string),
                context: context.to_string(),
            },
        );
    }

    fn push_release(
        &mut self,
        st: &mut StepState,
        instance: InstanceId,
        node: &str,
        faulted: bool,
    ) {
        let src = (instance, self.next_seq(st, instance));
        st.out.effects.push(Effect::Release {
            node: node.to_string(),
            faulted,
            src,
        });
    }

    fn on_start(
        &mut self,
        ctx: &StepCtx<'_>,
        st: &mut StepState,
        id: InstanceId,
        template: String,
        initial: BTreeMap<String, Value>,
        parent: Option<(InstanceId, String)>,
    ) -> EngineResult<()> {
        if self.slots.contains_key(&id) {
            // Duplicate start (recovery re-drive); the instance is live.
            self.stale(st, ctx.round, id, None, "start: instance already exists");
            return Ok(());
        }
        let Some(tmpl) = ctx.templates.get(&template).cloned() else {
            self.stale(st, ctx.round, id, None, "start: unknown template");
            if let Some((pid, ppath)) = parent {
                // Tell the parent its subprocess never came up.
                let src = (id, self.next_seq(st, id));
                st.out.effects.push(Effect::Send(Msg {
                    dest: pid,
                    src,
                    payload: Payload::ChildDone {
                        path: ppath,
                        child: id,
                        success: false,
                        outputs: BTreeMap::new(),
                        cpu_ms: 0.0,
                    },
                }));
            }
            return Ok(());
        };
        let now = ctx.now();
        let mut slot = InstanceSlot {
            header: InstanceHeader {
                id,
                template: template.clone(),
                status: InstanceStatus::Running,
                whiteboard: BTreeMap::new(),
                parent,
                created_at: now,
                ended_at: None,
            },
            tasks: BTreeMap::new(),
            seq: 0,
            template: tmpl,
        };
        let outcome = {
            let mut view = InstanceView {
                template: slot.template.as_ref(),
                header: &mut slot.header,
                tasks: &mut slot.tasks,
            };
            navigator::init_instance(&mut view, &initial)?
        };
        self.slots.insert(id, slot);
        st.mark_all(id);
        if self
            .slots
            .get(&id)
            .map(|s| s.header.parent.is_none())
            .unwrap_or(false)
        {
            st.created_roots.insert(id);
        }
        self.emit(
            st,
            ctx.round,
            id,
            EventKind::InstanceStart {
                instance: id,
                template,
            },
        );
        self.apply_outcome(ctx, st, id, outcome)
    }

    #[allow(clippy::too_many_arguments)]
    fn on_grant(
        &mut self,
        ctx: &StepCtx<'_>,
        st: &mut StepState,
        id: InstanceId,
        path: String,
        node: String,
    ) -> EngineResult<()> {
        let now = ctx.now();
        let tmpl;
        let queue_ms;
        let mut fault = false;
        let mut escalate = false;
        {
            let Some(slot) = self.slots.get_mut(&id) else {
                self.stale(st, ctx.round, id, Some(&path), "grant: unknown instance");
                self.push_release(st, id, &node, false);
                return Ok(());
            };
            if slot.header.status == InstanceStatus::Suspended {
                // Parked: hand the slot back and keep the task Ready —
                // resume re-requests it.
                self.stale(st, ctx.round, id, Some(&path), "grant: instance suspended");
                self.push_release(st, id, &node, false);
                return Ok(());
            }
            tmpl = slot.template.clone();
            let Some(rec) = slot.tasks.get_mut(&path) else {
                self.stale(st, ctx.round, id, Some(&path), "grant: unknown task");
                self.push_release(st, id, &node, false);
                return Ok(());
            };
            if rec.state != TaskState::Ready {
                // Post-recovery duplicate grant: the slot is simply
                // returned; the record keeps whatever state drove it.
                self.stale(st, ctx.round, id, Some(&path), "grant: task not ready");
                self.push_release(st, id, &node, false);
                return Ok(());
            }
            queue_ms = rec
                .ready_at
                .take()
                .map(|since| now.saturating_sub(since).as_millis())
                .unwrap_or(0);
            rec.state = TaskState::Dispatched;
            rec.node = Some(node.clone());
            rec.started_at = Some(now);
            let attempt = rec.attempts + rec.retry.as_ref().map(|r| r.sys_failures).unwrap_or(0);
            if let Some(f) = ctx.faults {
                if f.hits(id, &path, attempt) {
                    fault = true;
                    let retry = rec.retry_mut();
                    retry.sys_failures += 1;
                    retry.note_failed_node(&node);
                    escalate = retry.sys_failures > ctx.retry_budget;
                }
            }
        }
        self.mark_nav(st, &tmpl, id, &path);
        if fault {
            self.emit(
                st,
                ctx.round,
                id,
                EventKind::TaskSystemFail {
                    instance: id,
                    path: path.clone(),
                    reason: format!("injected node fault on {node}"),
                },
            );
            self.push_release(st, id, &node, true);
            let kind = if escalate {
                self.emit(
                    st,
                    ctx.round,
                    id,
                    EventKind::TaskPoisoned {
                        instance: id,
                        path: path.clone(),
                        reason: format!("masked-failure budget exhausted ({})", ctx.retry_budget),
                    },
                );
                FailureKind::Program
            } else {
                FailureKind::System
            };
            let outcome = self.nav_failed(id, &path, kind, now)?;
            return self.apply_outcome(ctx, st, id, outcome);
        }
        // Resolve the program: template activity or parallel-child body.
        let program = {
            let rec = self.slots.get(&id).and_then(|s| s.tasks.get(&path));
            let parent = rec.and_then(|r| r.parallel_parent().map(str::to_string));
            match parent {
                Some(p) => match navigator::parallel_body(&tmpl, &p) {
                    Some(ParallelBody::Activity(b)) => Ok(b.program.clone()),
                    _ => Err("grant: parallel child has no activity body"),
                },
                None => match tmpl.task(&path).map(|t| &t.kind) {
                    Some(TaskKind::Activity { binding }) => Ok(binding.program.clone()),
                    _ => Err("grant: task is not an activity"),
                },
            }
        };
        let name = match program {
            Ok(name) => name,
            Err(why) => {
                self.stale(st, ctx.round, id, Some(&path), why);
                self.push_release(st, id, &node, false);
                return Ok(());
            }
        };
        let inputs = match self.slots.get(&id) {
            Some(slot) => navigator::bind_inputs_parts(&tmpl, &slot.header, &slot.tasks, &path),
            None => BTreeMap::new(),
        };
        let run = match ctx.library.get(&name) {
            Some(prog) => prog(&inputs),
            None => Err(format!("program `{name}` not in activity library")),
        };
        match run {
            Ok(out) => {
                self.emit(
                    st,
                    ctx.round,
                    id,
                    EventKind::TaskStart {
                        instance: id,
                        path: path.clone(),
                        node: node.clone(),
                        job: ctx.round,
                        queue_ms,
                    },
                );
                let run_ms = out.cost_ref_ms.max(0.0) as u64;
                let cpu_ms = out.cost_ref_ms;
                let outcome = self.nav_ended(id, &path, out.outputs, now, cpu_ms)?;
                self.emit(
                    st,
                    ctx.round,
                    id,
                    EventKind::TaskEnd {
                        instance: id,
                        path: path.clone(),
                        node: node.clone(),
                        run_ms,
                        cpu_ms,
                    },
                );
                self.push_release(st, id, &node, false);
                self.apply_outcome(ctx, st, id, outcome)
            }
            Err(error) => {
                self.emit(
                    st,
                    ctx.round,
                    id,
                    EventKind::TaskFail {
                        instance: id,
                        path: path.clone(),
                        error,
                    },
                );
                self.push_release(st, id, &node, false);
                let outcome = self.nav_failed(id, &path, FailureKind::Program, now)?;
                self.apply_outcome(ctx, st, id, outcome)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_child_done(
        &mut self,
        ctx: &StepCtx<'_>,
        st: &mut StepState,
        id: InstanceId,
        path: String,
        child: InstanceId,
        success: bool,
        outputs: BTreeMap<String, Value>,
        cpu_ms: f64,
    ) -> EngineResult<()> {
        let now = ctx.now();
        let tmpl;
        {
            let Some(slot) = self.slots.get(&id) else {
                self.stale(
                    st,
                    ctx.round,
                    id,
                    Some(&path),
                    "child completion: unknown instance",
                );
                return Ok(());
            };
            tmpl = slot.template.clone();
            let Some(rec) = slot.tasks.get(&path) else {
                self.stale(
                    st,
                    ctx.round,
                    id,
                    Some(&path),
                    "child completion: unknown task",
                );
                return Ok(());
            };
            if rec.state != TaskState::Dispatched {
                self.emit(
                    st,
                    ctx.round,
                    id,
                    EventKind::SubprocessDuplicate {
                        instance: id,
                        path,
                        child,
                    },
                );
                return Ok(());
            }
        }
        self.mark_nav(st, &tmpl, id, &path);
        if success {
            // A template subprocess task keeps only its declared outputs;
            // a parallel subprocess child collects the whole whiteboard.
            let is_child = self
                .slots
                .get(&id)
                .and_then(|s| s.tasks.get(&path))
                .map(|r| r.is_parallel_child())
                .unwrap_or(false);
            let filtered = if is_child {
                outputs
            } else {
                match tmpl.task(&path) {
                    Some(decl) if !decl.outputs.is_empty() => outputs
                        .into_iter()
                        .filter(|(k, _)| decl.outputs.iter().any(|f| &f.name == k))
                        .collect(),
                    _ => outputs,
                }
            };
            let outcome = self.nav_ended(id, &path, filtered, now, cpu_ms)?;
            self.emit(
                st,
                ctx.round,
                id,
                EventKind::TaskEnd {
                    instance: id,
                    path,
                    node: "subprocess".to_string(),
                    run_ms: 0,
                    cpu_ms,
                },
            );
            self.apply_outcome(ctx, st, id, outcome)
        } else {
            self.emit(
                st,
                ctx.round,
                id,
                EventKind::TaskFail {
                    instance: id,
                    path: path.clone(),
                    error: format!("child instance {child} aborted"),
                },
            );
            let outcome = self.nav_failed(id, &path, FailureKind::Program, now)?;
            self.apply_outcome(ctx, st, id, outcome)
        }
    }

    /// Operator suspend/resume, delivered through the sorted inbox so the
    /// steering point is deterministic.  Suspend parks the instance:
    /// status flips to `Suspended` (durably, together with a `susp/` set
    /// record), in-flight work is allowed to drain, and nothing new
    /// activates.  Resume flips it back, resets failed-task budgets
    /// ([`navigator::on_resume`]), and re-activates every `Ready` task —
    /// both the ones parked while suspended and the ones re-readied by
    /// the resume itself.
    fn on_control(
        &mut self,
        ctx: &StepCtx<'_>,
        st: &mut StepState,
        id: InstanceId,
        op: ControlOp,
    ) -> EngineResult<()> {
        let Some(slot) = self.slots.get_mut(&id) else {
            self.stale(st, ctx.round, id, None, "control: unknown instance");
            return Ok(());
        };
        match op {
            ControlOp::Suspend => {
                if slot.header.status != InstanceStatus::Running {
                    let why = "suspend: instance not running";
                    self.stale(st, ctx.round, id, None, why);
                    return Ok(());
                }
                slot.header.status = InstanceStatus::Suspended;
                st.mark_header(id);
                st.suspended_now.insert(id);
                st.resumed_now.remove(&id);
                self.emit(
                    st,
                    ctx.round,
                    id,
                    EventKind::InstanceSuspend { instance: id },
                );
                Ok(())
            }
            ControlOp::Resume => {
                if slot.header.status != InstanceStatus::Suspended {
                    let why = "resume: instance not suspended";
                    self.stale(st, ctx.round, id, None, why);
                    return Ok(());
                }
                let now = ctx.now();
                let mut outcome = {
                    let mut view = InstanceView {
                        template: slot.template.as_ref(),
                        header: &mut slot.header,
                        tasks: &mut slot.tasks,
                    };
                    navigator::on_resume(&mut view, now)
                };
                // Re-activate everything that is Ready now: the resume
                // re-readied Failed tasks, and parked tasks stayed Ready
                // the whole time.  BTreeMap order keeps this deterministic.
                outcome.newly_ready = slot
                    .tasks
                    .values()
                    .filter(|r| r.state == TaskState::Ready)
                    .map(|r| r.path.clone())
                    .collect();
                st.mark_all(id);
                st.resumed_now.insert(id);
                st.suspended_now.remove(&id);
                self.emit(
                    st,
                    ctx.round,
                    id,
                    EventKind::InstanceResume { instance: id },
                );
                self.apply_outcome(ctx, st, id, outcome)
            }
        }
    }

    fn nav_ended(
        &mut self,
        id: InstanceId,
        path: &str,
        outputs: BTreeMap<String, Value>,
        now: SimTime,
        cpu_ms: f64,
    ) -> EngineResult<NavOutcome> {
        let Some(slot) = self.slots.get_mut(&id) else {
            return Ok(NavOutcome::default());
        };
        let mut view = InstanceView {
            template: slot.template.as_ref(),
            header: &mut slot.header,
            tasks: &mut slot.tasks,
        };
        navigator::on_task_ended(&mut view, path, outputs, now, cpu_ms)
    }

    fn nav_failed(
        &mut self,
        id: InstanceId,
        path: &str,
        kind: FailureKind,
        now: SimTime,
    ) -> EngineResult<NavOutcome> {
        let Some(slot) = self.slots.get_mut(&id) else {
            return Ok(NavOutcome::default());
        };
        let mut view = InstanceView {
            template: slot.template.as_ref(),
            header: &mut slot.header,
            tasks: &mut slot.tasks,
        };
        navigator::on_task_failed(&mut view, path, kind, now)
    }

    /// Mark the records a navigation step starting at `path` can touch:
    /// the record itself, its parallel parent (which may conclude), and
    /// the dataflow targets of both (the mapping phase writes into
    /// successor input buffers).  The header (whiteboard) is always dirty.
    fn mark_nav(&self, st: &mut StepState, tmpl: &ProcessTemplate, id: InstanceId, path: &str) {
        st.mark_header(id);
        st.mark(id, path);
        let parent = TaskRecord::new(path).parallel_parent().map(str::to_string);
        let mut sources = vec![path.to_string()];
        if let Some(p) = parent {
            sources.push(p.clone());
            st.mark(id, &p);
        }
        for source in sources {
            for flow in tmpl.dataflows_from_task(&source) {
                if let DataRef::TaskField(t, _) = &flow.to {
                    st.mark(id, t);
                }
            }
        }
    }

    /// Drain a navigation outcome: activate ready tasks (request a node,
    /// spawn a subprocess, or expand a parallel task in place), run
    /// compensations, and conclude the instance if it went terminal.
    fn apply_outcome(
        &mut self,
        ctx: &StepCtx<'_>,
        st: &mut StepState,
        id: InstanceId,
        outcome: NavOutcome,
    ) -> EngineResult<()> {
        let now = ctx.now();
        let mut ready: VecDeque<String> = outcome.newly_ready.into();
        let mut compensations: VecDeque<(String, String)> = outcome.compensations.into();
        let mut skipped = outcome.newly_skipped;
        let mut completed = outcome.completed;
        let mut aborted = outcome.aborted;
        let suspended = outcome.suspended;
        loop {
            if let Some((task, program)) = compensations.pop_front() {
                st.mark(id, &task);
                self.emit(
                    st,
                    ctx.round,
                    id,
                    EventKind::TaskCompensate {
                        instance: id,
                        path: task.clone(),
                        program: program.clone(),
                    },
                );
                // Compensations run inline on the recorded inputs; their
                // outcome does not feed back into navigation.
                if let Some(prog) = ctx.library.get(&program) {
                    let inputs = self
                        .slots
                        .get(&id)
                        .and_then(|s| s.tasks.get(&task))
                        .map(|r| r.inputs.clone())
                        .unwrap_or_default();
                    let _ = prog(&inputs);
                }
                continue;
            }
            let Some(path) = ready.pop_front() else {
                break;
            };
            st.mark(id, &path);
            let act = {
                let Some(slot) = self.slots.get(&id) else {
                    break;
                };
                let tmpl = slot.template.clone();
                if slot.header.status == InstanceStatus::Suspended {
                    Act::Park
                } else {
                    match slot.tasks.get(&path) {
                        None => Act::Stale("ready task has no record"),
                        Some(rec) if rec.state != TaskState::Ready => Act::Skip,
                        Some(rec) => match rec.parallel_parent() {
                            Some(parent) => match navigator::parallel_body(&tmpl, parent) {
                                Some(ParallelBody::Activity(_)) => Act::Request,
                                Some(ParallelBody::Subprocess(t)) => Act::Spawn {
                                    template: t.clone(),
                                    initial: rec.inputs.clone(),
                                },
                                None => Act::Stale("parallel child without parallel parent"),
                            },
                            None => match tmpl.task(&path).map(|t| &t.kind) {
                                Some(TaskKind::Activity { .. }) => Act::Request,
                                Some(TaskKind::Subprocess { template }) => Act::Spawn {
                                    template: template.clone(),
                                    initial: navigator::bind_inputs_parts(
                                        &tmpl,
                                        &slot.header,
                                        &slot.tasks,
                                        &path,
                                    ),
                                },
                                Some(TaskKind::Parallel { .. }) => Act::Expand,
                                None => Act::Stale("ready task not in template"),
                            },
                        },
                    }
                }
            };
            match act {
                Act::Skip => {}
                Act::Park => {
                    if let Some(rec) = self.slots.get_mut(&id).and_then(|s| s.tasks.get_mut(&path))
                    {
                        rec.ready_at.get_or_insert(now);
                    }
                }
                Act::Stale(why) => self.stale(st, ctx.round, id, Some(&path), why),
                Act::Request => {
                    if let Some(rec) = self.slots.get_mut(&id).and_then(|s| s.tasks.get_mut(&path))
                    {
                        rec.ready_at.get_or_insert(now);
                    }
                    let src = (id, self.next_seq(st, id));
                    st.out.effects.push(Effect::Request {
                        instance: id,
                        path: path.clone(),
                        src,
                    });
                }
                Act::Spawn { template, initial } => {
                    if let Some(rec) = self.slots.get_mut(&id).and_then(|s| s.tasks.get_mut(&path))
                    {
                        rec.state = TaskState::Dispatched;
                        rec.started_at = Some(now);
                        rec.ready_at = None;
                        rec.inputs = initial.clone();
                    }
                    let src = (id, self.next_seq(st, id));
                    st.out.effects.push(Effect::Spawn {
                        parent: (id, path.clone()),
                        template,
                        initial,
                        src,
                    });
                }
                Act::Expand => {
                    let (children, out2) = {
                        let Some(slot) = self.slots.get_mut(&id) else {
                            break;
                        };
                        let mut view = InstanceView {
                            template: slot.template.as_ref(),
                            header: &mut slot.header,
                            tasks: &mut slot.tasks,
                        };
                        navigator::expand_parallel(&mut view, &path, now)?
                    };
                    for child in &children {
                        st.mark(id, child);
                    }
                    ready.extend(children);
                    ready.extend(out2.newly_ready);
                    skipped.extend(out2.newly_skipped);
                    completed |= out2.completed;
                    aborted |= out2.aborted;
                    compensations.extend(out2.compensations);
                }
            }
        }
        for p in &skipped {
            st.mark(id, p);
        }
        if suspended {
            // Policy-driven suspension (FailurePolicy::Suspend) parks the
            // instance exactly like an operator suspend.
            st.suspended_now.insert(id);
            st.resumed_now.remove(&id);
            self.emit(
                st,
                ctx.round,
                id,
                EventKind::InstanceSuspend { instance: id },
            );
        }
        if completed || aborted {
            // Terminal transitions can touch records outside the outcome
            // lists (sphere members marked Compensated); persist it all.
            st.mark_all(id);
            if completed {
                self.emit(
                    st,
                    ctx.round,
                    id,
                    EventKind::InstanceComplete { instance: id },
                );
            } else {
                self.emit(st, ctx.round, id, EventKind::InstanceAbort { instance: id });
            }
            let parent = self.slots.get(&id).and_then(|s| s.header.parent.clone());
            if let Some((pid, ppath)) = parent {
                let (outputs, cpu_ms) = self
                    .slots
                    .get(&id)
                    .map(|s| (s.header.whiteboard.clone(), s.cpu_ms()))
                    .unwrap_or_default();
                let src = (id, self.next_seq(st, id));
                st.out.effects.push(Effect::Send(Msg {
                    dest: pid,
                    src,
                    payload: Payload::ChildDone {
                        path: ppath,
                        child: id,
                        success: completed,
                        outputs,
                        cpu_ms,
                    },
                }));
            }
        }
        Ok(())
    }

    /// One batch per dirty instance (header + touched task records) plus
    /// the shard meta record — the shard's group commit for this round.
    fn build_batches(&self, ctx: &StepCtx<'_>, st: &StepState) -> EngineResult<Vec<Batch>> {
        let mut batches = Vec::with_capacity(st.dirty.len() + 1);
        for (id, dirty) in &st.dirty {
            let Some(slot) = self.slots.get(id) else {
                continue;
            };
            let mut b = Batch::new();
            if st.created_roots.contains(id) {
                // Same atomic frame as the instance's first commit: the
                // pending-start record and the header never coexist
                // half-applied.
                b.delete(Space::Instance, super::pending_key(*id));
            }
            // The durable suspended set rides the same atomic frame as
            // the header that carries the status flip, so a crash can
            // never observe one without the other.
            if st.suspended_now.contains(id) {
                b.put(Space::Instance, super::suspended_key(*id), vec![1]);
            } else if st.resumed_now.contains(id) {
                b.delete(Space::Instance, super::suspended_key(*id));
            }
            b.put(
                Space::Instance,
                shard_key(self.id, &keys::header(*id)),
                encode(&slot.header)?,
            );
            if dirty.all {
                for rec in slot.tasks.values() {
                    b.put(
                        Space::Instance,
                        shard_key(self.id, &keys::task(*id, &rec.path)),
                        encode(rec)?,
                    );
                }
            } else {
                for path in &dirty.tasks {
                    if let Some(rec) = slot.tasks.get(path) {
                        b.put(
                            Space::Instance,
                            shard_key(self.id, &keys::task(*id, path)),
                            encode(rec)?,
                        );
                    }
                }
            }
            batches.push(b);
        }
        let mut meta = Batch::new();
        meta.put(
            Space::Instance,
            shard_key(self.id, "meta"),
            encode(&ShardMeta { round: ctx.round })?,
        );
        batches.push(meta);
        Ok(batches)
    }
}

fn encode<T: Serialize>(value: &T) -> EngineResult<Vec<u8>> {
    serde_json::to_vec(value).map_err(|e| EngineError::Internal(format!("encode: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_injection_is_deterministic_and_rate_bounded() {
        let f = FaultInjection {
            seed: 42,
            rate_ppm: 100_000, // 10%
        };
        let hits: Vec<bool> = (0..1000u64).map(|i| f.hits(i, "T", 0)).collect();
        assert_eq!(
            hits,
            (0..1000u64).map(|i| f.hits(i, "T", 0)).collect::<Vec<_>>()
        );
        let rate = hits.iter().filter(|h| **h).count();
        assert!(rate > 20 && rate < 300, "10% nominal, got {rate}/1000");
        // The attempt number perturbs the hash: a faulted task is not
        // doomed to fault forever.
        let stuck = (0..10u32).all(|a| f.hits(7, "T", a));
        assert!(!stuck);
    }
}
