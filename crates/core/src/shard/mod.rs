//! The sharded navigator: hash-bucketed instances, parallel shard
//! steppers, and a deterministic barrier.
//!
//! The serial [`crate::runtime::Runtime`] interleaves navigation, dispatch
//! and dependability decisions over one global state, which caps it at a
//! single core.  This module re-plans that pipeline as a bulk-synchronous
//! engine:
//!
//! 1. instances hash-bucket ([`router::owner`]) onto N [`Shard`]s, each
//!    with its own journal prefix in the store ([`bioopera_store::shard_key`]);
//! 2. every round, N shard steppers run **in parallel threads** over the
//!    shared [`Store`] — each consumes its sorted inbox, runs the pure
//!    navigator, and group-commits its dirty instances ([`Store::apply_many`]
//!    per shard) — safe because shard key ranges are disjoint;
//! 3. the barrier merges all outboxes by `(source instance, seq)`
//!    ([`router::merge_outboxes`]), feeds the cross-shard services
//!    (dispatch + node health, [`services::DispatchService`]), allocates
//!    subprocess instance ids, routes messages for the next round, and
//!    commits the round's history events.
//!
//! Because the barrier consumes a totally-ordered stream and every shard
//! step is a pure function of `(its journal, its inbox)`, the recorded
//! history and final state are bit-identical for any shard count and any
//! thread interleaving — the property the replay proptests pin down.

pub mod router;
pub mod services;
pub mod stepper;

pub use router::{
    merge_outboxes, owner, splitmix64, ControlOp, Effect, Msg, Payload, ShardEvent, ShardId,
    SrcKey, StepOutput,
};
pub use services::{DispatchService, LogicalNode};
pub use stepper::{FaultInjection, InstanceSlot, Shard, ShardMeta, StepCtx};

use crate::awareness::{Awareness, EventKind};
use crate::diagnostics;
use crate::error::{EngineError, EngineResult};
use crate::library::ActivityLibrary;
use crate::planner::{OutageImpact, PlannerNode, PlannerSnapshot};
use crate::state::{keys, InstanceId, InstanceStatus, RunOutcome, TaskState};
use bioopera_cluster::SimTime;
use bioopera_ocr::model::{ProcessTemplate, TaskKind};
use bioopera_ocr::value::Value;
use bioopera_store::{shard_key, Batch, Disk, Space, Store};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Barrier-side events (quarantines, probations, subprocess allocations)
/// get sequence numbers in a range of their own so they sort after the
/// shard-side events of the same instance within a round.
const BARRIER_SEQ_BASE: u64 = 1 << 48;

/// Operator control messages (suspend/resume) take the highest sequence
/// range of all: within a round they sort after every other message and
/// event of the same instance, so the steering point in the instance's
/// history is a pure function of the operator-call sequence — identical
/// at every shard and thread count.
const OPERATOR_SEQ_BASE: u64 = 1 << 56;

/// Shard-count override: `BIOOPERA_SHARDS=N` (N >= 1).
pub fn shards_from_env(default: usize) -> usize {
    std::env::var("BIOOPERA_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|n| *n >= 1)
        .unwrap_or(default)
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of hash buckets (fixed for the lifetime of a journal).
    pub shards: usize,
    /// Stepper threads (clamped to `[1, shards]`).
    pub threads: usize,
    /// Logical execution nodes.
    pub nodes: usize,
    /// Concurrent jobs per node.
    pub node_capacity: usize,
    /// Consecutive node faults before quarantine.
    pub quarantine_threshold: u32,
    /// Masked system failures tolerated per task before escalation.
    pub retry_budget: u32,
    /// Deterministic node-fault injection (torture harness).
    pub faults: Option<FaultInjection>,
    /// Round-count ceiling before the engine reports a stuck workload.
    pub max_rounds: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        let shards = shards_from_env(4);
        ShardConfig {
            shards,
            threads: shards,
            nodes: 4,
            node_capacity: 64,
            quarantine_threshold: 3,
            retry_budget: 3,
            faults: None,
            max_rounds: 100_000,
        }
    }
}

/// What a completed run looked like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardRunStats {
    /// Barrier rounds executed.
    pub rounds: u64,
    /// Instances resident at the end.
    pub instances: u64,
    /// Instances that completed.
    pub completed: u64,
    /// Instances that aborted.
    pub aborted: u64,
    /// History events recorded over the engine's lifetime.
    pub events: u64,
    /// Node grants issued over the engine's lifetime.
    pub grants: u64,
    /// Instances parked in the suspended set (resumable, not stuck).
    pub suspended: u64,
}

/// The sharded navigator engine.
pub struct ShardEngine<D: Disk> {
    cfg: ShardConfig,
    store: Store<D>,
    library: ActivityLibrary,
    templates: BTreeMap<String, Arc<ProcessTemplate>>,
    shards: Vec<Shard>,
    inboxes: Vec<Vec<Msg>>,
    service: DispatchService,
    awareness: Awareness,
    round: u64,
    next_instance: InstanceId,
    operator_seq: u64,
    events_recorded: u64,
    history_digest: u64,
    counts: BTreeMap<String, u64>,
}

impl<D: Disk> ShardEngine<D> {
    /// A fresh engine over an empty (or at least shard-unused) store.
    pub fn new(
        store: Store<D>,
        library: ActivityLibrary,
        mut cfg: ShardConfig,
    ) -> EngineResult<Self> {
        cfg.shards = cfg.shards.max(1);
        cfg.threads = cfg.threads.clamp(1, cfg.shards);
        let shards = (0..cfg.shards).map(Shard::new).collect();
        let inboxes = vec![Vec::new(); cfg.shards];
        let service = DispatchService::new(cfg.nodes, cfg.node_capacity, cfg.quarantine_threshold);
        let awareness = Awareness::open_tail(&store)
            .map_err(|e| EngineError::Internal(format!("awareness open: {e}")))?;
        Ok(ShardEngine {
            store,
            library,
            templates: BTreeMap::new(),
            shards,
            inboxes,
            service,
            awareness,
            round: 0,
            next_instance: 1,
            operator_seq: 0,
            events_recorded: 0,
            history_digest: FNV_OFFSET,
            counts: BTreeMap::new(),
            cfg,
        })
    }

    /// Register (and persist) a template.
    pub fn register_template(&mut self, template: ProcessTemplate) -> EngineResult<()> {
        let mut b = Batch::new();
        b.put(
            Space::Template,
            keys::template(&template.name),
            encode(&template)?,
        );
        self.store.apply(b).map_err(EngineError::Store)?;
        self.templates
            .insert(template.name.clone(), Arc::new(template));
        Ok(())
    }

    /// Submit a new root instance; it starts at the next round.  The
    /// submission is durable immediately: a pending-start record outlives
    /// a crash until the owning shard commits the instance itself.
    pub fn submit(
        &mut self,
        template: &str,
        initial: BTreeMap<String, Value>,
    ) -> EngineResult<InstanceId> {
        if !self.templates.contains_key(template) {
            return Err(EngineError::UnknownTemplate(template.to_string()));
        }
        let id = self.next_instance;
        self.next_instance += 1;
        self.store
            .put(
                Space::Instance,
                pending_key(id),
                encode(&PendingStart {
                    template: template.to_string(),
                    initial: initial.clone(),
                })?,
            )
            .map_err(EngineError::Store)?;
        self.route(Msg {
            dest: id,
            src: (id, 0),
            payload: Payload::Start {
                template: template.to_string(),
                initial,
                parent: None,
            },
        });
        Ok(id)
    }

    fn route(&mut self, msg: Msg) {
        let shard = owner(msg.dest, self.cfg.shards);
        self.inboxes[shard].push(msg);
    }

    /// Nothing queued anywhere: no inbox messages, no waiting requests.
    /// (Granted slots are always consumed and released within one round,
    /// so a non-empty `in_flight` implies a non-empty inbox.)
    pub fn quiescent(&self) -> bool {
        self.inboxes.iter().all(Vec::is_empty) && self.service.queued() == 0
    }

    /// Route an operator steering command through the deterministic
    /// outbox order: the message is delivered at the next round, sorted
    /// after every other message of the instance ([`OPERATOR_SEQ_BASE`]).
    fn steer(&mut self, id: InstanceId, op: ControlOp) -> EngineResult<()> {
        if id == 0 || id >= self.next_instance {
            return Err(EngineError::UnknownInstance(id));
        }
        if self.instance_status(id).is_some_and(|s| s.is_terminal()) {
            return Ok(());
        }
        self.operator_seq += 1;
        let seq = OPERATOR_SEQ_BASE + self.operator_seq;
        self.route(Msg {
            dest: id,
            src: (id, seq),
            payload: Payload::Control { op },
        });
        Ok(())
    }

    /// Operator suspend of one instance: in-flight work drains, nothing
    /// new activates, ready tasks park until [`ShardEngine::resume`].
    /// Takes effect at the next round, at a deterministic point in the
    /// instance's history.  No-op on terminal instances.
    pub fn suspend(&mut self, id: InstanceId) -> EngineResult<()> {
        self.steer(id, ControlOp::Suspend)
    }

    /// Operator resume: un-parks the instance, resets failed-task retry
    /// budgets, and re-activates every ready task.
    pub fn resume(&mut self, id: InstanceId) -> EngineResult<()> {
        self.steer(id, ControlOp::Resume)
    }

    /// Engine-wide operator suspend: every running instance parks.
    pub fn suspend_all(&mut self) -> EngineResult<()> {
        let ids: Vec<InstanceId> = self
            .shards
            .iter()
            .flat_map(|s| s.slots.iter())
            .filter(|(_, slot)| slot.header.status == InstanceStatus::Running)
            .map(|(id, _)| *id)
            .collect();
        // Sorted delivery: slots iterate in id order per shard; merge.
        let mut ids = ids;
        ids.sort_unstable();
        for id in ids {
            self.steer(id, ControlOp::Suspend)?;
        }
        Ok(())
    }

    /// Engine-wide operator resume: every suspended instance un-parks.
    pub fn resume_all(&mut self) -> EngineResult<()> {
        let mut ids: Vec<InstanceId> = self
            .shards
            .iter()
            .flat_map(|s| s.slots.iter())
            .filter(|(_, slot)| slot.header.status == InstanceStatus::Suspended)
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            self.steer(id, ControlOp::Resume)?;
        }
        Ok(())
    }

    /// Instances currently parked in the suspended set.
    pub fn suspended_count(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.slots.values())
            .filter(|slot| slot.header.status == InstanceStatus::Suspended)
            .count() as u64
    }

    /// Run one BSP round: parallel shard steps, then the barrier.
    /// Returns `false` (without running) once quiescent.
    pub fn step_round(&mut self) -> EngineResult<bool> {
        if self.quiescent() {
            return Ok(false);
        }
        let round = self.round;
        let inboxes = std::mem::replace(&mut self.inboxes, vec![Vec::new(); self.cfg.shards]);
        let outputs = {
            let ctx = StepCtx {
                round,
                library: &self.library,
                templates: &self.templates,
                faults: self.cfg.faults.as_ref(),
                retry_budget: self.cfg.retry_budget,
            };
            let threads = self.cfg.threads.clamp(1, self.cfg.shards);
            if threads <= 1 {
                let mut outs = Vec::with_capacity(self.shards.len());
                for (shard, inbox) in self.shards.iter_mut().zip(inboxes) {
                    let (out, batches) = shard.step(&ctx, inbox)?;
                    self.store.apply_many(batches).map_err(EngineError::Store)?;
                    outs.push(out);
                }
                outs
            } else {
                let chunk = self.shards.len().div_ceil(threads);
                let store = &self.store;
                let ctx = &ctx;
                let mut inbox_iter = inboxes.into_iter();
                let chunked: Vec<(&mut [Shard], Vec<Vec<Msg>>)> = self
                    .shards
                    .chunks_mut(chunk)
                    .map(|shards| {
                        let inboxes: Vec<Vec<Msg>> =
                            inbox_iter.by_ref().take(shards.len()).collect();
                        (shards, inboxes)
                    })
                    .collect();
                let results: Vec<EngineResult<Vec<(ShardId, StepOutput)>>> =
                    std::thread::scope(|s| {
                        let handles: Vec<_> = chunked
                            .into_iter()
                            .map(|(shards, inboxes)| {
                                s.spawn(move || {
                                    let mut outs = Vec::with_capacity(shards.len());
                                    for (shard, inbox) in shards.iter_mut().zip(inboxes) {
                                        let (out, batches) = shard.step(ctx, inbox)?;
                                        store.apply_many(batches).map_err(EngineError::Store)?;
                                        outs.push((shard.id, out));
                                    }
                                    Ok(outs)
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| match h.join() {
                                Ok(r) => r,
                                Err(_) => Err(EngineError::Internal(
                                    "shard stepper thread panicked".to_string(),
                                )),
                            })
                            .collect()
                    });
                let mut tagged = Vec::with_capacity(self.shards.len());
                for r in results {
                    tagged.extend(r?);
                }
                tagged.sort_by_key(|(id, _)| *id);
                tagged.into_iter().map(|(_, out)| out).collect()
            }
        };
        self.barrier(round, outputs)?;
        self.round += 1;
        Ok(true)
    }

    /// The deterministic barrier: merge outboxes, drive the cross-shard
    /// services, allocate subprocess ids, route next-round messages, and
    /// commit the round's history.
    fn barrier(&mut self, round: u64, outputs: Vec<StepOutput>) -> EngineResult<()> {
        let (effects, mut events) = merge_outboxes(outputs);
        let mut bseq = 0u64;
        let mut barrier_events: Vec<ShardEvent> = Vec::new();
        let mut bev = |events: &mut Vec<ShardEvent>, instance: InstanceId, kind: EventKind| {
            events.push(ShardEvent {
                round,
                instance,
                seq: BARRIER_SEQ_BASE + bseq,
                kind,
            });
            bseq += 1;
        };
        for effect in effects {
            match effect {
                Effect::Send(msg) => self.route(msg),
                Effect::Request {
                    instance,
                    path,
                    src,
                } => self.service.request(instance, path, src),
                Effect::Release { node, faulted, .. } => {
                    if let Some(kind) = self.service.release(&node, faulted, round) {
                        bev(&mut barrier_events, u64::MAX, kind);
                    }
                }
                Effect::Spawn {
                    parent,
                    template,
                    initial,
                    src,
                } => {
                    let child = self.next_instance;
                    self.next_instance += 1;
                    bev(
                        &mut barrier_events,
                        parent.0,
                        EventKind::SubprocessStart {
                            instance: parent.0,
                            path: parent.1.clone(),
                            child,
                            template: template.clone(),
                        },
                    );
                    self.route(Msg {
                        dest: child,
                        src,
                        payload: Payload::Start {
                            template,
                            initial,
                            parent: Some(parent),
                        },
                    });
                }
            }
        }
        let (grants, probations) = self.service.assign(round);
        for kind in probations {
            bev(&mut barrier_events, u64::MAX, kind);
        }
        for grant in grants {
            self.route(grant);
        }
        events.extend(barrier_events);
        self.commit_events(round, &events)
    }

    /// Commit the round's totally-ordered events and feed the incremental
    /// awareness index from the same stream, in the same group commit.
    ///
    /// The awareness rollup batch rides `apply_many` with the event batch,
    /// so a crash can never persist one without the other: monitoring
    /// queries over a recovered store always agree with the recorded
    /// history, exactly as on the serial path.
    fn commit_events(&mut self, round: u64, events: &[ShardEvent]) -> EngineResult<()> {
        if !events.is_empty() {
            let at = SimTime::from_secs(round);
            let mut b = Batch::new();
            for (i, e) in events.iter().enumerate() {
                b.put(Space::History, event_key(round, i), encode(e)?);
                self.awareness.record(at, e.kind.clone());
            }
            let mut batches = vec![b];
            match self.awareness.pending_batch() {
                Ok(Some(ab)) => batches.push(ab),
                Ok(None) => {}
                Err(e) => {
                    self.awareness.discard_pending();
                    return Err(EngineError::Store(e));
                }
            }
            self.store.apply_many(batches).map_err(EngineError::Store)?;
            self.awareness.confirm_flushed();
        }
        for e in events {
            self.fold_event(e);
        }
        Ok(())
    }

    fn fold_event(&mut self, e: &ShardEvent) {
        self.events_recorded += 1;
        *self.counts.entry(e.kind.label().to_string()).or_default() += 1;
        let mut h = self.history_digest;
        h = fnv1a64(h, &e.round.to_le_bytes());
        h = fnv1a64(h, &e.instance.to_le_bytes());
        h = fnv1a64(h, &e.seq.to_le_bytes());
        if let Ok(bytes) = serde_json::to_vec(&e.kind) {
            h = fnv1a64(h, &bytes);
        }
        self.history_digest = h;
    }

    /// Run rounds to quiescence.
    ///
    /// Returns [`RunOutcome::Completed`] when every instance is terminal,
    /// or [`RunOutcome::Quiesced`] when the only remaining non-terminal
    /// instances are operator-suspended — parked work is a steering
    /// state, not a wedge; `resume` + another `run_to_completion` picks
    /// it back up.  Errors (with a bounded diagnostic) only when a
    /// *non-suspended* instance is stranded or the round ceiling trips.
    pub fn run_to_completion(&mut self) -> EngineResult<RunOutcome> {
        while self.step_round()? {
            if self.round > self.cfg.max_rounds {
                return Err(EngineError::Internal(format!(
                    "no quiescence after {} rounds{}",
                    self.cfg.max_rounds,
                    self.stuck_detail()
                )));
            }
        }
        let (summary, detail) = self.survey();
        if summary.stuck > 0 {
            return Err(EngineError::Internal(format!(
                "quiescent with {} stuck non-terminal instance(s){detail}",
                summary.stuck
            )));
        }
        if summary.suspended > 0 {
            Ok(RunOutcome::Quiesced {
                suspended: summary.suspended as u64,
            })
        } else {
            Ok(RunOutcome::Completed)
        }
    }

    /// Shared bounded breakdown of non-terminal state (same renderer as
    /// the serial facade, so "suspended (resumable)" vs "stuck" reads
    /// identically on both paths).
    fn survey(&self) -> (diagnostics::StallSummary, String) {
        diagnostics::survey(
            self.shards
                .iter()
                .flat_map(|s| s.slots.iter())
                .map(|(id, slot)| (*id, slot.header.status, &slot.tasks)),
        )
    }

    /// Bounded per-instance breakdown of non-terminal state, mirroring
    /// the serial engine's deadlock diagnostic.
    fn stuck_detail(&self) -> String {
        self.survey().1
    }

    /// Torture hook: run one round's shard steps **serially**, commit only
    /// the first `commit_prefix` shards' journal batches, and stop before
    /// the barrier — modelling a crash at the shard barrier with a prefix
    /// of the round's group commits on disk.  The engine is unusable
    /// afterwards; reopen the store and [`ShardEngine::recover`].
    pub fn step_round_partial_commit(&mut self, commit_prefix: usize) -> EngineResult<()> {
        let round = self.round;
        let inboxes = std::mem::replace(&mut self.inboxes, vec![Vec::new(); self.cfg.shards]);
        let ctx = StepCtx {
            round,
            library: &self.library,
            templates: &self.templates,
            faults: self.cfg.faults.as_ref(),
            retry_budget: self.cfg.retry_budget,
        };
        for (i, (shard, inbox)) in self.shards.iter_mut().zip(inboxes).enumerate() {
            let (_out, batches) = shard.step(&ctx, inbox)?;
            if i < commit_prefix {
                self.store.apply_many(batches).map_err(EngineError::Store)?;
            }
        }
        Ok(())
    }

    /// Rebuild an engine from the store: templates, per-shard journals,
    /// then re-drive the in-doubt cross-shard work (lost grants, lost
    /// child-completion messages, lost spawn requests).
    pub fn recover(
        store: Store<D>,
        library: ActivityLibrary,
        mut cfg: ShardConfig,
    ) -> EngineResult<Self> {
        cfg.shards = cfg.shards.max(1);
        cfg.threads = cfg.threads.clamp(1, cfg.shards);
        let mut templates = BTreeMap::new();
        for (_key, bytes) in store
            .scan_prefix(Space::Template, "tmpl/")
            .map_err(EngineError::Store)?
        {
            let t: ProcessTemplate = decode(&bytes)?;
            templates.insert(t.name.clone(), Arc::new(t));
        }
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut round = 0u64;
        let mut next_instance = 1u64;
        for i in 0..cfg.shards {
            let (shard, r) = Shard::recover(i, &store, &templates)?;
            round = round.max(r);
            if let Some((max, _)) = shard.slots.last_key_value() {
                next_instance = next_instance.max(max + 1);
            }
            shards.push(shard);
        }
        let service = DispatchService::new(cfg.nodes, cfg.node_capacity, cfg.quarantine_threshold);
        // The awareness rollup was group-committed with every event batch,
        // so an O(tail) reopen lands on a state consistent with `sev/`.
        let awareness = Awareness::open_tail(&store)
            .map_err(|e| EngineError::Internal(format!("awareness open: {e}")))?;
        let mut engine = ShardEngine {
            inboxes: vec![Vec::new(); cfg.shards],
            round: round + 1,
            next_instance,
            events_recorded: 0,
            history_digest: FNV_OFFSET,
            counts: BTreeMap::new(),
            store,
            library,
            templates,
            shards,
            service,
            awareness,
            operator_seq: 0,
            cfg,
        };
        // Reconcile the durable suspended set against the recovered
        // headers.  Both sides of a suspend/resume flip commit in one
        // atomic frame, so a mismatch means the record outlived its
        // instance (e.g. a pruned terminal slot): drop it.
        let susp = engine
            .store
            .scan_prefix(Space::Instance, "susp/")
            .map_err(EngineError::Store)?;
        for (key, _bytes) in susp {
            let parked = key
                .strip_prefix("susp/")
                .and_then(|s| s.parse::<InstanceId>().ok())
                .and_then(|id| engine.instance_status(id))
                == Some(InstanceStatus::Suspended);
            if !parked {
                engine
                    .store
                    .delete(Space::Instance, key)
                    .map_err(EngineError::Store)?;
            }
        }
        // Fold the committed history back into the digest/counters so the
        // lifetime view stays continuous across the crash.
        let persisted = engine
            .store
            .scan_prefix(Space::History, "sev/")
            .map_err(EngineError::Store)?;
        for (_key, bytes) in persisted {
            if let Ok(e) = serde_json::from_slice::<ShardEvent>(&bytes) {
                engine.fold_event(&e);
            }
        }
        engine.redrive()?;
        Ok(engine)
    }

    /// Reconstruct in-doubt cross-shard work from both sides' journals:
    ///
    /// * dispatched activities lost their grant → back to `Ready` and
    ///   re-requested (`ready_at` is preserved, so queue-wait metrics
    ///   span the outage);
    /// * a terminal child whose parent task is still `Dispatched` lost
    ///   its `ChildDone` message → re-sent (the parent's state check
    ///   dedupes);
    /// * a `Dispatched` subprocess task with no live child lost its spawn
    ///   → re-spawned under a fresh id.
    fn redrive(&mut self) -> EngineResult<()> {
        let now = SimTime::from_secs(self.round);
        let round = self.round;
        // Pass 0: acked submissions whose Start message died in memory
        // before the owning shard committed the instance.  (Records for
        // instances that did come up are just stale; drop them.)
        let pending = self
            .store
            .scan_prefix(Space::Instance, "pending/")
            .map_err(EngineError::Store)?;
        for (key, bytes) in pending {
            let Some(id) = key
                .strip_prefix("pending/")
                .and_then(|s| s.parse::<InstanceId>().ok())
            else {
                continue;
            };
            self.next_instance = self.next_instance.max(id + 1);
            if self.shards[owner(id, self.cfg.shards)]
                .slots
                .contains_key(&id)
            {
                self.store
                    .delete(Space::Instance, key)
                    .map_err(EngineError::Store)?;
                continue;
            }
            let start: PendingStart = decode(&bytes)?;
            self.route(Msg {
                dest: id,
                src: (id, 0),
                payload: Payload::Start {
                    template: start.template,
                    initial: start.initial,
                    parent: None,
                },
            });
        }
        // Pass 1 (read-only): child-instance facts.
        let mut live_children: BTreeSet<(InstanceId, String)> = BTreeSet::new();
        let mut child_results: Vec<ChildResult> = Vec::new();
        for shard in &self.shards {
            for (id, slot) in &shard.slots {
                if let Some((pid, ppath)) = &slot.header.parent {
                    live_children.insert((*pid, ppath.clone()));
                    if slot.header.status.is_terminal() {
                        child_results.push((
                            *pid,
                            ppath.clone(),
                            *id,
                            slot.header.status == InstanceStatus::Completed,
                            slot.header.whiteboard.clone(),
                            slot.cpu_ms(),
                        ));
                    }
                }
            }
        }
        // Pass 2 (mutating): requeue lost grants, find lost spawns.
        let mut requests: Vec<(InstanceId, String)> = Vec::new();
        let mut spawns: Vec<(InstanceId, String, String, BTreeMap<String, Value>)> = Vec::new();
        let mut requeued = 0u64;
        let mut batches: Vec<Batch> = Vec::new();
        for shard in &mut self.shards {
            for (id, slot) in &mut shard.slots {
                // Suspended instances re-drive too — their in-doubt work
                // is rewound to `Ready` so nothing is lost — but stay
                // parked: no re-request, no re-spawn until resume, whose
                // full ready-task re-activation picks the rewound tasks
                // up.
                let parked = slot.header.status == InstanceStatus::Suspended;
                if slot.header.status != InstanceStatus::Running && !parked {
                    continue;
                }
                let tmpl = slot.template.clone();
                let mut batch = Batch::new();
                for rec in slot.tasks.values_mut() {
                    let subprocess_like = match rec.parallel_parent() {
                        Some(parent) => matches!(
                            crate::navigator::parallel_body(&tmpl, parent),
                            Some(bioopera_ocr::model::ParallelBody::Subprocess(_))
                        ),
                        None => matches!(
                            tmpl.task(&rec.path).map(|t| &t.kind),
                            Some(TaskKind::Subprocess { .. })
                        ),
                    };
                    let parallel_parent_task = rec.parallel_parent().is_none()
                        && matches!(
                            tmpl.task(&rec.path).map(|t| &t.kind),
                            Some(TaskKind::Parallel { .. })
                        );
                    match rec.state {
                        TaskState::Ready => {
                            rec.ready_at.get_or_insert(now);
                            if !parked {
                                requests.push((*id, rec.path.clone()));
                            }
                            batch.put(
                                Space::Instance,
                                shard_key(shard.id, &keys::task(*id, &rec.path)),
                                encode(&*rec)?,
                            );
                        }
                        TaskState::Dispatched if parallel_parent_task => {
                            // Concluded by its children; nothing in flight.
                        }
                        TaskState::Dispatched
                            if subprocess_like
                                && !live_children.contains(&(*id, rec.path.clone())) =>
                        {
                            if parked {
                                // Lost spawn of a parked parent: rewind so
                                // resume's ready-task sweep re-spawns it.
                                rec.state = TaskState::Ready;
                                rec.node = None;
                                rec.ready_at.get_or_insert(now);
                                batch.put(
                                    Space::Instance,
                                    shard_key(shard.id, &keys::task(*id, &rec.path)),
                                    encode(&*rec)?,
                                );
                                continue;
                            }
                            let template = match rec.parallel_parent() {
                                Some(parent) => {
                                    match crate::navigator::parallel_body(&tmpl, parent) {
                                        Some(bioopera_ocr::model::ParallelBody::Subprocess(t)) => {
                                            t.clone()
                                        }
                                        _ => continue,
                                    }
                                }
                                None => match tmpl.task(&rec.path).map(|t| &t.kind) {
                                    Some(TaskKind::Subprocess { template }) => template.clone(),
                                    _ => continue,
                                },
                            };
                            spawns.push((*id, rec.path.clone(), template, rec.inputs.clone()));
                        }
                        TaskState::Dispatched if subprocess_like => {
                            // The child is alive and will report ChildDone
                            // itself; leave the parent task in flight.
                        }
                        TaskState::Dispatched => {
                            // An activity grant died with the server.
                            rec.state = TaskState::Ready;
                            rec.node = None;
                            rec.ready_at.get_or_insert(now);
                            requeued += 1;
                            if !parked {
                                requests.push((*id, rec.path.clone()));
                            }
                            batch.put(
                                Space::Instance,
                                shard_key(shard.id, &keys::task(*id, &rec.path)),
                                encode(&*rec)?,
                            );
                        }
                        _ => {}
                    }
                }
                if !batch.is_empty() {
                    batches.push(batch);
                }
            }
        }
        self.store.apply_many(batches).map_err(EngineError::Store)?;
        // Deterministic order for everything the services/inboxes see.
        requests.sort();
        child_results.sort_by_key(|a| a.2);
        spawns.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let mut events: Vec<ShardEvent> = Vec::new();
        let mut bseq = 0u64;
        for (instance, path) in requests {
            let src = (instance, BARRIER_SEQ_BASE + bseq);
            bseq += 1;
            self.service.request(instance, path, src);
        }
        for (pid, ppath, child, success, outputs, cpu_ms) in child_results {
            self.route(Msg {
                dest: pid,
                src: (child, BARRIER_SEQ_BASE + bseq),
                payload: Payload::ChildDone {
                    path: ppath,
                    child,
                    success,
                    outputs,
                    cpu_ms,
                },
            });
            bseq += 1;
        }
        for (pid, ppath, template, initial) in spawns {
            let child = self.next_instance;
            self.next_instance += 1;
            events.push(ShardEvent {
                round,
                instance: pid,
                seq: BARRIER_SEQ_BASE + bseq,
                kind: EventKind::SubprocessStart {
                    instance: pid,
                    path: ppath.clone(),
                    child,
                    template: template.clone(),
                },
            });
            self.route(Msg {
                dest: child,
                src: (pid, BARRIER_SEQ_BASE + bseq),
                payload: Payload::Start {
                    template,
                    initial,
                    parent: Some((pid, ppath)),
                },
            });
            bseq += 1;
        }
        events.push(ShardEvent {
            round,
            instance: u64::MAX,
            seq: BARRIER_SEQ_BASE + bseq,
            kind: EventKind::ServerRecover { requeued },
        });
        self.commit_events(round, &events)?;
        // The recovery pseudo-round used `round`'s event keys; advance so
        // the next barrier commits under fresh keys.
        self.round += 1;
        Ok(())
    }

    /// Current run statistics.
    pub fn stats(&self) -> ShardRunStats {
        let mut stats = ShardRunStats {
            rounds: self.round,
            events: self.events_recorded,
            grants: self.service.granted(),
            ..Default::default()
        };
        for shard in &self.shards {
            for slot in shard.slots.values() {
                stats.instances += 1;
                match slot.header.status {
                    InstanceStatus::Completed => stats.completed += 1,
                    InstanceStatus::Aborted => stats.aborted += 1,
                    InstanceStatus::Suspended => stats.suspended += 1,
                    InstanceStatus::Running => {}
                }
            }
        }
        stats
    }

    /// Rolling FNV-1a digest of the committed history stream (order-
    /// sensitive): bit-identical across shard counts and thread counts.
    pub fn history_digest(&self) -> u64 {
        self.history_digest
    }

    /// Digest of the final instance state, merged across shards in
    /// instance order (shard-placement independent).
    pub fn state_digest(&self) -> u64 {
        let mut slots: Vec<(&InstanceId, &InstanceSlot)> =
            self.shards.iter().flat_map(|s| s.slots.iter()).collect();
        slots.sort_by_key(|(id, _)| **id);
        let mut h = FNV_OFFSET;
        for (id, slot) in slots {
            h = fnv1a64(h, &id.to_le_bytes());
            if let Ok(bytes) = serde_json::to_vec(&slot.header) {
                h = fnv1a64(h, &bytes);
            }
            for rec in slot.tasks.values() {
                if let Ok(bytes) = serde_json::to_vec(rec) {
                    h = fnv1a64(h, &bytes);
                }
            }
        }
        h
    }

    /// Lifetime event counts by label.
    pub fn event_counts(&self) -> &BTreeMap<String, u64> {
        &self.counts
    }

    /// Current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Status of an instance, wherever it lives.
    pub fn instance_status(&self, id: InstanceId) -> Option<InstanceStatus> {
        self.shards[owner(id, self.cfg.shards)]
            .slots
            .get(&id)
            .map(|s| s.header.status)
    }

    /// Final whiteboard of an instance (for output-equality checks).
    pub fn instance_whiteboard(&self, id: InstanceId) -> Option<&BTreeMap<String, Value>> {
        self.shards[owner(id, self.cfg.shards)]
            .slots
            .get(&id)
            .map(|s| &s.header.whiteboard)
    }

    /// The underlying store.
    pub fn store(&self) -> &Store<D> {
        &self.store
    }

    /// The configuration in force.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// The awareness model, fed incrementally from the barrier's
    /// totally-ordered event stream (crash-atomic with the group commit).
    pub fn awareness(&self) -> &Awareness {
        &self.awareness
    }

    /// Plain-data view of (logical nodes, in-flight jobs, instance task
    /// state) for the engine-agnostic what-if core — a pure function of
    /// the journals and the dispatch service, nothing step-loop-specific.
    pub fn planner_snapshot(&self) -> PlannerSnapshot {
        let round = self.round;
        let nodes = self
            .service
            .nodes()
            .iter()
            .map(|n| PlannerNode {
                name: n.name.clone(),
                os: None,
                cpus: n.capacity as u32,
                up: n.quarantined_until == 0 || n.quarantined_until <= round,
            })
            .collect();
        let mut slots: Vec<(&InstanceId, &InstanceSlot)> =
            self.shards.iter().flat_map(|s| s.slots.iter()).collect();
        slots.sort_by_key(|(id, _)| **id);
        let mut in_flight = Vec::new();
        let mut instances = Vec::new();
        for (id, slot) in slots {
            if slot.header.status.is_terminal() {
                continue;
            }
            for rec in slot.tasks.values() {
                if rec.state == TaskState::Dispatched {
                    if let Some(node) = &rec.node {
                        in_flight.push((*id, rec.path.clone(), node.clone()));
                    }
                }
            }
            instances.push(crate::planner::PlannerInstance {
                id: *id,
                template: slot.header.template.clone(),
                tasks: slot
                    .tasks
                    .values()
                    .map(|rec| crate::planner::PlannerTask {
                        path: rec.path.clone(),
                        state: rec.state,
                        binding: crate::planner::binding_of(
                            &slot.template,
                            rec.parallel_parent().unwrap_or(&rec.path),
                        ),
                    })
                    .collect(),
            });
        }
        PlannerSnapshot {
            nodes,
            in_flight,
            instances,
        }
    }

    /// What-if outage analysis (paper §3.5) over the sharded state.
    pub fn what_if_offline(&self, offline: &[&str]) -> OutageImpact {
        self.planner_snapshot().what_if(offline)
    }

    /// Decode the committed history events (in commit order).
    pub fn persisted_events(&self) -> EngineResult<Vec<ShardEvent>> {
        let mut events = Vec::new();
        for (_key, bytes) in self
            .store
            .scan_prefix(Space::History, "sev/")
            .map_err(EngineError::Store)?
        {
            events.push(decode(&bytes)?);
        }
        Ok(events)
    }
}

fn event_key(round: u64, index: usize) -> String {
    format!("sev/{round:08}/{index:06}")
}

/// Recovery fact about a terminal child: `(parent, parent task path,
/// child id, success, child whiteboard, child cpu_ms)`.
type ChildResult = (
    InstanceId,
    String,
    InstanceId,
    bool,
    BTreeMap<String, Value>,
    f64,
);

/// Durable record of an acked-but-not-yet-committed root submission.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct PendingStart {
    template: String,
    initial: BTreeMap<String, Value>,
}

/// Key of a durable suspended-set record (outside every shard prefix,
/// like `pending/`, so recovery can reconcile the parked set without
/// knowing shard ownership).  Written and deleted in the same atomic
/// frame as the header status flip.
pub(crate) fn suspended_key(id: InstanceId) -> String {
    format!("susp/{id:012}")
}

/// Key of a pending-start record (outside every shard prefix, so it is
/// visible to engine recovery regardless of which shard owns the id).
pub(crate) fn pending_key(id: InstanceId) -> String {
    format!("pending/{id:012}")
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a64(mut hash: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

fn encode<T: serde::Serialize>(value: &T) -> EngineResult<Vec<u8>> {
    serde_json::to_vec(value).map_err(|e| EngineError::Internal(format!("encode: {e}")))
}

fn decode<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> EngineResult<T> {
    serde_json::from_slice(bytes).map_err(|e| EngineError::Internal(format!("decode: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::ProgramOutput;
    use bioopera_ocr::model::TypeTag;
    use bioopera_ocr::ProcessBuilder;
    use bioopera_store::MemDisk;

    fn chain_library() -> ActivityLibrary {
        let mut lib = ActivityLibrary::new();
        lib.register("p.a", |_inputs| {
            Ok(ProgramOutput::from_fields([("x", Value::Int(7))], 10.0))
        });
        lib.register("p.b", |inputs| {
            let x = inputs
                .get("x")
                .and_then(|v| v.as_int())
                .ok_or_else(|| "missing x".to_string())?;
            Ok(ProgramOutput::from_fields([("y", Value::Int(x * 2))], 20.0))
        });
        lib
    }

    fn chain_template() -> ProcessTemplate {
        ProcessBuilder::new("Chain")
            .activity("A", "p.a", |t| t.output("x", TypeTag::Int))
            .activity("B", "p.b", |t| {
                t.input("x", TypeTag::Int).output("y", TypeTag::Int)
            })
            .connect("A", "B")
            .flow_to_task("A", "x", "B", "x")
            .build()
            .unwrap()
    }

    fn engine(shards: usize, threads: usize) -> ShardEngine<MemDisk> {
        let store = Store::open(MemDisk::new()).unwrap();
        let cfg = ShardConfig {
            shards,
            threads,
            ..ShardConfig::default()
        };
        let mut eng = ShardEngine::new(store, chain_library(), cfg).expect("engine");
        eng.register_template(chain_template()).unwrap();
        eng
    }

    #[test]
    fn chain_completes_and_whiteboard_flows() {
        let mut eng = engine(2, 2);
        let ids: Vec<InstanceId> = (0..10)
            .map(|_| eng.submit("Chain", BTreeMap::new()).unwrap())
            .collect();
        let outcome = eng.run_to_completion().unwrap();
        assert_eq!(outcome, RunOutcome::Completed);
        let stats = eng.stats();
        assert_eq!(stats.completed, 10);
        assert_eq!(stats.aborted, 0);
        for id in ids {
            assert_eq!(eng.instance_status(id), Some(InstanceStatus::Completed));
        }
        assert_eq!(eng.event_counts()["instance.complete"], 10);
        assert_eq!(eng.event_counts()["task.end"], 20);
    }

    #[test]
    fn suspended_run_quiesces_then_resume_completes() {
        let mut eng = engine(2, 2);
        let ids: Vec<InstanceId> = (0..6)
            .map(|_| eng.submit("Chain", BTreeMap::new()).unwrap())
            .collect();
        eng.suspend(ids[0]).unwrap();
        let outcome = eng.run_to_completion().unwrap();
        assert_eq!(outcome, RunOutcome::Quiesced { suspended: 1 });
        assert_eq!(eng.instance_status(ids[0]), Some(InstanceStatus::Suspended));
        assert!(
            eng.store()
                .get(Space::Instance, &suspended_key(ids[0]))
                .unwrap()
                .is_some(),
            "parked instance is in the durable suspended set"
        );
        for id in &ids[1..] {
            assert_eq!(eng.instance_status(*id), Some(InstanceStatus::Completed));
        }
        // The planner facade sees the sharded state.
        let impact = eng.what_if_offline(&["node0"]);
        assert!(impact.report().contains("what-if"));
        eng.resume(ids[0]).unwrap();
        let outcome = eng.run_to_completion().unwrap();
        assert_eq!(outcome, RunOutcome::Completed);
        assert_eq!(eng.instance_status(ids[0]), Some(InstanceStatus::Completed));
        assert!(
            eng.store()
                .get(Space::Instance, &suspended_key(ids[0]))
                .unwrap()
                .is_none(),
            "resume removes the durable suspended-set record"
        );
        // The awareness index was fed from the barrier's event stream.
        assert_eq!(eng.awareness().index().count("instance.complete"), 6);
        assert_eq!(eng.awareness().index().count("instance.suspend"), 1);
        assert_eq!(eng.awareness().index().count("instance.resume"), 1);
    }

    #[test]
    fn suspend_survives_crash_and_resume_after_recovery_completes() {
        let disk = MemDisk::new();
        let store = Store::open(disk.clone()).unwrap();
        let cfg = ShardConfig {
            shards: 4,
            threads: 2,
            ..ShardConfig::default()
        };
        let mut eng = ShardEngine::new(store, chain_library(), cfg.clone()).expect("engine");
        eng.register_template(chain_template()).unwrap();
        let ids: Vec<InstanceId> = (0..8)
            .map(|_| eng.submit("Chain", BTreeMap::new()).unwrap())
            .collect();
        eng.step_round().unwrap();
        eng.suspend(ids[3]).unwrap();
        eng.step_round().unwrap();
        eng.step_round_partial_commit(2).unwrap();
        drop(eng);
        let store = Store::open(disk).unwrap();
        let mut eng = ShardEngine::recover(store, chain_library(), cfg).unwrap();
        assert_eq!(
            eng.instance_status(ids[3]),
            Some(InstanceStatus::Suspended),
            "suspension survives the crash"
        );
        let outcome = eng.run_to_completion().unwrap();
        assert_eq!(outcome, RunOutcome::Quiesced { suspended: 1 });
        eng.resume(ids[3]).unwrap();
        let outcome = eng.run_to_completion().unwrap();
        assert_eq!(outcome, RunOutcome::Completed);
        let stats = eng.stats();
        assert_eq!(stats.completed, 8, "{stats:?}");
        assert_eq!(stats.suspended, 0);
    }

    #[test]
    fn suspend_all_parks_everything_and_resume_all_unparks() {
        let mut eng = engine(3, 2);
        for _ in 0..5 {
            eng.submit("Chain", BTreeMap::new()).unwrap();
        }
        eng.step_round().unwrap();
        eng.suspend_all().unwrap();
        let outcome = eng.run_to_completion().unwrap();
        assert_eq!(outcome.suspended(), 5);
        eng.resume_all().unwrap();
        let outcome = eng.run_to_completion().unwrap();
        assert_eq!(outcome, RunOutcome::Completed);
        assert_eq!(eng.stats().completed, 5);
    }

    #[test]
    fn shard_count_and_thread_count_do_not_change_the_history() {
        let run = |shards: usize, threads: usize| {
            let mut eng = engine(shards, threads);
            for _ in 0..16 {
                eng.submit("Chain", BTreeMap::new()).unwrap();
            }
            eng.run_to_completion().unwrap();
            (eng.history_digest(), eng.state_digest())
        };
        let baseline = run(1, 1);
        assert_eq!(run(4, 1), baseline);
        assert_eq!(run(4, 4), baseline);
        assert_eq!(run(8, 3), baseline);
    }

    #[test]
    fn recovery_resumes_after_partial_commit() {
        let disk = MemDisk::new();
        let store = Store::open(disk.clone()).unwrap();
        let cfg = ShardConfig {
            shards: 4,
            threads: 1,
            ..ShardConfig::default()
        };
        let mut eng = ShardEngine::new(store, chain_library(), cfg.clone()).expect("engine");
        eng.register_template(chain_template()).unwrap();
        for _ in 0..12 {
            eng.submit("Chain", BTreeMap::new()).unwrap();
        }
        // A couple of clean rounds, then a crash with only two of four
        // shard commits on disk.
        eng.step_round().unwrap();
        eng.step_round().unwrap();
        eng.step_round_partial_commit(2).unwrap();
        drop(eng);
        let store = Store::open(disk).unwrap();
        let mut eng = ShardEngine::recover(store, chain_library(), cfg).unwrap();
        eng.run_to_completion().unwrap();
        let stats = eng.stats();
        assert_eq!(
            stats.completed, 12,
            "all submitted work completes: {stats:?}"
        );
        assert_eq!(stats.aborted, 0);
    }
}
