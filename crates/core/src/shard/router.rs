//! Cross-shard message routing and the deterministic barrier merge.
//!
//! Everything a shard step produces for the outside world — messages to
//! other instances, dispatch requests, node releases, subprocess spawn
//! requests — leaves through its **outbox** tagged with the *source key*
//! `(source instance id, per-instance sequence number)`.  The barrier
//! merges all outboxes by sorting on that key, which is what makes the
//! engine deterministic:
//!
//! * **thread-interleaving invariance** — shard outputs are merged by a
//!   total order that does not mention shards or threads, so any
//!   completion order of the parallel steppers yields the same merged
//!   stream;
//! * **shard-count invariance** — an instance's sequence numbers depend
//!   only on the order it processes its own (sorted) inbox, never on
//!   which shard hosts it, so the merged stream — and therefore the
//!   recorded history — is bit-identical for *any* shard count.
//!
//! Intra-shard effects deliberately take the same path: a message from an
//! instance to its shard-neighbour still waits for the barrier, costing
//! one round of latency but keeping "runs on one shard" and "runs on
//! eight" literally the same computation.

use crate::awareness::EventKind;
use crate::state::InstanceId;
use bioopera_ocr::value::Value;
use std::collections::BTreeMap;

/// Shard index.
pub type ShardId = usize;

/// `(source instance, per-instance seq)` — the barrier's total order.
pub type SrcKey = (InstanceId, u64);

/// Stable owner shard of an instance (splitmix64 hash-bucket, so
/// consecutive ids spread instead of striping).
pub fn owner(instance: InstanceId, shards: usize) -> ShardId {
    debug_assert!(shards > 0);
    (splitmix64(instance) % shards as u64) as usize
}

/// The splitmix64 finalizer: a cheap, well-mixed stable hash.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A message delivered to an instance's inbox at the next round.
#[derive(Debug, Clone, PartialEq)]
pub struct Msg {
    /// Destination instance (its owner shard receives the message).
    pub dest: InstanceId,
    /// Source key the barrier sorted on (kept for in-round ordering).
    pub src: SrcKey,
    /// What happened.
    pub payload: Payload,
}

/// Message payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Create the destination instance (id was allocated at the barrier).
    Start {
        /// Template name (late-bound: resolved now, not at definition).
        template: String,
        /// Initial whiteboard values.
        initial: BTreeMap<String, Value>,
        /// `(parent instance, parent task path)` for subprocess children.
        parent: Option<(InstanceId, String)>,
    },
    /// The dispatch service granted a node slot to a ready task.
    Grant {
        /// Task path to execute.
        path: String,
        /// Logical node the slot belongs to.
        node: String,
    },
    /// A child subprocess instance concluded.
    ChildDone {
        /// Subprocess task path in the destination (parent) instance.
        path: String,
        /// Child instance id.
        child: InstanceId,
        /// Completed vs aborted.
        success: bool,
        /// The child's final whiteboard (parent filters declared outputs).
        outputs: BTreeMap<String, Value>,
        /// Reference-CPU milliseconds the child consumed.
        cpu_ms: f64,
    },
    /// An operator steering command.  Routed through the same sorted
    /// inbox as everything else, so suspend/resume take effect at a
    /// deterministic point in the instance's event order regardless of
    /// shard or thread count.
    Control {
        /// What the operator asked for.
        op: ControlOp,
    },
}

/// Operator steering operations delivered via [`Payload::Control`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlOp {
    /// Park the instance: finish nothing new, keep ready tasks ready.
    Suspend,
    /// Un-park the instance and re-activate every ready task.
    Resume,
}

/// A shard-step effect drained at the barrier.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Route a message to an instance (cross- or intra-shard alike).
    Send(Msg),
    /// Ask the dispatch service for a node slot for a ready task.
    Request {
        /// Requesting instance.
        instance: InstanceId,
        /// Ready task path.
        path: String,
        /// Source key.
        src: SrcKey,
    },
    /// Return a node slot, reporting whether the node faulted.
    Release {
        /// Node whose slot is freed.
        node: String,
        /// True when the attempt died to an (injected) node fault —
        /// feeds the node-health score.
        faulted: bool,
        /// Source key.
        src: SrcKey,
    },
    /// Ask the coordinator to allocate + start a subprocess instance.
    Spawn {
        /// `(parent instance, parent task path)`.
        parent: (InstanceId, String),
        /// Child template name.
        template: String,
        /// Child initial whiteboard.
        initial: BTreeMap<String, Value>,
        /// Source key.
        src: SrcKey,
    },
}

impl Effect {
    /// The barrier sort key.
    pub fn src(&self) -> SrcKey {
        match self {
            Effect::Send(m) => m.src,
            Effect::Request { src, .. }
            | Effect::Release { src, .. }
            | Effect::Spawn { src, .. } => *src,
        }
    }
}

/// One recorded history event: `(round, source key, kind)`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardEvent {
    /// Barrier round the event was committed at.
    pub round: u64,
    /// Source instance.
    pub instance: InstanceId,
    /// Per-instance sequence number.
    pub seq: u64,
    /// What happened (same taxonomy as the serial engine's history).
    pub kind: EventKind,
}

/// What one shard step hands to the barrier.
#[derive(Debug, Default)]
pub struct StepOutput {
    /// Outbox, in generation order (the barrier re-sorts globally).
    pub effects: Vec<Effect>,
    /// Events recorded this step, in generation order.
    pub events: Vec<ShardEvent>,
}

/// Merge per-shard outputs into the global deterministic order.
pub fn merge_outboxes(mut per_shard: Vec<StepOutput>) -> (Vec<Effect>, Vec<ShardEvent>) {
    let mut effects = Vec::new();
    let mut events = Vec::new();
    for out in per_shard.drain(..) {
        effects.extend(out.effects);
        events.extend(out.events);
    }
    // Stable sorts on the source key: per-source generation order is
    // preserved, cross-source order is the total (instance, seq) order.
    effects.sort_by_key(Effect::src);
    events.sort_by_key(|e| (e.instance, e.seq));
    (effects, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 8, 13] {
            for id in 0..100u64 {
                let s = owner(id, shards);
                assert!(s < shards);
                assert_eq!(s, owner(id, shards));
            }
        }
        // The hash actually spreads consecutive ids.
        let buckets: std::collections::BTreeSet<usize> = (0..32).map(|i| owner(i, 8)).collect();
        assert!(buckets.len() > 4);
    }

    #[test]
    fn merge_sorts_by_instance_then_seq_stably() {
        let ev = |instance, seq| ShardEvent {
            round: 0,
            instance,
            seq,
            kind: EventKind::InstanceComplete { instance },
        };
        let a = StepOutput {
            effects: vec![],
            events: vec![ev(7, 0), ev(7, 1)],
        };
        let b = StepOutput {
            effects: vec![],
            events: vec![ev(2, 0), ev(9, 0)],
        };
        // Shard order must not matter.
        let (_, x) = merge_outboxes(vec![a, b]);
        let order: Vec<(u64, u64)> = x.iter().map(|e| (e.instance, e.seq)).collect();
        assert_eq!(order, vec![(2, 0), (7, 0), (7, 1), (9, 0)]);
    }
}
