//! Activation conditions and guard expressions.
//!
//! Every control connector carries an activation condition `C_act` that "is
//! capable of restricting the execution of its target task based on the
//! state of data objects" (paper §3.1).  Conditions are small, side-effect
//! free expressions over the whiteboard and over task output structures,
//! e.g. `!defined(UserInput.queue_file)` on the connector that routes to
//! queue generation.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary operators, in the concrete syntax of the OCR text format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Logical conjunction `&&` (short-circuit).
    And,
    /// Logical disjunction `||` (short-circuit).
    Or,
    /// Equality `==` (structural).
    Eq,
    /// Inequality `!=`.
    Ne,
    /// `<` on numbers or strings.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+` on numbers; concatenation on strings and lists.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` (integer division when both operands are ints; errors on 0).
    Div,
    /// `%` (ints only; errors on 0).
    Mod,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }

    /// Parser precedence (higher binds tighter).
    pub(crate) fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
        }
    }
}

/// A guard expression AST.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A dotted data reference, e.g. `UserInput.queue_file` or `db_name`
    /// (a bare name resolves against the whiteboard).
    Path(Vec<String>),
    /// Logical negation `!e`.
    Not(Box<Expr>),
    /// Arithmetic negation `-e`.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Built-in call: `defined(x)`, `len(x)`, `contains(xs, v)`,
    /// `empty(x)`, `typeof(x)`, `min(a,b)`, `max(a,b)`.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// The constant `true`, the default activation condition.
    pub fn truth() -> Expr {
        Expr::Lit(Value::Bool(true))
    }

    /// Shorthand for a dotted path expression.
    pub fn path(p: &str) -> Expr {
        Expr::Path(p.split('.').map(|s| s.to_string()).collect())
    }

    /// `defined(path)`.
    pub fn defined(p: &str) -> Expr {
        Expr::Call("defined".into(), vec![Expr::path(p)])
    }

    /// `!defined(path)`.
    pub fn undefined(p: &str) -> Expr {
        Expr::Not(Box::new(Expr::defined(p)))
    }

    /// Is this the constant-true guard?
    pub fn is_trivially_true(&self) -> bool {
        matches!(self, Expr::Lit(Value::Bool(true)))
    }

    /// All paths referenced by the expression (for validation).
    pub fn referenced_paths(&self) -> Vec<Vec<String>> {
        let mut out = Vec::new();
        self.collect_paths(&mut out);
        out
    }

    fn collect_paths(&self, out: &mut Vec<Vec<String>>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Path(p) => out.push(p.clone()),
            Expr::Not(e) | Expr::Neg(e) => e.collect_paths(out),
            Expr::Bin(_, a, b) => {
                a.collect_paths(out);
                b.collect_paths(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_paths(out);
                }
            }
        }
    }
}

/// Errors raised while evaluating a guard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A path did not resolve to any value.
    UnknownPath(String),
    /// An operator was applied to incompatible types.
    TypeMismatch(String),
    /// Division or modulo by zero.
    DivisionByZero,
    /// Unknown built-in or wrong arity.
    BadCall(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownPath(p) => write!(f, "unknown data reference `{p}`"),
            EvalError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::BadCall(m) => write!(f, "bad call: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The environment a guard evaluates against.
///
/// `lookup(&["UserInput", "queue_file"])` resolves a dotted path.  Unknown
/// *leaf fields* of known containers should resolve to [`Value::Null`] so
/// that `defined(...)` works as the paper uses it; a completely unknown root
/// should return `None`, which evaluation reports as an error.
pub trait Env {
    /// Resolve a dotted path.
    fn lookup(&self, path: &[String]) -> Option<Value>;
}

/// An [`Env`] over a single map value; used for tests and for block-local
/// scopes.
pub struct MapEnv<'a>(pub &'a Value);

impl Env for MapEnv<'_> {
    fn lookup(&self, path: &[String]) -> Option<Value> {
        let segs: Vec<&str> = path.iter().map(|s| s.as_str()).collect();
        self.0.get_path(&segs).cloned()
    }
}

/// Evaluate `expr` in `env`.
pub fn eval(expr: &Expr, env: &dyn Env) -> Result<Value, EvalError> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Path(p) => env
            .lookup(p)
            .ok_or_else(|| EvalError::UnknownPath(p.join("."))),
        Expr::Not(e) => {
            let v = eval(e, env)?;
            match v {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Bool(true)),
                other => Err(EvalError::TypeMismatch(format!(
                    "! applied to {}",
                    other.type_name()
                ))),
            }
        }
        Expr::Neg(e) => {
            let v = eval(e, env)?;
            match v {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::Float(-f)),
                other => Err(EvalError::TypeMismatch(format!(
                    "- applied to {}",
                    other.type_name()
                ))),
            }
        }
        Expr::Bin(op, a, b) => eval_bin(*op, a, b, env),
        Expr::Call(name, args) => eval_call(name, args, env),
    }
}

/// Evaluate `expr` and coerce to a boolean (activation-condition semantics:
/// `Null` counts as `false`, so a connector guarded on missing optional data
/// simply does not fire).
pub fn eval_bool(expr: &Expr, env: &dyn Env) -> Result<bool, EvalError> {
    match eval(expr, env)? {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(EvalError::TypeMismatch(format!(
            "activation condition produced {}, expected bool",
            other.type_name()
        ))),
    }
}

fn eval_bin(op: BinOp, a: &Expr, b: &Expr, env: &dyn Env) -> Result<Value, EvalError> {
    // Short-circuit logicals first.
    match op {
        BinOp::And => {
            return Ok(Value::Bool(eval_bool(a, env)? && eval_bool(b, env)?));
        }
        BinOp::Or => {
            return Ok(Value::Bool(eval_bool(a, env)? || eval_bool(b, env)?));
        }
        _ => {}
    }
    let va = eval(a, env)?;
    let vb = eval(b, env)?;
    match op {
        BinOp::Eq => Ok(Value::Bool(values_equal(&va, &vb))),
        BinOp::Ne => Ok(Value::Bool(!values_equal(&va, &vb))),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = compare(&va, &vb)?;
            Ok(Value::Bool(match op {
                BinOp::Lt => ord == std::cmp::Ordering::Less,
                BinOp::Le => ord != std::cmp::Ordering::Greater,
                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                BinOp::Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            }))
        }
        BinOp::Add => match (&va, &vb) {
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_add(*y))),
            (Value::Str(x), Value::Str(y)) => Ok(Value::Str(format!("{x}{y}"))),
            (Value::List(x), Value::List(y)) => {
                let mut out = x.clone();
                out.extend(y.iter().cloned());
                Ok(Value::List(out))
            }
            _ => num_op(&va, &vb, |x, y| x + y, op),
        },
        BinOp::Sub => match (&va, &vb) {
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_sub(*y))),
            _ => num_op(&va, &vb, |x, y| x - y, op),
        },
        BinOp::Mul => match (&va, &vb) {
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_mul(*y))),
            _ => num_op(&va, &vb, |x, y| x * y, op),
        },
        BinOp::Div => match (&va, &vb) {
            (Value::Int(_), Value::Int(0)) => Err(EvalError::DivisionByZero),
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x / y)),
            _ => {
                let (x, y) = both_floats(&va, &vb, op)?;
                if y == 0.0 {
                    Err(EvalError::DivisionByZero)
                } else {
                    Ok(Value::Float(x / y))
                }
            }
        },
        BinOp::Mod => match (&va, &vb) {
            (Value::Int(_), Value::Int(0)) => Err(EvalError::DivisionByZero),
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x % y)),
            _ => Err(EvalError::TypeMismatch(format!(
                "% needs ints, got {} and {}",
                va.type_name(),
                vb.type_name()
            ))),
        },
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn both_floats(a: &Value, b: &Value, op: BinOp) -> Result<(f64, f64), EvalError> {
    match (a.as_float(), b.as_float()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(EvalError::TypeMismatch(format!(
            "{} needs numbers, got {} and {}",
            op.symbol(),
            a.type_name(),
            b.type_name()
        ))),
    }
}

fn num_op(a: &Value, b: &Value, f: fn(f64, f64) -> f64, op: BinOp) -> Result<Value, EvalError> {
    let (x, y) = both_floats(a, b, op)?;
    Ok(Value::Float(f(x, y)))
}

/// Structural equality with int/float numeric coercion.
pub fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => *x as f64 == *y,
        _ => a == b,
    }
}

fn compare(a: &Value, b: &Value) -> Result<std::cmp::Ordering, EvalError> {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => Ok(x.cmp(y)),
        _ => match (a.as_float(), b.as_float()) {
            (Some(x), Some(y)) => x
                .partial_cmp(&y)
                .ok_or_else(|| EvalError::TypeMismatch("NaN is not comparable".into())),
            _ => Err(EvalError::TypeMismatch(format!(
                "cannot compare {} with {}",
                a.type_name(),
                b.type_name()
            ))),
        },
    }
}

fn eval_call(name: &str, args: &[Expr], env: &dyn Env) -> Result<Value, EvalError> {
    let arity = |n: usize| -> Result<(), EvalError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(EvalError::BadCall(format!(
                "{name}() expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    match name {
        "defined" => {
            arity(1)?;
            // `defined` on an unknown path is *false*, not an error: that is
            // exactly the optional-queue-file idiom from the paper.
            match &args[0] {
                Expr::Path(p) => Ok(Value::Bool(
                    env.lookup(p).map(|v| v.is_defined()).unwrap_or(false),
                )),
                other => Ok(Value::Bool(eval(other, env)?.is_defined())),
            }
        }
        "len" => {
            arity(1)?;
            let v = eval(&args[0], env)?;
            v.len()
                .map(|n| Value::Int(n as i64))
                .ok_or_else(|| EvalError::TypeMismatch(format!("len() of {}", v.type_name())))
        }
        "empty" => {
            arity(1)?;
            let v = eval(&args[0], env)?;
            v.is_empty()
                .map(Value::Bool)
                .ok_or_else(|| EvalError::TypeMismatch(format!("empty() of {}", v.type_name())))
        }
        "contains" => {
            arity(2)?;
            let hay = eval(&args[0], env)?;
            let needle = eval(&args[1], env)?;
            match (&hay, &needle) {
                (Value::List(xs), _) => {
                    Ok(Value::Bool(xs.iter().any(|x| values_equal(x, &needle))))
                }
                (Value::Str(s), Value::Str(sub)) => Ok(Value::Bool(s.contains(sub.as_str()))),
                (Value::Map(m), Value::Str(k)) => Ok(Value::Bool(m.contains_key(k))),
                _ => Err(EvalError::TypeMismatch(format!(
                    "contains({}, {})",
                    hay.type_name(),
                    needle.type_name()
                ))),
            }
        }
        "typeof" => {
            arity(1)?;
            Ok(Value::Str(eval(&args[0], env)?.type_name().to_string()))
        }
        "min" | "max" => {
            arity(2)?;
            let a = eval(&args[0], env)?;
            let b = eval(&args[1], env)?;
            let ord = compare(&a, &b)?;
            let take_a = if name == "min" {
                ord != std::cmp::Ordering::Greater
            } else {
                ord != std::cmp::Ordering::Less
            };
            Ok(if take_a { a } else { b })
        }
        other => Err(EvalError::BadCall(format!("unknown builtin `{other}`"))),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl Expr {
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Path(p) => write!(f, "{}", p.join(".")),
            Expr::Not(e) => {
                write!(f, "!")?;
                e.fmt_prec(f, 6)
            }
            Expr::Neg(e) => {
                write!(f, "-")?;
                e.fmt_prec(f, 6)
            }
            Expr::Bin(op, a, b) => {
                let prec = op.precedence();
                let need = prec < parent;
                if need {
                    write!(f, "(")?;
                }
                a.fmt_prec(f, prec)?;
                write!(f, " {} ", op.symbol())?;
                // Right side uses prec+1: operators are left-associative.
                b.fmt_prec(f, prec + 1)?;
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn env() -> Value {
        Value::map_from([
            (
                "UserInput",
                Value::map_from([
                    ("queue_file", Value::int_list([1, 2, 3])),
                    ("db_name", Value::from("sp38")),
                    ("threshold", Value::Float(80.5)),
                ]),
            ),
            ("count", Value::Int(10)),
            ("flag", Value::Bool(true)),
            ("missing_field", Value::Null),
        ])
    }

    fn ev(e: &Expr) -> Result<Value, EvalError> {
        let v = env();
        eval(e, &MapEnv(&v))
    }

    #[test]
    fn paths_and_defined() {
        assert_eq!(ev(&Expr::path("count")).unwrap(), Value::Int(10));
        assert_eq!(
            ev(&Expr::path("UserInput.db_name")).unwrap(),
            Value::from("sp38")
        );
        assert_eq!(
            ev(&Expr::defined("UserInput.queue_file")).unwrap(),
            Value::Bool(true)
        );
        // Unknown path: defined() is false, bare lookup is an error.
        assert_eq!(
            ev(&Expr::defined("nope.nothing")).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            ev(&Expr::defined("missing_field")).unwrap(),
            Value::Bool(false)
        );
        assert!(matches!(
            ev(&Expr::path("nope")),
            Err(EvalError::UnknownPath(_))
        ));
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = Expr::Bin(
            BinOp::Lt,
            Box::new(Expr::Bin(
                BinOp::Add,
                Box::new(Expr::path("count")),
                Box::new(Expr::Lit(Value::Int(5))),
            )),
            Box::new(Expr::Lit(Value::Int(16))),
        );
        assert_eq!(ev(&e).unwrap(), Value::Bool(true));
        // Mixed int/float widens.
        let e2 = Expr::Bin(
            BinOp::Gt,
            Box::new(Expr::path("UserInput.threshold")),
            Box::new(Expr::Lit(Value::Int(80))),
        );
        assert_eq!(ev(&e2).unwrap(), Value::Bool(true));
    }

    #[test]
    fn division_by_zero_and_type_errors() {
        let div0 = Expr::Bin(
            BinOp::Div,
            Box::new(Expr::Lit(Value::Int(1))),
            Box::new(Expr::Lit(Value::Int(0))),
        );
        assert_eq!(ev(&div0), Err(EvalError::DivisionByZero));
        let bad = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Lit(Value::Bool(true))),
            Box::new(Expr::Lit(Value::Int(1))),
        );
        assert!(matches!(ev(&bad), Err(EvalError::TypeMismatch(_))));
    }

    #[test]
    fn short_circuit() {
        // RHS would error if evaluated.
        let e = Expr::Bin(
            BinOp::Or,
            Box::new(Expr::Lit(Value::Bool(true))),
            Box::new(Expr::path("does.not.exist")),
        );
        assert_eq!(ev(&e).unwrap(), Value::Bool(true));
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Lit(Value::Bool(false))),
            Box::new(Expr::path("does.not.exist")),
        );
        assert_eq!(ev(&e).unwrap(), Value::Bool(false));
    }

    #[test]
    fn builtins() {
        assert_eq!(
            ev(&Expr::Call(
                "len".into(),
                vec![Expr::path("UserInput.queue_file")]
            ))
            .unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            ev(&Expr::Call(
                "contains".into(),
                vec![Expr::path("UserInput.queue_file"), Expr::Lit(Value::Int(2))]
            ))
            .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            ev(&Expr::Call("typeof".into(), vec![Expr::path("flag")])).unwrap(),
            Value::from("bool")
        );
        assert_eq!(
            ev(&Expr::Call(
                "min".into(),
                vec![Expr::Lit(Value::Int(3)), Expr::Lit(Value::Int(7))]
            ))
            .unwrap(),
            Value::Int(3)
        );
        assert!(matches!(
            ev(&Expr::Call("frobnicate".into(), vec![])),
            Err(EvalError::BadCall(_))
        ));
    }

    #[test]
    fn null_is_falsy_in_conditions() {
        let v = env();
        assert!(!eval_bool(&Expr::path("missing_field"), &MapEnv(&v)).unwrap());
        assert!(eval_bool(
            &Expr::Not(Box::new(Expr::path("missing_field"))),
            &MapEnv(&v)
        )
        .unwrap());
        assert!(matches!(
            eval_bool(&Expr::path("count"), &MapEnv(&v)),
            Err(EvalError::TypeMismatch(_))
        ));
    }

    #[test]
    fn display_parenthesization() {
        // (1 + 2) * 3 keeps its parens; 1 + 2 * 3 does not gain them.
        let sum = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Lit(Value::Int(1))),
            Box::new(Expr::Lit(Value::Int(2))),
        );
        let e = Expr::Bin(
            BinOp::Mul,
            Box::new(sum.clone()),
            Box::new(Expr::Lit(Value::Int(3))),
        );
        assert_eq!(e.to_string(), "(1 + 2) * 3");
        let e2 = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Lit(Value::Int(1))),
            Box::new(Expr::Bin(
                BinOp::Mul,
                Box::new(Expr::Lit(Value::Int(2))),
                Box::new(Expr::Lit(Value::Int(3))),
            )),
        );
        assert_eq!(e2.to_string(), "1 + 2 * 3");
    }

    #[test]
    fn referenced_paths_collects_all() {
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::defined("A.x")),
            Box::new(Expr::Bin(
                BinOp::Gt,
                Box::new(Expr::path("B.y")),
                Box::new(Expr::Lit(Value::Int(0))),
            )),
        );
        let paths = e.referenced_paths();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0], vec!["A".to_string(), "x".to_string()]);
    }
}
