//! Static validation of process templates.
//!
//! Run before a template is admitted to the template space; catches the
//! classes of error that would otherwise surface days into a month-long
//! computation.

use crate::model::*;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// A validation failure, with enough context to fix the template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Two tasks (or blocks/spheres) share a name.
    DuplicateName(String),
    /// A connector/dataflow/handler references a task that does not exist.
    UnknownTask { referenced_in: String, task: String },
    /// A dataflow references a field not declared on the task/whiteboard.
    UnknownField { reference: String },
    /// The control graph has a cycle (processes are DAGs; iteration is
    /// expressed with parallel tasks or subprocess re-instantiation).
    Cycle(Vec<String>),
    /// A task is unreachable from the initial set.
    Unreachable(String),
    /// The same dataflow appears twice.  (Two *different* sources writing
    /// one task input are allowed: the all-vs-all head maps `queue_file`
    /// into Preprocessing from either UserInput or QueueGeneration on
    /// mutually exclusive branches, and the navigator only applies flows
    /// whose source actually ran.)
    ConflictingWrites { destination: String },
    /// Type tags of a dataflow's endpoints cannot match.
    TypeConflict {
        flow: String,
        from: &'static str,
        to: &'static str,
    },
    /// A parallel task's `over`/`collect` fields are not declared.
    BadParallel { task: String, detail: String },
    /// The process has no tasks.
    EmptyProcess,
    /// A sphere compensation names a non-member task.
    BadSphere { sphere: String, detail: String },
    /// A failure handler's alternative task does not exist.
    BadHandler { task: String, detail: String },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            ValidationError::UnknownTask {
                referenced_in,
                task,
            } => {
                write!(f, "{referenced_in} references unknown task `{task}`")
            }
            ValidationError::UnknownField { reference } => {
                write!(f, "data reference `{reference}` does not exist")
            }
            ValidationError::Cycle(path) => write!(f, "control cycle: {}", path.join(" -> ")),
            ValidationError::Unreachable(t) => write!(f, "task `{t}` is unreachable"),
            ValidationError::ConflictingWrites { destination } => {
                write!(f, "multiple dataflows write `{destination}`")
            }
            ValidationError::TypeConflict { flow, from, to } => {
                write!(f, "dataflow {flow} maps {from} into {to}")
            }
            ValidationError::BadParallel { task, detail } => {
                write!(f, "parallel task `{task}`: {detail}")
            }
            ValidationError::EmptyProcess => write!(f, "process has no tasks"),
            ValidationError::BadSphere { sphere, detail } => {
                write!(f, "sphere `{sphere}`: {detail}")
            }
            ValidationError::BadHandler { task, detail } => {
                write!(f, "failure handler for `{task}`: {detail}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate a template; `Ok(())` means the navigator can execute it.
pub fn validate(t: &ProcessTemplate) -> Result<(), ValidationError> {
    if t.tasks.is_empty() {
        return Err(ValidationError::EmptyProcess);
    }
    check_unique_names(t)?;
    check_references(t)?;
    check_dataflows(t)?;
    check_parallel_tasks(t)?;
    check_dag_and_reachability(t)?;
    check_spheres_and_handlers(t)?;
    Ok(())
}

fn check_unique_names(t: &ProcessTemplate) -> Result<(), ValidationError> {
    let mut seen = HashSet::new();
    for task in &t.tasks {
        if !seen.insert(task.name.as_str()) {
            return Err(ValidationError::DuplicateName(task.name.clone()));
        }
    }
    let mut wb = HashSet::new();
    for fieldd in &t.whiteboard {
        if !wb.insert(fieldd.name.as_str()) {
            return Err(ValidationError::DuplicateName(format!(
                "WHITEBOARD.{}",
                fieldd.name
            )));
        }
    }
    let mut groups = HashSet::new();
    for b in &t.blocks {
        if !groups.insert(b.name.as_str()) {
            return Err(ValidationError::DuplicateName(format!("BLOCK {}", b.name)));
        }
    }
    for s in &t.spheres {
        if !groups.insert(s.name.as_str()) {
            return Err(ValidationError::DuplicateName(format!("SPHERE {}", s.name)));
        }
    }
    Ok(())
}

fn task_names(t: &ProcessTemplate) -> HashSet<&str> {
    t.tasks.iter().map(|x| x.name.as_str()).collect()
}

fn check_references(t: &ProcessTemplate) -> Result<(), ValidationError> {
    let names = task_names(t);
    let unknown = |ctx: String, task: &str| ValidationError::UnknownTask {
        referenced_in: ctx,
        task: task.to_string(),
    };
    for c in &t.connectors {
        if !names.contains(c.from.as_str()) {
            return Err(unknown(
                format!("connector {} -> {}", c.from, c.to),
                &c.from,
            ));
        }
        if !names.contains(c.to.as_str()) {
            return Err(unknown(format!("connector {} -> {}", c.from, c.to), &c.to));
        }
    }
    for b in &t.blocks {
        for m in &b.members {
            if !names.contains(m.as_str()) {
                return Err(unknown(format!("block {}", b.name), m));
            }
        }
    }
    for s in &t.spheres {
        for m in &s.members {
            if !names.contains(m.as_str()) {
                return Err(unknown(format!("sphere {}", s.name), m));
            }
        }
    }
    for h in &t.on_failure {
        if h.task != "*" && !names.contains(h.task.as_str()) {
            return Err(unknown("failure handler".to_string(), &h.task));
        }
    }
    Ok(())
}

fn field_type<'a>(fields: &'a [FieldDecl], name: &str) -> Option<&'a FieldDecl> {
    fields.iter().find(|f| f.name == name)
}

fn resolve_ref(
    t: &ProcessTemplate,
    r: &DataRef,
    as_source: bool,
) -> Result<TypeTag, ValidationError> {
    match r {
        DataRef::Whiteboard(field) => {
            field_type(&t.whiteboard, field)
                .map(|f| f.ty)
                .ok_or_else(|| ValidationError::UnknownField {
                    reference: format!("WHITEBOARD.{field}"),
                })
        }
        DataRef::TaskField(task, field) => {
            let task_decl = t.task(task).ok_or_else(|| ValidationError::UnknownTask {
                referenced_in: "dataflow".into(),
                task: task.clone(),
            })?;
            let fields = if as_source {
                &task_decl.outputs
            } else {
                &task_decl.inputs
            };
            field_type(fields, field)
                .map(|f| f.ty)
                .ok_or_else(|| ValidationError::UnknownField {
                    reference: format!(
                        "{task}.{field} ({} structure)",
                        if as_source { "output" } else { "input" }
                    ),
                })
        }
    }
}

fn tags_compatible(from: TypeTag, to: TypeTag) -> bool {
    from == to
        || from == TypeTag::Any
        || to == TypeTag::Any
        || (from == TypeTag::Int && to == TypeTag::Float)
}

fn check_dataflows(t: &ProcessTemplate) -> Result<(), ValidationError> {
    let mut seen: HashSet<String> = HashSet::new();
    for d in &t.dataflows {
        let from_ty = resolve_ref(t, &d.from, true)?;
        let to_ty = resolve_ref(t, &d.to, false)?;
        if !tags_compatible(from_ty, to_ty) {
            return Err(ValidationError::TypeConflict {
                flow: format!("{} -> {}", d.from, d.to),
                from: from_ty.keyword(),
                to: to_ty.keyword(),
            });
        }
        let signature = format!("{} -> {}", d.from, d.to);
        if !seen.insert(signature) {
            return Err(ValidationError::ConflictingWrites {
                destination: d.to.to_string(),
            });
        }
    }
    Ok(())
}

fn check_parallel_tasks(t: &ProcessTemplate) -> Result<(), ValidationError> {
    for task in &t.tasks {
        if let TaskKind::Parallel {
            over,
            collect,
            body,
        } = &task.kind
        {
            if field_type(&task.inputs, over).is_none() {
                return Err(ValidationError::BadParallel {
                    task: task.name.clone(),
                    detail: format!("OVER field `{over}` is not a declared input"),
                });
            }
            if field_type(&task.outputs, collect).is_none() {
                return Err(ValidationError::BadParallel {
                    task: task.name.clone(),
                    detail: format!("COLLECT field `{collect}` is not a declared output"),
                });
            }
            if let ParallelBody::Activity(b) = body {
                if b.program.is_empty() {
                    return Err(ValidationError::BadParallel {
                        task: task.name.clone(),
                        detail: "body activity has no program".into(),
                    });
                }
            }
        }
    }
    Ok(())
}

fn check_dag_and_reachability(t: &ProcessTemplate) -> Result<(), ValidationError> {
    // Kahn's algorithm for cycle detection.
    let names: Vec<&str> = t.tasks.iter().map(|x| x.name.as_str()).collect();
    let idx: HashMap<&str, usize> = names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut indegree = vec![0usize; names.len()];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    for c in &t.connectors {
        let (f, to) = (idx[c.from.as_str()], idx[c.to.as_str()]);
        adj[f].push(to);
        indegree[to] += 1;
    }
    let mut queue: VecDeque<usize> = indegree
        .iter()
        .enumerate()
        .filter(|(_, d)| **d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut visited = 0usize;
    let mut reach = vec![false; names.len()];
    for &i in &queue {
        reach[i] = true;
    }
    let mut indeg = indegree.clone();
    while let Some(u) = queue.pop_front() {
        visited += 1;
        for &v in &adj[u] {
            reach[v] = true;
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    if visited != names.len() {
        // Extract one cycle for the error message via DFS.
        let cycle: Vec<String> = names
            .iter()
            .enumerate()
            .filter(|(i, _)| indeg[*i] > 0)
            .map(|(_, n)| n.to_string())
            .collect();
        return Err(ValidationError::Cycle(cycle));
    }
    if let Some(i) = reach.iter().position(|r| !r) {
        return Err(ValidationError::Unreachable(names[i].to_string()));
    }
    Ok(())
}

fn check_spheres_and_handlers(t: &ProcessTemplate) -> Result<(), ValidationError> {
    for s in &t.spheres {
        let members: HashSet<&str> = s.members.iter().map(|m| m.as_str()).collect();
        for (task, _prog) in &s.compensations {
            if !members.contains(task.as_str()) {
                return Err(ValidationError::BadSphere {
                    sphere: s.name.clone(),
                    detail: format!("compensation for `{task}` which is not a member"),
                });
            }
        }
    }
    let names = task_names(t);
    for h in &t.on_failure {
        match &h.policy {
            FailurePolicy::Alternative(alt) if !names.contains(alt.as_str()) => {
                return Err(ValidationError::BadHandler {
                    task: h.task.clone(),
                    detail: format!("alternative task `{alt}` does not exist"),
                });
            }
            FailurePolicy::CompensateSphere(sp) if !t.spheres.iter().any(|s| &s.name == sp) => {
                return Err(ValidationError::BadHandler {
                    task: h.task.clone(),
                    detail: format!("sphere `{sp}` does not exist"),
                });
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcessBuilder;
    use crate::expr::Expr;

    fn linear() -> ProcessBuilder {
        ProcessBuilder::new("P")
            .activity("A", "lib.a", |t| t.output("x", TypeTag::Int))
            .activity("B", "lib.b", |t| t.input("x", TypeTag::Int))
            .connect("A", "B")
    }

    #[test]
    fn valid_process_passes() {
        linear().flow_to_task("A", "x", "B", "x").build().unwrap();
    }

    #[test]
    fn empty_process_rejected() {
        assert_eq!(
            ProcessBuilder::new("P").build().unwrap_err(),
            ValidationError::EmptyProcess
        );
    }

    #[test]
    fn duplicate_task_rejected() {
        let err = ProcessBuilder::new("P")
            .activity("A", "x", |t| t)
            .activity("A", "y", |t| t)
            .build()
            .unwrap_err();
        assert_eq!(err, ValidationError::DuplicateName("A".into()));
    }

    #[test]
    fn unknown_connector_endpoint_rejected() {
        let err = ProcessBuilder::new("P")
            .activity("A", "x", |t| t)
            .connect("A", "Ghost")
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::UnknownTask { .. }));
    }

    #[test]
    fn cycle_rejected() {
        let err = ProcessBuilder::new("P")
            .activity("A", "x", |t| t)
            .activity("B", "y", |t| t)
            .connect("A", "B")
            .connect("B", "A")
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::Cycle(_)));
    }

    #[test]
    fn unreachable_task_detected_via_cycle_or_reach() {
        // C -> D cycle off to the side: both unreachable and cyclic;
        // cycle reported first.
        let err = ProcessBuilder::new("P")
            .activity("A", "a", |t| t)
            .activity("C", "c", |t| t)
            .activity("D", "d", |t| t)
            .connect("C", "D")
            .connect("D", "C")
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::Cycle(_)));
    }

    #[test]
    fn dataflow_unknown_field_rejected() {
        let err = linear()
            .flow_to_task("A", "nope", "B", "x")
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::UnknownField { .. }));
    }

    #[test]
    fn dataflow_type_conflict_rejected() {
        let err = ProcessBuilder::new("P")
            .activity("A", "a", |t| t.output("x", TypeTag::Str))
            .activity("B", "b", |t| t.input("x", TypeTag::Int))
            .connect("A", "B")
            .flow_to_task("A", "x", "B", "x")
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::TypeConflict { .. }));
    }

    #[test]
    fn int_widens_to_float_in_dataflow() {
        ProcessBuilder::new("P")
            .activity("A", "a", |t| t.output("x", TypeTag::Int))
            .activity("B", "b", |t| t.input("x", TypeTag::Float))
            .connect("A", "B")
            .flow_to_task("A", "x", "B", "x")
            .build()
            .unwrap();
    }

    #[test]
    fn duplicate_dataflow_rejected_but_exclusive_sources_allowed() {
        // Same flow twice: rejected.
        let err = linear()
            .flow_to_task("A", "x", "B", "x")
            .flow_to_task("A", "x", "B", "x")
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::ConflictingWrites { .. }));
        // Two different sources into one input (exclusive branches): fine.
        ProcessBuilder::new("P")
            .activity("A", "a", |t| t.output("x", TypeTag::Int))
            .activity("A2", "a2", |t| t.output("x", TypeTag::Int))
            .activity("B", "b", |t| t.input("x", TypeTag::Int))
            .connect("A", "B")
            .connect("A2", "B")
            .flow_to_task("A", "x", "B", "x")
            .flow_to_task("A2", "x", "B", "x")
            .build()
            .unwrap();
    }

    #[test]
    fn whiteboard_may_be_written_twice() {
        ProcessBuilder::new("P")
            .whiteboard_field("acc", TypeTag::Int)
            .activity("A", "a", |t| t.output("x", TypeTag::Int))
            .activity("B", "b", |t| t.output("x", TypeTag::Int))
            .connect("A", "B")
            .flow_to_whiteboard("A", "x", "acc")
            .flow_to_whiteboard("B", "x", "acc")
            .build()
            .unwrap();
    }

    #[test]
    fn bad_sphere_compensation_rejected() {
        let err = linear()
            .sphere("S", ["A"], [("B", "undo.b")])
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::BadSphere { .. }));
    }

    #[test]
    fn bad_alternative_handler_rejected() {
        let err = linear()
            .on_failure("A", FailurePolicy::Alternative("Ghost".into()))
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::BadHandler { .. }));
    }

    #[test]
    fn conditional_branching_process_validates() {
        // The shape of the all-vs-all head: optional queue file.
        ProcessBuilder::new("Head")
            .activity("UserInput", "ui", |t| {
                t.output("queue_file", TypeTag::List)
                    .output("db_name", TypeTag::Str)
            })
            .activity("QueueGen", "qg", |t| {
                t.input("db_name", TypeTag::Str)
                    .output("queue_file", TypeTag::List)
            })
            .activity("Prep", "prep", |t| t.input("queue_file", TypeTag::List))
            .connect_when(
                "UserInput",
                "QueueGen",
                Expr::undefined("UserInput.queue_file"),
            )
            .connect_when("UserInput", "Prep", Expr::defined("UserInput.queue_file"))
            .connect("QueueGen", "Prep")
            .flow_to_task("UserInput", "db_name", "QueueGen", "db_name")
            .flow_to_task("QueueGen", "queue_file", "Prep", "queue_file")
            .build()
            .unwrap();
    }
}
