//! The textual OCR format.
//!
//! "OCR acts as a persistent scripting language interpreted by the
//! navigator" (paper §3.2, Fig. 2 shows the textual representation).  The
//! concrete syntax:
//!
//! ```text
//! PROCESS AllVsAll {
//!   WHITEBOARD {
//!     db_name: STR = "sp38";
//!     queue_file: LIST;
//!   }
//!   ACTIVITY UserInput {
//!     PROGRAM "ui.collect";
//!     OUTPUT { db_name: STR; queue_file: LIST; }
//!     RETRY 2;
//!   }
//!   PARALLEL Alignment {
//!     OVER partition;
//!     BODY SUBPROCESS "AlignChunk";
//!     COLLECT results;
//!   }
//!   CONNECTOR UserInput -> Alignment WHEN defined(UserInput.queue_file);
//!   DATAFLOW UserInput.db_name -> WHITEBOARD.db_name;
//!   ON FAILURE OF Alignment ABORT;
//!   ON EVENT "operator_pause" SUSPEND;
//!   SPHERE Merge { MEMBERS M1, M2; COMPENSATE M1 WITH "undo.m1"; }
//! }
//! ```
//!
//! `//` and `#` start line comments.

use crate::expr::{BinOp, Expr};
use crate::model::*;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A parse failure with 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line of the offending token.
    pub line: usize,
    /// Column of the offending token.
    pub col: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Comma,
    Dot,
    Arrow,
    Assign,
    EqEq,
    Ne,
    Le,
    Ge,
    Lt,
    Gt,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    AndAnd,
    OrOr,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(i) => write!(f, "`{i}`"),
            Tok::Float(x) => write!(f, "`{x}`"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Eof => write!(f, "end of input"),
            other => {
                let s = match other {
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Semi => ";",
                    Tok::Colon => ":",
                    Tok::Comma => ",",
                    Tok::Dot => ".",
                    Tok::Arrow => "->",
                    Tok::Assign => "=",
                    Tok::EqEq => "==",
                    Tok::Ne => "!=",
                    Tok::Le => "<=",
                    Tok::Ge => ">=",
                    Tok::Lt => "<",
                    Tok::Gt => ">",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Bang => "!",
                    Tok::AndAnd => "&&",
                    Tok::OrOr => "||",
                    _ => unreachable!(),
                };
                write!(f, "`{s}`")
            }
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

type Spanned = (Tok, usize, usize);

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek_byte() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while !matches!(self.peek_byte(), None | Some(b'\n')) {
                        self.bump();
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while !matches!(self.peek_byte(), None | Some(b'\n')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn lex_all(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(b) = self.peek_byte() else {
                out.push((Tok::Eof, line, col));
                return Ok(out);
            };
            let tok = match b {
                b'{' => {
                    self.bump();
                    Tok::LBrace
                }
                b'}' => {
                    self.bump();
                    Tok::RBrace
                }
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b'[' => {
                    self.bump();
                    Tok::LBracket
                }
                b']' => {
                    self.bump();
                    Tok::RBracket
                }
                b';' => {
                    self.bump();
                    Tok::Semi
                }
                b':' => {
                    self.bump();
                    Tok::Colon
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'.' => {
                    self.bump();
                    Tok::Dot
                }
                b'+' => {
                    self.bump();
                    Tok::Plus
                }
                b'*' => {
                    self.bump();
                    Tok::Star
                }
                b'/' => {
                    self.bump();
                    Tok::Slash
                }
                b'%' => {
                    self.bump();
                    Tok::Percent
                }
                b'-' => {
                    self.bump();
                    if self.peek_byte() == Some(b'>') {
                        self.bump();
                        Tok::Arrow
                    } else {
                        Tok::Minus
                    }
                }
                b'=' => {
                    self.bump();
                    if self.peek_byte() == Some(b'=') {
                        self.bump();
                        Tok::EqEq
                    } else {
                        Tok::Assign
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek_byte() == Some(b'=') {
                        self.bump();
                        Tok::Ne
                    } else {
                        Tok::Bang
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek_byte() == Some(b'=') {
                        self.bump();
                        Tok::Le
                    } else {
                        Tok::Lt
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek_byte() == Some(b'=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                b'&' => {
                    self.bump();
                    if self.peek_byte() == Some(b'&') {
                        self.bump();
                        Tok::AndAnd
                    } else {
                        return Err(self.err("expected `&&`"));
                    }
                }
                b'|' => {
                    self.bump();
                    if self.peek_byte() == Some(b'|') {
                        self.bump();
                        Tok::OrOr
                    } else {
                        return Err(self.err("expected `||`"));
                    }
                }
                b'"' => self.lex_string()?,
                b'0'..=b'9' => self.lex_number()?,
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.lex_ident(),
                other => return Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            };
            out.push((tok, line, col));
        }
    }

    fn lex_string(&mut self) -> Result<Tok, ParseError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(Tok::Str(s)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) => s.push(b as char),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Tok, ParseError> {
        let start = self.pos;
        while matches!(self.peek_byte(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek_byte() == Some(b'.') && matches!(self.src.get(self.pos + 1), Some(b'0'..=b'9'))
        {
            is_float = true;
            self.bump();
            while matches!(self.peek_byte(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek_byte(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek_byte(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            while matches!(self.peek_byte(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|_| self.err("bad float literal"))
        } else {
            text.parse::<i64>()
                .map(Tok::Int)
                .map_err(|_| self.err("integer literal overflows i64"))
        }
    }

    fn lex_ident(&mut self) -> Tok {
        let start = self.pos;
        while matches!(
            self.peek_byte(),
            Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        Tok::Ident(
            std::str::from_utf8(&self.src[start..self.pos])
                .unwrap()
                .to_string(),
        )
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        let (_, line, col) = self.toks[self.pos];
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err_here(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                Err(self.err_here(format!("expected identifier, found {other}")))
            }
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err_here(format!("expected `{kw}`, found {other}"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Str(s) => Ok(s),
            other => {
                self.pos -= 1;
                Err(self.err_here(format!("expected string literal, found {other}")))
            }
        }
    }

    // ----- top level -------------------------------------------------------

    fn process(&mut self) -> Result<ProcessTemplate, ParseError> {
        self.keyword("PROCESS")?;
        let name = self.ident()?;
        let mut t = ProcessTemplate::empty(name);
        self.expect(Tok::LBrace)?;
        while *self.peek() != Tok::RBrace {
            match self.peek() {
                Tok::Ident(kw) => match kw.as_str() {
                    "WHITEBOARD" => {
                        self.bump();
                        self.expect(Tok::LBrace)?;
                        t.whiteboard.extend(self.field_decls()?);
                        self.expect(Tok::RBrace)?;
                    }
                    "ACTIVITY" => self.activity(&mut t)?,
                    "SUBPROCESS" => self.subprocess(&mut t)?,
                    "PARALLEL" => self.parallel(&mut t)?,
                    "BLOCK" => self.group(&mut t)?,
                    "CONNECTOR" => self.connector(&mut t)?,
                    "DATAFLOW" => self.dataflow(&mut t)?,
                    "ON" => self.handler(&mut t)?,
                    "SPHERE" => self.sphere(&mut t)?,
                    other => {
                        return Err(self.err_here(format!("unexpected section `{other}`")));
                    }
                },
                other => return Err(self.err_here(format!("unexpected {other}"))),
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(t)
    }

    fn field_decls(&mut self) -> Result<Vec<FieldDecl>, ParseError> {
        let mut out = Vec::new();
        while matches!(self.peek(), Tok::Ident(_)) {
            let name = self.ident()?;
            self.expect(Tok::Colon)?;
            let ty = self.type_tag()?;
            let default = if *self.peek() == Tok::Assign {
                self.bump();
                Some(self.literal()?)
            } else {
                None
            };
            self.expect(Tok::Semi)?;
            out.push(FieldDecl { name, ty, default });
        }
        Ok(out)
    }

    fn type_tag(&mut self) -> Result<TypeTag, ParseError> {
        let name = self.ident()?;
        match name.as_str() {
            "BOOL" => Ok(TypeTag::Bool),
            "INT" => Ok(TypeTag::Int),
            "FLOAT" => Ok(TypeTag::Float),
            "STR" => Ok(TypeTag::Str),
            "LIST" => Ok(TypeTag::List),
            "MAP" => Ok(TypeTag::Map),
            "ANY" => Ok(TypeTag::Any),
            other => Err(self.err_here(format!("unknown type `{other}`"))),
        }
    }

    fn task_common(
        &mut self,
        inputs: &mut Vec<FieldDecl>,
        outputs: &mut Vec<FieldDecl>,
        retries: &mut u32,
    ) -> Result<bool, ParseError> {
        if self.peek_keyword("INPUT") {
            self.bump();
            self.expect(Tok::LBrace)?;
            inputs.extend(self.field_decls()?);
            self.expect(Tok::RBrace)?;
            Ok(true)
        } else if self.peek_keyword("OUTPUT") {
            self.bump();
            self.expect(Tok::LBrace)?;
            outputs.extend(self.field_decls()?);
            self.expect(Tok::RBrace)?;
            Ok(true)
        } else if self.peek_keyword("RETRY") {
            self.bump();
            match self.bump() {
                Tok::Int(n) if n >= 0 => *retries = n as u32,
                _ => {
                    self.pos -= 1;
                    return Err(self.err_here("RETRY expects a non-negative integer"));
                }
            }
            self.expect(Tok::Semi)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn activity(&mut self, t: &mut ProcessTemplate) -> Result<(), ParseError> {
        self.keyword("ACTIVITY")?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut binding = ExternalBinding::default();
        let (mut inputs, mut outputs, mut retries) = (Vec::new(), Vec::new(), 0u32);
        while *self.peek() != Tok::RBrace {
            if self.task_common(&mut inputs, &mut outputs, &mut retries)? {
                continue;
            }
            if self.peek_keyword("PROGRAM") {
                self.bump();
                binding.program = self.string()?;
                self.expect(Tok::Semi)?;
            } else if self.peek_keyword("OS") {
                self.bump();
                binding.os = Some(self.string()?);
                self.expect(Tok::Semi)?;
            } else if self.peek_keyword("HOSTS") {
                self.bump();
                binding.hosts.push(self.string()?);
                while *self.peek() == Tok::Comma {
                    self.bump();
                    binding.hosts.push(self.string()?);
                }
                self.expect(Tok::Semi)?;
            } else if self.peek_keyword("NICE") {
                self.bump();
                binding.nice = true;
                self.expect(Tok::Semi)?;
            } else {
                return Err(self.err_here(format!("unexpected {} in ACTIVITY body", self.peek())));
            }
        }
        self.expect(Tok::RBrace)?;
        if binding.program.is_empty() {
            return Err(self.err_here(format!("activity `{name}` has no PROGRAM")));
        }
        t.tasks.push(Task {
            name,
            kind: TaskKind::Activity { binding },
            inputs,
            outputs,
            retries,
        });
        Ok(())
    }

    fn subprocess(&mut self, t: &mut ProcessTemplate) -> Result<(), ParseError> {
        self.keyword("SUBPROCESS")?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut template = String::new();
        let (mut inputs, mut outputs, mut retries) = (Vec::new(), Vec::new(), 0u32);
        while *self.peek() != Tok::RBrace {
            if self.task_common(&mut inputs, &mut outputs, &mut retries)? {
                continue;
            }
            if self.peek_keyword("TEMPLATE") {
                self.bump();
                template = self.string()?;
                self.expect(Tok::Semi)?;
            } else {
                return Err(self.err_here(format!("unexpected {} in SUBPROCESS body", self.peek())));
            }
        }
        self.expect(Tok::RBrace)?;
        if template.is_empty() {
            return Err(self.err_here(format!("subprocess `{name}` has no TEMPLATE")));
        }
        t.tasks.push(Task {
            name,
            kind: TaskKind::Subprocess { template },
            inputs,
            outputs,
            retries,
        });
        Ok(())
    }

    fn parallel(&mut self, t: &mut ProcessTemplate) -> Result<(), ParseError> {
        self.keyword("PARALLEL")?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let (mut inputs, mut outputs, mut retries) = (Vec::new(), Vec::new(), 0u32);
        let mut over = None;
        let mut collect = None;
        let mut body = None;
        while *self.peek() != Tok::RBrace {
            if self.task_common(&mut inputs, &mut outputs, &mut retries)? {
                continue;
            }
            if self.peek_keyword("OVER") {
                self.bump();
                over = Some(self.ident()?);
                self.expect(Tok::Semi)?;
            } else if self.peek_keyword("COLLECT") {
                self.bump();
                collect = Some(self.ident()?);
                self.expect(Tok::Semi)?;
            } else if self.peek_keyword("BODY") {
                self.bump();
                if self.peek_keyword("ACTIVITY") {
                    self.bump();
                    body = Some(ParallelBody::Activity(ExternalBinding::program(
                        self.string()?,
                    )));
                } else if self.peek_keyword("SUBPROCESS") {
                    self.bump();
                    body = Some(ParallelBody::Subprocess(self.string()?));
                } else {
                    return Err(self.err_here("BODY expects ACTIVITY or SUBPROCESS"));
                }
                self.expect(Tok::Semi)?;
            } else {
                return Err(self.err_here(format!("unexpected {} in PARALLEL body", self.peek())));
            }
        }
        self.expect(Tok::RBrace)?;
        let over = over.ok_or_else(|| self.err_here(format!("parallel `{name}` has no OVER")))?;
        let collect =
            collect.ok_or_else(|| self.err_here(format!("parallel `{name}` has no COLLECT")))?;
        let body = body.ok_or_else(|| self.err_here(format!("parallel `{name}` has no BODY")))?;
        // Ensure the over/collect fields are declared (implicitly if needed).
        if !inputs.iter().any(|f| f.name == over) {
            inputs.push(FieldDecl::new(over.clone(), TypeTag::List));
        }
        if !outputs.iter().any(|f| f.name == collect) {
            outputs.push(FieldDecl::new(collect.clone(), TypeTag::List));
        }
        t.tasks.push(Task {
            name,
            kind: TaskKind::Parallel {
                over,
                body,
                collect,
            },
            inputs,
            outputs,
            retries,
        });
        Ok(())
    }

    fn group(&mut self, t: &mut ProcessTemplate) -> Result<(), ParseError> {
        self.keyword("BLOCK")?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        self.keyword("MEMBERS")?;
        let mut members = vec![self.ident()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            members.push(self.ident()?);
        }
        self.expect(Tok::Semi)?;
        self.expect(Tok::RBrace)?;
        t.blocks.push(Block { name, members });
        Ok(())
    }

    fn connector(&mut self, t: &mut ProcessTemplate) -> Result<(), ParseError> {
        self.keyword("CONNECTOR")?;
        let from = self.ident()?;
        self.expect(Tok::Arrow)?;
        let to = self.ident()?;
        let condition = if self.peek_keyword("WHEN") {
            self.bump();
            self.expr(0)?
        } else {
            Expr::truth()
        };
        self.expect(Tok::Semi)?;
        t.connectors.push(ControlConnector {
            from,
            to,
            condition,
        });
        Ok(())
    }

    fn dataref(&mut self) -> Result<DataRef, ParseError> {
        let first = self.ident()?;
        self.expect(Tok::Dot)?;
        let field = self.ident()?;
        if first == "WHITEBOARD" {
            Ok(DataRef::Whiteboard(field))
        } else {
            Ok(DataRef::TaskField(first, field))
        }
    }

    fn dataflow(&mut self, t: &mut ProcessTemplate) -> Result<(), ParseError> {
        self.keyword("DATAFLOW")?;
        let from = self.dataref()?;
        self.expect(Tok::Arrow)?;
        let to = self.dataref()?;
        self.expect(Tok::Semi)?;
        t.dataflows.push(DataFlow { from, to });
        Ok(())
    }

    fn handler(&mut self, t: &mut ProcessTemplate) -> Result<(), ParseError> {
        self.keyword("ON")?;
        if self.peek_keyword("FAILURE") {
            self.bump();
            self.keyword("OF")?;
            let task = if *self.peek() == Tok::Star {
                self.bump();
                "*".to_string()
            } else {
                self.ident()?
            };
            let policy = if self.peek_keyword("ALTERNATIVE") {
                self.bump();
                FailurePolicy::Alternative(self.ident()?)
            } else if self.peek_keyword("IGNORE") {
                self.bump();
                FailurePolicy::Ignore
            } else if self.peek_keyword("COMPENSATE") {
                self.bump();
                FailurePolicy::CompensateSphere(self.ident()?)
            } else if self.peek_keyword("ABORT") {
                self.bump();
                FailurePolicy::Abort
            } else if self.peek_keyword("SUSPEND") {
                self.bump();
                FailurePolicy::Suspend
            } else {
                return Err(self.err_here("expected failure policy"));
            };
            self.expect(Tok::Semi)?;
            t.on_failure.push(FailureHandler { task, policy });
            Ok(())
        } else if self.peek_keyword("EVENT") {
            self.bump();
            let event = self.string()?;
            let action = if self.peek_keyword("SUSPEND") {
                self.bump();
                EventAction::Suspend
            } else if self.peek_keyword("RESUME") {
                self.bump();
                EventAction::Resume
            } else if self.peek_keyword("ABORT") {
                self.bump();
                EventAction::Abort
            } else if self.peek_keyword("SET") {
                self.bump();
                let field = self.ident()?;
                self.expect(Tok::Assign)?;
                let e = self.expr(0)?;
                EventAction::SetData(field, e)
            } else {
                return Err(self.err_here("expected event action"));
            };
            self.expect(Tok::Semi)?;
            t.on_event.push(EventHandler { event, action });
            Ok(())
        } else {
            Err(self.err_here("expected FAILURE or EVENT after ON"))
        }
    }

    fn sphere(&mut self, t: &mut ProcessTemplate) -> Result<(), ParseError> {
        self.keyword("SPHERE")?;
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        self.keyword("MEMBERS")?;
        let mut members = vec![self.ident()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            members.push(self.ident()?);
        }
        self.expect(Tok::Semi)?;
        let mut compensations = Vec::new();
        while self.peek_keyword("COMPENSATE") {
            self.bump();
            let task = self.ident()?;
            self.keyword("WITH")?;
            let prog = self.string()?;
            self.expect(Tok::Semi)?;
            compensations.push((task, prog));
        }
        self.expect(Tok::RBrace)?;
        t.spheres.push(Sphere {
            name,
            members,
            compensations,
        });
        Ok(())
    }

    // ----- expressions -----------------------------------------------------

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.bump() {
            Tok::Int(i) => Ok(Value::Int(i)),
            Tok::Float(x) => Ok(Value::Float(x)),
            Tok::Str(s) => Ok(Value::Str(s)),
            Tok::Minus => match self.bump() {
                Tok::Int(i) => Ok(Value::Int(-i)),
                Tok::Float(x) => Ok(Value::Float(-x)),
                _ => {
                    self.pos -= 1;
                    Err(self.err_here("expected number after `-`"))
                }
            },
            Tok::Ident(s) if s == "true" => Ok(Value::Bool(true)),
            Tok::Ident(s) if s == "false" => Ok(Value::Bool(false)),
            Tok::Ident(s) if s == "null" => Ok(Value::Null),
            Tok::LBracket => {
                let mut items = Vec::new();
                if *self.peek() != Tok::RBracket {
                    items.push(self.literal()?);
                    while *self.peek() == Tok::Comma {
                        self.bump();
                        items.push(self.literal()?);
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(Value::List(items))
            }
            Tok::LBrace => {
                let mut map = BTreeMap::new();
                if *self.peek() != Tok::RBrace {
                    loop {
                        let k = self.ident()?;
                        self.expect(Tok::Colon)?;
                        map.insert(k, self.literal()?);
                        if *self.peek() != Tok::Comma {
                            break;
                        }
                        self.bump();
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(Value::Map(map))
            }
            other => {
                self.pos -= 1;
                Err(self.err_here(format!("expected literal, found {other}")))
            }
        }
    }

    fn expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::OrOr => BinOp::Or,
                Tok::AndAnd => BinOp::And,
                Tok::EqEq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.expr(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Bang => {
                self.bump();
                Ok(Expr::Not(Box::new(self.unary()?)))
            }
            Tok::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let e = self.expr(0)?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Int(_) | Tok::Float(_) | Tok::Str(_) | Tok::LBracket | Tok::LBrace => {
                Ok(Expr::Lit(self.literal()?))
            }
            Tok::Ident(name) => {
                match name.as_str() {
                    "true" | "false" | "null" => return Ok(Expr::Lit(self.literal()?)),
                    _ => {}
                }
                self.bump();
                if *self.peek() == Tok::LParen {
                    // Builtin call.
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        args.push(self.expr(0)?);
                        while *self.peek() == Tok::Comma {
                            self.bump();
                            args.push(self.expr(0)?);
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    let mut path = vec![name];
                    while *self.peek() == Tok::Dot {
                        self.bump();
                        path.push(self.ident()?);
                    }
                    Ok(Expr::Path(path))
                }
            }
            other => Err(self.err_here(format!("expected expression, found {other}"))),
        }
    }
}

/// Parse one `PROCESS` definition from OCR text.
pub fn parse_process(src: &str) -> Result<ProcessTemplate, ParseError> {
    let toks = Lexer::new(src).lex_all()?;
    let mut p = Parser { toks, pos: 0 };
    let t = p.process()?;
    if *p.peek() != Tok::Eof {
        return Err(p.err_here(format!("trailing input: {}", p.peek())));
    }
    Ok(t)
}

/// Parse a file containing several `PROCESS` definitions.
pub fn parse_library(src: &str) -> Result<Vec<ProcessTemplate>, ParseError> {
    let toks = Lexer::new(src).lex_all()?;
    let mut p = Parser { toks, pos: 0 };
    let mut out = Vec::new();
    while *p.peek() != Tok::Eof {
        out.push(p.process()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        // The head of the all-vs-all process.
        PROCESS AllVsAllHead {
          WHITEBOARD {
            db_name: STR = "sp38";
            threshold: FLOAT = 80.5;
            queue_file: LIST;
            meta: MAP = { owner: "cbrg", redo: false };
          }
          ACTIVITY UserInput {
            PROGRAM "ui.collect";
            OUTPUT { db_name: STR; queue_file: LIST; }
            RETRY 2;
          }
          ACTIVITY QueueGeneration {
            PROGRAM "darwin.queue_gen";
            INPUT { db_name: STR; }
            OUTPUT { queue_file: LIST; }
          }
          ACTIVITY Preprocessing {
            PROGRAM "darwin.partition";
            INPUT { queue_file: LIST; teus: INT = 50; }
            OUTPUT { partition: LIST; }
            OS "linux";
            HOSTS "linneus1", "linneus2";
            NICE;
          }
          PARALLEL Alignment {
            OVER partition;
            BODY SUBPROCESS "AlignChunk";
            COLLECT results;
          }
          BLOCK Setup { MEMBERS UserInput, QueueGeneration; }
          CONNECTOR UserInput -> QueueGeneration WHEN !defined(UserInput.queue_file);
          CONNECTOR UserInput -> Preprocessing WHEN defined(UserInput.queue_file);
          CONNECTOR QueueGeneration -> Preprocessing;
          CONNECTOR Preprocessing -> Alignment WHEN len(Preprocessing.partition) > 0;
          DATAFLOW UserInput.db_name -> WHITEBOARD.db_name;
          DATAFLOW UserInput.queue_file -> Preprocessing.queue_file;
          DATAFLOW QueueGeneration.queue_file -> Preprocessing.queue_file;
          DATAFLOW Preprocessing.partition -> Alignment.partition;
          ON FAILURE OF Preprocessing ALTERNATIVE QueueGeneration;
          ON FAILURE OF * ABORT;
          ON EVENT "operator_pause" SUSPEND;
          ON EVENT "retune" SET threshold = 90.0 - 2.5;
          SPHERE Head { MEMBERS UserInput, QueueGeneration; COMPENSATE QueueGeneration WITH "undo.queue"; }
        }
    "#;

    #[test]
    fn parses_full_sample() {
        let t = parse_process(SAMPLE).unwrap();
        assert_eq!(t.name, "AllVsAllHead");
        assert_eq!(t.tasks.len(), 4);
        assert_eq!(t.whiteboard.len(), 4);
        assert_eq!(t.connectors.len(), 4);
        assert_eq!(t.dataflows.len(), 4);
        assert_eq!(t.on_failure.len(), 2);
        assert_eq!(t.on_event.len(), 2);
        assert_eq!(t.spheres.len(), 1);
        assert_eq!(t.blocks.len(), 1);
        // Placement metadata.
        match &t.task("Preprocessing").unwrap().kind {
            TaskKind::Activity { binding } => {
                assert_eq!(binding.os.as_deref(), Some("linux"));
                assert_eq!(binding.hosts.len(), 2);
                assert!(binding.nice);
            }
            _ => panic!(),
        }
        // Defaults.
        let teus = t
            .task("Preprocessing")
            .unwrap()
            .inputs
            .iter()
            .find(|f| f.name == "teus")
            .unwrap();
        assert_eq!(teus.default, Some(Value::Int(50)));
        // Condition survived.
        let c = &t.connectors[0];
        assert_eq!(c.condition.to_string(), "!defined(UserInput.queue_file)");
        // The sample also passes validation.
        crate::validate::validate(&t).unwrap();
    }

    #[test]
    fn expression_precedence() {
        let src = "PROCESS P { ACTIVITY A { PROGRAM \"x\"; } ACTIVITY B { PROGRAM \"y\"; } \
                   CONNECTOR A -> B WHEN 1 + 2 * 3 == 7 && !false; }";
        let t = parse_process(src).unwrap();
        assert_eq!(
            t.connectors[0].condition.to_string(),
            "1 + 2 * 3 == 7 && !false"
        );
    }

    #[test]
    fn error_reports_position() {
        let err = parse_process("PROCESS P {\n  JUNK x;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("JUNK"));
    }

    #[test]
    fn unterminated_string() {
        let err = parse_process("PROCESS P { ACTIVITY A { PROGRAM \"oops; } }").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn missing_program_rejected() {
        let err = parse_process("PROCESS P { ACTIVITY A { RETRY 1; } }").unwrap_err();
        assert!(err.message.contains("no PROGRAM"));
    }

    #[test]
    fn parallel_requires_over_body_collect() {
        let err = parse_process("PROCESS P { PARALLEL Q { OVER xs; COLLECT ys; } }").unwrap_err();
        assert!(err.message.contains("no BODY"));
    }

    #[test]
    fn library_parses_multiple_processes() {
        let src = "PROCESS A { ACTIVITY T { PROGRAM \"p\"; } }\nPROCESS B { ACTIVITY U { PROGRAM \"q\"; } }";
        let lib = parse_library(src).unwrap();
        assert_eq!(lib.len(), 2);
        assert_eq!(lib[1].name, "B");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse_process("PROCESS A { ACTIVITY T { PROGRAM \"p\"; } } extra").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn comments_and_negative_defaults() {
        let src = "# header\nPROCESS P {\n  WHITEBOARD { x: INT = -3; } // inline\n  ACTIVITY A { PROGRAM \"p\"; }\n}";
        let t = parse_process(src).unwrap();
        assert_eq!(t.whiteboard[0].default, Some(Value::Int(-3)));
    }
}
