//! Pretty-printer: [`ProcessTemplate`] → OCR text.
//!
//! The printer is the inverse of [`crate::parser::parse_process`]; the
//! round-trip `parse(print(t)) == t` is tested here and property-tested in
//! the crate's test suite.  It is used when templates are exported from the
//! template space for inspection or editing.

use crate::expr::Expr;
use crate::model::*;
use crate::value::Value;
use std::fmt::Write;

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(x) => {
            if x.fract() == 0.0 && x.is_finite() {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Value::Str(s) => {
            let _ = write!(out, "{s:?}");
        }
        Value::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(m) => {
            out.push_str("{ ");
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{k}: ");
                write_value(out, v);
            }
            out.push_str(" }");
        }
    }
}

fn write_fields(out: &mut String, indent: &str, fields: &[FieldDecl]) {
    for f in fields {
        let _ = write!(out, "{indent}{}: {}", f.name, f.ty.keyword());
        if let Some(d) = &f.default {
            out.push_str(" = ");
            write_value(out, d);
        }
        out.push_str(";\n");
    }
}

fn write_task_common(out: &mut String, task: &Task) {
    if !task.inputs.is_empty() {
        out.push_str("    INPUT {\n");
        write_fields(out, "      ", &task.inputs);
        out.push_str("    }\n");
    }
    if !task.outputs.is_empty() {
        out.push_str("    OUTPUT {\n");
        write_fields(out, "      ", &task.outputs);
        out.push_str("    }\n");
    }
    if task.retries > 0 {
        let _ = writeln!(out, "    RETRY {};", task.retries);
    }
}

/// Render a template as OCR text.
pub fn to_ocr_text(t: &ProcessTemplate) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "PROCESS {} {{", t.name);
    if !t.whiteboard.is_empty() {
        out.push_str("  WHITEBOARD {\n");
        write_fields(&mut out, "    ", &t.whiteboard);
        out.push_str("  }\n");
    }
    for task in &t.tasks {
        match &task.kind {
            TaskKind::Activity { binding } => {
                let _ = writeln!(out, "  ACTIVITY {} {{", task.name);
                let _ = writeln!(out, "    PROGRAM {:?};", binding.program);
                if let Some(os) = &binding.os {
                    let _ = writeln!(out, "    OS {os:?};");
                }
                if !binding.hosts.is_empty() {
                    let hosts: Vec<String> =
                        binding.hosts.iter().map(|h| format!("{h:?}")).collect();
                    let _ = writeln!(out, "    HOSTS {};", hosts.join(", "));
                }
                if binding.nice {
                    out.push_str("    NICE;\n");
                }
                write_task_common(&mut out, task);
                out.push_str("  }\n");
            }
            TaskKind::Subprocess { template } => {
                let _ = writeln!(out, "  SUBPROCESS {} {{", task.name);
                let _ = writeln!(out, "    TEMPLATE {template:?};");
                write_task_common(&mut out, task);
                out.push_str("  }\n");
            }
            TaskKind::Parallel {
                over,
                body,
                collect,
            } => {
                let _ = writeln!(out, "  PARALLEL {} {{", task.name);
                let _ = writeln!(out, "    OVER {over};");
                match body {
                    ParallelBody::Activity(b) => {
                        let _ = writeln!(out, "    BODY ACTIVITY {:?};", b.program);
                    }
                    ParallelBody::Subprocess(name) => {
                        let _ = writeln!(out, "    BODY SUBPROCESS {name:?};");
                    }
                }
                let _ = writeln!(out, "    COLLECT {collect};");
                // Print the full field lists (the parser only *appends* the
                // over/collect declarations when absent, so declared order
                // survives the round-trip).
                write_task_common(&mut out, task);
                out.push_str("  }\n");
            }
        }
    }
    for b in &t.blocks {
        let _ = writeln!(
            out,
            "  BLOCK {} {{ MEMBERS {}; }}",
            b.name,
            b.members.join(", ")
        );
    }
    for c in &t.connectors {
        if c.condition.is_trivially_true() {
            let _ = writeln!(out, "  CONNECTOR {} -> {};", c.from, c.to);
        } else {
            let _ = writeln!(
                out,
                "  CONNECTOR {} -> {} WHEN {};",
                c.from, c.to, c.condition
            );
        }
    }
    for d in &t.dataflows {
        let _ = writeln!(out, "  DATAFLOW {} -> {};", d.from, d.to);
    }
    for h in &t.on_failure {
        let policy = match &h.policy {
            FailurePolicy::Alternative(alt) => format!("ALTERNATIVE {alt}"),
            FailurePolicy::Ignore => "IGNORE".to_string(),
            FailurePolicy::CompensateSphere(s) => format!("COMPENSATE {s}"),
            FailurePolicy::Abort => "ABORT".to_string(),
            FailurePolicy::Suspend => "SUSPEND".to_string(),
        };
        let _ = writeln!(out, "  ON FAILURE OF {} {policy};", h.task);
    }
    for h in &t.on_event {
        let action = match &h.action {
            EventAction::Suspend => "SUSPEND".to_string(),
            EventAction::Resume => "RESUME".to_string(),
            EventAction::Abort => "ABORT".to_string(),
            EventAction::SetData(field, e) => format!("SET {field} = {e}"),
        };
        let _ = writeln!(out, "  ON EVENT {:?} {action};", h.event);
    }
    for s in &t.spheres {
        let _ = writeln!(out, "  SPHERE {} {{", s.name);
        let _ = writeln!(out, "    MEMBERS {};", s.members.join(", "));
        for (task, prog) in &s.compensations {
            let _ = writeln!(out, "    COMPENSATE {task} WITH {prog:?};");
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

/// Render a guard expression (re-exported convenience; `Expr` also
/// implements `Display`).
pub fn expr_to_text(e: &Expr) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcessBuilder;
    use crate::parser::parse_process;

    fn roundtrip(t: &ProcessTemplate) {
        let text = to_ocr_text(t);
        let back = parse_process(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(&back, t, "round-trip mismatch.\n--- printed ---\n{text}");
    }

    #[test]
    fn roundtrip_linear() {
        let t = ProcessBuilder::new("Linear")
            .whiteboard_default("db", TypeTag::Str, Value::from("sp38"))
            .activity("A", "lib.a", |b| b.output("x", TypeTag::Int).retries(3))
            .activity("B", "lib.b", |b| b.input("x", TypeTag::Int))
            .connect("A", "B")
            .flow_to_task("A", "x", "B", "x")
            .build()
            .unwrap();
        roundtrip(&t);
    }

    #[test]
    fn roundtrip_everything() {
        let t = ProcessBuilder::new("Full")
            .whiteboard_default(
                "meta",
                TypeTag::Map,
                Value::map_from([("k", Value::int_list([1, 2]))]),
            )
            .whiteboard_field("flag", TypeTag::Bool)
            .activity("A", "lib.a", |b| {
                b.output("parts", TypeTag::List)
                    .on_os("linux")
                    .on_hosts(["h1"])
                    .retries(1)
            })
            .subprocess("S", "SubTemplate", |b| b.input("q", TypeTag::Any))
            .parallel(
                "Fan",
                "parts",
                ParallelBody::Subprocess("Chunk".into()),
                "results",
                |b| b,
            )
            .block("G", ["A", "S"])
            .connect_when("A", "S", Expr::defined("A.parts"))
            .connect_when(
                "A",
                "Fan",
                crate::expr::Expr::Bin(
                    crate::expr::BinOp::Gt,
                    Box::new(Expr::Call("len".into(), vec![Expr::path("A.parts")])),
                    Box::new(Expr::Lit(Value::Int(0))),
                ),
            )
            .connect("S", "Fan")
            .flow_to_task("A", "parts", "Fan", "parts")
            .on_failure("A", FailurePolicy::Alternative("S".into()))
            .on_failure("*", FailurePolicy::Abort)
            .on_event("pause", EventAction::Suspend)
            .on_event(
                "retune",
                EventAction::SetData("flag".into(), Expr::Lit(Value::Bool(true))),
            )
            .sphere("Sp", ["A"], [("A", "undo.a")])
            .build()
            .unwrap();
        roundtrip(&t);
    }

    #[test]
    fn printed_text_is_humane() {
        let t = ProcessBuilder::new("P")
            .activity("A", "lib.a", |b| b)
            .build()
            .unwrap();
        let text = to_ocr_text(&t);
        assert!(text.contains("PROCESS P {"));
        assert!(text.contains("ACTIVITY A {"));
        assert!(text.contains("PROGRAM \"lib.a\";"));
    }
}
