//! # bioopera-ocr
//!
//! The **Opera Canonical Representation** (OCR): BioOpera's process language
//! (paper §3.1).  A *process* is an annotated directed graph whose nodes are
//! tasks (activities, blocks, subprocesses, parallel tasks) and whose arcs
//! are control connectors `(T_s, T_t, C_act)` and data-flow connectors.
//!
//! This crate is the engine-independent half of the system: it defines
//!
//! * the dynamic [`value::Value`] model used on the whiteboard and in task
//!   input/output structures,
//! * the activation-condition / guard expression language ([`expr`]),
//! * the process model itself ([`model`]),
//! * a fluent [`builder`] API,
//! * the textual OCR [`parser`] and [`printer`] ("OCR acts as a persistent
//!   scripting language interpreted by the navigator"),
//! * static [`validate`](validate()) checks run before a template is admitted to the
//!   template space.
//!
//! Execution semantics live in `bioopera-core`; nothing here knows about
//! clusters, scheduling, or persistence.

pub mod builder;
pub mod expr;
pub mod model;
pub mod parser;
pub mod printer;
pub mod validate;
pub mod value;

pub use builder::ProcessBuilder;
pub use expr::{EvalError, Expr};
pub use model::{
    Block, ControlConnector, DataFlow, DataRef, EventAction, EventHandler, ExternalBinding,
    FailureHandler, FailurePolicy, FieldDecl, ParallelBody, ProcessTemplate, Sphere, Task,
    TaskKind, TypeTag,
};
pub use parser::{parse_process, ParseError};
pub use printer::to_ocr_text;
pub use validate::{validate, ValidationError};
pub use value::Value;
