//! The OCR process model.
//!
//! "In OCR, a process consists of a set of tasks and a set of data objects.
//! Tasks can be activities, blocks, or subprocesses" (paper §3.1).  The
//! graph is annotated with control connectors (arcs with activation
//! conditions), data-flow connectors, failure handlers, event handlers and
//! spheres of atomicity.

use crate::expr::Expr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Static type tags for declared whiteboard fields and task parameters.
/// `Any` disables checking for that field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TypeTag {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// Double float.
    Float,
    /// String.
    Str,
    /// List of anything.
    List,
    /// String-keyed map.
    Map,
    /// Unchecked.
    Any,
}

impl TypeTag {
    /// Concrete-syntax keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            TypeTag::Bool => "BOOL",
            TypeTag::Int => "INT",
            TypeTag::Float => "FLOAT",
            TypeTag::Str => "STR",
            TypeTag::List => "LIST",
            TypeTag::Map => "MAP",
            TypeTag::Any => "ANY",
        }
    }

    /// Does `v` inhabit this tag?
    pub fn admits(self, v: &crate::value::Value) -> bool {
        use crate::value::Value;
        matches!(
            (self, v),
            (TypeTag::Any, _)
                | (_, Value::Null)
                | (TypeTag::Bool, Value::Bool(_))
                | (TypeTag::Int, Value::Int(_))
                | (TypeTag::Float, Value::Float(_))
                | (TypeTag::Float, Value::Int(_))
                | (TypeTag::Str, Value::Str(_))
                | (TypeTag::List, Value::List(_))
                | (TypeTag::Map, Value::Map(_))
        )
    }
}

/// A declared field of the whiteboard or of a task input/output structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Declared type.
    pub ty: TypeTag,
    /// Optional default (used when nothing has been mapped into the field).
    pub default: Option<crate::value::Value>,
}

impl FieldDecl {
    /// A field with no default.
    pub fn new(name: impl Into<String>, ty: TypeTag) -> Self {
        FieldDecl {
            name: name.into(),
            ty,
            default: None,
        }
    }

    /// A field with a default value.
    pub fn with_default(name: impl Into<String>, ty: TypeTag, v: crate::value::Value) -> Self {
        FieldDecl {
            name: name.into(),
            ty,
            default: Some(v),
        }
    }
}

/// How an activity binds to the outside world: the program the runtime asks
/// the node's execution client to launch, plus placement constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ExternalBinding {
    /// Program identifier resolved against the activity library
    /// (e.g. `"darwin.align_fixed_pam"`).
    pub program: String,
    /// Restrict execution to nodes whose OS matches (empty = any).
    pub os: Option<String>,
    /// Restrict execution to named nodes (empty = any).
    pub hosts: Vec<String>,
    /// Relative priority; lower runs "nicer" (paper: jobs run in nice mode
    /// on shared clusters).
    pub nice: bool,
}

impl ExternalBinding {
    /// Binding to `program` with no placement constraints.
    pub fn program(name: impl Into<String>) -> Self {
        ExternalBinding {
            program: name.into(),
            ..Default::default()
        }
    }
}

/// The body executed for each element of a parallel task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParallelBody {
    /// Run one activity per element.
    Activity(ExternalBinding),
    /// Instantiate one subprocess per element (late-bound by name).
    Subprocess(String),
}

/// What a task *is*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskKind {
    /// A basic execution step: "stand alone programs or systems that can be
    /// relied upon to complete one of the computational steps".
    Activity {
        /// External binding used by the dispatcher.
        binding: ExternalBinding,
    },
    /// A nested process, referenced by template name and instantiated only
    /// when started (late binding enables dynamic modification of a running
    /// process).
    Subprocess {
        /// Template-space name; resolvable at start time, not definition time.
        template: String,
    },
    /// The paper's *parallel task*: "takes as input a list of data objects
    /// and produces as output another list"; one body instance per element,
    /// all running in parallel; the task concludes when all instances have
    /// concluded.  The input list is produced at runtime, so the degree of
    /// parallelism is determined at runtime.
    Parallel {
        /// Input field (of this task) holding the list to fan out over.
        over: String,
        /// Body run per element.
        body: ParallelBody,
        /// Output field receiving the list of per-element results.
        collect: String,
    },
}

/// A task node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Unique name within the process.
    pub name: String,
    /// Activity, subprocess or parallel task.
    pub kind: TaskKind,
    /// Input structure declaration.
    pub inputs: Vec<FieldDecl>,
    /// Output structure declaration.
    pub outputs: Vec<FieldDecl>,
    /// Automatic retries before the failure handlers run.
    pub retries: u32,
}

/// A control connector `(T_s, T_t, C_act)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlConnector {
    /// Source task.
    pub from: String,
    /// Target task.
    pub to: String,
    /// Activation condition, evaluated when the source completes.
    pub condition: Expr,
}

/// A reference to a data location, used by data-flow connectors.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataRef {
    /// A field of the process's global data area.
    Whiteboard(String),
    /// `task.field` in the task's *output* structure (as a source) or
    /// *input* structure (as a destination).
    TaskField(String, String),
}

impl fmt::Display for DataRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataRef::Whiteboard(field) => write!(f, "WHITEBOARD.{field}"),
            DataRef::TaskField(task, field) => write!(f, "{task}.{field}"),
        }
    }
}

/// A data-flow connector: after the source side is produced, the value is
/// copied to the destination during the mapping phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataFlow {
    /// Where the value comes from.
    pub from: DataRef,
    /// Where it is mapped to.
    pub to: DataRef,
}

/// What to do when a task exhausts its retries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FailurePolicy {
    /// Run an alternative task instead (the paper's "alternative
    /// executions"); the failed task is marked compensated-by-alternative.
    Alternative(String),
    /// Mark the task as skipped and continue as if its outgoing connectors
    /// all evaluated with the task "failed" flag set.
    Ignore,
    /// Undo the enclosing sphere of atomicity, then fail the process.
    CompensateSphere(String),
    /// Abort the whole process instance.
    Abort,
    /// Suspend the process and wait for operator intervention.
    Suspend,
}

/// `ON FAILURE OF task ...` handler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureHandler {
    /// Task this handler covers; `"*"` covers any task without a specific
    /// handler.
    pub task: String,
    /// Policy applied after retries are exhausted.
    pub policy: FailurePolicy,
}

/// Action taken when an external event is signalled to a process instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventAction {
    /// Suspend the instance (stop dispatching; running jobs drain).
    Suspend,
    /// Resume a suspended instance.
    Resume,
    /// Abort the instance.
    Abort,
    /// Overwrite a whiteboard field with the evaluation of an expression
    /// ("change input parameters during each step of the computation").
    SetData(String, Expr),
}

/// `ON EVENT "name" ...` handler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventHandler {
    /// Event name matched against signals sent by monitors/operators.
    pub event: String,
    /// Action performed.
    pub action: EventAction,
}

/// A sphere of atomicity: a group of tasks that either all take effect or
/// are compensated together.  Compensation programs run in reverse
/// completion order of the member tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sphere {
    /// Sphere name.
    pub name: String,
    /// Member task names.
    pub members: Vec<String>,
    /// `task -> compensation program` (member tasks without an entry need
    /// no undo action).
    pub compensations: Vec<(String, String)>,
}

/// A named group of tasks: "blocks are used for modular process design";
/// the engine also uses them as suspension/monitoring scopes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Block name (scope is the containing process).
    pub name: String,
    /// Member task names.
    pub members: Vec<String>,
}

/// A complete process template, as stored in the template space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessTemplate {
    /// Template name (unique in the template space).
    pub name: String,
    /// Whiteboard (global data area) declaration.
    pub whiteboard: Vec<FieldDecl>,
    /// Task nodes.
    pub tasks: Vec<Task>,
    /// Named groups.
    pub blocks: Vec<Block>,
    /// Control-flow arcs.
    pub connectors: Vec<ControlConnector>,
    /// Data-flow arcs.
    pub dataflows: Vec<DataFlow>,
    /// Failure handlers.
    pub on_failure: Vec<FailureHandler>,
    /// Event handlers.
    pub on_event: Vec<EventHandler>,
    /// Spheres of atomicity.
    pub spheres: Vec<Sphere>,
}

impl ProcessTemplate {
    /// An empty template (use [`crate::builder::ProcessBuilder`] normally).
    pub fn empty(name: impl Into<String>) -> Self {
        ProcessTemplate {
            name: name.into(),
            whiteboard: Vec::new(),
            tasks: Vec::new(),
            blocks: Vec::new(),
            connectors: Vec::new(),
            dataflows: Vec::new(),
            on_failure: Vec::new(),
            on_event: Vec::new(),
            spheres: Vec::new(),
        }
    }

    /// Find a task by name.
    pub fn task(&self, name: &str) -> Option<&Task> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Names of tasks with no incoming control connector — the entry set.
    pub fn initial_tasks(&self) -> Vec<&str> {
        self.tasks
            .iter()
            .filter(|t| !self.connectors.iter().any(|c| c.to == t.name))
            .map(|t| t.name.as_str())
            .collect()
    }

    /// Incoming connectors of `task`.
    pub fn incoming(&self, task: &str) -> Vec<&ControlConnector> {
        self.connectors.iter().filter(|c| c.to == task).collect()
    }

    /// Outgoing connectors of `task`.
    pub fn outgoing(&self, task: &str) -> Vec<&ControlConnector> {
        self.connectors.iter().filter(|c| c.from == task).collect()
    }

    /// Data flows whose source is an output of `task` or, for
    /// whiteboard-sourced flows feeding `task`, the flows targeting it.
    pub fn dataflows_from_task(&self, task: &str) -> Vec<&DataFlow> {
        self.dataflows
            .iter()
            .filter(|d| matches!(&d.from, DataRef::TaskField(t, _) if t == task))
            .collect()
    }

    /// Data flows into `task`'s input structure.
    pub fn dataflows_into_task(&self, task: &str) -> Vec<&DataFlow> {
        self.dataflows
            .iter()
            .filter(|d| matches!(&d.to, DataRef::TaskField(t, _) if t == task))
            .collect()
    }

    /// The failure handler applicable to `task` (specific beats wildcard).
    pub fn failure_handler_for(&self, task: &str) -> Option<&FailureHandler> {
        self.on_failure
            .iter()
            .find(|h| h.task == task)
            .or_else(|| self.on_failure.iter().find(|h| h.task == "*"))
    }

    /// The sphere containing `task`, if any.
    pub fn sphere_of(&self, task: &str) -> Option<&Sphere> {
        self.spheres
            .iter()
            .find(|s| s.members.iter().any(|m| m == task))
    }

    /// All subprocess template names referenced (for dependency resolution).
    pub fn referenced_templates(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for t in &self.tasks {
            match &t.kind {
                TaskKind::Subprocess { template } => out.push(template.as_str()),
                TaskKind::Parallel {
                    body: ParallelBody::Subprocess(name),
                    ..
                } => out.push(name.as_str()),
                _ => {}
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn two_task_template() -> ProcessTemplate {
        let mut t = ProcessTemplate::empty("p");
        t.whiteboard.push(FieldDecl::with_default(
            "db",
            TypeTag::Str,
            Value::from("sp38"),
        ));
        t.tasks.push(Task {
            name: "a".into(),
            kind: TaskKind::Activity {
                binding: ExternalBinding::program("prog.a"),
            },
            inputs: vec![FieldDecl::new("x", TypeTag::Int)],
            outputs: vec![FieldDecl::new("y", TypeTag::Int)],
            retries: 1,
        });
        t.tasks.push(Task {
            name: "b".into(),
            kind: TaskKind::Activity {
                binding: ExternalBinding::program("prog.b"),
            },
            inputs: vec![FieldDecl::new("y", TypeTag::Int)],
            outputs: vec![],
            retries: 0,
        });
        t.connectors.push(ControlConnector {
            from: "a".into(),
            to: "b".into(),
            condition: Expr::truth(),
        });
        t.dataflows.push(DataFlow {
            from: DataRef::TaskField("a".into(), "y".into()),
            to: DataRef::TaskField("b".into(), "y".into()),
        });
        t
    }

    #[test]
    fn graph_queries() {
        let t = two_task_template();
        assert_eq!(t.initial_tasks(), vec!["a"]);
        assert_eq!(t.incoming("b").len(), 1);
        assert_eq!(t.outgoing("a").len(), 1);
        assert_eq!(t.dataflows_from_task("a").len(), 1);
        assert_eq!(t.dataflows_into_task("b").len(), 1);
        assert!(t.task("a").is_some());
        assert!(t.task("zz").is_none());
    }

    #[test]
    fn failure_handler_specific_beats_wildcard() {
        let mut t = two_task_template();
        t.on_failure.push(FailureHandler {
            task: "*".into(),
            policy: FailurePolicy::Abort,
        });
        t.on_failure.push(FailureHandler {
            task: "a".into(),
            policy: FailurePolicy::Ignore,
        });
        assert!(matches!(
            t.failure_handler_for("a").unwrap().policy,
            FailurePolicy::Ignore
        ));
        assert!(matches!(
            t.failure_handler_for("b").unwrap().policy,
            FailurePolicy::Abort
        ));
    }

    #[test]
    fn type_tags_admit() {
        assert!(TypeTag::Int.admits(&Value::Int(1)));
        assert!(!TypeTag::Int.admits(&Value::Str("x".into())));
        assert!(TypeTag::Float.admits(&Value::Int(1)), "ints widen to float");
        assert!(TypeTag::Any.admits(&Value::List(vec![])));
        assert!(
            TypeTag::Str.admits(&Value::Null),
            "null inhabits every type"
        );
    }

    #[test]
    fn referenced_templates_deduped() {
        let mut t = ProcessTemplate::empty("p");
        t.tasks.push(Task {
            name: "s1".into(),
            kind: TaskKind::Subprocess {
                template: "Sub".into(),
            },
            inputs: vec![],
            outputs: vec![],
            retries: 0,
        });
        t.tasks.push(Task {
            name: "par".into(),
            kind: TaskKind::Parallel {
                over: "items".into(),
                body: ParallelBody::Subprocess("Sub".into()),
                collect: "results".into(),
            },
            inputs: vec![FieldDecl::new("items", TypeTag::List)],
            outputs: vec![FieldDecl::new("results", TypeTag::List)],
            retries: 0,
        });
        assert_eq!(t.referenced_templates(), vec!["Sub"]);
    }

    #[test]
    fn serde_roundtrip() {
        let t = two_task_template();
        let json = serde_json::to_string(&t).unwrap();
        let back: ProcessTemplate = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
