//! Fluent construction of process templates.
//!
//! The paper's GUI "process creation element ... allows users to create
//! processes by simply selecting activities from the library management
//! element, combining them ... and specifying the flow of control and data
//! among them".  [`ProcessBuilder`] is the programmatic equivalent; the
//! textual OCR parser produces the same [`ProcessTemplate`]s.

use crate::expr::Expr;
use crate::model::*;
use crate::validate::{validate, ValidationError};
use crate::value::Value;

/// Builder for [`ProcessTemplate`].
///
/// ```
/// use bioopera_ocr::{ProcessBuilder, Expr, TypeTag};
///
/// let process = ProcessBuilder::new("Demo")
///     .whiteboard_field("db_name", TypeTag::Str)
///     .activity("Fetch", "lib.fetch", |t| t.output("data", TypeTag::List))
///     .activity("Report", "lib.report", |t| t.input("data", TypeTag::List))
///     .connect("Fetch", "Report")
///     .flow_to_task("Fetch", "data", "Report", "data")
///     .build()
///     .unwrap();
/// assert_eq!(process.tasks.len(), 2);
/// ```
pub struct ProcessBuilder {
    template: ProcessTemplate,
}

/// Builder scope for one task's input/output structures and retry policy.
pub struct TaskBuilder {
    task: Task,
}

impl TaskBuilder {
    /// Declare an input field.
    pub fn input(mut self, name: impl Into<String>, ty: TypeTag) -> Self {
        self.task.inputs.push(FieldDecl::new(name, ty));
        self
    }

    /// Declare an input field with a default value.
    pub fn input_default(mut self, name: impl Into<String>, ty: TypeTag, v: Value) -> Self {
        self.task.inputs.push(FieldDecl::with_default(name, ty, v));
        self
    }

    /// Declare an output field.
    pub fn output(mut self, name: impl Into<String>, ty: TypeTag) -> Self {
        self.task.outputs.push(FieldDecl::new(name, ty));
        self
    }

    /// Set the automatic retry count.
    pub fn retries(mut self, n: u32) -> Self {
        self.task.retries = n;
        self
    }

    /// Constrain placement to an OS (activities only; ignored otherwise).
    pub fn on_os(mut self, os: impl Into<String>) -> Self {
        if let TaskKind::Activity { binding } = &mut self.task.kind {
            binding.os = Some(os.into());
        }
        self
    }

    /// Constrain placement to specific hosts (activities only).
    pub fn on_hosts(mut self, hosts: impl IntoIterator<Item = impl Into<String>>) -> Self {
        if let TaskKind::Activity { binding } = &mut self.task.kind {
            binding.hosts = hosts.into_iter().map(Into::into).collect();
        }
        self
    }
}

impl ProcessBuilder {
    /// Start a template named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProcessBuilder {
            template: ProcessTemplate::empty(name),
        }
    }

    /// Declare a whiteboard field.
    pub fn whiteboard_field(mut self, name: impl Into<String>, ty: TypeTag) -> Self {
        self.template.whiteboard.push(FieldDecl::new(name, ty));
        self
    }

    /// Declare a whiteboard field with a default value.
    pub fn whiteboard_default(mut self, name: impl Into<String>, ty: TypeTag, v: Value) -> Self {
        self.template
            .whiteboard
            .push(FieldDecl::with_default(name, ty, v));
        self
    }

    /// Add an activity task bound to `program`; configure it in `f`.
    pub fn activity(
        mut self,
        name: impl Into<String>,
        program: impl Into<String>,
        f: impl FnOnce(TaskBuilder) -> TaskBuilder,
    ) -> Self {
        let tb = TaskBuilder {
            task: Task {
                name: name.into(),
                kind: TaskKind::Activity {
                    binding: ExternalBinding::program(program),
                },
                inputs: Vec::new(),
                outputs: Vec::new(),
                retries: 0,
            },
        };
        self.template.tasks.push(f(tb).task);
        self
    }

    /// Add a subprocess task referencing `template` (late-bound).
    pub fn subprocess(
        mut self,
        name: impl Into<String>,
        template: impl Into<String>,
        f: impl FnOnce(TaskBuilder) -> TaskBuilder,
    ) -> Self {
        let tb = TaskBuilder {
            task: Task {
                name: name.into(),
                kind: TaskKind::Subprocess {
                    template: template.into(),
                },
                inputs: Vec::new(),
                outputs: Vec::new(),
                retries: 0,
            },
        };
        self.template.tasks.push(f(tb).task);
        self
    }

    /// Add a parallel task fanning out over input list `over`, running
    /// `body` per element, collecting results in output field `collect`.
    pub fn parallel(
        mut self,
        name: impl Into<String>,
        over: impl Into<String>,
        body: ParallelBody,
        collect: impl Into<String>,
        f: impl FnOnce(TaskBuilder) -> TaskBuilder,
    ) -> Self {
        let over = over.into();
        let collect = collect.into();
        let tb = TaskBuilder {
            task: Task {
                name: name.into(),
                kind: TaskKind::Parallel {
                    over: over.clone(),
                    body,
                    collect: collect.clone(),
                },
                inputs: vec![FieldDecl::new(over, TypeTag::List)],
                outputs: vec![FieldDecl::new(collect, TypeTag::List)],
                retries: 0,
            },
        };
        self.template.tasks.push(f(tb).task);
        self
    }

    /// Connect `from -> to` unconditionally.
    pub fn connect(self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.connect_when(from, to, Expr::truth())
    }

    /// Connect `from -> to` with an activation condition.
    pub fn connect_when(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        cond: Expr,
    ) -> Self {
        self.template.connectors.push(ControlConnector {
            from: from.into(),
            to: to.into(),
            condition: cond,
        });
        self
    }

    /// Map a task output to another task's input.
    pub fn flow_to_task(
        mut self,
        from_task: impl Into<String>,
        from_field: impl Into<String>,
        to_task: impl Into<String>,
        to_field: impl Into<String>,
    ) -> Self {
        self.template.dataflows.push(DataFlow {
            from: DataRef::TaskField(from_task.into(), from_field.into()),
            to: DataRef::TaskField(to_task.into(), to_field.into()),
        });
        self
    }

    /// Map a task output to the whiteboard.
    pub fn flow_to_whiteboard(
        mut self,
        from_task: impl Into<String>,
        from_field: impl Into<String>,
        wb_field: impl Into<String>,
    ) -> Self {
        self.template.dataflows.push(DataFlow {
            from: DataRef::TaskField(from_task.into(), from_field.into()),
            to: DataRef::Whiteboard(wb_field.into()),
        });
        self
    }

    /// Map a whiteboard field into a task input.
    pub fn flow_from_whiteboard(
        mut self,
        wb_field: impl Into<String>,
        to_task: impl Into<String>,
        to_field: impl Into<String>,
    ) -> Self {
        self.template.dataflows.push(DataFlow {
            from: DataRef::Whiteboard(wb_field.into()),
            to: DataRef::TaskField(to_task.into(), to_field.into()),
        });
        self
    }

    /// Group tasks into a named block.
    pub fn block(
        mut self,
        name: impl Into<String>,
        members: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        self.template.blocks.push(Block {
            name: name.into(),
            members: members.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Install a failure handler for `task` (or `"*"`).
    pub fn on_failure(mut self, task: impl Into<String>, policy: FailurePolicy) -> Self {
        self.template.on_failure.push(FailureHandler {
            task: task.into(),
            policy,
        });
        self
    }

    /// Install an event handler.
    pub fn on_event(mut self, event: impl Into<String>, action: EventAction) -> Self {
        self.template.on_event.push(EventHandler {
            event: event.into(),
            action,
        });
        self
    }

    /// Declare a sphere of atomicity.
    pub fn sphere(
        mut self,
        name: impl Into<String>,
        members: impl IntoIterator<Item = impl Into<String>>,
        compensations: impl IntoIterator<Item = (impl Into<String>, impl Into<String>)>,
    ) -> Self {
        self.template.spheres.push(Sphere {
            name: name.into(),
            members: members.into_iter().map(Into::into).collect(),
            compensations: compensations
                .into_iter()
                .map(|(t, p)| (t.into(), p.into()))
                .collect(),
        });
        self
    }

    /// Validate and return the template.
    pub fn build(self) -> Result<ProcessTemplate, ValidationError> {
        validate(&self.template)?;
        Ok(self.template)
    }

    /// Return the template without validation (for tests of the validator).
    pub fn build_unchecked(self) -> ProcessTemplate {
        self.template
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_linear_process() {
        let p = ProcessBuilder::new("Linear")
            .whiteboard_default("db", TypeTag::Str, Value::from("sp38"))
            .activity("A", "lib.a", |t| t.output("out", TypeTag::Int).retries(2))
            .activity("B", "lib.b", |t| t.input("in", TypeTag::Int))
            .connect("A", "B")
            .flow_to_task("A", "out", "B", "in")
            .build()
            .unwrap();
        assert_eq!(p.initial_tasks(), vec!["A"]);
        assert_eq!(p.task("A").unwrap().retries, 2);
    }

    #[test]
    fn builder_parallel_task_declares_fields() {
        let p = ProcessBuilder::new("Par")
            .activity("Prep", "lib.prep", |t| t.output("parts", TypeTag::List))
            .parallel(
                "Fan",
                "parts",
                ParallelBody::Activity(ExternalBinding::program("lib.work")),
                "results",
                |t| t,
            )
            .connect("Prep", "Fan")
            .flow_to_task("Prep", "parts", "Fan", "parts")
            .build()
            .unwrap();
        let fan = p.task("Fan").unwrap();
        assert!(fan.inputs.iter().any(|f| f.name == "parts"));
        assert!(fan.outputs.iter().any(|f| f.name == "results"));
    }

    #[test]
    fn placement_constraints_only_affect_activities() {
        let p = ProcessBuilder::new("P")
            .activity("A", "lib.a", |t| t.on_os("linux").on_hosts(["n1", "n2"]))
            .subprocess("S", "Sub", |t| t.on_os("ignored"))
            .build_unchecked();
        match &p.task("A").unwrap().kind {
            TaskKind::Activity { binding } => {
                assert_eq!(binding.os.as_deref(), Some("linux"));
                assert_eq!(binding.hosts, vec!["n1", "n2"]);
            }
            _ => panic!(),
        }
        assert!(matches!(
            p.task("S").unwrap().kind,
            TaskKind::Subprocess { .. }
        ));
    }
}
