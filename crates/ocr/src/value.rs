//! The dynamic value model.
//!
//! Whiteboard fields and task input/output structures hold [`Value`]s.  The
//! model is deliberately JSON-shaped so that instance state serializes
//! directly into the persistent spaces, keeping the paper's promise that
//! "the fact that the process state is persistently stored in a database
//! also offers significant advantages for monitoring and querying purposes".

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A dynamic value flowing through a process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "t", content = "v")]
pub enum Value {
    /// Absent / undefined.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list.
    List(Vec<Value>),
    /// String-keyed map with stable iteration order.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// The type name used in error messages and by `typeof()` in guards.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Map(_) => "map",
        }
    }

    /// True unless the value is `Null`.
    pub fn is_defined(&self) -> bool {
        !matches!(self, Value::Null)
    }

    /// Truthiness used by activation conditions: `Null` and `false` are
    /// falsy; everything else (including `0`) requires an explicit
    /// comparison, and asking for the truth of a non-boolean is an error at
    /// the expression layer.  This helper is only for the boolean cases.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer view (no coercion).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: ints widen to floats.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// List view.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Map view.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Length of a list, map, or string; `None` for scalars.
    pub fn len(&self) -> Option<usize> {
        match self {
            Value::List(v) => Some(v.len()),
            Value::Map(m) => Some(m.len()),
            Value::Str(s) => Some(s.chars().count()),
            _ => None,
        }
    }

    /// Whether a container value is empty (scalars return `None`).
    pub fn is_empty(&self) -> Option<bool> {
        self.len().map(|n| n == 0)
    }

    /// Follow a dotted field path through nested maps.
    pub fn get_path(&self, path: &[&str]) -> Option<&Value> {
        let mut cur = self;
        for seg in path {
            cur = cur.as_map()?.get(*seg)?;
        }
        Some(cur)
    }

    /// Build a map value from pairs.
    pub fn map_from<I, K>(pairs: I) -> Value
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        Value::Map(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build a list of ints, convenient for queue files.
    pub fn int_list(items: impl IntoIterator<Item = i64>) -> Value {
        Value::List(items.into_iter().map(Value::Int).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        match o {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_and_views() {
        assert_eq!(Value::Null.type_name(), "null");
        assert!(!Value::Null.is_defined());
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_int(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(vec![1i64, 2]).len(), Some(2));
        assert_eq!(Value::Int(1).len(), None);
    }

    #[test]
    fn path_access() {
        let v = Value::map_from([("task", Value::map_from([("state", Value::from("running"))]))]);
        assert_eq!(
            v.get_path(&["task", "state"]),
            Some(&Value::from("running"))
        );
        assert_eq!(v.get_path(&["task", "missing"]), None);
        assert_eq!(v.get_path(&[]), Some(&v));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::from(3i64).to_string(), "3");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(Value::int_list([1, 2]).to_string(), "[1, 2]");
        assert_eq!(
            Value::map_from([("a", Value::Bool(true))]).to_string(),
            "{a: true}"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let v = Value::map_from([
            ("xs", Value::int_list([1, 2, 3])),
            ("name", Value::from("sp38")),
            ("ratio", Value::Float(0.25)),
            ("none", Value::Null),
        ]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
