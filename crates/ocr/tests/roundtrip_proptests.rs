//! Property test: printing any valid template and re-parsing it yields the
//! identical template, and guard expressions round-trip through their
//! `Display` form.

use bioopera_ocr::expr::{BinOp, Expr};
use bioopera_ocr::model::*;
use bioopera_ocr::parser::parse_process;
use bioopera_ocr::printer::to_ocr_text;
use bioopera_ocr::value::Value;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,8}".prop_filter("not a literal keyword", |s| {
        !matches!(s.as_str(), "true" | "false" | "null")
    })
}

fn literal_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-100i64..100).prop_map(|i| Value::Float(i as f64 / 4.0)),
        "[a-z ]{0,12}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(2, 8, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Value::List),
            prop::collection::btree_map(ident(), inner, 0..3).prop_map(Value::Map),
        ]
    })
}

fn type_tag() -> impl Strategy<Value = TypeTag> {
    prop::sample::select(vec![
        TypeTag::Bool,
        TypeTag::Int,
        TypeTag::Float,
        TypeTag::Str,
        TypeTag::List,
        TypeTag::Map,
        TypeTag::Any,
    ])
}

fn guard_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::Lit(Value::Bool(true))),
        Just(Expr::Lit(Value::Bool(false))),
        (0i64..100).prop_map(|i| Expr::Lit(Value::Int(i))),
        (ident(), ident()).prop_map(|(a, b)| Expr::Path(vec![a, b])),
        ident().prop_map(|a| Expr::Path(vec![a])),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Bin(
                BinOp::And,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Bin(
                BinOp::Eq,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Bin(
                BinOp::Add,
                Box::new(a),
                Box::new(b)
            )),
            inner.prop_map(|e| Expr::Call("defined".into(), vec![e])),
        ]
    })
}

/// A small random-but-valid template: distinct task names, connectors only
/// from earlier to later tasks (guaranteeing a DAG with task 0 as entry).
fn template() -> impl Strategy<Value = ProcessTemplate> {
    let task_count = 2usize..6;
    (
        ident(),
        task_count,
        guard_expr(),
        literal_value(),
        type_tag(),
    )
        .prop_flat_map(|(name, n, guard, lit, tag)| {
            let fields = prop::collection::vec((ident(), type_tag()), 0..3);
            (
                Just(name),
                Just(n),
                Just(guard),
                Just(lit),
                Just(tag),
                fields,
            )
                .prop_map(|(name, n, guard, lit, tag, fields)| {
                    let mut t = ProcessTemplate::empty(format!("P{name}"));
                    let mut wb_seen = std::collections::HashSet::new();
                    for (fname, fty) in fields {
                        if wb_seen.insert(fname.clone()) {
                            t.whiteboard.push(FieldDecl::new(fname, fty));
                        }
                    }
                    t.whiteboard.push(FieldDecl::with_default("seed", tag, lit));
                    for i in 0..n {
                        t.tasks.push(Task {
                            name: format!("T{i}"),
                            kind: TaskKind::Activity {
                                binding: ExternalBinding::program(format!("lib.p{i}")),
                            },
                            inputs: vec![FieldDecl::new("x", TypeTag::Any)],
                            outputs: vec![FieldDecl::new("y", TypeTag::Any)],
                            retries: (i % 3) as u32,
                        });
                    }
                    // Chain + one guarded skip edge.
                    for i in 1..n {
                        t.connectors.push(ControlConnector {
                            from: format!("T{}", i - 1),
                            to: format!("T{i}"),
                            condition: Expr::truth(),
                        });
                    }
                    if n >= 3 {
                        t.connectors.push(ControlConnector {
                            from: "T0".into(),
                            to: format!("T{}", n - 1),
                            condition: guard,
                        });
                        t.dataflows.push(DataFlow {
                            from: DataRef::TaskField("T0".into(), "y".into()),
                            to: DataRef::TaskField(format!("T{}", n - 1), "x".into()),
                        });
                    }
                    t
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_roundtrip(t in template()) {
        let text = to_ocr_text(&t);
        let back = parse_process(&text)
            .unwrap_or_else(|e| panic!("failed to reparse printed OCR: {e}\n{text}"));
        prop_assert_eq!(back, t, "printed form:\n{}", text);
    }

    #[test]
    fn expr_display_roundtrip(e in guard_expr()) {
        // Wrap into a connector to reuse the process parser.
        let src = format!(
            "PROCESS P {{ ACTIVITY A {{ PROGRAM \"x\"; }} ACTIVITY B {{ PROGRAM \"y\"; }} CONNECTOR A -> B WHEN {e}; }}"
        );
        let t = parse_process(&src).unwrap_or_else(|err| panic!("{err}\n{src}"));
        prop_assert_eq!(&t.connectors[0].condition, &e, "src: {}", src);
    }
}
